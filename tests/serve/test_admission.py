"""Admission control: bounded queue, tenant quotas, fair dequeue, drain.

All pure-threading unit tests — the :class:`AdmissionQueue` needs no
event loop, so sheds and batching order are asserted synchronously.
"""

from __future__ import annotations

import pytest

from repro.api import MapRequest, ServeConfig
from repro.seq.records import SeqRecord
from repro.serve import (
    AdmissionQueue,
    DrainingError,
    QueueFullError,
    RequestTooLargeError,
    TenantQuotaError,
)


def request(n_reads=1, tenant="default", rid=None):
    reads = [
        SeqRecord.from_str(f"{tenant}-r{i}", "ACGTACGTACGT") for i in range(n_reads)
    ]
    return MapRequest.make(reads, request_id=rid, tenant=tenant)


def queue(**changes):
    defaults = dict(
        max_queue_requests=4,
        max_reads_per_request=4,
        tenant_quota=4,
        batch_timeout_ms=1000.0,
    )
    defaults.update(changes)
    return AdmissionQueue(ServeConfig(**defaults))


class TestSubmit:
    def test_admit_and_collect(self):
        q = queue()
        ticket = q.submit(request(rid="one"))
        assert q.depth == 1
        batch = q.collect(target_reads=1, timeout_s=0.01)
        assert [t.request.request_id for t in batch] == ["one"]
        assert q.depth == 0
        assert ticket.queue_ms >= 0.0

    def test_queue_full_sheds(self):
        q = queue(max_queue_requests=2)
        q.submit(request())
        q.submit(request())
        with pytest.raises(QueueFullError) as exc:
            q.submit(request())
        assert exc.value.http_status == 429

    def test_tenant_quota_sheds_only_the_greedy_tenant(self):
        q = queue(tenant_quota=2)
        q.submit(request(tenant="greedy"))
        q.submit(request(tenant="greedy"))
        with pytest.raises(TenantQuotaError) as exc:
            q.submit(request(tenant="greedy"))
        assert exc.value.http_status == 429
        q.submit(request(tenant="polite"))  # other tenants keep flowing

    def test_oversize_request_is_a_client_error(self):
        q = queue(max_reads_per_request=2)
        with pytest.raises(RequestTooLargeError) as exc:
            q.submit(request(n_reads=3))
        assert exc.value.http_status == 400
        assert q.depth == 0  # shed before queueing

    def test_done_frees_tenant_quota(self):
        q = queue(tenant_quota=1)
        ticket = q.submit(request(tenant="t"))
        q.collect(target_reads=1, timeout_s=0.01)
        with pytest.raises(TenantQuotaError):
            q.submit(request(tenant="t"))  # still in flight
        q.done(ticket)
        assert q.outstanding("t") == 0
        q.submit(request(tenant="t"))


class TestCollect:
    def test_round_robin_interleaves_tenants(self):
        q = queue(max_queue_requests=8)
        for i in range(4):
            q.submit(request(tenant="a", rid=f"a{i}"))
        q.submit(request(tenant="b", rid="b0"))
        batch = q.collect(target_reads=3, timeout_s=0.01)
        # tenant b's single request rides in the first batch even
        # though tenant a queued four requests first.
        assert [t.request.request_id for t in batch] == ["a0", "b0", "a1"]

    def test_requests_are_never_split(self):
        q = queue(max_queue_requests=8, max_reads_per_request=4)
        q.submit(request(n_reads=3, rid="big"))
        q.submit(request(n_reads=3, rid="big2"))
        batch = q.collect(target_reads=4, timeout_s=0.01)
        # 3 + 3 > 4: the second whole request waits for the next batch.
        assert [t.request.request_id for t in batch] == ["big"]
        assert q.depth == 1

    def test_oversized_request_rides_alone(self):
        q = queue(max_reads_per_request=4)
        q.submit(request(n_reads=4, rid="jumbo"))
        batch = q.collect(target_reads=2, timeout_s=0.01)
        assert [t.request.request_id for t in batch] == ["jumbo"]

    def test_collect_waits_for_target_or_timeout(self):
        import time

        q = queue()
        q.submit(request())
        t0 = time.monotonic()
        batch = q.collect(target_reads=8, timeout_s=0.15)
        waited = time.monotonic() - t0
        assert len(batch) == 1
        assert waited >= 0.1  # held for more reads until the deadline

    def test_collect_returns_immediately_at_target(self):
        import time

        q = queue(max_queue_requests=8)
        q.submit(request(n_reads=2))
        q.submit(request(n_reads=2))
        t0 = time.monotonic()
        batch = q.collect(target_reads=4, timeout_s=5.0)
        assert time.monotonic() - t0 < 1.0
        assert sum(t.request.n_reads for t in batch) == 4


class TestDrain:
    def test_drain_rejects_new_but_flushes_queued(self):
        q = queue()
        q.submit(request(rid="queued"))
        q.begin_drain()
        with pytest.raises(DrainingError) as exc:
            q.submit(request())
        assert exc.value.http_status == 503
        batch = q.collect(target_reads=8, timeout_s=5.0)  # no deadline wait
        assert [t.request.request_id for t in batch] == ["queued"]
        assert q.collect(target_reads=8, timeout_s=0.01) == []

    def test_stop_wakes_collect_empty(self):
        q = queue()
        q.stop()
        assert q.collect(target_reads=8, timeout_s=5.0) == []

    def test_fail_pending_resolves_futures(self):
        q = queue()
        t1 = q.submit(request())
        t2 = q.submit(request())
        q.stop()
        n = q.fail_pending(DrainingError("gave up"))
        assert n == 2
        assert q.depth == 0
        for t in (t1, t2):
            with pytest.raises(DrainingError):
                t.future.result(timeout=0)

    def test_wait_empty(self):
        q = queue()
        assert q.wait_empty(0.01)
        q.submit(request())
        assert not q.wait_empty(0.05)
        q.collect(target_reads=1, timeout_s=0.01)
        assert q.wait_empty(0.01)
