"""Per-request deadlines: ``MapRequest.timeout_ms`` → HTTP 504.

Covers the wire model (round-trip + validation), the ticket's deadline
arithmetic, both batcher expiry sites (before the batch runs and after
a batch that finished too late), and the end-to-end 504 an HTTP caller
sees — pinned so the deadline contract can't silently regress.
"""

from __future__ import annotations

import time

import pytest

from repro.api import MapRequest, MappingSession, ServeConfig
from repro.errors import ParseError, ServeError
from repro.obs.counters import COUNTERS
from repro.serve import ServeClient, ServerThread
from repro.serve.admission import AdmissionQueue, DeadlineError, Ticket
from repro.serve.batcher import AdaptiveBatcher
from repro.seq.records import SeqRecord


def serve_config(**changes):
    defaults = dict(
        adaptive_batching=False,
        max_batch_reads=64,
        batch_timeout_ms=200.0,
    )
    defaults.update(changes)
    return ServeConfig(**defaults)


class SlowAligner:
    """Duck-typed aligner wrapper that stalls every seed/chain call."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s

    def seed_and_chain(self, read):
        time.sleep(self._delay_s)
        return self._inner.seed_and_chain(read)

    def align_plan(self, read, plan, with_cigar=True, max_secondary=0):
        return self._inner.align_plan(
            read, plan, with_cigar=with_cigar, max_secondary=max_secondary
        )

    def align_plans(self, items, with_cigar=True, max_secondary=0):
        return self._inner.align_plans(
            items, with_cigar=with_cigar, max_secondary=max_secondary
        )


class TestWireModel:
    def test_timeout_round_trips(self):
        req = MapRequest.make(
            [SeqRecord.from_str("r", "ACGT")], timeout_ms=1500.0
        )
        back = MapRequest.from_json(req.to_json())
        assert back.timeout_ms == 1500.0

    def test_default_is_no_deadline(self):
        req = MapRequest.make([SeqRecord.from_str("r", "ACGT")])
        assert req.timeout_ms is None
        assert MapRequest.from_json(req.to_json()).timeout_ms is None

    @pytest.mark.parametrize("bad", [0, -5, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ParseError):
            MapRequest.make(
                [SeqRecord.from_str("r", "ACGT")], timeout_ms=bad
            )

    def test_from_json_rejects_non_numeric(self):
        doc = MapRequest.make([SeqRecord.from_str("r", "ACGT")]).to_json()
        doc["timeout_ms"] = "soon"
        with pytest.raises(ParseError):
            MapRequest.from_json(doc)


class TestTicketDeadline:
    def test_no_timeout_never_expires(self):
        ticket = Ticket(MapRequest.make([SeqRecord.from_str("r", "ACGT")]))
        assert ticket.deadline is None
        assert not ticket.expired

    def test_expires_after_timeout(self):
        ticket = Ticket(
            MapRequest.make(
                [SeqRecord.from_str("r", "ACGT")], timeout_ms=10.0
            )
        )
        assert not ticket.expired
        time.sleep(0.03)
        assert ticket.expired

    def test_deadline_error_is_504(self):
        assert DeadlineError.http_status == 504
        assert issubclass(DeadlineError, ServeError)


class TestBatcherExpiry:
    def test_expired_in_queue_gets_504_without_mapping(
        self, session, sim_reads
    ):
        cfg = serve_config(batch_timeout_ms=50.0)
        queue = AdmissionQueue(cfg)
        batcher = AdaptiveBatcher(session, queue, cfg)
        before = COUNTERS.totals().get("serve.deadline", 0)
        ticket = queue.submit(
            MapRequest.make(sim_reads[:1], timeout_ms=1.0)
        )
        time.sleep(0.02)  # deadline passes while still queued
        batcher.start()
        try:
            with pytest.raises(DeadlineError) as err:
                ticket.future.result(timeout=10.0)
        finally:
            queue.stop()
            batcher.join(5.0)
        assert "queued" in str(err.value)
        assert COUNTERS.totals().get("serve.deadline", 0) == before + 1
        assert queue.outstanding("default") == 0  # quota freed

    def test_batch_finished_too_late_gets_504(self, aligner, sim_reads):
        cfg = serve_config()
        queue = AdmissionQueue(cfg)
        with MappingSession(SlowAligner(aligner, 0.1)) as slow:
            batcher = AdaptiveBatcher(slow, queue, cfg)
            ticket = queue.submit(
                MapRequest.make(sim_reads[:1], timeout_ms=40.0)
            )
            tickets = queue.collect(
                cfg.max_batch_reads, timeout_s=0.001
            )
            assert tickets == [ticket]
            batcher._execute(tickets)  # mapping overruns the deadline
        with pytest.raises(DeadlineError) as err:
            ticket.future.result(timeout=1.0)
        assert "executed" in str(err.value)

    def test_untimed_neighbor_still_succeeds(self, session, sim_reads):
        cfg = serve_config(batch_timeout_ms=30.0)
        queue = AdmissionQueue(cfg)
        batcher = AdaptiveBatcher(session, queue, cfg)
        doomed = queue.submit(
            MapRequest.make(sim_reads[:1], timeout_ms=1.0, request_id="dd")
        )
        healthy = queue.submit(
            MapRequest.make(sim_reads[1:2], request_id="hh")
        )
        time.sleep(0.02)
        batcher.start()
        try:
            result = healthy.future.result(timeout=10.0)
            with pytest.raises(DeadlineError):
                doomed.future.result(timeout=10.0)
        finally:
            queue.stop()
            batcher.join(5.0)
        assert result.ok
        assert result.request_id == "hh"


class TestEndToEnd:
    def test_http_504_over_the_wire(self, session, sim_reads):
        cfg = serve_config(batch_timeout_ms=300.0)
        with ServerThread(session, cfg) as st:
            client = ServeClient(st.url)
            with pytest.raises(ServeError) as err:
                client.map(
                    MapRequest.make(sim_reads[:1], timeout_ms=20.0)
                )
        msg = str(err.value)
        assert "504" in msg
        assert "deadline" in msg

    def test_request_without_timeout_is_unaffected(self, session, sim_reads):
        with ServerThread(
            session, serve_config(batch_timeout_ms=10.0)
        ) as st:
            result = ServeClient(st.url).map(
                MapRequest.make(sim_reads[:1])
            )
        assert result.ok
