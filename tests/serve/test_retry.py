"""Client retry-with-backoff against a flaky fake server.

The fake server is a real stdlib HTTP server on a loopback port that
replays a *script* of outcomes — shed (429/503, optionally with
``Retry-After``), connection reset, or a well-formed ``map_result`` —
so every transient-failure shape the retry policy must absorb is
exercised over a real socket. Sleeps and jitter are injected
(recorded, not slept), so the suite is fast and deterministic.
"""

from __future__ import annotations

import http.server
import json
import threading

import pytest

from repro.api import MapRequest, MapResult
from repro.errors import ServeError
from repro.serve.client import RetryPolicy, ServeClient, ShedError
from repro.seq.records import SeqRecord


def request():
    return MapRequest.make(
        [SeqRecord.from_str("r1", "ACGTACGTACGT")], request_id="req1"
    )


def ok_doc():
    return MapResult(
        request_id="req1", read_names=("r1",), paf=(("r1\t12\tpafline",),)
    ).to_json()


class FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Replays ``server.script`` one entry per request."""

    def do_POST(self):  # noqa: N802 - stdlib casing
        self.rfile.read(int(self.headers.get("Content-Length", "0")))
        script = self.server.script  # type: ignore[attr-defined]
        step = script.pop(0) if script else ("ok",)
        kind = step[0]
        self.server.hits.append(kind)  # type: ignore[attr-defined]
        if kind == "reset":
            # Slam the connection: the client sees a reset/EOF.
            self.connection.close()
            return
        if kind == "shed":
            _, status, retry_after = step
            body = b'{"error": "shed"}'
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header("Retry-After", str(retry_after))
            self.end_headers()
            self.wfile.write(body)
            return
        body = json.dumps(ok_doc()).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # quiet
        pass


class FlakyServer:
    """Context manager running :class:`FlakyHandler` on a free port."""

    def __init__(self, script):
        self.httpd = http.server.HTTPServer(("127.0.0.1", 0), FlakyHandler)
        self.httpd.script = list(script)
        self.httpd.hits = []
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )

    @property
    def url(self):
        host, port = self.httpd.server_address
        return f"http://{host}:{port}"

    @property
    def hits(self):
        return self.httpd.hits

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(5.0)


def client(url, script_sleeps=None, **policy_kw):
    """A ServeClient with recorded (not slept) backoff delays."""
    sleeps = script_sleeps if script_sleeps is not None else []
    return (
        ServeClient(
            url,
            timeout_s=5.0,
            retry=RetryPolicy(**policy_kw),
            sleep=sleeps.append,
            rng=lambda: 0.5,
        ),
        sleeps,
    )


class TestRetrySucceeds:
    def test_recovers_after_429_and_503(self):
        script = [("shed", 429, None), ("shed", 503, None), ("ok",)]
        with FlakyServer(script) as srv:
            cli, sleeps = client(srv.url, max_attempts=4)
            result = cli.map(request())
        assert result.ok
        assert result.request_id == "req1"
        assert cli.last_attempts == 3
        assert srv.hits == ["shed", "shed", "ok"]
        assert len(sleeps) == 2

    def test_recovers_after_connection_reset(self):
        with FlakyServer([("reset",), ("ok",)]) as srv:
            cli, sleeps = client(srv.url, max_attempts=3)
            result = cli.map(request())
        assert result.ok
        assert cli.last_attempts == 2
        assert len(sleeps) == 1

    def test_exponential_backoff_with_jitter(self):
        script = [("shed", 429, None)] * 3 + [("ok",)]
        with FlakyServer(script) as srv:
            cli, sleeps = client(
                srv.url, max_attempts=5, base_delay_s=0.1, max_delay_s=10.0
            )
            assert cli.map(request()).ok
        # rng pinned at 0.5: delays are half the exponential caps.
        assert sleeps == pytest.approx([0.05, 0.1, 0.2])

    def test_retry_after_header_wins_over_backoff(self):
        script = [("shed", 429, 0.75), ("ok",)]
        with FlakyServer(script) as srv:
            cli, sleeps = client(
                srv.url, max_attempts=3, base_delay_s=0.01, budget_s=30.0
            )
            assert cli.map(request()).ok
        assert sleeps == [0.75]

    def test_retry_after_capped_at_max_delay(self):
        script = [("shed", 503, 3600), ("ok",)]
        with FlakyServer(script) as srv:
            cli, sleeps = client(
                srv.url, max_attempts=3, max_delay_s=2.0, budget_s=30.0
            )
            assert cli.map(request()).ok
        assert sleeps == [2.0]


class TestRetryGivesUp:
    def test_attempt_budget_exhausted(self):
        script = [("shed", 429, None)] * 10
        with FlakyServer(script) as srv:
            cli, _ = client(srv.url, max_attempts=3)
            with pytest.raises(ShedError) as err:
                cli.map(request())
        assert err.value.status == 429
        assert len(srv.hits) == 3

    def test_wallclock_budget_exhausted(self):
        # A Retry-After the budget can't afford: fail fast, no sleep.
        script = [("shed", 503, 500), ("ok",)]
        with FlakyServer(script) as srv:
            cli, sleeps = client(
                srv.url, max_attempts=5, max_delay_s=1000.0, budget_s=2.0
            )
            with pytest.raises(ShedError):
                cli.map(request())
        assert sleeps == []

    def test_400_result_is_not_retried(self):
        # A poison result is a well-formed answer, not a transient.
        doc = MapResult(
            request_id="req1", status="error", error="poison"
        ).to_json()
        body = json.dumps(doc).encode()
        script = [("shed", 429, None)]  # would be consumed by a retry

        class PoisonHandler(FlakyHandler):
            def do_POST(self):  # noqa: N802
                self.rfile.read(
                    int(self.headers.get("Content-Length", "0"))
                )
                self.server.hits.append("poison")
                self.send_response(400)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        httpd = http.server.HTTPServer(("127.0.0.1", 0), PoisonHandler)
        httpd.script, httpd.hits = script, []
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address
            cli, sleeps = client(f"http://{host}:{port}", max_attempts=4)
            result = cli.map(request())
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(5.0)
        assert not result.ok
        assert result.error == "poison"
        assert httpd.hits == ["poison"]  # exactly one attempt
        assert sleeps == []

    def test_no_policy_means_no_retry(self):
        with FlakyServer([("shed", 429, None), ("ok",)]) as srv:
            cli = ServeClient(srv.url, timeout_s=5.0)
            with pytest.raises(ShedError):
                cli.map(request())
        assert srv.hits == ["shed"]


class TestRetryPolicy:
    def test_full_jitter_delay_shape(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0)
        assert policy.delay_s(1, lambda: 1.0) == pytest.approx(0.1)
        assert policy.delay_s(3, lambda: 1.0) == pytest.approx(0.4)
        assert policy.delay_s(10, lambda: 1.0) == pytest.approx(1.0)  # capped
        assert policy.delay_s(4, lambda: 0.0) == 0.0  # jitter floor

    @pytest.mark.parametrize(
        "bad",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"budget_s": 0.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ServeError):
            RetryPolicy(**bad).validated()

    def test_shed_error_carries_retry_after(self):
        err = ShedError(429, "shed", retry_after_s=1.5)
        assert err.status == 429
        assert err.retry_after_s == 1.5
