"""Shared fixtures for the serve front-end tests.

The mapping fixtures mirror ``tests/core/test_api.py`` (same simulator
settings, same ``test`` preset over the session-scoped
``small_genome``), so serve results are directly comparable with the
one-shot API's. ``PoisonAligner`` is the fault-injection seam: a
duck-typed aligner wrapper that raises for selected read names, which
is the only way to get a read that *parses* on the wire but *fails*
during mapping.
"""

from __future__ import annotations

import pytest

from repro.api import MappingSession
from repro.core.aligner import Aligner
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator


class PoisonAligner:
    """Aligner wrapper raising for poisoned read names.

    Duck-typed against the surface :class:`~repro.api.MappingSession`
    actually uses (``seed_and_chain`` / ``align_plan`` /
    ``align_plans``); it has no ``set_kernel``, which the session's
    kernel plumbing treats as "nothing to configure".
    """

    def __init__(self, inner: Aligner, poison_names) -> None:
        self._inner = inner
        self._poison = set(poison_names)

    def seed_and_chain(self, read):
        if read.name in self._poison:
            raise RuntimeError(f"poisoned read {read.name!r}")
        return self._inner.seed_and_chain(read)

    def align_plan(self, read, plan, with_cigar=True, max_secondary=0):
        return self._inner.align_plan(
            read, plan, with_cigar=with_cigar, max_secondary=max_secondary
        )

    def align_plans(self, items, with_cigar=True, max_secondary=0):
        return self._inner.align_plans(
            items, with_cigar=with_cigar, max_secondary=max_secondary
        )


@pytest.fixture(scope="package")
def aligner(small_genome):
    return Aligner(small_genome, preset="test")


@pytest.fixture(scope="package")
def sim_reads(small_genome):
    sim = ReadSimulator.preset(small_genome, "pacbio")
    sim.length_model = LengthModel(mean=500.0, sigma=0.4, max_length=1000)
    return list(sim.simulate(16, seed=7))


@pytest.fixture(scope="package")
def session(aligner):
    with MappingSession(aligner) as s:
        yield s


@pytest.fixture
def poison_session(aligner):
    def make(poison_names):
        return MappingSession(PoisonAligner(aligner, poison_names))

    return make
