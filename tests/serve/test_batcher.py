"""The adaptive batch controller and the batch execution path.

Controller tests drive :meth:`BatchController.observe` with synthetic
latencies; execution tests run :meth:`AdaptiveBatcher._execute`
synchronously on collected tickets (no worker threads), so batch
results, counters, and the poison fallback are asserted
deterministically.
"""

from __future__ import annotations

import pytest

from repro.api import MapRequest, ServeConfig
from repro.core.alignment import to_paf
from repro.obs.counters import COUNTERS
from repro.serve import AdaptiveBatcher, AdmissionQueue, BatchController


def controller(**changes):
    defaults = dict(
        min_batch_reads=4,
        max_batch_reads=64,
        latency_target_ms=100.0,
        latency_window=8,
    )
    defaults.update(changes)
    return BatchController(ServeConfig(**defaults))


class TestBatchController:
    def test_initial_target_is_quarter_of_max(self):
        assert controller().target_reads == 16
        assert controller(max_batch_reads=8).target_reads == 4  # min clamp

    def test_pinned_when_not_adaptive(self):
        ctl = controller(adaptive_batching=False)
        assert ctl.target_reads == 64
        for _ in range(32):
            ctl.observe(10_000.0)
        assert ctl.target_reads == 64

    def test_shrinks_when_p99_over_target(self):
        ctl = controller()  # cooldown = max(4, 8 // 4) = 4
        for _ in range(4):
            ctl.observe(500.0)
        assert ctl.target_reads == 8  # 16 * 0.5
        for _ in range(4):
            ctl.observe(500.0)
        assert ctl.target_reads == 4  # floor at min_batch_reads
        for _ in range(8):
            ctl.observe(500.0)
        assert ctl.target_reads == 4

    def test_grows_with_headroom_and_clamps_at_max(self):
        ctl = controller()
        for _ in range(64):  # p99 well under 0.8 * target
            ctl.observe(5.0)
        assert ctl.target_reads == 64

    def test_dead_zone_holds_target(self):
        # p99 between 0.8*target and target: neither grow nor shrink.
        ctl = controller()
        for _ in range(32):
            ctl.observe(90.0)
        assert ctl.target_reads == 16

    def test_cooldown_spaces_moves(self):
        ctl = controller()
        for _ in range(3):
            ctl.observe(500.0)
        assert ctl.target_reads == 16  # not enough observations yet
        ctl.observe(500.0)
        assert ctl.target_reads == 8

    def test_p99_tracks_window(self):
        ctl = controller(adaptive_batching=False, latency_window=4)
        assert ctl.p99_ms() is None
        ctl = controller(latency_window=4)
        for ms in (10.0, 20.0, 30.0, 1000.0):
            ctl.observe(ms)
        assert ctl.p99_ms() == 1000.0
        for _ in range(4):  # old spike ages out of the window
            ctl.observe(10.0)
        assert ctl.p99_ms() == 10.0


@pytest.fixture
def executed(session, sim_reads):
    """Run one coalesced 3-request batch through _execute synchronously."""
    cfg = ServeConfig(adaptive_batching=False, max_batch_reads=64)
    queue = AdmissionQueue(cfg)
    batcher = AdaptiveBatcher(session, queue, cfg)
    requests = [
        MapRequest.make(sim_reads[0:2], request_id="q0"),
        MapRequest.make(sim_reads[2:4], request_id="q1", tenant="other"),
        MapRequest.make(sim_reads[4:6], request_id="q2", with_cigar=False),
    ]
    tickets = [queue.submit(r) for r in requests]
    before = COUNTERS.totals()
    batcher._execute(queue.collect(target_reads=64, timeout_s=0.01))
    delta = {
        k: v - before.get(k, 0) for k, v in COUNTERS.totals().items()
    }
    return requests, tickets, delta


class TestExecute:
    def test_results_match_per_request_reference(self, executed, session):
        requests, tickets, _ = executed
        for req, ticket in zip(requests, tickets):
            got = ticket.future.result(timeout=5)
            want = session.map_request(req)
            assert got.ok
            assert got.request_id == req.request_id
            assert got.read_names == want.read_names
            assert got.paf == want.paf

    def test_batch_annotations(self, executed):
        _, tickets, _ = executed
        results = [t.future.result(timeout=5) for t in tickets]
        assert {r.batch_id for r in results} == {results[0].batch_id}
        assert all(r.batch_requests == 3 for r in results)
        assert all(r.total_ms >= r.map_ms >= 0.0 for r in results)

    def test_counters(self, executed):
        _, _, delta = executed
        assert delta.get("serve.batches") == 1
        assert delta.get("serve.batch_requests") == 3
        assert delta.get("serve.batch_reads") == 6
        assert delta.get("serve.coalesced") == 1
        assert delta.get("serve.ok") == 3
        assert not delta.get("serve.errors")

    def test_no_cigar_request_honoured(self, executed):
        _, tickets, _ = executed
        res = tickets[2].future.result(timeout=5)
        for lines in res.paf:
            for line in lines:
                assert "cg:Z:" not in line


class TestPoisonFallback:
    def test_poison_request_errors_neighbors_survive(
        self, poison_session, session, sim_reads
    ):
        psession = poison_session({sim_reads[2].name})
        cfg = ServeConfig(adaptive_batching=False, max_batch_reads=64)
        queue = AdmissionQueue(cfg)
        batcher = AdaptiveBatcher(psession, queue, cfg)
        good = MapRequest.make(sim_reads[0:2], request_id="good")
        bad = MapRequest.make(sim_reads[2:4], request_id="bad")
        t_good, t_bad = queue.submit(good), queue.submit(bad)
        batcher._execute(queue.collect(target_reads=64, timeout_s=0.01))

        res_bad = t_bad.future.result(timeout=5)
        assert not res_bad.ok
        assert sim_reads[2].name in res_bad.error
        assert "poisoned" in res_bad.error

        res_good = t_good.future.result(timeout=5)
        assert res_good.ok
        assert res_good.batch_requests == 2  # same batch as the poison
        assert res_good.paf == session.map_request(good).paf

    def test_skip_mode_quarantines_inside_the_request(
        self, poison_session, session, sim_reads
    ):
        psession = poison_session({sim_reads[1].name})
        cfg = ServeConfig(adaptive_batching=False, max_batch_reads=64)
        queue = AdmissionQueue(cfg)
        batcher = AdaptiveBatcher(psession, queue, cfg)
        req = MapRequest.make(sim_reads[0:3], on_error="skip")
        ticket = queue.submit(req)
        batcher._execute(queue.collect(target_reads=64, timeout_s=0.01))
        res = ticket.future.result(timeout=5)
        assert res.ok
        assert res.quarantined == (sim_reads[1].name,)
        assert res.paf[1] == ()  # the poisoned read maps to nothing
        assert res.paf[0] == session.map_request(
            MapRequest.make(sim_reads[0:1])
        ).paf[0]
