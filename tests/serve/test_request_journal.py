"""Tests for journal-backed request replay (``serve --journal``).

The unit layer drives :class:`~repro.serve.journal.RequestJournal`
directly (admitted/done fold, restart persistence, replay through a
real :class:`~repro.api.MappingSession`); the end-to-end layer stages
a "crashed" journal — an admitted record with no done — and asserts a
fresh :class:`~repro.serve.ServerThread` replays it before serving,
then leaves nothing behind for the *next* restart.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import MapRequest, ServeConfig
from repro.obs.counters import COUNTERS
from repro.serve import RequestJournal, ServeClient, ServerThread
from repro.serve.journal import REPLAYED_NAME, replay_pending


@pytest.fixture
def journal(tmp_path):
    j = RequestJournal(str(tmp_path / "svc"))
    yield j
    j.close()


def make_request(sim_reads, lo, hi, **kw):
    return MapRequest.make(sim_reads[lo:hi], **kw)


class TestRequestJournal:
    def test_pending_folds_admitted_minus_done(self, journal, sim_reads):
        reqs = [make_request(sim_reads, i, i + 1) for i in range(3)]
        for req in reqs:
            journal.admitted(req)
        journal.done(reqs[1].request_id, "ok")
        pending = journal.pending()
        assert [d["request_id"] for d in pending] == [
            reqs[0].request_id,
            reqs[2].request_id,
        ]
        # The journaled document is the full wire form.
        assert pending[0] == reqs[0].to_json()

    def test_done_before_admitted_is_ignored(self, journal, sim_reads):
        req = make_request(sim_reads, 0, 1)
        journal.done(req.request_id, "ok")
        journal.admitted(req)
        assert [d["request_id"] for d in journal.pending()] == [
            req.request_id
        ]

    def test_pending_survives_reopen(self, tmp_path, sim_reads):
        req = make_request(sim_reads, 0, 2)
        first = RequestJournal(str(tmp_path / "svc"))
        first.admitted(req)
        first.close()
        second = RequestJournal(str(tmp_path / "svc"))
        try:
            assert [d["request_id"] for d in second.pending()] == [
                req.request_id
            ]
        finally:
            second.close()

    def test_empty_journal_has_no_pending(self, journal):
        assert journal.pending() == []


class TestReplayPending:
    def test_replays_and_marks_done(self, journal, session, sim_reads):
        reqs = [make_request(sim_reads, 0, 2), make_request(sim_reads, 2, 3)]
        for req in reqs:
            journal.admitted(req)
        before = COUNTERS.totals().get("serve.replayed", 0)

        assert replay_pending(journal, session) == 2

        assert journal.pending() == []
        assert COUNTERS.totals().get("serve.replayed", 0) == before + 2
        with open(journal.replayed_path) as fh:
            docs = [json.loads(line) for line in fh]
        assert [d["request_id"] for d in docs] == [
            r.request_id for r in reqs
        ]
        for req, doc in zip(reqs, docs):
            want = session.map_request(req)
            assert doc["status"] == want.status
            assert doc["reads"] == [
                {"name": name, "paf": list(lines)}
                for name, lines in zip(want.read_names, want.paf)
            ]

    def test_replayed_results_match_direct_mapping(
        self, journal, session, sim_reads
    ):
        req = make_request(sim_reads, 0, 4)
        journal.admitted(req)
        replay_pending(journal, session)
        with open(journal.replayed_path) as fh:
            doc = json.loads(fh.readline())
        assert [r["name"] for r in doc["reads"]] == list(
            session.map_request(req).read_names
        )

    def test_nothing_pending_is_a_noop(self, journal, session, tmp_path):
        assert replay_pending(journal, session) == 0
        assert not os.path.exists(journal.replayed_path)

    def test_unparseable_document_is_dropped_not_wedged(
        self, journal, session, sim_reads
    ):
        # A document that decodes but no longer parses as a MapRequest
        # (e.g. written by a newer build) must not wedge the restart
        # loop: it is marked done and the rest still replays.
        journal._journal.append(
            {
                "t": "request.admitted",
                "request_id": "broken",
                "request": {"request_id": "broken", "reads": "nope"},
            },
            sync=True,
        )
        good = make_request(sim_reads, 0, 1)
        journal.admitted(good)

        assert replay_pending(journal, session) == 1
        assert journal.pending() == []
        with open(journal.replayed_path) as fh:
            docs = [json.loads(line) for line in fh]
        assert [d["request_id"] for d in docs] == [good.request_id]


class TestServerIntegration:
    CFG = dict(
        adaptive_batching=False, max_batch_reads=64, batch_timeout_ms=50.0
    )

    def test_restart_replays_crashed_requests(
        self, tmp_path, session, sim_reads
    ):
        jdir = str(tmp_path / "svc")
        orphan = make_request(sim_reads, 0, 2)
        staging = RequestJournal(jdir)
        staging.admitted(orphan)  # admitted, never answered: a "crash"
        staging.close()

        journal = RequestJournal(jdir)
        st = ServerThread(
            session, ServeConfig(**self.CFG), request_journal=journal
        )
        try:
            with st:
                # Replay ran before the socket opened.
                replayed = os.path.join(jdir, REPLAYED_NAME)
                with open(replayed) as fh:
                    docs = [json.loads(line) for line in fh]
                assert [d["request_id"] for d in docs] == [
                    orphan.request_id
                ]
                assert docs[0]["status"] == "ok"
                # Live traffic is journaled admitted->done.
                live = make_request(sim_reads, 2, 3)
                res = ServeClient(st.url).map(live)
                assert res.ok
        finally:
            journal.close()

        # Everything was answered: the next restart replays nothing.
        after = RequestJournal(jdir)
        try:
            assert after.pending() == []
        finally:
            after.close()
