"""End-to-end tests of the ``repro serve`` HTTP front-end.

A real :class:`~repro.serve.ServerThread` is bound to a loopback port
(port 0, OS-assigned) for each test; clients are real HTTP clients
(:class:`~repro.serve.ServeClient` over urllib), so these tests cover
the wire format, concurrency, coalescing, shedding, drain, and poison
isolation exactly as an external caller sees them.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.api import MapRequest, ServeConfig
from repro.core.alignment import to_paf
from repro.obs.counters import COUNTERS
from repro.serve import ServeClient, ServerThread
from repro.serve.client import ShedError


def serve_config(**changes):
    defaults = dict(
        adaptive_batching=False,
        max_batch_reads=64,
        batch_timeout_ms=200.0,
    )
    defaults.update(changes)
    return ServeConfig(**defaults)


def one_shot_paf(aligner, reads):
    """The one-shot CLI reference: read name -> sorted PAF lines."""
    results = api.map_reads(aligner, reads)
    return {
        read.name: sorted(to_paf(a) for a in alns)
        for read, alns in zip(reads, results)
    }


def served_paf(result):
    return {
        name: sorted(lines)
        for name, lines in zip(result.read_names, result.paf)
    }


class TestEndToEnd:
    def test_concurrent_clients_match_one_shot(
        self, session, aligner, sim_reads
    ):
        """The acceptance test: 8 concurrent clients, byte-identical
        PAF vs the one-shot path, with measured coalescing."""
        requests = [
            MapRequest.make(sim_reads[2 * i : 2 * i + 2], request_id=f"c{i}")
            for i in range(8)
        ]
        want = one_shot_paf(aligner, sim_reads)
        before = COUNTERS.totals()
        with ServerThread(session, serve_config()) as st:
            client = ServeClient(st.url)
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(client.map, requests))
        after = COUNTERS.totals()

        got = {}
        for req, res in zip(requests, results):
            assert res.ok, res.error
            assert res.request_id == req.request_id
            got.update(served_paf(res))
        assert got == {r.name: want[r.name] for r in sim_reads}

        admitted = after["serve.admitted"] - before.get("serve.admitted", 0)
        batches = after["serve.batches"] - before.get("serve.batches", 0)
        coalesced = after.get("serve.coalesced", 0) - before.get(
            "serve.coalesced", 0
        )
        assert admitted == 8
        assert batches < admitted  # requests actually shared batches
        assert coalesced >= 1
        assert all(r.batch_requests >= 1 for r in results)
        assert any(r.batch_requests > 1 for r in results)

    def test_sequential_requests_round_trip(self, session, sim_reads):
        with ServerThread(
            session, serve_config(batch_timeout_ms=10.0)
        ) as st:
            client = ServeClient(st.url)
            for i in range(3):
                req = MapRequest.make(sim_reads[i : i + 1])
                res = client.map(req)
                assert res.ok
                assert res.read_names == (sim_reads[i].name,)


class TestShedding:
    def test_queue_full_returns_429(self, session, sim_reads):
        cfg = serve_config(
            max_queue_requests=1,
            batch_timeout_ms=2000.0,
            max_batch_reads=64,
            min_batch_reads=4,
        )
        with ServerThread(session, cfg) as st:
            client = ServeClient(st.url)
            with ThreadPoolExecutor(max_workers=1) as pool:
                first = pool.submit(
                    client.map, MapRequest.make(sim_reads[0:1])
                )
                time.sleep(0.3)  # first request now occupies the queue
                with pytest.raises(ShedError) as exc:
                    client.map(MapRequest.make(sim_reads[1:2]))
                assert exc.value.status == 429
                assert first.result(timeout=10).ok

    def test_tenant_quota_returns_429(self, session, sim_reads):
        cfg = serve_config(tenant_quota=1, batch_timeout_ms=2000.0)
        with ServerThread(session, cfg) as st:
            client = ServeClient(st.url)
            with ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(
                    client.map,
                    MapRequest.make(sim_reads[0:1], tenant="greedy"),
                )
                time.sleep(0.3)
                with pytest.raises(ShedError) as exc:
                    client.map(MapRequest.make(sim_reads[1:2], tenant="greedy"))
                assert exc.value.status == 429
                # another tenant is admitted into the same window
                other = pool.submit(
                    client.map,
                    MapRequest.make(sim_reads[2:3], tenant="polite"),
                )
                assert first.result(timeout=10).ok
                assert other.result(timeout=10).ok

    def test_oversize_request_returns_400(self, session, sim_reads):
        cfg = serve_config(max_reads_per_request=2)
        with ServerThread(session, cfg) as st:
            client = ServeClient(st.url)
            with pytest.raises(Exception) as exc:
                client.map(MapRequest.make(sim_reads[0:3]))
            assert "max_reads_per_request" in str(exc.value)


class TestDrain:
    def test_draining_server_returns_503(self, session, sim_reads):
        with ServerThread(session, serve_config()) as st:
            client = ServeClient(st.url)
            st.server.queue.begin_drain()
            with pytest.raises(ShedError) as exc:
                client.map(MapRequest.make(sim_reads[0:1]))
            assert exc.value.status == 503

    def test_stop_flushes_queued_work_early(self, session, sim_reads):
        # A 5 s batch window would hold this lone request; graceful
        # drain flushes it as soon as stop() is called.
        cfg = serve_config(batch_timeout_ms=5000.0)
        st = ServerThread(session, cfg).start()
        client = ServeClient(st.url)
        t0 = time.monotonic()
        with ThreadPoolExecutor(max_workers=1) as pool:
            fut = pool.submit(client.map, MapRequest.make(sim_reads[0:1]))
            time.sleep(0.3)
            st.stop()
            res = fut.result(timeout=10)
        assert res.ok
        assert time.monotonic() - t0 < 4.0  # did not wait out the window


class TestPoison:
    def test_poison_request_400s_neighbor_succeeds(
        self, poison_session, session, aligner, sim_reads
    ):
        psession = poison_session({sim_reads[2].name})
        good = MapRequest.make(sim_reads[0:2], request_id="good")
        bad = MapRequest.make(sim_reads[2:4], request_id="bad")
        with ServerThread(
            psession, serve_config(batch_timeout_ms=500.0)
        ) as st:
            client = ServeClient(st.url)
            with ThreadPoolExecutor(max_workers=2) as pool:
                res_good, res_bad = list(pool.map(client.map, [good, bad]))

        assert not res_bad.ok  # arrived as HTTP 400, decoded to a result
        assert sim_reads[2].name in res_bad.error
        assert res_good.ok
        assert res_good.batch_requests == 2  # shared a batch with the poison
        assert served_paf(res_good) == {
            r.name: one_shot_paf(aligner, sim_reads)[r.name]
            for r in sim_reads[0:2]
        }


class TestHttpSurface:
    def test_obs_endpoints_on_serve_port(self, session, sim_reads):
        with ServerThread(
            session, serve_config(batch_timeout_ms=10.0)
        ) as st:
            client = ServeClient(st.url)
            assert client.healthy()
            res = client.map(MapRequest.make(sim_reads[0:2]))
            assert res.ok
            metrics = client.metrics()
            assert "manymap_serve_batches" in metrics
            status = client.status()
            assert status["record"] == "status"
            assert status["serve"].get("batches", 0) >= 1
            events = client.events(kind="serve.batch")
            assert events["events"], events

    def test_bad_requests(self, session):
        with ServerThread(
            session, serve_config(batch_timeout_ms=10.0)
        ) as st:
            url = st.url

            def post(path, body):
                req = urllib.request.Request(
                    url + path, data=body, method="POST"
                )
                try:
                    with urllib.request.urlopen(req, timeout=10) as resp:
                        return resp.status
                except urllib.error.HTTPError as exc:
                    return exc.code

            assert post("/map", b"this is not json") == 400
            assert post("/map", json.dumps({"reads": []}).encode()) == 400
            assert post("/nope", b"{}") == 404
            assert post("/map", b"") == 400  # no body
            req = urllib.request.Request(url + "/map", method="PUT")
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(req, timeout=10)
            assert exc.value.code == 405
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(url + "/missing", timeout=10)
            assert exc.value.code == 404

    def test_rejects_newer_api_version(self, session, sim_reads):
        with ServerThread(
            session, serve_config(batch_timeout_ms=10.0)
        ) as st:
            doc = MapRequest.make(sim_reads[0:1]).to_json()
            doc["api_version"] = api.API_VERSION + 1
            req = urllib.request.Request(
                st.url + "/map",
                data=json.dumps(doc).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(req, timeout=10)
            assert exc.value.code == 400
