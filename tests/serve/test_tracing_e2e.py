"""End-to-end tests of request-scoped tracing through the serve plane.

A real :class:`~repro.serve.ServerThread` with ``ServeConfig.tracing``
set, driven by real HTTP clients: every response must carry its
``trace_id``, ``GET /trace/<id>`` must return the consistent
root → admission → batch → kernel span tree, coalesced requests must
share (link to) one batch execution, tail-based sampling must keep the
deadline-expired trace while head-sampling out the fast clean ones —
and the mapped PAF must be byte-identical to a tracing-off run.
"""

from __future__ import annotations

import urllib.error
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import MapRequest, ServeConfig
from repro.errors import ServeError
from repro.obs.tracing import TRACER
from repro.serve import ServeClient, ServerThread
from repro.serve.client import RetryPolicy, ShedError


def serve_config(**changes):
    defaults = dict(
        adaptive_batching=False,
        max_batch_reads=64,
        batch_timeout_ms=200.0,
    )
    defaults.update(changes)
    return ServeConfig(**defaults)


def tracing_config(**changes):
    from repro.obs.tracing import TraceConfig

    defaults = dict(sample=1.0, slowest_pct=5.0)
    defaults.update(changes)
    return TraceConfig(**defaults)


def span_index(doc):
    spans = doc["spans"]
    by_id = {s["span_id"]: s for s in spans}
    children = {}
    for s in spans:
        children.setdefault(s["parent_id"], []).append(s)
    return by_id, children


class TestTracedServe:
    def test_concurrent_requests_trace_the_full_path(
        self, session, sim_reads
    ):
        """The acceptance test: 8 concurrent traced requests."""
        cfg = serve_config(tracing=tracing_config())
        requests = [
            MapRequest.make(sim_reads[2 * i : 2 * i + 2], request_id=f"t{i}")
            for i in range(8)
        ]
        with ServerThread(session, cfg) as st:
            client = ServeClient(st.url, trace=True)
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(client.map, requests))
            assert all(r.ok for r in results)
            # Every response names its trace.
            assert all(r.trace_id for r in results)
            assert len({r.trace_id for r in results}) == 8

            listing = client.traces(slowest=20)
            assert listing["summary"]["kept"] == 8
            kept_ids = {t["trace_id"] for t in listing["traces"]}
            assert kept_ids == {r.trace_id for r in results}
            # Slowest-first ordering.
            durs = [t["duration_ms"] for t in listing["traces"]]
            assert durs == sorted(durs, reverse=True)

            batch_links = []
            for res in results:
                doc = client.get_trace(res.trace_id)
                by_id, children = span_index(doc)
                names = [s["name"] for s in doc["spans"]]
                # One consistent tree: root -> admission + batch ->
                # session -> kernel spans.
                roots = [
                    s for s in doc["spans"]
                    if s["parent_id"] not in by_id
                ]
                assert [r["name"] for r in roots] == ["serve.request"]
                root = roots[0]
                kid_names = {
                    s["name"] for s in children.get(root["span_id"], [])
                }
                assert "admission.queue" in kid_names
                assert "serve.batch" in kid_names
                assert "session.map_batch" in names
                assert any(
                    n in ("kernel.bucket", "kernel.fallback")
                    for n in names
                )
                # kernel spans hang below the batch execution span.
                batch = next(
                    s for s in doc["spans"] if s["name"] == "serve.batch"
                )
                sess = next(
                    s
                    for s in doc["spans"]
                    if s["name"] == "session.map_batch"
                )
                assert sess["parent_id"] == batch["span_id"]
                kernels = [
                    s
                    for s in doc["spans"]
                    if s["name"].startswith("kernel.")
                ]
                assert kernels
                assert all(
                    k["parent_id"] == sess["span_id"] for k in kernels
                )
                bucket_attrs = [
                    k["attrs"]
                    for k in kernels
                    if k["name"] == "kernel.bucket"
                ]
                for attrs in bucket_attrs:
                    assert attrs["lanes"] >= 1
                    assert attrs["dp_cells"] > 0
                    assert 0.0 < attrs["occupancy_pct"] <= 100.0
                batch_links.append(batch["attrs"]["batch_span"])
            # Coalesced requests link to the *same* batch execution:
            # fewer distinct batch ids than requests, and the requests
            # in one batch agree on the link uid.
            assert len(set(batch_links)) < len(batch_links)

    def test_paf_identical_with_tracing_off(self, session, sim_reads):
        req = MapRequest.make(sim_reads[:4], request_id="same")
        with ServerThread(session, serve_config()) as st:
            plain = ServeClient(st.url).map(req)
        with ServerThread(
            session, serve_config(tracing=tracing_config())
        ) as st:
            traced = ServeClient(st.url, trace=True).map(req)
        assert plain.ok and traced.ok
        assert traced.paf == plain.paf
        assert traced.read_names == plain.read_names
        assert plain.trace_id == ""
        assert traced.trace_id

    def test_tail_sampling_keeps_deadline_drops_fast(
        self, session, sim_reads
    ):
        """sample=0, slowest_pct=0: clean fast traces are dropped;
        the deadline-expired one is retained at 100%."""
        cfg = serve_config(
            batch_timeout_ms=300.0,
            tracing=tracing_config(sample=0.0, slowest_pct=0.0),
        )
        with ServerThread(session, cfg) as st:
            client = ServeClient(st.url)
            with pytest.raises(ServeError) as err:
                client.map(MapRequest.make(sim_reads[:1], timeout_ms=20.0))
            assert "504" in str(err.value)
            fast = client.map(MapRequest.make(sim_reads[1:2]))
            assert fast.ok
            listing = client.traces(slowest=10)
        summary = listing["summary"]
        assert summary["started"] == 2
        assert summary["kept"] == 1
        assert summary["dropped"] == 1
        (kept,) = listing["traces"]
        assert kept["status"] == "deadline"
        # Only the deadline trace is fetchable; the fast clean one was
        # head-sampled out of the store.
        assert fast.trace_id not in {t["trace_id"] for t in listing["traces"]}

    def test_unsampled_response_still_carries_trace_id(
        self, session, sim_reads
    ):
        """Responses name their trace id even when the store drops the
        trace — the id is how a client correlates logs either way."""
        cfg = serve_config(
            tracing=tracing_config(sample=0.0, slowest_pct=0.0)
        )
        with ServerThread(session, cfg) as st:
            client = ServeClient(st.url)
            res = client.map(MapRequest.make(sim_reads[:1]))
            assert res.ok
            assert res.trace_id
            with pytest.raises(urllib.error.HTTPError) as err:
                client.get_trace(res.trace_id)
            assert err.value.code == 404

    def test_tracer_disabled_after_shutdown(self, session, sim_reads):
        cfg = serve_config(tracing=tracing_config())
        with ServerThread(session, cfg) as st:
            ServeClient(st.url, trace=True).map(
                MapRequest.make(sim_reads[:1])
            )
            assert TRACER.enabled
        assert not TRACER.enabled

    def test_shed_trace_is_kept(self, session, sim_reads):
        cfg = serve_config(
            max_queue_requests=1,
            batch_timeout_ms=1000.0,
            tracing=tracing_config(sample=0.0, slowest_pct=0.0),
        )
        with ServerThread(session, cfg) as st:
            client = ServeClient(st.url)
            with ThreadPoolExecutor(max_workers=1) as pool:
                first = pool.submit(
                    client.map, MapRequest.make(sim_reads[0:1])
                )
                import time

                time.sleep(0.3)
                with pytest.raises(ShedError):
                    client.map(MapRequest.make(sim_reads[1:2]))
                assert first.result(timeout=10).ok
            listing = client.traces(slowest=10)
        statuses = [t["status"] for t in listing["traces"]]
        assert statuses == ["shed"]


class TestClientTracePropagation:
    def test_retries_share_trace_id_with_fresh_span_ids(self, sim_reads):
        """Satellite: retrying attempts are one logical trace — same
        trace_id, new span_id per attempt."""
        seen = []

        client = ServeClient(
            "http://127.0.0.1:1",  # never dialed; _map_once is stubbed
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            sleep=lambda s: None,
            trace=True,
        )

        def fake_map_once(request):
            seen.append(request.trace)
            if len(seen) < 3:
                raise ShedError(503, "draining")
            from repro.api import MapResult

            return MapResult(request_id=request.request_id, status="ok")

        client._map_once = fake_map_once
        result = client.map(
            MapRequest.make(sim_reads[:1], request_id="r")
        )
        assert result.ok
        assert client.last_attempts == 3
        assert len(seen) == 3
        assert all(ctx is not None for ctx in seen)
        assert len({ctx.trace_id for ctx in seen}) == 1
        assert len({ctx.span_id for ctx in seen}) == 3

    def test_caller_context_honored_verbatim_first_attempt(
        self, sim_reads
    ):
        from repro.obs.tracing import TraceContext

        client = ServeClient("http://127.0.0.1:1", trace=True)
        ctx = TraceContext("mine", "root-span", sampled=False)
        got = client._with_trace(
            MapRequest.make(sim_reads[:1], trace=ctx), attempt=1
        )
        assert got.trace is ctx

    def test_trace_disabled_leaves_request_alone(self, sim_reads):
        client = ServeClient("http://127.0.0.1:1")
        req = MapRequest.make(sim_reads[:1])
        assert client._with_trace(req, attempt=1) is req
        assert req.trace is None
