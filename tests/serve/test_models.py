"""The versioned request/response wire model: MapRequest / MapResult /
ServeConfig round trips, validation, and version gating."""

from __future__ import annotations

import pytest

from repro.api import (
    API_VERSION,
    MapRequest,
    MapResult,
    ServeConfig,
)
from repro.errors import ParseError, SchedulerError
from repro.seq.records import SeqRecord


def reads(n=2, length=40):
    return [
        SeqRecord.from_str(f"r{i}", "ACGT" * (length // 4)) for i in range(n)
    ]


class TestMapRequest:
    def test_make_generates_id(self):
        req = MapRequest.make(reads())
        assert req.request_id
        assert req.tenant == "default"
        assert req.n_reads == 2
        assert req.total_bases == 80
        assert req.api_version == API_VERSION

    def test_json_round_trip(self):
        req = MapRequest.make(
            reads(3), request_id="abc", tenant="team-a", on_error="skip"
        )
        back = MapRequest.from_json(req.to_json())
        assert back.request_id == "abc"
        assert back.tenant == "team-a"
        assert back.on_error == "skip"
        assert [r.name for r in back.reads] == [r.name for r in req.reads]
        assert [r.seq for r in back.reads] == [r.seq for r in req.reads]

    def test_frozen(self):
        req = MapRequest.make(reads())
        with pytest.raises(Exception):
            req.tenant = "other"  # type: ignore[misc]

    @pytest.mark.parametrize(
        "doc",
        [
            "not a dict",
            {},
            {"reads": []},
            {"reads": "nope"},
            {"reads": [{"name": "r0"}]},  # missing seq
            {"reads": [{"name": "r0", "seq": ""}]},
            {"reads": [{"name": "r0", "seq": "XYZ!!"}]},  # bad alphabet
        ],
    )
    def test_from_json_rejects_garbage(self, doc):
        with pytest.raises(ParseError):
            MapRequest.from_json(doc)

    def test_from_json_rejects_newer_version(self):
        doc = MapRequest.make(reads()).to_json()
        doc["api_version"] = API_VERSION + 1
        with pytest.raises(ParseError, match="newer"):
            MapRequest.from_json(doc)

    def test_validated_rejects_bad_on_error(self):
        with pytest.raises(ParseError, match="on_error"):
            MapRequest.make(reads(), on_error="explode")

    def test_validated_rejects_empty_reads(self):
        with pytest.raises(ParseError, match="no reads"):
            MapRequest(request_id="x", reads=()).validated()


class TestMapResult:
    def test_round_trip(self):
        res = MapResult(
            request_id="abc",
            read_names=("r0", "r1"),
            paf=(("line0a", "line0b"), ()),
            quarantined=("r1",),
            batch_id=7,
            batch_requests=3,
            queue_ms=1.5,
            map_ms=20.0,
            total_ms=22.5,
        )
        back = MapResult.from_json(res.to_json())
        assert back == res
        assert back.ok
        assert back.paf_lines() == ["line0a", "line0b"]

    def test_error_result(self):
        res = MapResult(request_id="abc", status="error", error="boom")
        assert not res.ok
        assert MapResult.from_json(res.to_json()).error == "boom"

    def test_from_json_rejects_non_result(self):
        with pytest.raises(ParseError):
            MapResult.from_json({"record": "something_else"})


class TestServeConfig:
    def test_defaults_validate(self):
        cfg = ServeConfig().validated()
        assert cfg.port == 0
        assert cfg.min_batch_reads <= cfg.max_batch_reads

    def test_replace(self):
        cfg = ServeConfig().replace(max_batch_reads=128)
        assert cfg.max_batch_reads == 128
        assert ServeConfig().max_batch_reads == 64

    @pytest.mark.parametrize(
        "changes",
        [
            {"port": -1},
            {"port": 70000},
            {"max_batch_reads": 0},
            {"min_batch_reads": 0},
            {"min_batch_reads": 99, "max_batch_reads": 8},
            {"batch_timeout_ms": 0},
            {"latency_target_ms": -5},
            {"max_queue_requests": 0},
            {"tenant_quota": 0},
            {"batch_workers": 0},
            {"drain_timeout_s": -1},
        ],
    )
    def test_validated_bounds(self, changes):
        with pytest.raises(SchedulerError):
            ServeConfig(**changes).validated()

    def test_to_json_is_plain(self):
        doc = ServeConfig().to_json()
        assert doc["max_batch_reads"] == 64
        assert doc["host"] == "127.0.0.1"
