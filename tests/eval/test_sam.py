"""Tests for SAM parsing and the SAM↔Alignment round trip."""

import pytest

from repro.core.aligner import Aligner
from repro.core.alignment import sam_header, to_sam
from repro.errors import ParseError
from repro.eval.sam import parse_sam, parse_sam_line
from repro.seq.records import SeqRecord
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator


class TestParseLine:
    LINE = "r1\t0\tchr1\t101\t60\t5S90M5S\t*\t0\t0\t" + "A" * 100 + "\t*\tAS:i:150\tNM:i:7"

    def test_fields(self):
        rec = parse_sam_line(self.LINE)
        assert rec.qname == "r1"
        assert rec.pos == 101 and rec.mapq == 60
        assert str(rec.cigar) == "5S90M5S"
        assert rec.tags["AS"] == 150 and rec.tags["NM"] == 7
        assert not rec.is_reverse and not rec.is_secondary

    def test_flags(self):
        rec = parse_sam_line(self.LINE.replace("\t0\t", "\t272\t", 1))
        assert rec.is_reverse and rec.is_secondary

    def test_header_rejected(self):
        with pytest.raises(ParseError):
            parse_sam_line("@HD\tVN:1.6")

    def test_short_line_rejected(self):
        with pytest.raises(ParseError):
            parse_sam_line("a\tb\tc")

    def test_star_cigar(self):
        rec = parse_sam_line(self.LINE.replace("5S90M5S", "*"))
        assert rec.cigar is None
        with pytest.raises(ParseError):
            rec.to_alignment()

    def test_to_alignment_forward(self):
        a = parse_sam_line(self.LINE).to_alignment(tlen=1000)
        assert (a.qstart, a.qend, a.qlen) == (5, 95, 100)
        assert (a.tstart, a.tend) == (100, 190)
        assert a.n_match == 90 - 7

    def test_to_alignment_reverse_clips_flip(self):
        line = self.LINE.replace("\t0\t", "\t16\t", 1).replace("5S90M5S", "3S90M7S")
        a = parse_sam_line(line).to_alignment()
        # leading clip (3) is the END of the original read.
        assert (a.qstart, a.qend) == (7, 97)
        assert a.strand == -1


class TestStream:
    def test_header_and_records(self):
        text = (
            sam_header(["chr1"], [500])
            + "\nr1\t0\tchr1\t1\t60\t10M\t*\t0\t0\tACGTACGTAC\t*\n"
        )
        refs, records = parse_sam(text.splitlines())
        assert refs == {"chr1": 500}
        assert len(records) == 1


class TestRoundTrip:
    def test_sam_roundtrip_through_aligner(self, small_genome):
        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.length_model = LengthModel(mean=900.0, sigma=0.25, max_length=1500)
        reads = sim.simulate(5, seed=91)
        aligner = Aligner(small_genome, preset="test")
        for read in reads:
            for orig in aligner.map_read(read):
                line = to_sam(orig, read)
                back = parse_sam_line(line).to_alignment(tlen=orig.tlen)
                assert back.qname == orig.qname
                assert (back.tstart, back.tend) == (orig.tstart, orig.tend)
                assert (back.qstart, back.qend) == (orig.qstart, orig.qend)
                assert back.strand == orig.strand
                assert back.score == orig.score
