"""Tests for memory accounting (eval/resources)."""

import sys

from repro.eval.resources import _maxrss_to_bytes, measure_ram, peak_rss_bytes


class TestMaxRssUnits:
    def test_linux_reports_kilobytes(self):
        assert _maxrss_to_bytes(2048, "linux") == 2048 * 1024

    def test_macos_reports_bytes(self):
        assert _maxrss_to_bytes(2048, "darwin") == 2048

    def test_bsd_treated_as_kilobytes(self):
        assert _maxrss_to_bytes(10, "freebsd13") == 10 * 1024

    def test_peak_rss_is_plausible_for_this_platform(self):
        rss = peak_rss_bytes()
        # A live CPython process occupies at least a few MB but not TBs;
        # a unit mix-up (kB-as-bytes or bytes-as-kB) lands outside this.
        assert 2 * 1024 * 1024 < rss < 1 << 42
        raw = rss if sys.platform == "darwin" else rss // 1024
        assert raw > 0


class TestMeasureRam:
    def test_tracks_allocations(self):
        with measure_ram() as stats:
            blob = bytearray(4 * 1024 * 1024)
        assert stats["peak"] >= 4 * 1024 * 1024
        del blob
