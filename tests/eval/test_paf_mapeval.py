"""Tests for PAF parsing and the mapeval accuracy curve."""

import pytest

from repro.core.alignment import Alignment, to_paf
from repro.errors import ParseError
from repro.eval.paf import MapevalRow, mapeval, parse_paf, parse_paf_line
from repro.align.cigar import Cigar


def make_aln(name="r1", mapq=60, tstart=100, tend=200, primary=True):
    return Alignment(
        qname=name, qlen=120, qstart=0, qend=100, strand=1,
        tname="chr1", tlen=1000, tstart=tstart, tend=tend,
        n_match=95, block_len=100, mapq=mapq, score=180,
        cigar=Cigar.from_string("100M"), is_primary=primary,
    )


class TestParse:
    def test_roundtrip(self):
        a = make_aln()
        b = parse_paf_line(to_paf(a))
        assert (b.qname, b.qlen, b.qstart, b.qend) == (a.qname, a.qlen, a.qstart, a.qend)
        assert (b.tname, b.tstart, b.tend, b.mapq) == (a.tname, a.tstart, a.tend, a.mapq)
        assert b.score == a.score
        assert str(b.cigar) == str(a.cigar)
        assert b.is_primary == a.is_primary

    def test_reverse_strand(self):
        a = make_aln()
        a.strand = -1
        assert parse_paf_line(to_paf(a)).strand == -1

    def test_secondary_tag(self):
        a = make_aln(primary=False)
        assert not parse_paf_line(to_paf(a)).is_primary

    def test_too_few_fields_raises(self):
        with pytest.raises(ParseError):
            parse_paf_line("a\tb\tc")

    def test_bad_strand_raises(self):
        line = to_paf(make_aln()).split("\t")
        line[4] = "?"
        with pytest.raises(ParseError):
            parse_paf_line("\t".join(line))

    def test_non_numeric_raises(self):
        line = to_paf(make_aln()).split("\t")
        line[1] = "xyz"
        with pytest.raises(ParseError):
            parse_paf_line("\t".join(line))

    def test_parse_stream_skips_blanks(self):
        text = to_paf(make_aln()) + "\n\n" + to_paf(make_aln(name="r2")) + "\n"
        alns = parse_paf(text.splitlines())
        assert [a.qname for a in alns] == ["r1", "r2"]


class TestMapeval:
    def _truths(self):
        return {
            "good60": ("chr1", 100, 200),
            "good30": ("chr1", 400, 500),
            "bad30": ("chr2", 0, 100),  # aligned to the wrong chromosome
            "good10": ("chr1", 700, 800),
        }

    def _alns(self):
        return [
            make_aln("good60", mapq=60, tstart=100, tend=200),
            make_aln("good30", mapq=30, tstart=400, tend=500),
            make_aln("bad30", mapq=30, tstart=100, tend=200),
            make_aln("good10", mapq=10, tstart=700, tend=800),
        ]

    def test_curve(self):
        rows = mapeval(self._alns(), self._truths(), n_reads=5)
        assert [r.mapq for r in rows] == [60, 30, 10]
        assert rows[0].cum_error_rate == 0.0
        assert rows[1].n_mapped == 3 and rows[1].n_wrong == 1
        assert rows[1].cum_error_rate == pytest.approx(1 / 3)
        assert rows[2].cum_mapped_frac == pytest.approx(4 / 5)

    def test_error_rate_monotone_pattern(self):
        """Higher MAPQ thresholds must not have higher error rates here."""
        rows = mapeval(self._alns(), self._truths(), n_reads=5)
        assert rows[0].cum_error_rate <= rows[-1].cum_error_rate + 1e-12

    def test_secondary_ignored(self):
        alns = self._alns() + [make_aln("good60", mapq=0, primary=False, tstart=900, tend=950)]
        rows = mapeval(alns, self._truths(), n_reads=5)
        assert rows[-1].n_mapped == 4

    def test_missing_truth_raises(self):
        with pytest.raises(ValueError):
            mapeval([make_aln("mystery")], {}, n_reads=1)

    def test_bad_n_reads(self):
        with pytest.raises(ValueError):
            mapeval([], {}, n_reads=0)

    def test_end_to_end_curve(self, small_genome):
        from repro.core.aligner import Aligner
        from repro.sim.lengths import LengthModel
        from repro.sim.pbsim import ReadSimulator

        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.length_model = LengthModel(mean=900.0, sigma=0.25, max_length=1600)
        reads = sim.simulate(10, seed=61)
        al = Aligner(small_genome, preset="test")
        alns = [a for r in reads for a in al.map_read(r, with_cigar=False)]
        truths = {
            r.name: (r.meta["truth"].chrom, r.meta["truth"].start, r.meta["truth"].end)
            for r in reads
        }
        rows = mapeval(alns, truths, n_reads=len(reads))
        assert rows
        assert rows[-1].cum_mapped_frac >= 0.8
        assert rows[0].cum_error_rate <= 0.2
