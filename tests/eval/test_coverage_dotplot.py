"""Tests for coverage statistics and ASCII dotplots."""

import numpy as np
import pytest

from repro.align.cigar import Cigar
from repro.core.alignment import Alignment
from repro.eval.coverage import coverage_stats, depth_vector
from repro.eval.dotplot import chain_dotplot, dotplot
from repro.chain.chain import Chain


def aln(tstart, tend, name="chr1", primary=True):
    return Alignment(
        qname="r", qlen=tend - tstart, qstart=0, qend=tend - tstart, strand=1,
        tname=name, tlen=1000, tstart=tstart, tend=tend,
        n_match=tend - tstart, block_len=tend - tstart, mapq=60, score=10,
    )


class TestCoverage:
    def test_single_alignment(self):
        depth = depth_vector([aln(10, 20)], "chr1", 100)
        assert depth[9] == 0 and depth[10] == 1 and depth[19] == 1 and depth[20] == 0

    def test_overlap_stacks(self):
        depth = depth_vector([aln(0, 50), aln(25, 75)], "chr1", 100)
        assert depth[30] == 2
        assert depth[10] == 1 and depth[60] == 1

    def test_secondary_and_other_refs_ignored(self):
        secondary = aln(0, 50)
        secondary.is_primary = False
        other = aln(0, 50, name="chr2")
        depth = depth_vector([secondary, other], "chr1", 100)
        assert depth.max() == 0

    def test_clamps_out_of_range(self):
        a = aln(900, 1200)
        depth = depth_vector([a], "chr1", 1000)
        assert depth[950] == 1 and depth.size == 1000

    def test_stats(self):
        stats = coverage_stats([aln(0, 50)], ["chr1"], [100])
        s = stats[0]
        assert s.mean_depth == pytest.approx(0.5)
        assert s.max_depth == 1
        assert s.covered_fraction == pytest.approx(0.5)
        assert "chr1" in s.render()

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            depth_vector([], "chr1", 0)
        with pytest.raises(ValueError):
            coverage_stats([], ["a"], [1, 2])

    def test_simulated_coverage_close_to_expected(self, small_genome):
        from repro.core.aligner import Aligner
        from repro.sim.lengths import LengthModel
        from repro.sim.pbsim import ReadSimulator

        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.length_model = LengthModel(mean=1200.0, sigma=0.2, max_length=2000)
        reads = sim.simulate(30, seed=81)
        al = Aligner(small_genome, preset="test")
        alns = [a for r in reads for a in al.map_read(r, with_cigar=False)]
        stats = coverage_stats(
            alns, small_genome.names, [len(c) for c in small_genome]
        )[0]
        expected = reads.total_bases / small_genome.total_length
        assert abs(stats.mean_depth - expected) / expected < 0.25


class TestDotplot:
    def test_forward_diagonal(self):
        t = np.arange(0, 1000, 10)
        q = np.arange(0, 1000, 10)
        out = dotplot(t, q, width=20, height=10)
        assert "." in out and "x" not in out

    def test_reverse_marked(self):
        t = np.arange(0, 100, 5)
        q = np.arange(0, 100, 5)
        out = dotplot(t, q, strand=np.ones(t.size), width=20, height=10)
        assert "x" in out and "." not in out.replace("..", "")

    def test_mixed_cell_star(self):
        t = np.array([0, 0])
        q = np.array([0, 0])
        out = dotplot(t, q, strand=np.array([0, 1]), width=5, height=5)
        assert "*" in out

    def test_empty(self):
        assert dotplot(np.empty(0), np.empty(0)) == "(no anchors)"

    def test_small_grid_raises(self):
        with pytest.raises(ValueError):
            dotplot(np.array([1]), np.array([1]), width=1, height=1)

    def test_chain_dotplot(self):
        chain = Chain(rid=0, strand=0, score=100,
                      anchors=[(i * 10, i * 10) for i in range(20)])
        out = chain_dotplot(chain, width=30, height=12)
        assert out.count("\n") == 13
