"""Tests for PAF/SAM output, presets, profiling, and the batch driver."""

import io

import numpy as np
import pytest

from repro.align.cigar import Cigar
from repro.core.alignment import Alignment, sam_header, to_paf, to_sam
from repro.core.aligner import Aligner
from repro.core.driver import BatchDriver
from repro.core.presets import PRESETS, get_preset
from repro.core.profiling import STAGES, PipelineProfile
from repro.errors import ReproError
from repro.index.store import save_index
from repro.seq.records import ReadSet, SeqRecord
from repro.sim.pbsim import ReadSimulator
from repro.sim.lengths import LengthModel


def make_aln(**kw):
    base = dict(
        qname="r1",
        qlen=100,
        qstart=5,
        qend=95,
        strand=1,
        tname="chr1",
        tlen=1000,
        tstart=200,
        tend=290,
        n_match=85,
        block_len=92,
        mapq=60,
        score=150,
        cigar=Cigar.from_string("90M"),
    )
    base.update(kw)
    return Alignment(**base)


class TestPaf:
    def test_fields(self):
        line = to_paf(make_aln())
        f = line.split("\t")
        assert f[:12] == [
            "r1", "100", "5", "95", "+", "chr1", "1000", "200", "290", "85", "92", "60",
        ]
        assert "tp:A:P" in f and "AS:i:150" in f and "cg:Z:90M" in f

    def test_reverse_strand_sign(self):
        assert to_paf(make_aln(strand=-1)).split("\t")[4] == "-"

    def test_secondary_tag(self):
        assert "tp:A:S" in to_paf(make_aln(is_primary=False))

    def test_no_cigar(self):
        assert "cg:Z" not in to_paf(make_aln(cigar=None))

    def test_identity(self):
        assert make_aln().identity == pytest.approx(85 / 92)


class TestSam:
    def test_header(self):
        h = sam_header(["chr1", "chr2"], [100, 200])
        assert "@SQ\tSN:chr1\tLN:100" in h
        assert h.startswith("@HD")

    def test_forward_line(self):
        read = SeqRecord.from_str("r1", "A" * 100)
        f = to_sam(make_aln(), read).split("\t")
        assert f[1] == "0"
        assert f[3] == "201"  # 1-based
        assert f[5] == "5S90M5S"
        assert len(f[9]) == 100

    def test_reverse_flag_and_seq(self):
        read = SeqRecord.from_str("r1", "ACGT" * 25)
        f = to_sam(make_aln(strand=-1), read).split("\t")
        assert int(f[1]) & 16
        # Sequence emitted reverse-complemented.
        assert f[9] == "ACGT" * 25  # ACGT is its own revcomp pattern here

    def test_secondary_flag(self):
        read = SeqRecord.from_str("r1", "A" * 100)
        f = to_sam(make_aln(is_primary=False), read).split("\t")
        assert int(f[1]) & 256

    def test_clip_symmetry_reverse(self):
        read = SeqRecord.from_str("r1", "A" * 100)
        f = to_sam(make_aln(strand=-1), read).split("\t")
        # qstart=5 on original orientation becomes the trailing clip.
        assert f[5] == "5S90M5S"  # symmetric here; both clips 5


class TestProfile:
    def test_stage_accumulation(self):
        p = PipelineProfile(label="x")
        p.add("Align", 3.0)
        p.add("Seed & Chain", 1.0)
        assert p.total == 4.0
        assert p.percentage("Align") == 75.0

    def test_unknown_stage_recorded(self):
        """Extra stage keys (e.g. a worker's "Serialize") merge cleanly."""
        p = PipelineProfile()
        p.add("Align", 3.0)
        p.merge({"Serialize": 1.0, "Align": 1.0})
        assert p.seconds("Serialize") == 1.0
        assert p.seconds("Align") == 4.0
        assert p.extra_stages() == ["Serialize"]
        # Canonical stages first, extras after.
        assert [r[0] for r in p.rows()] == STAGES + ["Serialize"]
        assert "Serialize" in p.render()
        out = PipelineProfile.compare({"a": p, "b": PipelineProfile()})
        assert "Serialize" in out

    def test_rows_in_canonical_order(self):
        p = PipelineProfile()
        p.add("Output", 1.0)
        p.add("Load Index", 2.0)
        assert [r[0] for r in p.rows()] == STAGES

    def test_empty_profile_renders_zero_percent(self):
        """A run that did nothing must not claim Total 100.00%."""
        p = PipelineProfile(label="idle")
        assert p.percentage("Align") == 0.0
        out = p.render()
        assert "100.00" not in out
        assert out.splitlines()[-1].endswith("0.00")

    def test_zero_total_stage_timer_renders_zero_percent(self):
        from repro.utils.timers import StageTimer

        t = StageTimer()
        t.add("Align", 0.0)
        assert t.breakdown() == [("Align", 0.0, 0.0)]
        assert "100.00" not in t.render()

    def test_render_and_compare(self):
        p1 = PipelineProfile(label="CPU")
        p1.add("Align", 2.0)
        p2 = PipelineProfile(label="KNL")
        p2.add("Align", 6.0)
        out = PipelineProfile.compare({"CPU": p1, "KNL": p2})
        assert "Align" in out and "CPU" in out


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) >= {"map-pb", "map-ont", "test"}
        assert get_preset("map-pb").scoring.mismatch == 5

    def test_unknown_raises(self):
        with pytest.raises(ReproError):
            get_preset("map-hifi")

    def test_with_overrides(self):
        p = get_preset("map-pb").with_overrides(k=13)
        assert p.k == 13 and get_preset("map-pb").k == 15


class TestDriver:
    @pytest.fixture(scope="class")
    def reads(self, small_genome):
        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.length_model = LengthModel(mean=800.0, sigma=0.2, max_length=1500)
        return sim.simulate(4, seed=5)

    def test_run_and_stage_times(self, small_genome, reads):
        driver = BatchDriver(Aligner(small_genome, preset="test"))
        out = io.StringIO()
        results = driver.run(reads, output=out)
        assert len(results) == 4
        assert driver.n_mapped(results) >= 3
        assert driver.profile.seconds("Align") > 0
        assert driver.profile.seconds("Seed & Chain") > 0
        assert out.getvalue().count("\n") >= 3

    def test_align_dominates_runtime(self, small_genome, reads):
        """The paper's profiling premise: Align is the bottleneck stage."""
        driver = BatchDriver(Aligner(small_genome, preset="test"))
        driver.run(reads)
        p = driver.profile
        assert p.seconds("Align") > p.seconds("Seed & Chain")

    def test_from_index_file(self, small_genome, reads, tmp_path):
        preset = get_preset("test")
        from repro.index.index import build_index

        idx = build_index(small_genome, k=preset.k, w=preset.w)
        path = tmp_path / "ref.mmi"
        save_index(idx, path)
        for mode in ("buffered", "mmap"):
            driver = BatchDriver.from_index_file(
                small_genome, path, load_mode=mode, preset="test"
            )
            assert driver.profile.seconds("Load Index") > 0
            results = driver.run(list(reads)[:2])
            assert len(results) == 2

    def test_load_reads_from_readset(self, small_genome, reads):
        driver = BatchDriver(Aligner(small_genome, preset="test"))
        rs = driver.load_reads(reads)
        assert isinstance(rs, ReadSet)
        assert driver.profile.seconds("Load Query") >= 0
