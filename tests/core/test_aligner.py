"""End-to-end tests for the Aligner (seed–chain–extend pipeline)."""

import numpy as np
import pytest

from repro.align.scoring import MAP_PB
from repro.core.aligner import Aligner, MappingPlan
from repro.core.presets import get_preset
from repro.errors import AlignmentError, ReproError
from repro.index.index import build_index
from repro.seq.alphabet import revcomp_codes
from repro.seq.records import SeqRecord
from repro.sim.errors import CLEAN, PACBIO_CLR
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator, simulate_reads


@pytest.fixture(scope="module")
def aligner(small_genome):
    return Aligner(small_genome, preset="test", engine="manymap")


@pytest.fixture(scope="module")
def pb_reads(small_genome):
    sim = ReadSimulator.preset(small_genome, "pacbio")
    sim.length_model = LengthModel(mean=1500.0, sigma=0.3, max_length=3000)
    return sim.simulate(12, seed=42)


class TestMapping:
    def test_maps_to_true_origin(self, aligner, pb_reads):
        correct = 0
        for read in pb_reads:
            alns = aligner.map_read(read)
            truth = read.meta["truth"]
            if alns and alns[0].overlaps_truth(truth.chrom, truth.start, truth.end):
                correct += 1
        assert correct >= 11  # >90% of noisy PacBio reads map correctly

    def test_strand_recovered(self, aligner, small_genome):
        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.length_model = LengthModel(mean=1200.0, sigma=0.2, max_length=2500)
        reads = sim.simulate(10, seed=7)
        for read in reads:
            alns = aligner.map_read(read, with_cigar=False)
            if not alns:
                continue
            assert alns[0].strand == read.meta["truth"].strand

    def test_clean_read_full_identity(self, aligner, small_genome):
        codes = small_genome.fetch("chr1", 3000, 4500)
        read = SeqRecord("clean", codes.copy())
        alns = aligner.map_read(read)
        assert alns
        a = alns[0]
        assert a.tstart == 3000 and a.tend == 4500
        assert a.qstart == 0 and a.qend == 1500
        assert a.identity == 1.0
        assert str(a.cigar) == "1500M"
        assert a.score == 1500 * MAP_PB.match

    def test_cigar_spans_match_intervals(self, aligner, pb_reads):
        for read in pb_reads:
            for a in aligner.map_read(read):
                assert a.cigar.query_span == a.qend - a.qstart
                assert a.cigar.target_span == a.tend - a.tstart

    def test_reverse_strand_coordinates(self, aligner, small_genome):
        codes = revcomp_codes(small_genome.fetch("chr1", 10_000, 11_000))
        read = SeqRecord("rc", codes.copy())
        alns = aligner.map_read(read)
        assert alns
        a = alns[0]
        assert a.strand == -1
        assert a.tstart == 10_000 and a.tend == 11_000
        assert a.qstart == 0 and a.qend == 1000

    def test_unmappable_read_returns_empty(self, aligner, rng):
        junk = SeqRecord("junk", rng.integers(0, 4, 800).astype(np.uint8))
        assert aligner.map_read(junk) == []

    def test_without_cigar(self, aligner, small_genome):
        codes = small_genome.fetch("chr1", 2000, 3000)
        alns = aligner.map_read(SeqRecord("x", codes.copy()), with_cigar=False)
        assert alns and alns[0].cigar is None

    def test_map_batch(self, aligner, pb_reads):
        batch = aligner.map_batch(list(pb_reads)[:3])
        assert len(batch) == 3

    def test_mapq_positive_for_unique_hits(self, aligner, small_genome):
        codes = small_genome.fetch("chr1", 20_000, 22_000)
        alns = aligner.map_read(SeqRecord("u", codes.copy()))
        assert alns[0].mapq >= 30


class TestPhases:
    def test_seed_and_chain_plan(self, aligner, small_genome):
        codes = small_genome.fetch("chr1", 5000, 6500)
        plan = aligner.seed_and_chain(SeqRecord("p", codes.copy()))
        assert isinstance(plan, MappingPlan)
        assert plan.mapped
        assert plan.primary[0].rid == 0

    def test_align_plan_equals_map_read(self, aligner, pb_reads):
        read = pb_reads[0]
        plan = aligner.seed_and_chain(read)
        a1 = aligner.align_plan(read, plan)
        a2 = aligner.map_read(read)
        assert [(x.tstart, x.tend, x.score) for x in a1] == [
            (x.tstart, x.tend, x.score) for x in a2
        ]

    def test_empty_plan(self, aligner, rng):
        junk = SeqRecord("j", rng.integers(0, 4, 500).astype(np.uint8))
        plan = aligner.seed_and_chain(junk)
        assert not plan.mapped
        assert aligner.align_plan(junk, plan) == []


class TestEngineEquivalenceEndToEnd:
    """manymap and mm2 engines must produce identical alignments (§5.3.3)."""

    def test_identical_alignments(self, small_genome, pb_reads):
        a_mm2 = Aligner(small_genome, preset="test", engine="mm2")
        a_many = Aligner(small_genome, preset="test", engine="manymap")
        for read in list(pb_reads)[:5]:
            r1 = a_mm2.map_read(read)
            r2 = a_many.map_read(read)
            assert [(x.tstart, x.tend, x.score, str(x.cigar)) for x in r1] == [
                (x.tstart, x.tend, x.score, str(x.cigar)) for x in r2
            ]


class TestConstruction:
    def test_reuse_index(self, small_genome):
        preset = get_preset("test")
        idx = build_index(small_genome, k=preset.k, w=preset.w)
        al = Aligner(small_genome, preset="test", index=idx)
        assert al.index is idx

    def test_mismatched_index_raises(self, small_genome):
        idx = build_index(small_genome, k=11, w=3)
        with pytest.raises(AlignmentError):
            Aligner(small_genome, preset="test", index=idx)

    def test_unknown_preset_raises(self, small_genome):
        with pytest.raises(ReproError):
            Aligner(small_genome, preset="map-zx")

    def test_multi_chromosome(self, multi_genome):
        al = Aligner(multi_genome, preset="test")
        codes = multi_genome.chromosomes[2].codes[1000:2200]
        alns = al.map_read(SeqRecord("m", codes.copy()))
        assert alns and alns[0].tname == multi_genome.names[2]
