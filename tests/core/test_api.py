"""The public mapping API: surface snapshot, options, sessions.

``repro.api`` is the stable contract — these tests pin its exact
surface (names and signatures) so any change is deliberate, verify the
one-shot facade functions are true thin clients of
:class:`~repro.api.MappingSession`, and prove the PR-3 deprecation
shims are gone for good.
"""

from __future__ import annotations

import inspect
import io

import pytest

import repro
from repro import api
from repro.api import MapOptions, MappingSession
from repro.core.aligner import Aligner
from repro.core.alignment import to_paf
from repro.core.driver import ParallelDriver
from repro.errors import ReproError, SchedulerError
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator


@pytest.fixture(scope="module")
def setup(small_genome):
    sim = ReadSimulator.preset(small_genome, "pacbio")
    sim.length_model = LengthModel(mean=500.0, sigma=0.4, max_length=1000)
    reads = list(sim.simulate(6, seed=13))
    return Aligner(small_genome, preset="test"), reads


def paf(results):
    return [to_paf(a) for alns in results for a in alns]


def skeleton(fn) -> str:
    """A signature with annotations stripped: name/default shape only."""
    return str(
        inspect.Signature(
            [
                p.replace(annotation=inspect.Parameter.empty)
                for p in inspect.signature(fn).parameters.values()
            ]
        )
    )


class TestSurfaceSnapshot:
    """Changing anything here is an API break — do it on purpose."""

    def test_public_names(self):
        assert api.__all__ == [
            "API_VERSION",
            "MapOptions",
            "MapRequest",
            "MapResult",
            "MappingSession",
            "ServeConfig",
            "StreamStats",
            "open_index",
            "map_reads",
            "map_file",
        ]

    def test_api_version(self):
        assert api.API_VERSION == 1

    def test_reexported_from_package_root(self):
        for name in api.__all__:
            assert getattr(repro, name) is getattr(api, name), name
            assert name in repro.__all__

    def test_signatures(self):
        snapshot = {
            "open_index": (
                "(reference, index_path=None, *, preset='map-pb', "
                "engine='manymap', load_mode='mmap')"
            ),
            "map_reads": (
                "(aligner, reads, options=None, *, profile=None, "
                "telemetry=None, **overrides)"
            ),
            "map_file": (
                "(aligner, reads_path, output=None, options=None, *, "
                "sam=False, profile=None, telemetry=None, **overrides)"
            ),
        }
        for name, want in snapshot.items():
            fn = getattr(api, name)
            assert skeleton(fn) == want, f"{name}{inspect.signature(fn)}"

    def test_session_signatures(self):
        snapshot = {
            "open": (
                "(reference, index_path=None, *, preset='map-pb', "
                "engine='manymap', load_mode='mmap', options=None)"
            ),
            "map_reads": (
                "(self, reads, options=None, *, profile=None, "
                "telemetry=None, **overrides)"
            ),
            "map_file": (
                "(self, reads_path, output=None, options=None, *, "
                "sam=False, profile=None, telemetry=None, **overrides)"
            ),
            "map_batch": "(self, reads, with_cigar=True)",
            "map_request": "(self, request)",
        }
        for name, want in snapshot.items():
            # class access binds the classmethod, so `cls` is gone and
            # `self` stays for plain methods — exactly the shape pinned.
            got = skeleton(getattr(MappingSession, name))
            assert got == want, f"{name}{got}"

    def test_map_options_fields(self):
        assert [f.name for f in MapOptions.__dataclass_fields__.values()] == [
            "backend",
            "workers",
            "with_cigar",
            "longest_first",
            "chunk_reads",
            "chunk_bases",
            "window_reads",
            "queue_chunks",
            "stream_processes",
            "index_path",
            "kernel",
            "batch_max",
            "batch_buckets",
            "fault_policy",
            "progress_interval",
            "progress_path",
            "status_port",
            "events_path",
            "run_dir",
            "resume",
            "commit_reads",
            "tracing",
        ]
        assert MapOptions() == MapOptions(
            backend="serial",
            workers=1,
            with_cigar=True,
            longest_first=True,
            chunk_reads=32,
            chunk_bases=1_000_000,
            window_reads=256,
            queue_chunks=8,
            stream_processes=False,
            index_path=None,
            kernel=None,
            batch_max=None,
            batch_buckets=None,
            fault_policy=None,
        )

    def test_request_model_fields(self):
        assert list(api.MapRequest.__dataclass_fields__) == [
            "request_id",
            "reads",
            "tenant",
            "with_cigar",
            "on_error",
            "timeout_ms",
            "trace",
            "api_version",
        ]
        assert list(api.MapResult.__dataclass_fields__) == [
            "request_id",
            "status",
            "read_names",
            "paf",
            "quarantined",
            "error",
            "batch_id",
            "batch_requests",
            "queue_ms",
            "map_ms",
            "total_ms",
            "trace_id",
            "api_version",
        ]
        assert list(api.ServeConfig.__dataclass_fields__) == [
            "host",
            "port",
            "max_batch_reads",
            "min_batch_reads",
            "batch_timeout_ms",
            "adaptive_batching",
            "latency_target_ms",
            "latency_window",
            "max_queue_requests",
            "max_reads_per_request",
            "tenant_quota",
            "batch_workers",
            "drain_timeout_s",
            "tracing",
        ]


class TestMapOptions:
    def test_frozen(self):
        with pytest.raises(Exception):
            MapOptions().workers = 2  # type: ignore[misc]

    def test_replace(self):
        opts = MapOptions().replace(backend="threads", workers=4)
        assert (opts.backend, opts.workers) == ("threads", 4)
        assert MapOptions().workers == 1  # original untouched

    def test_replace_unknown_field(self):
        with pytest.raises(TypeError):
            MapOptions().replace(thread_count=4)

    def test_validated_unknown_backend(self):
        with pytest.raises(SchedulerError, match="unknown backend"):
            MapOptions(backend="gpu").validated()

    @pytest.mark.parametrize(
        "field",
        ["workers", "chunk_reads", "chunk_bases", "window_reads", "queue_chunks"],
    )
    def test_validated_bounds(self, field):
        with pytest.raises(SchedulerError, match=field):
            MapOptions(**{field: 0}).validated()


class TestFacade:
    def test_open_index_from_genome_and_map(self, setup):
        aligner, reads = setup
        serial = paf(api.map_reads(aligner, reads))
        for backend in ("threads", "streaming"):
            got = paf(api.map_reads(aligner, reads, backend=backend, workers=2))
            assert got == serial, backend

    def test_open_index_records_source(self, small_genome, tmp_path):
        from repro.index.store import save_index

        base = Aligner(small_genome, preset="test")
        idx = tmp_path / "ref.mmi"
        save_index(base.index, idx)
        aligner = api.open_index(small_genome, idx, preset="test")
        assert aligner.index_source == str(idx)
        plain = api.open_index(small_genome, preset="test")
        assert plain.index_source is None

    def test_overrides_beat_options(self, setup):
        aligner, reads = setup
        opts = MapOptions(backend="serial")
        serial = paf(api.map_reads(aligner, reads, opts))
        streamed = paf(
            api.map_reads(aligner, reads, opts, backend="streaming", workers=2)
        )
        assert streamed == serial
        assert opts.backend == "serial"  # options object untouched


class TestMappingSession:
    """The facade functions are thin clients of one session object."""

    def test_session_matches_facade(self, setup):
        aligner, reads = setup
        with MappingSession(aligner) as session:
            assert paf(session.map_reads(reads)) == paf(
                api.map_reads(aligner, reads)
            )

    def test_session_open_matches_open_index(self, small_genome, setup):
        _, reads = setup
        with MappingSession.open(
            small_genome, preset="test"
        ) as session:
            want = paf(
                api.map_reads(api.open_index(small_genome, preset="test"), reads)
            )
            assert paf(session.map_reads(reads)) == want

    def test_session_options_are_defaults(self, setup):
        aligner, reads = setup
        session = MappingSession(
            aligner, MapOptions(backend="threads", workers=2)
        )
        assert paf(session.map_reads(reads)) == paf(
            api.map_reads(aligner, reads)
        )
        # per-call override beats the session default
        assert paf(session.map_reads(reads, backend="serial")) == paf(
            api.map_reads(aligner, reads)
        )

    def test_map_batch_matches_per_read(self, setup):
        aligner, reads = setup
        session = MappingSession(aligner)
        assert paf(session.map_batch(reads)) == paf(
            api.map_reads(aligner, reads)
        )

    def test_closed_session_raises(self, setup):
        aligner, reads = setup
        session = MappingSession(aligner)
        session.close()
        assert session.closed
        with pytest.raises(SchedulerError, match="closed"):
            session.map_reads(reads)

    def test_map_file_thin_client(self, setup, tmp_path):
        from repro.seq.fasta import write_fastq

        aligner, reads = setup
        path = tmp_path / "reads.fq"
        write_fastq(path, reads)
        out_facade, out_session = io.StringIO(), io.StringIO()
        stats = api.map_file(aligner, path, out_facade)
        session_stats = MappingSession(aligner).map_file(path, out_session)
        assert out_facade.getvalue() == out_session.getvalue()
        assert stats.n_reads == session_stats.n_reads == len(reads)


class TestShimRemoval:
    """The PR-3 deprecation shims are gone; only repro.api remains."""

    def test_parallel_map_reads_removed(self):
        import repro.runtime as runtime
        import repro.runtime.parallel as parallel

        assert not hasattr(parallel, "map_reads")
        assert "map_reads" not in runtime.__all__
        assert hasattr(parallel, "parallel_map_reads")  # real impl stays

    def test_procpool_map_reads_processes_removed(self):
        import repro.runtime as runtime
        import repro.runtime.procpool as procpool

        assert not hasattr(procpool, "map_reads_processes")
        assert "map_reads_processes" not in runtime.__all__
        assert hasattr(procpool, "_map_reads_processes")  # real impl stays

    def test_errors_index_alias_removed(self):
        import repro.errors as errs

        with pytest.raises(AttributeError):
            errs.IndexError_

    def test_facade_does_not_warn(self, setup, recwarn):
        aligner, reads = setup
        api.map_reads(aligner, reads, backend="threads", workers=2)
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestDriverOptions:
    def test_driver_accepts_options(self, setup):
        aligner, reads = setup
        driver = ParallelDriver(
            aligner, options=MapOptions(backend="streaming", workers=2)
        )
        assert driver.backend == "streaming"
        assert driver.workers == 2
        assert driver.profile.label == "streaming[2]"
        out = io.StringIO()
        results = driver.run(reads, output=out)
        assert paf(results) == paf(api.map_reads(aligner, reads))
        assert out.getvalue().splitlines() == paf(results)

    def test_driver_legacy_kwargs_still_work(self, setup):
        aligner, _ = setup
        driver = ParallelDriver(aligner, backend="threads", workers=3)
        assert driver.options == MapOptions(backend="threads", workers=3)

    def test_driver_unknown_backend_raises_repro_error(self, setup):
        aligner, _ = setup
        with pytest.raises(ReproError):
            ParallelDriver(aligner, backend="quantum")
