"""Tests for =/X CIGARs, MD tags, and NM distances."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.cigar import Cigar
from repro.align.dp_reference import align_reference
from repro.align.scoring import Scoring
from repro.core.tags import cigar_eqx, md_tag, nm_distance
from repro.errors import AlignmentError
from repro.seq.alphabet import encode, random_codes
from repro.seq.mutate import MutationSpec, mutate_codes


class TestEqx:
    def test_all_match(self):
        t = encode("ACGT")
        c = cigar_eqx(Cigar.from_string("4M"), t, t.copy())
        assert str(c) == "4="

    def test_mixed(self):
        t = encode("ACGTA")
        q = encode("ACCTA")
        c = cigar_eqx(Cigar.from_string("5M"), t, q)
        assert str(c) == "2=1X2="

    def test_gaps_passthrough(self):
        t = encode("ACGTAC")
        q = encode("ACAC")
        c = cigar_eqx(Cigar.from_string("2M2D2M"), t, q)
        assert str(c) == "2=2D2="

    def test_overrun_raises(self):
        t = encode("AC")
        with pytest.raises(AlignmentError):
            cigar_eqx(Cigar.from_string("5M"), t, t)

    def test_partial_coverage_raises(self):
        t = encode("ACGT")
        with pytest.raises(AlignmentError):
            cigar_eqx(Cigar.from_string("2M"), t, t)

    @given(st.integers(2, 80), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_eqx_spans_preserved(self, m, seed):
        t = random_codes(m, seed=seed)
        q, _ = mutate_codes(
            t, MutationSpec(sub_rate=0.1, ins_rate=0.05, del_rate=0.05),
            seed=seed + 1,
        )
        if q.size == 0:
            return
        res = align_reference(t, q, Scoring(), path=True)
        eqx = cigar_eqx(res.cigar, t, q)
        assert eqx.query_span == res.cigar.query_span
        assert eqx.target_span == res.cigar.target_span
        # Only = runs where bases equal; X runs where they differ.
        assert "M" not in str(eqx)


class TestNm:
    def test_exact(self):
        t = encode("ACGTA")
        q = encode("ACCTA")
        assert nm_distance(Cigar.from_string("5M"), t, q) == 1

    def test_gaps_counted(self):
        t = encode("ACGTAC")
        q = encode("ACAC")
        assert nm_distance(Cigar.from_string("2M2D2M"), t, q) == 2

    @given(st.integers(2, 60), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_nm_lower_bounds_edit_structure(self, m, seed):
        t = random_codes(m, seed=seed)
        q, _ = mutate_codes(
            t, MutationSpec(sub_rate=0.08, ins_rate=0.04, del_rate=0.04),
            seed=seed + 1,
        )
        if q.size == 0:
            return
        res = align_reference(t, q, Scoring(), path=True)
        nm = nm_distance(res.cigar, t, q)
        assert nm >= abs(t.size - q.size)  # length change needs >= that many edits


class TestMd:
    def test_perfect(self):
        t = encode("ACGT")
        assert md_tag(Cigar.from_string("4M"), t, t.copy()) == "4"

    def test_mismatch(self):
        t = encode("ACGTA")
        q = encode("ACCTA")
        assert md_tag(Cigar.from_string("5M"), t, q) == "2G2"

    def test_deletion(self):
        t = encode("ACGTAC")
        q = encode("ACAC")
        assert md_tag(Cigar.from_string("2M2D2M"), t, q) == "2^GT2"

    def test_insertion_invisible(self):
        t = encode("ACAC")
        q = encode("ACGTAC")
        assert md_tag(Cigar.from_string("2M2I2M"), t, q) == "4"

    def test_leading_mismatch_keeps_zero(self):
        t = encode("ACGT")
        q = encode("TCGT")
        assert md_tag(Cigar.from_string("4M"), t, q) == "0A3"

    @given(st.integers(2, 60), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_md_reference_bases_reconstruct(self, m, seed):
        """MD + query reconstructs the aligned reference (spec property)."""
        import re

        t = random_codes(m, seed=seed)
        q, _ = mutate_codes(
            t, MutationSpec(sub_rate=0.1, ins_rate=0.05, del_rate=0.05),
            seed=seed + 1,
        )
        if q.size == 0:
            return
        res = align_reference(t, q, Scoring(), path=True)
        md = md_tag(res.cigar, t, q)
        # Total reference length described by MD == target span minus
        # nothing (matches + mismatch letters + deletion runs).
        tokens = re.findall(r"(\d+)|\^([ACGTN]+)|([ACGTN])", md)
        covered = 0
        for num, dele, sub in tokens:
            if num:
                covered += int(num)
            elif dele:
                covered += len(dele)
            else:
                covered += 1
        assert covered == res.cigar.target_span
