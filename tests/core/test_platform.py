"""Tests for the platform projection (Figure 11 as a library)."""

import pytest

from repro.core.platform import PlatformProjection
from repro.core.profiling import STAGES, PipelineProfile


def paper_cpu_profile() -> PipelineProfile:
    """The paper's own Table 2 CPU column, as input."""
    p = PipelineProfile(label="CPU minimap2")
    p.add("Load Index", 4.71)
    p.add("Load Query", 0.43)
    p.add("Seed & Chain", 35.79)
    p.add("Align", 79.22)
    p.add("Output", 0.93)
    return p


class TestProjection:
    def test_five_configurations(self):
        out = PlatformProjection().project(paper_cpu_profile())
        assert set(out) == {"CPU mm2", "CPU many", "KNL mm2", "KNL many", "GPU many"}

    def test_paper_table2_reproduces_paper_speedups(self):
        """Feeding the paper's own CPU column yields ~1.4x / ~2.3x."""
        out = PlatformProjection().project(paper_cpu_profile())
        sp_cpu = out["CPU mm2"].total / out["CPU many"].total
        sp_knl = out["KNL mm2"].total / out["KNL many"].total
        assert 1.3 <= sp_cpu <= 1.6  # paper: 1.4
        assert 2.0 <= sp_knl <= 2.6  # paper: 2.3

    def test_gpu_marginally_beats_cpu_manymap(self):
        out = PlatformProjection().project(paper_cpu_profile())
        assert out["GPU many"].total < out["CPU many"].total
        assert out["GPU many"].total > 0.7 * out["CPU many"].total

    def test_input_profile_not_mutated(self):
        src = paper_cpu_profile()
        before = dict(src.timer.stages)
        PlatformProjection().project(src)
        assert src.timer.stages == before

    def test_kernel_ratios_sane(self):
        proj = PlatformProjection()
        assert 2.5 <= proj.kernel_ratio_cpu() <= 4.0
        assert 2.5 <= proj.kernel_ratio_knl() <= 4.0

    def test_mmap_halves_index_load(self):
        out = PlatformProjection().project(paper_cpu_profile())
        assert out["CPU many"].seconds("Load Index") == pytest.approx(4.71 / 2)

    def test_knl_io_stages_slow_then_halved(self):
        out = PlatformProjection().project(paper_cpu_profile())
        knl_mm2 = out["KNL mm2"]
        knl_many = out["KNL many"]
        assert knl_mm2.seconds("Load Index") > 4.71  # slower than CPU
        assert knl_many.seconds("Load Index") == pytest.approx(
            knl_mm2.seconds("Load Index") / 2
        )
