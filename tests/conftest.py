"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seq.genome import GenomeSpec, generate_genome


@pytest.fixture(scope="session")
def small_genome():
    """A 60 kbp single-chromosome genome used across integration tests."""
    return generate_genome(GenomeSpec(length=60_000, chromosomes=1), seed=11)


@pytest.fixture(scope="session")
def multi_genome():
    """A 120 kbp three-chromosome genome with repeats."""
    return generate_genome(
        GenomeSpec(length=120_000, chromosomes=3, repeat_fraction=0.15), seed=7
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
