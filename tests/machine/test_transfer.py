"""Tests for the host-device transfer model."""

import pytest

from repro.errors import MachineModelError
from repro.machine.transfer import PCIE3_X16, TransferModel


class TestTransfer:
    def test_pinned_faster(self):
        assert PCIE3_X16.seconds(1 << 30, pinned=True) < PCIE3_X16.seconds(
            1 << 30, pinned=False
        )

    def test_latency_dominates_small(self):
        small_pinned = PCIE3_X16.seconds(64, pinned=True)
        assert small_pinned == pytest.approx(8e-6, rel=0.01)

    def test_bandwidth_dominates_large(self):
        t = PCIE3_X16.seconds(12 * 10**9, pinned=True)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_batch_scales_linearly(self):
        one = PCIE3_X16.seconds(1000)
        assert PCIE3_X16.batch_seconds(1000, 50) == pytest.approx(50 * one)

    def test_pool_motivation(self):
        """Few large transfers beat many small ones of equal volume."""
        many = PCIE3_X16.batch_seconds(10_000, 1000)
        few = PCIE3_X16.batch_seconds(10_000_000, 1)
        assert few < many

    def test_invalid_configs(self):
        with pytest.raises(MachineModelError):
            TransferModel(pinned_gbps=0)
        with pytest.raises(MachineModelError):
            TransferModel(pinned_gbps=5, pageable_gbps=10)
        with pytest.raises(MachineModelError):
            PCIE3_X16.seconds(-1)
        with pytest.raises(MachineModelError):
            PCIE3_X16.batch_seconds(10, -1)
