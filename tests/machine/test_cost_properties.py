"""Property tests for the roofline cost model and figure helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cost import kernel_gcups, working_set_bytes
from repro.machine.figures import FIGURES, available, fig8_table
from repro.machine.isa import AVX2, AVX512BW, SSE2
from repro.machine.kernel_trace import trace_for
from repro.machine.memory import MemoryLevel, MemorySystem


def simple_mem(bw: float) -> MemorySystem:
    return MemorySystem([MemoryLevel("dram", None, bw)])


class TestCostProperties:
    @given(st.floats(0.5, 4.0), st.floats(1.0, 1000.0), st.integers(100, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_gcups_monotone_in_bandwidth(self, freq, bw, ws):
        trace = trace_for("manymap", "score")
        lo = kernel_gcups(trace, AVX2, freq, memory=simple_mem(bw),
                          working_set=ws, units=16)
        hi = kernel_gcups(trace, AVX2, freq, memory=simple_mem(bw * 2),
                          working_set=ws, units=16)
        assert hi >= lo - 1e-12

    @given(st.floats(0.5, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_gcups_monotone_in_lanes(self, freq):
        trace = trace_for("manymap", "score")
        a = kernel_gcups(trace, SSE2, freq)
        b = kernel_gcups(trace, AVX2, freq)
        c = kernel_gcups(trace, AVX512BW, freq)
        assert a < b < c

    @given(st.floats(0.5, 4.0), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_units_scale_compute_bound(self, freq, units):
        trace = trace_for("manymap", "score")
        single = kernel_gcups(trace, AVX2, freq)
        multi = kernel_gcups(trace, AVX2, freq, units=units)
        assert multi == pytest.approx(single * units)

    @given(st.integers(1, 100_000), st.integers(1, 256))
    @settings(max_examples=40, deadline=None)
    def test_working_set_linear_in_concurrency(self, length, conc):
        assert working_set_bytes(length, "score", conc) == conc * working_set_bytes(
            length, "score", 1
        )

    def test_memory_cap_is_aggregate(self):
        """Many units cannot exceed the bandwidth roof collectively."""
        trace = trace_for("manymap", "score")
        capped = kernel_gcups(
            trace, AVX2, 3.0, memory=simple_mem(50.0),
            working_set=1 << 34, units=1000,
        )
        assert capped == pytest.approx(50.0 / 10.0)  # BW / bytes_per_cell


class TestFigureHelpers:
    def test_all_available_render(self):
        for name in available():
            text = FIGURES[name]()
            assert len(text.splitlines()) > 3

    def test_fig8_both_modes(self):
        assert "score" in fig8_table("score")
        assert "path" in fig8_table("path")
