"""Tests for the hardware models: ISAs, traces, memory, processors.

The key assertions mirror the paper's measured shapes (Figures 5-8):
these are the model's calibration targets, so regressions here mean
the reproduction no longer reproduces.
"""

import pytest

from repro.errors import MachineModelError
from repro.machine.cost import kernel_gcups, working_set_bytes, dram_bytes_per_cell
from repro.machine.cpu import XEON_GOLD_5115, CpuModel
from repro.machine.gpu import TESLA_V100, GpuModel
from repro.machine.isa import AVX2, AVX512BW, GPU_SIMT, ISAS, KNL_AVX2, SSE2, VectorISA
from repro.machine.kernel_trace import trace_for
from repro.machine.knl import XEON_PHI_7210, KnlModel
from repro.machine.memory import GiB, MiB, MemoryLevel, MemorySystem


class TestIsa:
    def test_lanes(self):
        assert SSE2.lanes == 16
        assert AVX2.lanes == 32
        assert AVX512BW.lanes == 64
        assert GPU_SIMT.lanes == 512

    def test_registry(self):
        assert set(ISAS) == {"sse2", "avx2", "avx512bw", "knl-avx2", "gpu-simt"}

    def test_invalid_width_raises(self):
        with pytest.raises(MachineModelError):
            VectorISA("bad", 100)  # not a multiple of 8


class TestTrace:
    def test_manymap_cheaper_on_every_isa(self):
        for isa in (SSE2, AVX2, AVX512BW, KNL_AVX2):
            for mode in ("score", "path"):
                mm2 = trace_for("mm2", mode).cycles(isa)
                many = trace_for("manymap", mode).cycles(isa)
                assert many < mm2, (isa.name, mode)

    def test_unknown_trace_raises(self):
        with pytest.raises(MachineModelError):
            trace_for("turbo", "score")

    def test_fig5_ratios(self):
        """Figure 5 calibration: SSE2 ~1.1x, AVX2 2.2x/1.6x, AVX512 ~1.5x."""
        def ratio(isa, mode):
            return trace_for("mm2", mode).cycles(isa) / trace_for(
                "manymap", mode
            ).cycles(isa)

        assert 1.05 <= ratio(SSE2, "score") <= 1.2
        assert 1.05 <= ratio(SSE2, "path") <= 1.2
        assert 2.0 <= ratio(AVX2, "score") <= 2.4
        assert 1.45 <= ratio(AVX2, "path") <= 1.75
        assert 1.35 <= ratio(AVX512BW, "score") <= 1.7


class TestMemory:
    def test_placement_order(self):
        ms = MemorySystem(
            [
                MemoryLevel("l2", 1 * MiB, 1000.0),
                MemoryLevel("hbm", 16 * GiB, 400.0),
                MemoryLevel("ddr", None, 90.0),
            ]
        )
        assert ms.placement(1024).name == "l2"
        assert ms.placement(2 * MiB).name == "hbm"
        assert ms.placement(32 * GiB).name == "ddr"

    def test_last_level_must_be_unbounded(self):
        with pytest.raises(MachineModelError):
            MemorySystem([MemoryLevel("l2", 1 * MiB, 100.0)])

    def test_scatter_bandwidth_fallback(self):
        lvl = MemoryLevel("x", None, 100.0)
        assert lvl.bandwidth("scatter") == 100.0
        lvl2 = MemoryLevel("y", None, 100.0, scatter_gbps=60.0)
        assert lvl2.bandwidth("scatter") == 60.0
        with pytest.raises(MachineModelError):
            lvl.bandwidth("zigzag")

    def test_negative_ws_raises(self):
        ms = MemorySystem([MemoryLevel("ddr", None, 90.0)])
        with pytest.raises(MachineModelError):
            ms.placement(-1)

    def test_level_named(self):
        ms = MemorySystem([MemoryLevel("ddr", None, 90.0)])
        assert ms.level_named("ddr").bandwidth_gbps == 90.0
        with pytest.raises(MachineModelError):
            ms.level_named("hbm")


class TestCost:
    def test_working_set(self):
        assert working_set_bytes(1000, "score") == 10_000
        assert working_set_bytes(32_000, "path") == 2 * 32_000**2  # the 2 GB example
        assert working_set_bytes(100, "score", concurrent=4) == 4_000

    def test_working_set_invalid(self):
        with pytest.raises(MachineModelError):
            working_set_bytes(-1, "score")
        with pytest.raises(MachineModelError):
            working_set_bytes(10, "blended")

    def test_gcups_positive_and_memory_capped(self):
        ms = MemorySystem([MemoryLevel("ddr", None, 10.0)])
        g = kernel_gcups(
            trace_for("manymap", "score"), AVX2, 3.0, memory=ms,
            working_set=1 << 30, mode="score", units=100,
        )
        assert g == pytest.approx(10.0 / dram_bytes_per_cell("score"))

    def test_gcups_bad_inputs(self):
        with pytest.raises(MachineModelError):
            kernel_gcups(trace_for("manymap", "score"), AVX2, -1.0)


class TestCpuModel:
    def test_fig5_end_to_end_ratios(self):
        cpu = XEON_GOLD_5115
        r = cpu.micro_gcups("manymap", AVX2, "score", 4000) / cpu.micro_gcups(
            "mm2", AVX2, "score", 4000
        )
        assert 2.0 <= r <= 2.4

    def test_fig8_cpu_speedup_band(self):
        """manymap(AVX-512) vs original minimap2(SSE2): 3.3-4.5x (Fig 8a)."""
        cpu = XEON_GOLD_5115
        for length in (1000, 4000, 16000):
            r = cpu.micro_gcups("manymap", AVX512BW, "score", length) / cpu.micro_gcups(
                "mm2", SSE2, "score", length
            )
            assert 3.0 <= r <= 4.6

    def test_thread_bounds(self):
        with pytest.raises(MachineModelError):
            XEON_GOLD_5115.micro_gcups("mm2", SSE2, "score", 1000, threads=1000)

    def test_unknown_isa_frequency(self):
        with pytest.raises(MachineModelError):
            CpuModel().frequency(GPU_SIMT)


class TestKnlModel:
    def test_fig8_knl_speedup(self):
        """Direct port vs manymap on KNL: ~3.4x at 8 kbp (Fig 8a)."""
        knl = XEON_PHI_7210
        r = knl.micro_gcups("manymap", "score", 8000) / knl.micro_gcups(
            "mm2", "score", 8000
        )
        assert 3.0 <= r <= 3.8

    def test_fig6_score_crossover(self):
        """MCDRAM pays off only past the cache crossover (~16 kbp)."""
        flat = XEON_PHI_7210
        ddr = KnlModel(memory_mode="ddr")
        short = flat.micro_gcups("manymap", "score", 1000) / ddr.micro_gcups(
            "manymap", "score", 1000
        )
        long_ = flat.micro_gcups("manymap", "score", 32000) / ddr.micro_gcups(
            "manymap", "score", 32000
        )
        assert short == pytest.approx(1.0)
        assert 4.0 <= long_ <= 6.0  # paper: "up to 5 times speedup"

    def test_fig6_path_mcdram_capacity(self):
        """Path mode: ~1.8x while fitting in 16 GB, parity once spilled."""
        flat = XEON_PHI_7210
        ddr = KnlModel(memory_mode="ddr")
        fit = flat.micro_gcups("manymap", "path", 4000) / ddr.micro_gcups(
            "manymap", "path", 4000
        )
        spill = flat.micro_gcups("manymap", "path", 16000) / ddr.micro_gcups(
            "manymap", "path", 16000
        )
        assert 1.6 <= fit <= 2.0
        assert spill == pytest.approx(1.0)

    def test_knl_perf_declines_past_8k(self):
        knl = XEON_PHI_7210
        assert knl.micro_gcups("manymap", "score", 16000) < knl.micro_gcups(
            "manymap", "score", 8000
        )

    def test_ht_curve_21_percent(self):
        """§5.3.1: 4 threads/core only ~21% faster than 1 thread/core."""
        knl = XEON_PHI_7210
        assert knl.ht_throughput(4) / knl.ht_throughput(1) == pytest.approx(1.21)

    def test_parallel_units_monotone(self):
        knl = XEON_PHI_7210
        prev = 0.0
        for t in (1, 16, 64, 128, 192, 256):
            u = knl.parallel_units(t)
            assert u >= prev
            prev = u

    def test_bad_memory_mode(self):
        with pytest.raises(MachineModelError):
            KnlModel(memory_mode="turbo")


class TestGpuModel:
    def test_fig7_stream_speedups(self):
        gpu = TESLA_V100
        assert gpu.stream_speedup(64, "score") == 64.0
        assert gpu.stream_speedup(128, "score") == pytest.approx(90.0, abs=1.0)
        assert gpu.stream_speedup(128, "path") == pytest.approx(77.4, abs=1.0)

    def test_fig8_gpu_kernel_gap(self):
        gpu = TESLA_V100
        r = gpu.micro_gcups("manymap", "score", 4000) / gpu.micro_gcups(
            "mm2", "score", 4000
        )
        assert 3.0 <= r <= 3.6

    def test_score_peak_at_4k(self):
        """Fig 8a: GPU peaks near 4 kbp, drops when shared memory spills."""
        gpu = TESLA_V100
        g1 = gpu.micro_gcups("manymap", "score", 1000)
        g4 = gpu.micro_gcups("manymap", "score", 4000)
        g16 = gpu.micro_gcups("manymap", "score", 16000)
        assert g4 > g1
        assert g4 > g16

    def test_concurrency_32k_path_is_8(self):
        """§4.5.2's example: 32 kbp path pairs → 2 GB each → 8 kernels."""
        assert TESLA_V100.concurrency("path", 32_000) == 8

    def test_concurrency_capped_at_128(self):
        assert TESLA_V100.concurrency("score", 1000) == 128

    def test_bad_streams(self):
        with pytest.raises(MachineModelError):
            TESLA_V100.stream_speedup(0, "score")
