"""Tests for the streaming overlapped-pipeline backend (§4.4.4).

The contract under test: ``stream_map`` / ``map_file`` with
``backend="streaming"`` produce output *byte-identical* to the serial
backend for any worker count, chunking, windowing, or input framing
(plain/gzip FASTA/FASTQ, empty file, one huge read) — while reading the
input incrementally and reporting pipeline gauges.
"""

from __future__ import annotations

import gzip

import pytest

from repro import api
from repro.core.aligner import Aligner
from repro.core.alignment import to_paf
from repro.core.profiling import PipelineProfile
from repro.errors import SchedulerError
from repro.obs.telemetry import Telemetry
from repro.runtime.streaming import StreamStats, map_reads_streaming, stream_map
from repro.seq.fasta import write_fasta, write_fastq
from repro.seq.records import SeqRecord
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator


@pytest.fixture(scope="module")
def setup(small_genome):
    sim = ReadSimulator.preset(small_genome, "pacbio")
    sim.length_model = LengthModel(mean=550.0, sigma=0.4, max_length=1200)
    reads = list(sim.simulate(12, seed=29))
    return Aligner(small_genome, preset="test"), reads


def collect_paf(aligner, source, **kw):
    lines = []
    stats = stream_map(
        aligner,
        source,
        lambda read, alns: lines.extend(to_paf(a) for a in alns),
        **kw,
    )
    return lines, stats


@pytest.fixture(scope="module")
def serial_paf(setup):
    aligner, reads = setup
    results = api.map_reads(aligner, reads, backend="serial")
    return [to_paf(a) for alns in results for a in alns]


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_sweep(self, setup, serial_paf, workers):
        aligner, reads = setup
        lines, stats = collect_paf(
            aligner, iter(reads), workers=workers, chunk_reads=3
        )
        assert lines == serial_paf
        assert stats.n_reads == len(reads)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(chunk_reads=1, window_reads=1),
            dict(chunk_reads=2, window_reads=3, queue_chunks=1),
            dict(chunk_reads=100, window_reads=5, longest_first=False),
            dict(chunk_bases=600, window_reads=4),
        ],
    )
    def test_scheduling_sweep(self, setup, serial_paf, kw):
        aligner, reads = setup
        lines, _ = collect_paf(aligner, iter(reads), workers=2, **kw)
        assert lines == serial_paf

    def test_registry_adapter_matches_serial(self, setup):
        aligner, reads = setup
        serial = api.map_reads(aligner, reads, backend="serial")
        streamed = map_reads_streaming(aligner, reads, workers=3, chunk_reads=2)
        assert streamed == serial

    def test_process_workers_match(self, setup, serial_paf, tmp_path):
        aligner, reads = setup
        from repro.index.store import save_index

        idx = tmp_path / "ref.mmi"
        save_index(aligner.index, idx)
        lines, _ = collect_paf(
            aligner,
            iter(reads),
            workers=2,
            use_processes=True,
            chunk_reads=4,
            index_path=str(idx),
        )
        assert lines == serial_paf


class TestMapFile:
    """api.map_file drives every backend through the shared reader."""

    def write_inputs(self, reads, tmp_path):
        fa = tmp_path / "reads.fa"
        fq = tmp_path / "reads.fq"
        write_fasta(fa, reads)
        write_fastq(fq, reads)
        fa_gz = tmp_path / "reads.fa.gz"
        fa_gz.write_bytes(gzip.compress(fa.read_bytes()))
        fq_gz = tmp_path / "reads.fq.gz"
        fq_gz.write_bytes(gzip.compress(fq.read_bytes()))
        return [fa, fq, fa_gz, fq_gz]

    @pytest.mark.parametrize("backend", ["serial", "threads", "streaming"])
    def test_all_framings_identical(self, setup, tmp_path, backend):
        import io

        aligner, reads = setup
        baseline = None
        for path in self.write_inputs(reads, tmp_path):
            out = io.StringIO()
            stats = api.map_file(
                aligner, path, out, backend=backend, workers=2, chunk_reads=3
            )
            assert stats.n_reads == len(reads)
            if baseline is None:
                baseline = out.getvalue()
            else:
                assert out.getvalue() == baseline, (backend, path.name)
        assert baseline.count("\n") == sum(
            len(a) for a in api.map_reads(aligner, reads)
        )

    def test_empty_file(self, setup, tmp_path):
        import io

        aligner, _ = setup
        empty = tmp_path / "empty.fa"
        empty.write_text("")
        out = io.StringIO()
        stats = api.map_file(aligner, empty, out, backend="streaming", workers=2)
        assert out.getvalue() == ""
        assert stats == StreamStats()

    def test_single_huge_read(self, small_genome, tmp_path):
        import io

        aligner = Aligner(small_genome, preset="test")
        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.length_model = LengthModel(mean=9000.0, sigma=0.05, max_length=12_000)
        [read] = list(sim.simulate(1, seed=3))
        assert len(read) > 5000
        fa = tmp_path / "huge.fa"
        write_fasta(fa, [read])
        want = io.StringIO()
        api.map_file(aligner, fa, want, backend="serial")
        got = io.StringIO()
        stats = api.map_file(
            aligner, fa, got, backend="streaming", workers=2, chunk_bases=100
        )
        assert got.getvalue() == want.getvalue()
        assert stats.n_reads == 1 and stats.n_chunks == 1


class TestFailure:
    class PoisonRecord:
        def __init__(self, name, length=50):
            self.name = name
            self._length = length

        def __len__(self):
            return self._length

        @property
        def codes(self):
            raise RuntimeError("poisoned codes")

    def test_compute_error_names_read(self, setup):
        aligner, reads = setup
        poisoned = reads[:3] + [self.PoisonRecord("bad_read")] + reads[3:]
        with pytest.raises(SchedulerError, match="bad_read"):
            stream_map(aligner, iter(poisoned), workers=2, chunk_reads=2)

    def test_sink_error_names_read(self, setup):
        aligner, reads = setup

        def sink(read, alns):
            raise OSError("disk full")

        with pytest.raises(SchedulerError, match="output sink failed"):
            stream_map(aligner, iter(reads), sink, workers=2)

    def test_source_error_propagates(self, setup):
        aligner, reads = setup

        def source():
            yield reads[0]
            raise ValueError("truncated input")

        with pytest.raises(SchedulerError, match="read source failed"):
            stream_map(aligner, source(), workers=2)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(workers=0),
            dict(queue_chunks=0),
            dict(window_reads=0),
            dict(chunk_reads=0),
            dict(chunk_bases=0),
        ],
    )
    def test_bad_params(self, setup, kw):
        aligner, reads = setup
        with pytest.raises(SchedulerError):
            stream_map(aligner, iter(reads), **kw)


class TestShutdownRegression:
    """Failures mid-stream must join every pipeline thread and drain the
    queues — no deadlocks, no leaked threads, and KeyboardInterrupt must
    surface as KeyboardInterrupt (never wrapped in SchedulerError)."""

    TIMEOUT = 30.0

    def run_guarded(self, fn):
        """Run ``fn`` on a watchdog thread; fail the test on deadlock.

        Returns ``(value, exception)``; also asserts every thread the
        call spawned has exited."""
        import threading
        import time as _time

        before = set(threading.enumerate())
        box = {}

        def target():
            try:
                box["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["exc"] = exc

        t = threading.Thread(target=target, daemon=True)
        t.start()
        t.join(self.TIMEOUT)
        assert not t.is_alive(), "stream_map deadlocked (watchdog timeout)"
        deadline = _time.monotonic() + self.TIMEOUT
        while _time.monotonic() < deadline:
            leaked = [
                th
                for th in threading.enumerate()
                if th not in before and th is not t and th.is_alive()
            ]
            if not leaked:
                break
            _time.sleep(0.02)
        else:
            raise AssertionError(f"leaked pipeline threads: {leaked}")
        return box.get("value"), box.get("exc")

    def test_writer_exception_joins_all_threads(self, setup):
        aligner, reads = setup

        def sink(read, alns):
            raise OSError("disk full")

        _, exc = self.run_guarded(
            lambda: stream_map(
                aligner, iter(reads), sink, workers=2, chunk_reads=2
            )
        )
        assert isinstance(exc, SchedulerError)
        assert "output sink failed" in str(exc)

    def test_keyboard_interrupt_from_source(self, setup):
        aligner, reads = setup

        def source():
            yield reads[0]
            yield reads[1]
            raise KeyboardInterrupt

        _, exc = self.run_guarded(
            lambda: stream_map(
                aligner, source(), workers=2, chunk_reads=1, queue_chunks=1
            )
        )
        assert type(exc) is KeyboardInterrupt

    def test_keyboard_interrupt_from_sink(self, setup):
        aligner, reads = setup
        seen = []

        def sink(read, alns):
            seen.append(read.name)
            raise KeyboardInterrupt

        _, exc = self.run_guarded(
            lambda: stream_map(
                aligner, iter(reads), sink, workers=2, chunk_reads=2
            )
        )
        assert type(exc) is KeyboardInterrupt
        assert seen  # it got as far as emitting

    def test_keyboard_interrupt_from_compute(self, setup):
        aligner, reads = setup

        class InterruptRecord:
            name = "ctrl_c"

            def __len__(self):
                return 50

            @property
            def codes(self):
                raise KeyboardInterrupt

        poisoned = reads[:2] + [InterruptRecord()] + reads[2:]
        _, exc = self.run_guarded(
            lambda: stream_map(
                aligner, iter(poisoned), workers=2, chunk_reads=1
            )
        )
        assert type(exc) is KeyboardInterrupt

    def test_failure_with_slow_source_does_not_deadlock(self, setup):
        """A sink failure while the reader is blocked on a full queue
        must still unwind (the stop flag drains the queues)."""
        import time as _time

        aligner, reads = setup

        def source():
            for r in reads:
                _time.sleep(0.005)
                yield r

        def sink(read, alns):
            raise RuntimeError("sink exploded")

        _, exc = self.run_guarded(
            lambda: stream_map(
                aligner,
                source(),
                sink,
                workers=1,
                chunk_reads=1,
                window_reads=1,
                queue_chunks=1,
            )
        )
        assert isinstance(exc, SchedulerError)


class TestObservability:
    def test_gauges_and_stages_recorded(self, setup):
        aligner, reads = setup
        profile = PipelineProfile(label="stream")
        telemetry = Telemetry(trace=True)
        stats = stream_map(
            aligner,
            iter(reads),
            workers=2,
            chunk_reads=3,
            profile=profile,
            telemetry=telemetry,
        )
        gauges = telemetry.gauges.snapshot()
        assert gauges["stream.workers"] == 2
        assert gauges["stream.chunks"] == stats.n_chunks
        assert gauges["stream.windows"] == stats.n_windows
        assert gauges["stream.wall_s"] > 0.0
        for name in (
            "stream.reader.stall_s",
            "stream.compute.stall_s",
            "stream.writer.stall_s",
            "stream.work_queue.depth.max",
            "stream.done_queue.depth.max",
            "stream.reorder.reads.max",
        ):
            assert name in gauges, name
        for stage in ("Load Query", "Seed & Chain", "Align", "Output"):
            assert profile.seconds(stage) >= 0.0
        assert profile.seconds("Seed & Chain") > 0.0
        assert sorted(s["read"] for s in telemetry.spans) == sorted(
            r.name for r in reads
        )

    def test_stats_totals(self, setup):
        aligner, reads = setup
        lines, stats = collect_paf(aligner, iter(reads), workers=2, chunk_reads=4)
        assert stats.total_bases == sum(len(r) for r in reads)
        assert stats.n_alignments == len(lines)
        assert 0 < stats.n_mapped <= stats.n_reads == len(reads)

    def test_incremental_consumption(self, setup):
        """Backpressure keeps the reader from slurping the whole source."""
        aligner, reads = setup
        consumed = []
        ahead_at_first_emit = []

        def source():
            for r in reads:
                consumed.append(r.name)
                yield r

        def sink(read, alns):
            if not ahead_at_first_emit:
                ahead_at_first_emit.append(len(consumed))

        stream_map(
            aligner,
            source(),
            sink,
            workers=1,
            chunk_reads=1,
            window_reads=1,
            queue_chunks=1,
        )
        assert len(consumed) == len(reads)
        # window(1) + queued(1) + in-flight chunk + one blocked put —
        # far less than the full input.
        assert ahead_at_first_emit[0] <= 6 < len(reads)
