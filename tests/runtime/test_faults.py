"""Fault-tolerant runtime acceptance suite (run with ``pytest -m faults``).

The contract under test, on every backend: with ``--on-error skip`` or
``retry``, a run with injected parse errors, a killed process worker,
and a watchdog-tripping slow read completes with success, quarantines
*exactly* the poisoned reads, keeps every unaffected read's PAF
byte-identical to a clean serial run, and reports ``fault.*`` counters
matching the injected fault counts exactly.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.api import MapOptions
from repro.core.aligner import Aligner
from repro.core.alignment import to_paf
from repro.errors import SchedulerError
from repro.obs.counters import COUNTERS, counter_delta
from repro.obs.telemetry import Telemetry
from repro.runtime.faults import FaultPolicy, FaultRecord, write_quarantine
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator
from repro.testing.faults import FaultInjector, FaultSpec, load_faults

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def setup(small_genome, tmp_path_factory):
    from repro.index.store import save_index

    sim = ReadSimulator.preset(small_genome, "pacbio")
    sim.length_model = LengthModel(mean=500.0, sigma=0.4, max_length=1000)
    reads = list(sim.simulate(10, seed=21))
    aligner = Aligner(small_genome, preset="test")
    idx = tmp_path_factory.mktemp("faults") / "ref.mmi"
    save_index(aligner.index, idx)
    return aligner, reads, str(idx)


@pytest.fixture(scope="module")
def clean_serial(setup):
    aligner, reads, _ = setup
    return api.map_reads(aligner, reads)


def fault_deltas(fn):
    """Run ``fn`` and return its ``fault.*`` counter delta."""
    before = COUNTERS.totals()
    out = fn()
    delta = counter_delta(COUNTERS.totals(), before)
    return out, {k: v for k, v in delta.items() if k.startswith("fault.")}


def injector(reads, *, crash=False):
    """parse fault on reads[2], flaky on reads[5], slow on reads[7],
    plus (optionally) a worker-killing crash on reads[3]."""
    specs = [
        FaultSpec(read=reads[2].name, kind="parse"),
        FaultSpec(read=reads[5].name, kind="flaky"),
        FaultSpec(read=reads[7].name, kind="slow", delay_s=0.05),
    ]
    if crash:
        specs.append(FaultSpec(read=reads[3].name, kind="crash"))
    return FaultInjector.from_specs(specs)


class TestFaultPolicy:
    def test_defaults_are_fail_fast(self):
        pol = FaultPolicy()
        assert pol.on_error == "abort" and not pol.recovers
        assert pol.validated() is pol

    @pytest.mark.parametrize(
        "bad",
        [
            dict(on_error="explode"),
            dict(on_timeout="panic"),
            dict(max_retries=-1),
            dict(max_respawns=-1),
            dict(read_timeout=0.0),
        ],
    )
    def test_validated_rejects(self, bad):
        with pytest.raises(SchedulerError):
            FaultPolicy(**bad).validated()

    def test_map_options_carries_policy(self):
        pol = FaultPolicy(on_error="skip")
        opts = MapOptions(fault_policy=pol).validated()
        assert opts.fault_policy is pol
        with pytest.raises(SchedulerError):
            MapOptions(
                fault_policy=FaultPolicy(on_error="nope")
            ).validated()


class TestInjector:
    def test_bad_kind_rejected(self):
        with pytest.raises(SchedulerError, match="fault kind"):
            FaultInjector.from_specs([FaultSpec(read="r", kind="meteor")])

    def test_flaky_fails_then_succeeds(self):
        inj = FaultInjector.from_specs([FaultSpec(read="r", kind="flaky")])
        with pytest.raises(RuntimeError):
            inj.on_map("r", 1)
        inj.on_map("r", 2)  # recovered
        inj.on_map("other", 1)  # untargeted reads untouched

    def test_parse_fails_every_attempt(self):
        from repro.errors import ParseError

        inj = FaultInjector.from_specs([FaultSpec(read="r", kind="parse")])
        for attempt in (1, 2, 5):
            with pytest.raises(ParseError):
                inj.on_map("r", attempt)

    def test_crash_outside_pool_worker_degrades(self, monkeypatch):
        from repro.testing.faults import POOL_WORKER_ENV

        monkeypatch.delenv(POOL_WORKER_ENV, raising=False)
        inj = FaultInjector.from_specs([FaultSpec(read="r", kind="crash")])
        with pytest.raises(RuntimeError, match="injected crash"):
            inj.on_map("r", 1)

    def test_load_faults_roundtrip(self, tmp_path):
        spec = tmp_path / "faults.json"
        spec.write_text(
            json.dumps(
                [
                    {"read": "a", "kind": "parse"},
                    {"read": "b", "kind": "slow", "delay_s": 0.2},
                ]
            )
        )
        inj = load_faults(str(spec))
        assert inj.spec_for("a").kind == "parse"
        assert inj.spec_for("b").delay_s == 0.2
        assert inj.spec_for("zzz") is None

    @pytest.mark.parametrize(
        "body", ['{"read": "a"}', '[{"kind": "parse"}]']
    )
    def test_load_faults_bad_file(self, tmp_path, body):
        spec = tmp_path / "faults.json"
        spec.write_text(body)
        with pytest.raises(SchedulerError):
            load_faults(str(spec))


class TestAbortMatchesLegacy:
    """on_error='abort' keeps the pre-fault fail-fast contract."""

    @pytest.mark.parametrize("backend", ["serial", "threads", "streaming"])
    def test_injected_error_aborts_run(self, setup, backend):
        aligner, reads, _ = setup
        pol = FaultPolicy(on_error="abort", injector=injector(reads))
        # Scheduling order decides which injected fault fires first, and
        # serial propagates the raw error while the parallel backends
        # wrap it — but abort always fails fast naming an injected read.
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="injected"):
            api.map_reads(
                aligner,
                reads,
                backend=backend,
                workers=2,
                chunk_reads=3,
                fault_policy=pol,
            )


class TestCrossBackendRecovery:
    """The acceptance run: injected faults, exact quarantine set, exact
    counters, byte-identical PAF for every unaffected read."""

    def check(self, setup, clean_serial, backend, crash=False, **kw):
        aligner, reads, idx = setup
        pol = FaultPolicy(
            on_error="retry",
            max_retries=2,
            read_timeout=0.02,
            on_timeout="fallback",
            injector=injector(reads, crash=crash),
        )
        telemetry = Telemetry()
        results, deltas = fault_deltas(
            lambda: api.map_reads(
                aligner,
                reads,
                backend=backend,
                workers=2,
                chunk_reads=3,
                index_path=idx,
                fault_policy=pol,
                telemetry=telemetry,
                **kw,
            )
        )
        quarantined = {reads[2].name} | ({reads[3].name} if crash else set())
        affected = quarantined | {reads[7].name}  # fallback read differs
        # Quarantined reads produce no PAF lines at all.
        for i, read in enumerate(reads):
            if read.name in quarantined:
                assert results[i] == [], read.name
            elif read.name not in affected:
                assert [to_paf(a) for a in results[i]] == [
                    to_paf(a) for a in clean_serial[i]
                ], read.name
        # The watchdog fallback still maps its read (degraded pass).
        assert results[7], "fallback read should still align"
        # Exact counter accounting for the injected faults:
        #   parse read: 2 retries then quarantine; flaky read: 1 retry.
        assert deltas["fault.retries"] == 3
        assert deltas["fault.skips"] == 1
        assert deltas["fault.fallbacks"] == 1
        assert deltas["fault.quarantined"] == len(quarantined)
        if crash:
            assert deltas["fault.respawns"] >= 1
        else:
            assert "fault.respawns" not in deltas
        # Structured records surfaced through telemetry.
        assert {
            f.read for f in telemetry.faults if f.action == "quarantined"
        } == quarantined
        assert {
            f.read for f in telemetry.faults if f.action == "fallback"
        } == {reads[7].name}
        return telemetry

    def test_serial(self, setup, clean_serial):
        self.check(setup, clean_serial, "serial")

    def test_threads(self, setup, clean_serial):
        self.check(setup, clean_serial, "threads")

    def test_streaming_threads(self, setup, clean_serial):
        self.check(setup, clean_serial, "streaming")

    def test_processes_with_worker_crash(self, setup, clean_serial):
        self.check(setup, clean_serial, "processes", crash=True)

    def test_streaming_processes_with_worker_crash(self, setup, clean_serial):
        self.check(
            setup,
            clean_serial,
            "streaming",
            crash=True,
            stream_processes=True,
        )

    def test_skip_policy_no_retries(self, setup, clean_serial):
        aligner, reads, _ = setup
        pol = FaultPolicy(on_error="skip", injector=injector(reads))
        results, deltas = fault_deltas(
            lambda: api.map_reads(aligner, reads, fault_policy=pol)
        )
        # skip quarantines first-failure reads: parse AND flaky.
        assert results[2] == [] and results[5] == []
        assert deltas.get("fault.retries", 0) == 0
        assert deltas["fault.quarantined"] == 2


class TestWatchdog:
    def test_fallback_downgrades_slow_read(self, setup):
        aligner, reads, _ = setup
        pol = FaultPolicy(
            on_error="skip",
            read_timeout=0.02,
            on_timeout="fallback",
            injector=FaultInjector.from_specs(
                [FaultSpec(read=reads[0].name, kind="slow", delay_s=0.08)]
            ),
        )
        telemetry = Telemetry()
        results, deltas = fault_deltas(
            lambda: api.map_reads(
                aligner, reads, fault_policy=pol, telemetry=telemetry
            )
        )
        assert deltas == {"fault.fallbacks": 1}
        [fault] = telemetry.faults
        assert fault.kind == "timeout" and fault.action == "fallback"
        assert fault.read == reads[0].name
        assert results[0], "fallback still aligns the read"

    def test_skip_quarantines_slow_read(self, setup):
        aligner, reads, _ = setup
        pol = FaultPolicy(
            on_error="skip",
            read_timeout=0.02,
            on_timeout="skip",
            injector=FaultInjector.from_specs(
                [FaultSpec(read=reads[0].name, kind="slow", delay_s=0.08)]
            ),
        )
        telemetry = Telemetry()
        results, deltas = fault_deltas(
            lambda: api.map_reads(
                aligner, reads, fault_policy=pol, telemetry=telemetry
            )
        )
        assert deltas == {"fault.quarantined": 1}
        assert results[0] == []
        [fault] = telemetry.faults
        assert fault.kind == "timeout" and fault.action == "quarantined"

    def test_no_timeout_no_overhead_counters(self, setup):
        aligner, reads, _ = setup
        pol = FaultPolicy(on_error="retry", read_timeout=30.0)
        _, deltas = fault_deltas(
            lambda: api.map_reads(aligner, reads, fault_policy=pol)
        )
        assert deltas == {}


class TestQuarantineSidecar:
    def test_sidecar_files_written(self, setup, tmp_path):
        from repro.seq.fasta import read_fastq

        aligner, reads, _ = setup
        sidecar = tmp_path / "failed.fastq"
        pol = FaultPolicy(
            on_error="retry",
            max_retries=1,
            failed_reads=str(sidecar),
            injector=injector(reads),
        )
        api.map_reads(aligner, reads, fault_policy=pol)
        back = read_fastq(sidecar)
        assert [r.name for r in back] == [reads[2].name]
        assert back[0].seq == reads[2].seq
        reasons = [
            json.loads(line)
            for line in (
                tmp_path / "failed.fastq.reasons.jsonl"
            ).read_text().splitlines()
        ]
        assert {r["read"] for r in reasons} == {reads[2].name}
        assert all(
            r["action"] == "quarantined" and r["attempts"] == 2
            for r in reasons
        )

    def test_sidecar_empty_on_clean_run(self, setup, tmp_path):
        aligner, reads, _ = setup
        sidecar = tmp_path / "failed.fastq"
        pol = FaultPolicy(on_error="skip", failed_reads=str(sidecar))
        api.map_reads(aligner, reads, fault_policy=pol)
        assert sidecar.read_text() == ""
        assert (tmp_path / "failed.fastq.reasons.jsonl").read_text() == ""

    def test_write_quarantine_counts(self, tmp_path):
        from repro.seq.records import SeqRecord

        rec = SeqRecord.from_str("q1", "ACGT")
        faults = [
            FaultRecord("q1", "error", "boom", 3, "quarantined", record=rec),
            FaultRecord("f1", "timeout", "slow", 1, "fallback"),
        ]
        path = tmp_path / "side.fastq"
        assert write_quarantine(str(path), faults) == 1
        assert "@q1" in path.read_text()
        lines = (tmp_path / "side.fastq.reasons.jsonl").read_text().splitlines()
        assert len(lines) == 2  # fallbacks logged too


class TestManifestAndReport:
    def test_metrics_manifest_has_faults(self, setup, tmp_path):
        import json as _json

        from repro.core.driver import ParallelDriver
        from repro.obs.schema import validate

        aligner, reads, _ = setup
        driver = ParallelDriver(
            aligner,
            backend="serial",
            workers=1,
            fault_policy=FaultPolicy(
                on_error="skip", injector=injector(reads)
            ),
        )
        driver.run(reads)
        manifest = driver.metrics()
        assert manifest["schema_version"] == 9
        assert manifest["config"]["on_error"] == "skip"
        faults = manifest["faults"]
        assert faults["n_faults"] == len(faults["quarantined"]) + len(
            faults["fallbacks"]
        ) >= 1
        from pathlib import Path

        schema = _json.loads(
            (
                Path(__file__).parents[2] / "benchmarks" / "metrics_schema.json"
            ).read_text()
        )
        assert validate(manifest, schema) == []

    def test_report_renders_fault_lines(self, setup):
        from repro.core.driver import ParallelDriver
        from repro.obs.report import render_metrics

        aligner, reads, _ = setup
        driver = ParallelDriver(
            aligner,
            backend="serial",
            workers=1,
            fault_policy=FaultPolicy(
                on_error="skip", injector=injector(reads)
            ),
        )
        driver.run(reads)
        text = render_metrics([driver.metrics()])
        assert "Faults (" in text
        assert reads[2].name in text


class TestCLI:
    def test_chaos_run_exits_zero_and_quarantines(self, setup, tmp_path):
        from repro.cli import main
        from repro.seq.fasta import read_fastq, write_fasta, write_fastq

        _, reads, _ = setup
        ref = tmp_path / "ref.fa"
        from repro.seq.records import SeqRecord

        # Reference = the genome the fixture reads came from.
        genome = setup[0].genome
        write_fasta(ref, list(genome))
        rq = tmp_path / "reads.fq"
        write_fastq(rq, reads)
        spec = tmp_path / "faults.json"
        spec.write_text(
            json.dumps(
                [
                    {"read": reads[2].name, "kind": "parse"},
                    {"read": reads[5].name, "kind": "flaky"},
                ]
            )
        )
        out = tmp_path / "out.paf"
        sidecar = tmp_path / "failed.fastq"
        metrics = tmp_path / "metrics.json"
        rc = main(
            [
                "map",
                str(ref),
                str(rq),
                "-o",
                str(out),
                "--preset",
                "test",
                "--on-error",
                "retry",
                "--max-retries",
                "1",
                "--inject-faults",
                str(spec),
                "--failed-reads",
                str(sidecar),
                "--metrics",
                str(metrics),
            ]
        )
        assert rc == 0
        assert [r.name for r in read_fastq(sidecar)] == [reads[2].name]
        manifest = json.loads(metrics.read_text())
        assert manifest["faults"]["n_faults"] == 1
        assert manifest["config"]["on_error"] == "retry"
        # The flaky read recovered: its lines are in the PAF output.
        assert reads[2].name not in out.read_text()

    def test_bad_on_error_flag_rejected(self, tmp_path):
        from repro.cli import main

        rc = main(
            [
                "map",
                "nope.fa",
                "nope.fq",
                "--on-error",
                "retry",
                "--max-retries",
                "-2",
            ]
        )
        assert rc == 2
