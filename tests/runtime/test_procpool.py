"""Tests for the process-pool backend, backend dispatch, and ParallelDriver."""

import io
import pickle

import pytest

from repro.core.aligner import Aligner, AlignerConfig
from repro.core.alignment import to_paf
from repro.core.driver import ParallelDriver
from repro.errors import ReproError, SchedulerError
from repro.index.store import save_index
from repro.api import map_reads
from repro.runtime.parallel import BACKENDS
from repro.runtime.procpool import _map_reads_processes, plan_chunks
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator


@pytest.fixture(scope="module")
def setup(small_genome, tmp_path_factory):
    sim = ReadSimulator.preset(small_genome, "pacbio")
    sim.length_model = LengthModel(mean=550.0, sigma=0.4, max_length=1200)
    reads = list(sim.simulate(8, seed=71))
    aligner = Aligner(small_genome, preset="test")
    index_path = tmp_path_factory.mktemp("idx") / "ref.mmi"
    save_index(aligner.index, index_path)
    return aligner, reads, str(index_path)


def paf_lines(results):
    return [to_paf(a) for alns in results for a in alns]


class PoisonRecord:
    """Read whose sequence access blows up inside the worker only."""

    def __init__(self, name, length):
        self.name = name
        self._length = length

    def __len__(self):
        return self._length

    @property
    def codes(self):
        raise RuntimeError("poisoned codes")


@pytest.fixture(scope="module")
def serial_paf(setup):
    aligner, reads, _ = setup
    return paf_lines(map_reads(aligner, reads, backend="serial"))


class TestBackendEquivalence:
    """Satellite: byte-identical PAF across all backends/worker counts."""

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("longest_first", [True, False])
    def test_identical_paf(self, setup, serial_paf, backend, workers, longest_first):
        if backend == "serial" and workers > 1:
            pytest.skip("serial ignores worker count")
        aligner, reads, index_path = setup
        results = map_reads(
            aligner,
            reads,
            backend=backend,
            workers=workers,
            longest_first=longest_first,
            chunk_reads=3,
            index_path=index_path,
        )
        assert paf_lines(results) == serial_paf

    def test_unknown_backend_raises(self, setup):
        aligner, reads, _ = setup
        with pytest.raises(SchedulerError):
            map_reads(aligner, reads, backend="gpu")
        assert set(BACKENDS) == {"serial", "threads", "processes", "streaming"}


class TestChunkPlanning:
    def test_bounds_and_coverage(self, setup):
        _, reads, _ = setup
        chunks = plan_chunks(reads, chunk_reads=3, chunk_bases=10**9)
        assert all(len(c.indices) <= 3 for c in chunks)
        covered = sorted(i for c in chunks for i in c.indices)
        assert covered == list(range(len(reads)))

    def test_base_bound_splits(self, setup):
        _, reads, _ = setup
        limit = max(len(r) for r in reads)
        chunks = plan_chunks(reads, chunk_reads=100, chunk_bases=limit)
        # No chunk of 2+ reads may exceed the base budget.
        for c in chunks:
            assert len(c.indices) == 1 or c.bases <= limit

    def test_longest_first_order(self, setup):
        _, reads, _ = setup
        chunks = plan_chunks(reads, chunk_reads=2, longest_first=True)
        first = [len(reads[c.indices[0]]) for c in chunks]
        assert first == sorted(first, reverse=True)

    def test_oversized_read_gets_own_chunk(self, setup):
        _, reads, _ = setup
        chunks = plan_chunks(reads, chunk_reads=100, chunk_bases=1)
        assert all(len(c.indices) == 1 for c in chunks)

    def test_bad_bounds_raise(self, setup):
        _, reads, _ = setup
        with pytest.raises(SchedulerError):
            plan_chunks(reads, chunk_reads=0)
        with pytest.raises(SchedulerError):
            plan_chunks(reads, chunk_bases=0)


class TestProcessBackend:
    def test_worker_error_names_read(self, setup):
        aligner, reads, index_path = setup
        bad = PoisonRecord("poison-pill", 500)
        batch = reads[:2] + [bad] + reads[2:4]
        with pytest.raises(SchedulerError, match="poison-pill"):
            _map_reads_processes(
                aligner, batch, processes=2, chunk_reads=1, index_path=index_path
            )

    def test_bad_process_count(self, setup):
        aligner, reads, _ = setup
        with pytest.raises(SchedulerError):
            _map_reads_processes(aligner, reads, processes=0)

    def test_empty_input(self, setup):
        aligner, _, index_path = setup
        assert _map_reads_processes(aligner, [], processes=2, index_path=index_path) == []

    def test_without_index_file_serializes_temp(self, setup, serial_paf):
        """index_path=None: the index is serialized once and shared."""
        aligner, reads, _ = setup
        results = _map_reads_processes(aligner, reads, processes=2, chunk_reads=4)
        assert paf_lines(results) == serial_paf

    def test_config_round_trips_by_pickle(self, setup, small_genome):
        aligner, reads, _ = setup
        cfg = pickle.loads(pickle.dumps(aligner.config))
        assert isinstance(cfg, AlignerConfig)
        rebuilt = cfg.build(small_genome, index=aligner.index)
        a = paf_lines([rebuilt.map_read(reads[0])])
        b = paf_lines([aligner.map_read(reads[0])])
        assert a == b


class TestParallelDriver:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_run_merges_worker_stage_timers(self, setup, serial_paf, backend):
        aligner, reads, index_path = setup
        driver = ParallelDriver(
            aligner, backend=backend, workers=2, chunk_reads=3,
            index_path=index_path,
        )
        out = io.StringIO()
        results = driver.run(reads, output=out)
        assert out.getvalue().splitlines() == serial_paf
        assert driver.n_mapped(results) >= 6
        assert driver.profile.seconds("Seed & Chain") > 0
        assert driver.profile.seconds("Align") > 0
        assert driver.profile.seconds("Align") > driver.profile.seconds("Seed & Chain")

    def test_from_index_file(self, setup, small_genome, serial_paf):
        _, reads, index_path = setup
        driver = ParallelDriver.from_index_file(
            small_genome, index_path, preset="test",
            backend="processes", workers=2,
        )
        assert driver.profile.seconds("Load Index") > 0
        assert driver.index_path == index_path
        out = io.StringIO()
        driver.run(reads, output=out)
        assert out.getvalue().splitlines() == serial_paf

    def test_unknown_backend_raises(self, setup):
        aligner, _, _ = setup
        with pytest.raises(ReproError):
            ParallelDriver(aligner, backend="quantum")
