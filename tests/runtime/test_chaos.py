"""Unit tests for the chaos-injection module (`repro.testing.chaos`).

These cover the spec language, the per-process occurrence counters,
the injectable (non-lethal) actions, and the seeded kill schedule the
resume property test draws from. The lethal actions (``kill``,
``torn``) are exercised for real — in subprocesses — by
``tests/integration/test_resume.py``.
"""

from __future__ import annotations

import errno

import pytest

from repro.testing import chaos


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    """Every test starts and ends with chaos disarmed."""
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    chaos.reset()
    yield
    chaos.reset()


class TestParseSpec:
    def test_single_directive(self):
        assert chaos.parse_spec("kill@output.write:3") == {
            "output.write": [("kill", 3)]
        }

    def test_multiple_directives(self):
        spec = "kill@output.write:1, enospc@journal.append:2"
        assert chaos.parse_spec(spec) == {
            "output.write": [("kill", 1)],
            "journal.append": [("enospc", 2)],
        }

    def test_two_directives_same_point(self):
        spec = "enospc@output.write:1,enospc@output.write:3"
        assert chaos.parse_spec(spec) == {
            "output.write": [("enospc", 1), ("enospc", 3)]
        }

    def test_empty_spec(self):
        assert chaos.parse_spec("") == {}
        assert chaos.parse_spec(" , ") == {}

    @pytest.mark.parametrize(
        "bad",
        [
            "kill@point",  # no :nth
            "kill@point:zero",  # non-integer nth
            "kill@point:0",  # nth < 1
            "explode@point:1",  # unknown action
            "kill@:1",  # empty point
        ],
    )
    def test_bad_directives_raise(self, bad):
        with pytest.raises(ValueError):
            chaos.parse_spec(bad)


class TestChaosPoint:
    def test_disarmed_is_noop(self):
        assert chaos.ARMED is False
        chaos.chaos_point("output.write")  # nothing happens

    def test_enospc_fires_on_nth_occurrence(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "enospc@output.write:3")
        chaos.reset()
        assert chaos.ARMED is True
        chaos.chaos_point("output.write")  # 1st
        chaos.chaos_point("output.write")  # 2nd
        with pytest.raises(OSError) as err:
            chaos.chaos_point("output.write")  # 3rd
        assert err.value.errno == errno.ENOSPC
        # Only the nth occurrence acts; the 4th passes again.
        chaos.chaos_point("output.write")

    def test_other_points_unaffected(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "enospc@output.write:1")
        chaos.reset()
        chaos.chaos_point("journal.append")
        chaos.chaos_point("output.fsync")

    def test_reset_rereads_environment(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "enospc@p:1")
        chaos.reset()
        with pytest.raises(OSError):
            chaos.chaos_point("p")
        monkeypatch.delenv(chaos.CHAOS_ENV)
        chaos.reset()
        assert chaos.ARMED is False
        chaos.chaos_point("p")  # disarmed again

    def test_tear_writes_half_the_payload(self, tmp_path):
        path = tmp_path / "torn.bin"
        with open(path, "wb") as fh:
            chaos._tear(fh, b"0123456789")
        assert path.read_bytes() == b"01234"

    def test_tear_handles_text_handles_and_none(self, tmp_path):
        path = tmp_path / "torn.txt"
        with open(path, "w") as fh:
            chaos._tear(fh, "abcdef")
        assert path.read_text() == "abc"
        chaos._tear(None, b"x")  # nothing to tear: no-op


class TestSeededSchedule:
    def test_deterministic(self):
        assert chaos.seeded_schedule(7) == chaos.seeded_schedule(7)

    def test_seeds_differ(self):
        schedules = {tuple(chaos.seeded_schedule(s)) for s in range(8)}
        assert len(schedules) > 1

    def test_directives_are_valid_and_unique(self):
        for seed in range(5):
            sched = chaos.seeded_schedule(seed, n_points=4, max_nth=3)
            assert len(sched) == 4
            assert len(set(sched)) == 4
            for directive in sched:
                parsed = chaos.parse_spec(directive)
                (point, [(action, nth)]) = next(iter(parsed.items()))
                assert point in chaos.KILL_POINTS
                assert action == "kill"
                assert 1 <= nth <= 3
