"""Property-based tests for the discrete-event pipeline simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.pipeline import PipelineStageCost, simulate_pipeline

costs = st.lists(
    st.tuples(
        st.floats(0, 5, allow_nan=False),
        st.floats(0, 5, allow_nan=False),
        st.floats(0, 5, allow_nan=False),
    ),
    min_size=0,
    max_size=20,
).map(lambda xs: [PipelineStageCost(*x) for x in xs])


class TestPipelineProperties:
    @given(costs)
    @settings(max_examples=80, deadline=None)
    def test_more_threads_never_slower(self, batches):
        s1 = simulate_pipeline(batches, threads=1)
        s2 = simulate_pipeline(batches, threads=2)
        s3 = simulate_pipeline(batches, threads=3)
        assert s3 <= s2 + 1e-9
        assert s2 <= s1 + 1e-9

    @given(costs)
    @settings(max_examples=60, deadline=None)
    def test_lower_bounds(self, batches):
        """No schedule beats the per-resource work lower bounds."""
        if not batches:
            return
        total_compute = sum(b.compute for b in batches)
        total_io = sum(b.load + b.output for b in batches)
        for threads in (2, 3):
            span = simulate_pipeline(batches, threads=threads)
            assert span >= total_compute - 1e-9
            if threads == 2:
                # One thread does ALL the I/O in the 2-thread pipeline.
                assert span >= total_io - 1e-9

    @given(costs)
    @settings(max_examples=60, deadline=None)
    def test_three_thread_critical_path(self, batches):
        """3-thread makespan is within lead-in/drain of the bottleneck."""
        if not batches:
            return
        span = simulate_pipeline(batches, threads=3)
        bottleneck = max(
            sum(b.load for b in batches),
            sum(b.compute for b in batches),
            sum(b.output for b in batches),
        )
        slack = sum(
            max(b.load, b.compute, b.output) for b in batches[:1]
        ) + max((b.load + b.compute + b.output for b in batches), default=0.0)
        assert bottleneck - 1e-9 <= span <= bottleneck + 2 * slack + 1e-9

    @given(costs)
    @settings(max_examples=40, deadline=None)
    def test_serial_is_sum(self, batches):
        expected = sum(b.load + b.compute + b.output for b in batches)
        assert simulate_pipeline(batches, threads=1) == pytest.approx(expected)
