"""Tests for batching, affinity, schedulers, pipelines, streams, mmio."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.machine.gpu import GpuModel
from repro.runtime.affinity import COMPACT, OPTIMIZED, SCATTER, assign_threads
from repro.runtime.batch import make_batches, sort_longest_first
from repro.runtime.gpu_streams import KernelTask, MemoryPool, StreamScheduler
from repro.runtime.mmio import load_bytes_buffered, load_bytes_mmap
from repro.runtime.pipeline import PipelineStageCost, simulate_pipeline
from repro.runtime.scheduler import (
    heterogeneous_makespan,
    lpt_makespan,
    simulate_makespan,
    worker_speeds,
)
from repro.runtime.threaded import ThreadedPipeline
from repro.seq.records import SeqRecord

KNL_HT = {1: 1.00, 2: 1.12, 3: 1.18, 4: 1.21}


def _reads(lengths):
    return [
        SeqRecord(f"r{i}", np.zeros(n, dtype=np.uint8)) for i, n in enumerate(lengths)
    ]


class TestBatch:
    def test_batches_respect_budget(self):
        batches = make_batches(_reads([300, 300, 300, 300]), batch_bases=600)
        assert [len(b) for b in batches] == [2, 2]

    def test_oversize_read_own_batch(self):
        batches = make_batches(_reads([1000, 10]), batch_bases=500)
        assert len(batches[0]) == 1

    def test_empty(self):
        assert make_batches([], 100) == []

    def test_bad_budget(self):
        with pytest.raises(SchedulerError):
            make_batches([], 0)

    def test_sort_longest_first(self):
        out = sort_longest_first(_reads([10, 500, 200]))
        assert [len(r) for r in out] == [500, 200, 10]


class TestAffinity:
    def test_compact_fills_cores(self):
        counts = assign_threads(COMPACT, 8, cores=64, threads_per_core=4)
        assert counts == {0: 4, 1: 4}

    def test_scatter_spreads(self):
        counts = assign_threads(SCATTER, 8, cores=64, threads_per_core=4)
        assert all(v == 1 for v in counts.values()) and len(counts) == 8

    def test_optimized_reserves_last_core(self):
        counts = assign_threads(OPTIMIZED, 63, cores=64, threads_per_core=4)
        assert 63 not in counts

    def test_optimized_spills_at_full_subscription(self):
        counts = assign_threads(OPTIMIZED, 256, cores=64, threads_per_core=4)
        assert sum(counts.values()) == 256
        assert counts[63] == 4  # reservation given up at saturation

    def test_oversubscription_raises(self):
        with pytest.raises(SchedulerError):
            assign_threads(SCATTER, 300, cores=64, threads_per_core=4)

    def test_bad_topology(self):
        with pytest.raises(SchedulerError):
            assign_threads(SCATTER, 0, cores=64, threads_per_core=4)


class TestScheduler:
    def test_lpt_single_worker_sums(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_lpt_perfect_split(self):
        assert lpt_makespan([3.0, 3.0, 2.0, 2.0, 1.0, 1.0], 2, presorted=True) == 6.0

    def test_longest_first_beats_worst_order(self):
        costs = [8.0] + [1.0] * 8
        bad = lpt_makespan([1.0] * 8 + [8.0], 2)  # big job lands last
        good = lpt_makespan(costs, 2)  # big job first
        assert good < bad

    def test_negative_cost_raises(self):
        with pytest.raises(SchedulerError):
            lpt_makespan([-1.0], 2)

    def test_worker_speeds_scatter_vs_compact(self):
        s_scatter = worker_speeds(8, 64, 4, KNL_HT, SCATTER)
        s_compact = worker_speeds(8, 64, 4, KNL_HT, COMPACT)
        assert sum(s_scatter) > sum(s_compact)  # scatter uses more cores

    def test_heterogeneous_prefers_fast_worker(self):
        # Work splits ~2:1 between a full-speed and a half-speed worker.
        span = heterogeneous_makespan([1.0] * 9, [1.0, 0.5])
        assert span <= 7.0

    def test_simulate_makespan_scales(self):
        costs = [0.01] * 640
        t1 = simulate_makespan(costs, 1, 64, 4, KNL_HT)
        t64 = simulate_makespan(costs, 64, 64, 4, KNL_HT)
        t256 = simulate_makespan(costs, 256, 64, 4, KNL_HT)
        assert t64 < t1 / 50  # near-linear on physical cores
        assert t256 < t64  # hyper-threads still help a bit
        assert t256 > t64 / 2  # ...but far from 4x (the paper's 21%)

    def test_serial_fraction_caps_speedup(self):
        costs = [0.01] * 640
        t1 = simulate_makespan(costs, 1, 64, 4, KNL_HT, serial_seconds=0.5)
        t64 = simulate_makespan(costs, 64, 64, 4, KNL_HT, serial_seconds=0.5)
        assert t1 / t64 < 13  # Amdahl bound with 0.5s serial of ~6.9s


class TestPipeline:
    def test_one_thread_is_serial_sum(self):
        batches = [PipelineStageCost(1, 2, 1)] * 3
        assert simulate_pipeline(batches, threads=1) == 12.0

    def test_three_thread_hides_io(self):
        batches = [PipelineStageCost(1, 4, 1)] * 5
        span3 = simulate_pipeline(batches, threads=3)
        # Compute dominates: total ~= sum(compute) + lead-in + drain.
        assert span3 == pytest.approx(1 + 5 * 4 + 1)

    def test_two_thread_between_one_and_three(self):
        batches = [PipelineStageCost(1, 2, 1)] * 6
        s1 = simulate_pipeline(batches, threads=1)
        s2 = simulate_pipeline(batches, threads=2)
        s3 = simulate_pipeline(batches, threads=3)
        assert s3 <= s2 <= s1

    def test_io_heavy_favors_three_threads(self):
        """§4.4.4: on KNL the I/O is too slow for a 2-thread pipeline."""
        batches = [PipelineStageCost(3, 4, 3)] * 6
        s2 = simulate_pipeline(batches, threads=2)
        s3 = simulate_pipeline(batches, threads=3)
        assert s3 < s2

    def test_empty(self):
        assert simulate_pipeline([], threads=2) == 0.0

    def test_bad_thread_count(self):
        with pytest.raises(SchedulerError):
            simulate_pipeline([], threads=4)

    def test_negative_cost_raises(self):
        with pytest.raises(SchedulerError):
            PipelineStageCost(-1, 0, 0)


class TestStreams:
    def test_memory_limits_concurrency(self):
        sched = StreamScheduler(gpu=GpuModel(), n_streams=128)
        big = KernelTask(duration_s=0.1, mem_bytes=2 * 1024**3)  # 2 GB
        assert sched.effective_concurrency([big]) == 8

    def test_makespan_scales_with_streams(self):
        tasks = [KernelTask(0.01, 1024) for _ in range(64)]
        t1 = StreamScheduler(n_streams=1).makespan(tasks)
        t64 = StreamScheduler(n_streams=64).makespan(tasks)
        assert t64 < t1 / 40

    def test_128_streams_sublinear(self):
        tasks = [KernelTask(0.01, 1024) for _ in range(256)]
        t64 = StreamScheduler(n_streams=64).makespan(tasks)
        t128 = StreamScheduler(n_streams=128).makespan(tasks)
        assert t128 < t64  # still faster
        assert t128 > t64 * 64 / 128  # but not 2x (Figure 7's tail)

    def test_memory_pool_saves_alloc(self):
        tasks = [KernelTask(0.001, 1 << 20) for _ in range(100)]
        pool = MemoryPool(slot_bytes=1 << 21, n_slots=128)
        with_pool = StreamScheduler(n_streams=16, pool=pool).makespan(tasks)
        without = StreamScheduler(n_streams=16, pool=None).makespan(tasks)
        assert pool.hits == 100 and pool.misses == 0
        assert with_pool < without

    def test_bad_task(self):
        with pytest.raises(SchedulerError):
            KernelTask(-0.1, 0)


class TestMmio:
    def test_both_loaders_identical_content(self, tmp_path):
        path = tmp_path / "blob.bin"
        payload = bytes(range(256)) * 1000
        path.write_bytes(payload)
        buf, t_buf = load_bytes_buffered(path)
        mapped, t_map = load_bytes_mmap(path)
        assert (buf == mapped).all()
        assert t_buf >= 0 and t_map >= 0

    def test_mmap_call_is_fast(self, tmp_path):
        path = tmp_path / "big.bin"
        path.write_bytes(b"\0" * (32 << 20))  # 32 MB
        _, t_map = load_bytes_mmap(path)
        assert t_map < 0.05  # mapping is near-instant regardless of size


class TestThreadedPipeline:
    def test_processes_all_items(self):
        out = []
        pipe = ThreadedPipeline(
            load_fn=lambda x: x * 2,
            compute_fn=lambda x: x + 1,
            output_fn=out.append,
        )
        n = pipe.run(list(range(20)))
        assert n == 20
        assert sorted(out) == [x * 2 + 1 for x in range(20)]

    def test_order_preserved(self):
        out = []
        pipe = ThreadedPipeline(lambda x: x, lambda x: x, out.append)
        pipe.run(list(range(50)))
        assert out == list(range(50))

    def test_exception_propagates(self):
        def boom(x):
            raise ValueError("bad batch")

        pipe = ThreadedPipeline(lambda x: x, boom, lambda x: None)
        with pytest.raises(ValueError):
            pipe.run([1, 2, 3])

    def test_bad_queue_size(self):
        pipe = ThreadedPipeline(lambda x: x, lambda x: x, lambda x: None, queue_size=0)
        with pytest.raises(SchedulerError):
            pipe.run([1])

    def test_empty_input(self):
        pipe = ThreadedPipeline(lambda x: x, lambda x: x, lambda x: None)
        assert pipe.run([]) == 0
