"""Tests for the multi-threaded batch mapper."""

import pytest

from repro.core.aligner import Aligner
from repro.core.alignment import to_paf
from repro.errors import SchedulerError
from repro.runtime.parallel import parallel_map_reads
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator


@pytest.fixture(scope="module")
def setup(small_genome):
    sim = ReadSimulator.preset(small_genome, "pacbio")
    sim.length_model = LengthModel(mean=700.0, sigma=0.3, max_length=1400)
    reads = sim.simulate(8, seed=71)
    return Aligner(small_genome, preset="test"), list(reads)


class TestParallel:
    def test_results_match_serial(self, setup):
        aligner, reads = setup
        serial = [
            [to_paf(a) for a in aligner.map_read(r, with_cigar=False)]
            for r in reads
        ]
        for threads in (2, 4):
            par = parallel_map_reads(aligner, reads, threads=threads, with_cigar=False)
            assert [[to_paf(a) for a in alns] for alns in par] == serial

    def test_order_preserved_despite_longest_first(self, setup):
        aligner, reads = setup
        out = parallel_map_reads(aligner, reads, threads=3, with_cigar=False)
        for read, alns in zip(reads, out):
            for a in alns:
                assert a.qname == read.name

    def test_single_thread_path(self, setup):
        aligner, reads = setup
        out = parallel_map_reads(aligner, reads[:2], threads=1, with_cigar=False)
        assert len(out) == 2

    def test_bad_threads_raises(self, setup):
        aligner, reads = setup
        with pytest.raises(SchedulerError):
            parallel_map_reads(aligner, reads, threads=0)

    def test_empty_input(self, setup):
        aligner, _ = setup
        assert parallel_map_reads(aligner, [], threads=4) == []

    def test_exception_propagates(self, setup):
        aligner, reads = setup
        bad = reads[0]
        bad2 = type(bad)("broken", bad.codes)
        bad2.codes = "not an array"  # will blow up inside map_read
        with pytest.raises(Exception):
            parallel_map_reads(aligner, [bad2] * 3, threads=2)

    def test_error_names_failing_read(self, setup):
        aligner, reads = setup

        class Poison:
            name = "exploding-read"

            def __len__(self):
                return 500

            @property
            def codes(self):
                raise RuntimeError("poisoned codes")

        with pytest.raises(SchedulerError, match="exploding-read"):
            parallel_map_reads(aligner, reads[:2] + [Poison()] + reads[2:], threads=2)

    def test_first_error_cancels_pending(self, setup):
        """Not-yet-started reads are cancelled, not drained (satellite)."""
        import time

        calls = []

        class FlakyAligner:
            def seed_and_chain(self, read):
                calls.append(read.name)
                time.sleep(0.05)
                if read.name == "boom":
                    raise RuntimeError("kernel panic")
                return None

            def align_plan(self, read, plan, with_cigar=True):
                return []

        _, reads = setup
        # longest_first off: submission order == input order, so "boom"
        # is one of the first two reads picked up by the two workers.
        batch = [type(reads[0])("boom", reads[0].codes)] + [
            type(reads[0])(f"r{i}", reads[0].codes) for i in range(7)
        ]
        with pytest.raises(SchedulerError, match="boom"):
            parallel_map_reads(
                FlakyAligner(), batch, threads=2, longest_first=False
            )
        # With draining, all 8 reads would run; cancellation caps it at
        # the in-flight ones plus at most one pickup per worker.
        assert len(calls) <= 4
