"""Unit tests for the write-ahead journal (`repro.runtime.journal`).

Everything here runs in-process against real files in ``tmp_path`` —
record CRC framing, torn-tail replay, the WAL commit protocol, and the
recovery pass (identity check, commit verification, torn-output
truncation). The subprocess kill-9 matrix lives in
``tests/integration/test_resume.py``; these tests pin the mechanisms
it relies on.
"""

from __future__ import annotations

import json
import os
import zlib

import pytest

from repro.obs.events import EVENTS
from repro.runtime.journal import (
    JOURNAL_NAME,
    JOURNAL_VERSION,
    JournalError,
    JournalFile,
    RunJournal,
    decode_record,
    encode_record,
    journal_events,
)

IDENTITY = {
    "reads": "/data/reads.fq",
    "sam": False,
    "with_cigar": True,
    "preset": "test",
    "engine": "numpy",
}


def make_journal(run_dir, **kwargs):
    kwargs.setdefault("identity", IDENTITY)
    kwargs.setdefault("commit_reads", 2)
    return RunJournal(str(run_dir), **kwargs)


class TestRecordFraming:
    def test_round_trip(self):
        rec = {"t": "commit", "reads": 7, "offset": 123, "crc32": 99}
        line = encode_record(rec)
        assert line.endswith(b"\n")
        back = decode_record(line.rstrip(b"\n"))
        assert back == rec

    def test_crc_is_over_canonical_form(self):
        # Same record, two key orders: identical encoding.
        a = encode_record({"x": 1, "y": 2})
        b = encode_record({"y": 2, "x": 1})
        assert a == b

    def test_flipped_byte_detected(self):
        line = encode_record({"t": "commit", "reads": 3}).rstrip(b"\n")
        corrupt = line.replace(b'"reads":3', b'"reads":4')
        assert decode_record(corrupt) is None

    @pytest.mark.parametrize(
        "junk",
        [b"", b"not json", b'{"no": "crc"}', b'["list", 1]', b'"str"'],
    )
    def test_garbage_rejected(self, junk):
        assert decode_record(junk) is None


class TestJournalFile:
    def test_append_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jf = JournalFile(path)
        jf.append({"t": "a", "n": 1})
        jf.append({"t": "b", "n": 2}, sync=True)
        jf.close()
        records, torn = JournalFile.replay(path)
        assert [r["t"] for r in records] == ["a", "b"]
        assert torn == 0

    def test_replay_missing_file(self, tmp_path):
        records, torn = JournalFile.replay(str(tmp_path / "absent"))
        assert records == [] and torn == 0

    def test_torn_tail_stops_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        jf = JournalFile(path)
        jf.append({"t": "a"})
        jf.append({"t": "b"})
        jf.close()
        # A mid-append crash: half a record frozen at the tail.
        whole = encode_record({"t": "c", "big": "x" * 64})
        with open(path, "ab") as fh:
            fh.write(whole[: len(whole) // 2])
        records, torn = JournalFile.replay(path)
        assert [r["t"] for r in records] == ["a", "b"]
        assert torn == 1

    def test_nothing_after_torn_record_is_trusted(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "wb") as fh:
            fh.write(encode_record({"t": "a"}))
            fh.write(b"garbage line\n")
            fh.write(encode_record({"t": "late"}))  # unknown provenance
        records, torn = JournalFile.replay(path)
        assert [r["t"] for r in records] == ["a"]
        assert torn == 1


class TestFreshRun:
    def test_run_start_header(self, tmp_path):
        j = make_journal(tmp_path / "run")
        j.close()
        records, _ = JournalFile.replay(j.journal_path)
        head = records[0]
        assert head["t"] == "run_start"
        assert head["v"] == JOURNAL_VERSION
        assert head["identity"] == IDENTITY
        assert head["commit_reads"] == 2

    def test_commit_cadence(self, tmp_path):
        j = make_journal(tmp_path / "run", commit_reads=2)
        for i in range(5):
            j.write_text(f"line{i}\n")
            j.read_done()
        j.close()  # crash-equivalent: no final commit
        commits = [
            r
            for r in JournalFile.replay(j.journal_path)[0]
            if r["t"] == "commit"
        ]
        assert [c["reads"] for c in commits] == [2, 4]
        # offsets and CRCs are cumulative and verifiable.
        with open(j.output_path, "rb") as fh:
            data = fh.read()
        for c in commits:
            assert zlib.crc32(data[: c["offset"]]) == c["crc32"]

    def test_complete_commits_the_tail(self, tmp_path):
        j = make_journal(tmp_path / "run", commit_reads=2)
        for i in range(5):
            j.write_text(f"line{i}\n")
            j.read_done()
        j.complete()
        records, _ = JournalFile.replay(j.journal_path)
        assert records[-1]["t"] == "complete"
        assert records[-1]["reads"] == 5
        assert records[-2]["t"] == "commit" and records[-2]["reads"] == 5
        assert j.summary()["completed"] is True

    def test_commit_skips_when_nothing_new(self, tmp_path):
        j = make_journal(tmp_path / "run")
        j.write_text("x\n")
        j.read_done()
        j.read_done()  # commit fires at cadence 2
        before = j.counters["journal.commits"]
        j.commit()
        j.commit()
        assert j.counters["journal.commits"] == before
        j.close()

    def test_refuses_existing_journal_without_resume(self, tmp_path):
        make_journal(tmp_path / "run").close()
        with pytest.raises(JournalError, match="resume"):
            make_journal(tmp_path / "run")

    def test_refuses_resume_without_journal(self, tmp_path):
        with pytest.raises(JournalError, match="nothing to resume"):
            make_journal(tmp_path / "fresh", resume=True)

    def test_commit_reads_validated(self, tmp_path):
        with pytest.raises(JournalError):
            make_journal(tmp_path / "run", commit_reads=0)


class TestRecovery:
    def interrupted(self, tmp_path, n_committed=4, n_torn=1):
        """A run dir killed after ``n_committed`` reads committed plus
        ``n_torn`` uncommitted reads' output frozen on disk."""
        j = make_journal(tmp_path / "run", commit_reads=2)
        for i in range(n_committed + n_torn):
            j.write_text(f"read{i}: " + "p" * 20 + "\n")
            j.read_done()
        # Simulate the crash: flush output (bytes on disk) but the
        # post-commit tail never got a commit record.
        j._out.flush()
        j.close()
        return tmp_path / "run"

    def test_resume_restores_committed_state(self, tmp_path):
        run = self.interrupted(tmp_path, n_committed=4, n_torn=1)
        j = make_journal(run, resume=True)
        assert j.resumed
        assert j.reads_done == 4
        assert j.truncated_bytes == len("read4: " + "p" * 20 + "\n")
        assert os.path.getsize(j.output_path) == j.offset
        j.close()

    def test_resumed_run_completes_identically(self, tmp_path):
        # Reference: one uninterrupted run.
        ref = make_journal(tmp_path / "ref", commit_reads=2)
        for i in range(6):
            ref.write_text(f"read{i}: " + "p" * 20 + "\n")
            ref.read_done()
        ref.complete()
        want = open(ref.output_path, "rb").read()

        run = self.interrupted(tmp_path, n_committed=4, n_torn=1)
        j = make_journal(run, resume=True)
        for i in range(j.reads_done, 6):
            j.write_text(f"read{i}: " + "p" * 20 + "\n")
            j.read_done()
        j.complete()
        assert open(j.output_path, "rb").read() == want

    def test_identity_mismatch_refused(self, tmp_path):
        run = self.interrupted(tmp_path)
        changed = dict(IDENTITY, preset="map-pb")
        with pytest.raises(JournalError, match="identity mismatch"):
            RunJournal(str(run), identity=changed, resume=True)

    def test_version_mismatch_refused(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        with open(run / JOURNAL_NAME, "wb") as fh:
            fh.write(
                encode_record(
                    {
                        "t": "run_start",
                        "v": JOURNAL_VERSION + 1,
                        "commit_reads": 2,
                        "identity": IDENTITY,
                    }
                )
            )
        with pytest.raises(JournalError, match="version"):
            make_journal(run, resume=True)

    def test_headerless_journal_refused(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        with open(run / JOURNAL_NAME, "wb") as fh:
            fh.write(encode_record({"t": "commit", "reads": 1}))
        with pytest.raises(JournalError, match="run_start"):
            make_journal(run, resume=True)

    def test_corrupted_output_falls_back_to_earlier_commit(self, tmp_path):
        run = self.interrupted(tmp_path, n_committed=4, n_torn=0)
        # Flip a byte inside the *second* committed region: its CRC no
        # longer matches, so recovery trusts only the first commit.
        with open(run / "output.paf", "r+b") as fh:
            fh.seek(-2, os.SEEK_END)
            fh.write(b"X")
        j = make_journal(run, resume=True)
        assert j.reads_done == 2
        assert os.path.getsize(j.output_path) == j.offset
        j.close()

    def test_output_shorter_than_commit_falls_back(self, tmp_path):
        run = self.interrupted(tmp_path, n_committed=4, n_torn=0)
        size = os.path.getsize(run / "output.paf")
        with open(run / "output.paf", "r+b") as fh:
            fh.truncate(size - 5)
        j = make_journal(run, resume=True)
        assert j.reads_done == 2
        j.close()

    def test_missing_output_restarts_from_zero(self, tmp_path):
        run = self.interrupted(tmp_path, n_committed=4, n_torn=0)
        os.unlink(run / "output.paf")
        j = make_journal(run, resume=True)
        assert j.reads_done == 0 and j.offset == 0
        j.close()

    def test_resume_record_appended(self, tmp_path):
        run = self.interrupted(tmp_path, n_committed=2, n_torn=1)
        j = make_journal(run, resume=True)
        j.close()
        records, _ = JournalFile.replay(j.journal_path)
        res = [r for r in records if r["t"] == "resume"]
        assert len(res) == 1
        assert res[0]["reads"] == 2
        assert res[0]["truncated"] > 0

    def test_read_header(self, tmp_path):
        run = self.interrupted(tmp_path)
        head = RunJournal.read_header(str(run))
        assert head["t"] == "run_start"
        assert head["identity"] == IDENTITY
        with pytest.raises(JournalError):
            RunJournal.read_header(str(tmp_path))


class TestSummaryAndEvents:
    def test_summary_shape(self, tmp_path):
        j = make_journal(tmp_path / "run")
        j.write_text("a\n")
        j.read_done()
        j.complete()
        s = j.summary()
        assert s["run_dir"] == j.run_dir
        assert s["reads_done"] == 1
        assert s["output_bytes"] == 2
        assert s["output_crc32"] == zlib.crc32(b"a\n")
        assert s["resumed"] is False
        assert s["completed"] is True
        json.dumps(s)  # manifest-safe

    def test_journal_events_mirrors_chunk_lifecycle(self, tmp_path):
        j = make_journal(tmp_path / "run")
        with journal_events(j):
            EVENTS.emit("chunk.done", chunk=3, reads=128)
            EVENTS.emit("heartbeat", reads_done=10)  # not mirrored
        EVENTS.emit("chunk.done", chunk=4)  # after detach: not mirrored
        j.close()
        notes = [
            r
            for r in JournalFile.replay(j.journal_path)[0]
            if r["t"] == "note"
        ]
        assert len(notes) == 1
        assert notes[0]["event"] == "chunk.done"
        assert notes[0]["chunk"] == 3

    def test_journal_events_none_is_noop(self):
        with journal_events(None):
            EVENTS.emit("chunk.done", chunk=1)

    def test_note_after_close_is_dropped(self, tmp_path):
        j = make_journal(tmp_path / "run")
        j.close()
        j.note("chunk.done", chunk=9)  # late event: swallowed
