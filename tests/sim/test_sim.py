"""Tests for the read simulator: lengths, errors, origins."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.seq.alphabet import random_codes, revcomp_codes
from repro.sim.errors import CLEAN, NANOPORE_R9, PACBIO_CLR, ErrorProfile, apply_errors
from repro.sim.lengths import LengthModel, lognormal_lengths
from repro.sim.pbsim import ReadSimulator, simulate_reads


class TestLengthModel:
    def test_mean_close(self):
        lm = LengthModel(mean=5000.0, sigma=0.5)
        lengths = lm.sample(50_000, seed=0)
        assert abs(lengths.mean() - 5000) / 5000 < 0.05

    def test_bounds_respected(self):
        lm = LengthModel(mean=500.0, min_length=200, max_length=900)
        lengths = lm.sample(10_000, seed=0)
        assert lengths.min() >= 200 and lengths.max() <= 900

    def test_heavy_tail_raises_max(self):
        body = LengthModel(mean=3000.0, sigma=0.8).sample(20_000, seed=0)
        tailed = LengthModel(mean=3000.0, sigma=0.8, tail_weight=0.02, tail_alpha=1.3).sample(
            20_000, seed=0
        )
        assert tailed.max() > body.max() * 3

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            LengthModel(mean=-1)
        with pytest.raises(SimulationError):
            LengthModel(tail_weight=1.5)
        with pytest.raises(SimulationError):
            LengthModel(min_length=10, max_length=5)

    def test_negative_n(self):
        with pytest.raises(SimulationError):
            LengthModel().sample(-1)

    def test_convenience_wrapper(self):
        lengths = lognormal_lengths(1000, mean=2000, seed=1)
        assert lengths.size == 1000


class TestErrorProfile:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(SimulationError):
            ErrorProfile("bad", 0.1, 0.5, 0.5, 0.5)

    def test_rate_bounds(self):
        with pytest.raises(SimulationError):
            ErrorProfile("bad", 0.9, 1.0, 0.0, 0.0)

    def test_preset_rates(self):
        sub, ins, dele = PACBIO_CLR.rates
        assert ins > dele > sub  # PacBio is insertion-dominated


class TestApplyErrors:
    def test_clean_profile_identity(self):
        codes = random_codes(1000, seed=0)
        out, n = apply_errors(codes, CLEAN, seed=1)
        assert n == 0 and (out == codes).all()

    def test_error_count_scales(self):
        codes = random_codes(50_000, seed=0)
        out, n = apply_errors(codes, PACBIO_CLR, seed=1)
        assert abs(n / codes.size - 0.13) < 0.01

    def test_insertions_dominate_length_change_pacbio(self):
        codes = random_codes(50_000, seed=0)
        out, _ = apply_errors(codes, PACBIO_CLR, seed=1)
        assert out.size > codes.size  # ins rate > del rate

    def test_nanopore_shrinks_or_stays(self):
        codes = random_codes(50_000, seed=0)
        out, _ = apply_errors(codes, NANOPORE_R9, seed=1)
        assert out.size < codes.size  # del rate > ins rate

    def test_empty_template(self):
        out, n = apply_errors(np.empty(0, dtype=np.uint8), PACBIO_CLR, seed=0)
        assert out.size == 0 and n == 0

    @given(st.integers(0, 500), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_output_codes_valid(self, n, seed):
        codes = random_codes(n, seed=0)
        out, _ = apply_errors(codes, NANOPORE_R9, seed=seed)
        if out.size:
            assert out.max() < 4


class TestSimulator:
    def test_read_count_and_truth(self, small_genome):
        reads = simulate_reads(small_genome, 20, platform="pacbio", seed=3)
        assert len(reads) == 20
        for r in reads:
            truth = r.meta["truth"]
            assert truth.chrom == "chr1"
            assert 0 <= truth.start < truth.end <= len(small_genome.get("chr1"))

    def test_forward_read_matches_template_when_clean(self, small_genome):
        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.error_profile = CLEAN
        reads = sim.simulate(50, seed=4)
        for r in reads:
            t = r.meta["truth"]
            template = small_genome.fetch(t.chrom, t.start, t.end)
            if t.strand < 0:
                template = revcomp_codes(template)
            assert (r.codes == template).all()

    def test_strands_both_present(self, small_genome):
        reads = simulate_reads(small_genome, 100, seed=5)
        strands = {r.meta["truth"].strand for r in reads}
        assert strands == {1, -1}

    def test_unknown_platform_raises(self, small_genome):
        with pytest.raises(SimulationError):
            ReadSimulator.preset(small_genome, "sanger")

    def test_negative_reads_raises(self, small_genome):
        with pytest.raises(SimulationError):
            simulate_reads(small_genome, -1)

    def test_deterministic(self, small_genome):
        a = simulate_reads(small_genome, 10, seed=9)
        b = simulate_reads(small_genome, 10, seed=9)
        for ra, rb in zip(a, b):
            assert (ra.codes == rb.codes).all()

    def test_multi_chromosome_coverage(self, multi_genome):
        reads = simulate_reads(multi_genome, 200, seed=6)
        chroms = {r.meta["truth"].chrom for r in reads}
        assert len(chroms) == 3

    def test_nanopore_platform_label(self, small_genome):
        reads = simulate_reads(small_genome, 5, platform="nanopore", seed=0)
        assert reads.platform == "nanopore-r9"
