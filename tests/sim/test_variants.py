"""Tests for the structural-variant simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.seq.alphabet import revcomp_codes
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.variants import SvSpec, StructuralVariant, apply_svs


@pytest.fixture(scope="module")
def ref():
    return generate_genome(GenomeSpec(length=150_000, chromosomes=2), seed=77)


class TestSpec:
    def test_defaults(self):
        assert SvSpec().total == 6

    def test_bad_sizes(self):
        with pytest.raises(SimulationError):
            SvSpec(min_size=0)
        with pytest.raises(SimulationError):
            SvSpec(min_size=100, max_size=50)

    def test_negative_counts(self):
        with pytest.raises(SimulationError):
            SvSpec(n_del=-1)

    def test_variant_validation(self):
        with pytest.raises(SimulationError):
            StructuralVariant("FLY", "chr1", 0, 10, 10)
        with pytest.raises(SimulationError):
            StructuralVariant("DEL", "chr1", 0, 0, 0)


class TestApply:
    def test_deletion_shrinks(self, ref):
        donor, events = apply_svs(ref, SvSpec(n_del=2, n_ins=0, n_inv=0, n_dup=0), seed=1)
        lost = sum(e.length for e in events if e.kind == "DEL")
        assert donor.total_length == ref.total_length - lost

    def test_insertion_grows(self, ref):
        donor, events = apply_svs(ref, SvSpec(n_del=0, n_ins=2, n_inv=0, n_dup=0), seed=2)
        gained = sum(e.length for e in events if e.kind == "INS")
        assert donor.total_length == ref.total_length + gained

    def test_inversion_preserves_length_and_content(self, ref):
        donor, events = apply_svs(ref, SvSpec(n_del=0, n_ins=0, n_inv=1, n_dup=0), seed=3)
        assert donor.total_length == ref.total_length
        ev = events[0]
        region_ref = ref.fetch(ev.chrom, ev.start, ev.end)
        region_donor = donor.fetch(ev.chrom, ev.start, ev.end)
        assert (region_donor == revcomp_codes(region_ref)).all()

    def test_duplication_repeats_segment(self, ref):
        donor, events = apply_svs(ref, SvSpec(n_del=0, n_ins=0, n_inv=0, n_dup=1), seed=4)
        ev = events[0]
        assert donor.total_length == ref.total_length + ev.length
        seg = ref.fetch(ev.chrom, ev.start, ev.end)
        dchrom = donor.get(ev.chrom).codes
        assert (dchrom[ev.end : ev.end + ev.length] == seg).all()

    def test_translocation_moves_material(self, ref):
        donor, events = apply_svs(
            ref, SvSpec(n_del=0, n_ins=0, n_inv=0, n_dup=0, n_tra=1), seed=5
        )
        assert donor.total_length == ref.total_length  # moved, not lost
        ev = events[0]
        payload = ref.fetch(ev.chrom, ev.start, ev.end)
        dest_chrom = donor.get(ev.dest[0]).codes
        # The payload appears somewhere in the destination chromosome.
        window = np.lib.stride_tricks.sliding_window_view(dest_chrom, payload.size)
        assert (window == payload).all(axis=1).any()

    def test_deterministic(self, ref):
        d1, e1 = apply_svs(ref, SvSpec(), seed=6)
        d2, e2 = apply_svs(ref, SvSpec(), seed=6)
        assert e1 == e2
        assert (d1.chromosomes[0].codes == d2.chromosomes[0].codes).all()

    def test_events_non_overlapping(self, ref):
        _, events = apply_svs(ref, SvSpec(n_del=4, n_ins=4, n_inv=2, n_dup=2), seed=7)
        spans = [(e.chrom, e.start, e.start + e.length) for e in events]
        for i, a in enumerate(spans):
            for b in spans[i + 1 :]:
                if a[0] == b[0]:
                    assert a[2] <= b[1] or b[2] <= a[1]

    def test_impossible_placement_raises(self):
        tiny = generate_genome(GenomeSpec(length=800), seed=0)
        with pytest.raises(SimulationError):
            apply_svs(tiny, SvSpec(n_del=1, min_size=600, max_size=700), seed=0)

    def test_reads_from_donor_split_align(self, ref):
        """Reads crossing a deletion breakpoint map back split/spanning."""
        from repro.core.aligner import Aligner
        from repro.seq.records import SeqRecord

        donor, events = apply_svs(
            ref, SvSpec(n_del=1, n_ins=0, n_inv=0, n_dup=0,
                        min_size=4000, max_size=5000),
            seed=8,
        )
        ev = events[0]
        # A clean donor read spanning the deletion site.
        dchrom = donor.get(ev.chrom)
        centre = ev.start  # donor coordinate of the breakpoint
        lo = max(0, centre - 3000)
        hi = min(len(dchrom), centre + 3000)
        read = SeqRecord("span", dchrom.codes[lo:hi].copy())
        al = Aligner(ref, preset="test")
        alns = al.map_read(read)
        assert alns
        # The deletion shows up either as a bridged gap inside one
        # alignment, or (chain bandwidth < SV size) as a split whose
        # pieces are separated by the deleted interval on the target.
        primary = sorted((a for a in alns if a.is_primary), key=lambda a: a.tstart)
        if len(primary) == 1:
            a = primary[0]
            assert (a.tend - a.tstart) - (a.qend - a.qstart) > ev.length // 2
        else:
            gap = primary[1].tstart - primary[0].tend
            assert abs(gap - ev.length) < 500
