"""Atomic artifact writes (`repro.utils.fsio`).

The durability contract under test: a path written through
``atomic_write`` / ``atomic_output`` holds either its previous content
or the complete new content — never a prefix — and a failed write
leaves no torn file behind.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.utils import atomic_output, atomic_write, atomic_write_json, fsync_path


class TestAtomicWrite:
    def test_writes_bytes_and_str(self, tmp_path):
        p = tmp_path / "a.txt"
        assert atomic_write(p, "héllo\n") == len("héllo\n".encode())
        assert p.read_text() == "héllo\n"
        atomic_write(p, b"\x00\x01")
        assert p.read_bytes() == b"\x00\x01"

    def test_replaces_existing_content(self, tmp_path):
        p = tmp_path / "a.txt"
        p.write_text("old")
        atomic_write(p, "new")
        assert p.read_text() == "new"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write(tmp_path / "a.txt", "data")
        assert sorted(os.listdir(tmp_path)) == ["a.txt"]

    def test_json_variant(self, tmp_path):
        p = tmp_path / "m.json"
        atomic_write_json(p, {"b": 1, "a": [2, 3]}, sort_keys=True)
        assert json.loads(p.read_text()) == {"a": [2, 3], "b": 1}
        assert p.read_text().endswith("\n")

    def test_failed_write_preserves_old_content(self, tmp_path, monkeypatch):
        p = tmp_path / "a.txt"
        p.write_text("precious")
        monkeypatch.setenv("MANYMAP_CHAOS", "enospc@atomic.write:1")
        from repro.testing import chaos

        chaos.reset()
        try:
            with pytest.raises(OSError):
                atomic_write(p, "half-written garbage")
        finally:
            monkeypatch.delenv("MANYMAP_CHAOS")
            chaos.reset()
        assert p.read_text() == "precious"
        assert sorted(os.listdir(tmp_path)) == ["a.txt"]  # temp removed


class TestAtomicOutput:
    def test_streamed_content_lands_atomically(self, tmp_path):
        p = tmp_path / "out.paf"
        with atomic_output(p) as fh:
            fh.write("line1\n")
            # mid-stream: the target must not exist yet (or hold old
            # content) — the handle writes to a temp neighbor.
            assert not p.exists()
            fh.write("line2\n")
        assert p.read_text() == "line1\nline2\n"

    def test_error_leaves_target_untouched(self, tmp_path):
        p = tmp_path / "out.paf"
        p.write_text("previous run\n")
        with pytest.raises(RuntimeError):
            with atomic_output(p) as fh:
                fh.write("partial")
                raise RuntimeError("crash mid-stream")
        assert p.read_text() == "previous run\n"
        assert sorted(os.listdir(tmp_path)) == ["out.paf"]

    def test_error_with_no_previous_file_leaves_nothing(self, tmp_path):
        p = tmp_path / "out.paf"
        with pytest.raises(ValueError):
            with atomic_output(p) as fh:
                fh.write("partial")
                raise ValueError("boom")
        assert not p.exists()
        assert os.listdir(tmp_path) == []


class TestFsyncPath:
    def test_existing_file(self, tmp_path):
        p = tmp_path / "f"
        p.write_text("x")
        fsync_path(str(p))  # no error

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            fsync_path(str(tmp_path / "absent"))
