"""Tests for the synthetic genome generator."""

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq.genome import Genome, GenomeSpec, generate_genome
from repro.seq.records import SeqRecord


class TestGenomeSpec:
    def test_defaults_valid(self):
        GenomeSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"length": 0},
            {"chromosomes": 0},
            {"repeat_fraction": 1.0},
            {"tandem_fraction": -0.1},
        ],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(SequenceError):
            GenomeSpec(**kwargs)


class TestGenerate:
    def test_total_length_close(self):
        g = generate_genome(GenomeSpec(length=100_000, chromosomes=4), seed=1)
        assert len(g) == 4
        assert abs(g.total_length - 100_000) <= 4

    def test_deterministic(self):
        a = generate_genome(GenomeSpec(length=20_000), seed=5)
        b = generate_genome(GenomeSpec(length=20_000), seed=5)
        assert (a.chromosomes[0].codes == b.chromosomes[0].codes).all()

    def test_seed_changes_output(self):
        a = generate_genome(GenomeSpec(length=20_000), seed=5)
        b = generate_genome(GenomeSpec(length=20_000), seed=6)
        assert not (a.chromosomes[0].codes == b.chromosomes[0].codes).all()

    def test_gc_content(self):
        g = generate_genome(
            GenomeSpec(length=400_000, gc=0.41, repeat_fraction=0.0, tandem_fraction=0.0),
            seed=2,
        )
        codes = g.chromosomes[0].codes
        gc = np.isin(codes, [1, 2]).mean()
        assert abs(gc - 0.41) < 0.01

    def test_codes_in_range(self, multi_genome):
        for c in multi_genome:
            assert c.codes.max() < 4

    def test_repeats_create_duplicate_kmers(self):
        spec = GenomeSpec(length=100_000, repeat_fraction=0.3, repeat_length=500)
        g = generate_genome(spec, seed=3)
        codes = g.chromosomes[0].codes
        # Sample 31-mers; with 30% repeat coverage some must recur.
        k = 31
        view = np.lib.stride_tricks.sliding_window_view(codes, k)
        sample = view[:: max(1, len(view) // 5000)]
        packed = sample @ (4 ** np.arange(k, dtype=object))
        assert len(set(packed.tolist())) < len(packed)

    def test_names(self):
        g = generate_genome(GenomeSpec(length=10_000, chromosomes=2), seed=0)
        assert g.names == ["chr1", "chr2"]


class TestGenomeContainer:
    def test_get_and_fetch(self, small_genome):
        chrom = small_genome.get("chr1")
        region = small_genome.fetch("chr1", 100, 200)
        assert (region == chrom.codes[100:200]).all()

    def test_fetch_clamps(self, small_genome):
        n = len(small_genome.get("chr1"))
        region = small_genome.fetch("chr1", -50, n + 50)
        assert region.size == n

    def test_fetch_empty_raises(self, small_genome):
        with pytest.raises(SequenceError):
            small_genome.fetch("chr1", 500, 500)

    def test_get_missing_raises(self, small_genome):
        with pytest.raises(KeyError):
            small_genome.get("chrX")

    def test_to_fasta_str(self):
        g = Genome([SeqRecord.from_str("c1", "ACGT")])
        assert g.to_fasta_str() == ">c1\nACGT\n"
