"""Tests for variant injection and dataset statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SequenceError
from repro.seq.alphabet import random_codes
from repro.seq.mutate import MutationSpec, mutate_codes
from repro.seq.records import ReadSet, SeqRecord
from repro.seq.stats import dataset_stats


class TestMutationSpec:
    def test_total_rate_validated(self):
        with pytest.raises(SequenceError):
            MutationSpec(sub_rate=0.5, ins_rate=0.4, del_rate=0.2)

    def test_max_indel_validated(self):
        with pytest.raises(SequenceError):
            MutationSpec(max_indel=0)


class TestMutate:
    def test_identity_when_zero_rates(self):
        codes = random_codes(500, seed=0)
        out, events = mutate_codes(codes, MutationSpec(), seed=1)
        assert (out == codes).all()
        assert events == []

    def test_substitutions_change_bases(self):
        codes = random_codes(2000, seed=0)
        out, events = mutate_codes(codes, MutationSpec(sub_rate=0.1), seed=1)
        assert out.size == codes.size
        n_sub = sum(1 for _, k, _ in events if k == "S")
        assert 100 < n_sub < 320
        assert (out != codes).sum() >= n_sub * 0.7  # resampled base always differs

    def test_deletions_shrink(self):
        codes = random_codes(2000, seed=0)
        out, events = mutate_codes(codes, MutationSpec(del_rate=0.05), seed=1)
        deleted = sum(ln for _, k, ln in events if k == "D")
        assert out.size == codes.size - deleted
        assert deleted > 0

    def test_insertions_grow(self):
        codes = random_codes(2000, seed=0)
        out, events = mutate_codes(codes, MutationSpec(ins_rate=0.05), seed=1)
        inserted = sum(ln for _, k, ln in events if k == "I")
        assert out.size == codes.size + inserted
        assert inserted > 0

    def test_empty_input(self):
        out, events = mutate_codes(
            np.empty(0, dtype=np.uint8), MutationSpec(sub_rate=0.1), seed=0
        )
        assert out.size == 0 and events == []

    @given(st.integers(0, 300), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_length_bookkeeping_property(self, n, seed):
        codes = random_codes(n, seed=0)
        spec = MutationSpec(sub_rate=0.05, ins_rate=0.05, del_rate=0.05)
        out, events = mutate_codes(codes, spec, seed=seed)
        ins = sum(ln for _, k, ln in events if k == "I")
        dele = sum(ln for _, k, ln in events if k == "D")
        assert out.size == n + ins - dele


class TestStats:
    def test_empty(self):
        stats = dataset_stats(ReadSet(platform="x"))
        assert stats.n_reads == 0 and stats.total_bases == 0

    def test_values(self):
        rs = ReadSet(platform="pacbio")
        rs.append(SeqRecord.from_str("a", "ACGT"))
        rs.append(SeqRecord.from_str("b", "ACGTACGTACGT"))
        stats = dataset_stats(rs)
        assert stats.n_reads == 2
        assert stats.mean_length == 8.0
        assert stats.max_length == 12
        assert stats.total_bases == 16

    def test_render(self):
        rs = ReadSet(platform="pacbio")
        rs.append(SeqRecord.from_str("a", "ACGT"))
        out = dataset_stats(rs).render()
        assert "pacbio" in out and "Number of Reads" in out
