"""Tests for sequence record containers."""

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq.records import ReadSet, SeqRecord


class TestSeqRecord:
    def test_from_str_and_seq(self):
        r = SeqRecord.from_str("a", "ACGT", origin="test")
        assert r.seq == "ACGT"
        assert len(r) == 4
        assert r.meta["origin"] == "test"

    def test_quality_length_mismatch_raises(self):
        with pytest.raises(SequenceError):
            SeqRecord("a", np.zeros(4, dtype=np.uint8),
                      quality=np.zeros(3, dtype=np.uint8))

    def test_codes_coerced_to_uint8(self):
        r = SeqRecord("a", np.array([0, 1, 2], dtype=np.int64))
        assert r.codes.dtype == np.uint8


class TestReadSet:
    def test_container_protocol(self):
        rs = ReadSet(platform="x")
        rs.append(SeqRecord.from_str("a", "ACGT"))
        rs.append(SeqRecord.from_str("b", "AC"))
        assert len(rs) == 2
        assert rs[1].name == "b"
        assert [r.name for r in rs] == ["a", "b"]

    def test_total_bases_and_lengths(self):
        rs = ReadSet()
        rs.append(SeqRecord.from_str("a", "ACGT"))
        rs.append(SeqRecord.from_str("b", "ACGTACGT"))
        assert rs.total_bases == 12
        assert rs.lengths().tolist() == [4, 8]

    def test_empty(self):
        rs = ReadSet()
        assert rs.total_bases == 0
        assert rs.lengths().size == 0
