"""Tests for DNA encoding primitives, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SequenceError
from repro.seq.alphabet import (
    AMBIG,
    BASES,
    complement_codes,
    decode,
    encode,
    random_codes,
    revcomp,
    revcomp_codes,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)
dna_n = st.text(alphabet="ACGTN", min_size=0, max_size=200)


class TestEncodeDecode:
    def test_basic(self):
        assert (encode("ACGT") == np.array([0, 1, 2, 3])).all()

    def test_lowercase(self):
        assert (encode("acgt") == encode("ACGT")).all()

    def test_n_maps_to_ambig(self):
        assert encode("N")[0] == AMBIG

    def test_iupac_collapse(self):
        assert (encode("RYSWKM") == AMBIG).all()

    def test_invalid_raises(self):
        with pytest.raises(SequenceError):
            encode("ACGX")

    def test_decode_invalid_code(self):
        with pytest.raises(SequenceError):
            decode(np.array([9], dtype=np.uint8))

    def test_empty(self):
        assert decode(encode("")) == ""

    @given(dna_n)
    def test_roundtrip(self, s):
        assert decode(encode(s)) == s


class TestRevcomp:
    def test_known(self):
        assert revcomp("ACGT") == "ACGT"
        assert revcomp("AACG") == "CGTT"

    def test_n_preserved(self):
        assert revcomp("ANT") == "ANT"

    @given(dna_n)
    def test_involution(self, s):
        assert revcomp(revcomp(s)) == s

    @given(dna)
    def test_complement_pointwise(self, s):
        comp = complement_codes(encode(s))
        table = {"A": "T", "C": "G", "G": "C", "T": "A"}
        assert decode(comp) == "".join(table[c] for c in s)

    @given(dna_n)
    def test_revcomp_codes_matches_string_version(self, s):
        assert decode(revcomp_codes(encode(s))) == revcomp(s)


class TestRandomCodes:
    def test_length_and_range(self):
        codes = random_codes(1000, seed=0)
        assert codes.size == 1000
        assert codes.max() < 4

    def test_gc_fraction(self):
        codes = random_codes(200_000, seed=0, gc=0.7)
        gc = np.isin(codes, [1, 2]).mean()
        assert abs(gc - 0.7) < 0.01

    def test_deterministic(self):
        assert (random_codes(50, seed=3) == random_codes(50, seed=3)).all()

    def test_negative_raises(self):
        with pytest.raises(SequenceError):
            random_codes(-1)

    def test_bad_gc_raises(self):
        with pytest.raises(SequenceError):
            random_codes(10, gc=1.5)
