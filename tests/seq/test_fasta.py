"""Tests for FASTA/FASTQ I/O, both buffered and buffer-based paths."""

import io

import numpy as np
import pytest

from repro.errors import ParseError
from repro.seq.fasta import (
    parse_fasta_buffer,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)
from repro.seq.records import SeqRecord


FASTA = ">chr1 description here\nACGTACGT\nACGT\n>chr2\nTTTT\n"
FASTQ = "@r1\nACGT\n+\nIIII\n@r2 extra\nGG\n+x\nI!\n"


class TestFastaRead:
    def test_parses_records(self):
        recs = read_fasta(io.StringIO(FASTA))
        assert [r.name for r in recs] == ["chr1", "chr2"]
        assert recs[0].seq == "ACGTACGTACGT"
        assert recs[1].seq == "TTTT"

    def test_blank_lines_skipped(self):
        recs = read_fasta(io.StringIO(">a\nAC\n\nGT\n"))
        assert recs[0].seq == "ACGT"

    def test_data_before_header_raises(self):
        with pytest.raises(ParseError):
            read_fasta(io.StringIO("ACGT\n>a\nAC\n"))

    def test_empty_name_raises(self):
        with pytest.raises(ParseError):
            read_fasta(io.StringIO(">\nACGT\n"))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "x.fa"
        recs = [SeqRecord.from_str("a", "ACGT" * 50), SeqRecord.from_str("b", "TT")]
        write_fasta(path, recs)
        back = read_fasta(path)
        assert [r.name for r in back] == ["a", "b"]
        assert back[0].seq == "ACGT" * 50

    def test_line_width(self, tmp_path):
        path = tmp_path / "x.fa"
        write_fasta(path, [SeqRecord.from_str("a", "A" * 100)], width=10)
        lines = path.read_text().splitlines()
        assert lines[1] == "A" * 10
        assert len(lines) == 11


class TestFastaBuffer:
    def test_matches_line_parser(self):
        recs1 = read_fasta(io.StringIO(FASTA))
        recs2 = parse_fasta_buffer(FASTA.encode())
        assert [(r.name, r.seq) for r in recs1] == [(r.name, r.seq) for r in recs2]

    def test_crlf_handled(self):
        recs = parse_fasta_buffer(b">a\r\nAC\r\nGT\r\n")
        assert recs[0].seq == "ACGT"

    def test_empty_buffer_raises(self):
        with pytest.raises(ParseError):
            parse_fasta_buffer(b"")

    def test_memoryview_input(self):
        recs = parse_fasta_buffer(memoryview(b">a\nACGT\n"))
        assert recs[0].seq == "ACGT"

    def test_truncated_header_raises(self):
        with pytest.raises(ParseError):
            parse_fasta_buffer(b">name_without_newline")


class TestFastq:
    def test_parses_records(self):
        recs = read_fastq(io.StringIO(FASTQ))
        assert [r.name for r in recs] == ["r1", "r2"]
        assert recs[0].seq == "ACGT"
        assert (recs[0].quality == 40).all()
        assert recs[1].quality[1] == 0

    def test_bad_header_raises(self):
        with pytest.raises(ParseError):
            read_fastq(io.StringIO("r1\nACGT\n+\nIIII\n"))

    def test_bad_separator_raises(self):
        with pytest.raises(ParseError):
            read_fastq(io.StringIO("@r1\nACGT\nX\nIIII\n"))

    def test_quality_length_mismatch_raises(self):
        with pytest.raises(ParseError):
            read_fastq(io.StringIO("@r1\nACGT\n+\nII\n"))

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.fq"
        rec = SeqRecord.from_str("r", "ACGTACGT")
        rec.quality = np.full(8, 30, dtype=np.uint8)
        write_fastq(path, [rec])
        back = read_fastq(path)
        assert back[0].seq == rec.seq
        assert (back[0].quality == 30).all()

    def test_write_without_quality(self, tmp_path):
        path = tmp_path / "x.fq"
        write_fastq(path, [SeqRecord.from_str("r", "ACGT")])
        assert "IIII" in path.read_text()


class TestFastqDiagnostics:
    """ParseError must name the record and its approximate line number."""

    def test_quality_mismatch_names_record_and_line(self):
        bad = "@good\nACGT\n+\nIIII\n@broken\nACGT\n+\nII\n"
        with pytest.raises(ParseError, match=r"'broken'.*line 8"):
            read_fastq(io.StringIO(bad))

    def test_bad_separator_names_record_and_line(self):
        bad = "@r1\nACGT\nX\nIIII\n"
        with pytest.raises(ParseError, match=r"'r1'.*line 3"):
            read_fastq(io.StringIO(bad))

    def test_bad_header_names_line(self):
        bad = "@ok\nAC\n+\nII\nnot_a_header\nACGT\n+\nIIII\n"
        with pytest.raises(ParseError, match=r"'@'.*line 5"):
            read_fastq(io.StringIO(bad))

    @pytest.mark.parametrize(
        "tail", ["@trunc\n", "@trunc\nACGT\n", "@trunc\nACGT\n+\n"]
    )
    def test_truncated_final_record(self, tail):
        with pytest.raises(ParseError, match=r"truncated FASTQ record 'trunc'"):
            read_fastq(io.StringIO("@ok\nAC\n+\nII\n" + tail))

    def test_truncated_gzip_file(self, tmp_path):
        import gzip

        path = tmp_path / "trunc.fq.gz"
        with gzip.open(path, "wt") as f:
            f.write("@ok\nAC\n+\nII\n@cut\nACGT\n")
        with pytest.raises(ParseError, match=r"truncated FASTQ record 'cut'"):
            read_fastq(path)

    def test_bad_plain_file(self, tmp_path):
        path = tmp_path / "bad.fq"
        path.write_text("@r1\nACGT\n+\nII\n")
        with pytest.raises(ParseError, match=r"quality length.*'r1'"):
            read_fastq(path)

    def test_fasta_empty_name_has_line(self):
        with pytest.raises(ParseError, match="line 3"):
            read_fasta(io.StringIO(">a\nAC\n>\nACGT\n"))


class TestGzip:
    def test_fasta_gz_roundtrip(self, tmp_path):
        path = tmp_path / "x.fa.gz"
        recs = [SeqRecord.from_str("a", "ACGT" * 30)]
        write_fasta(path, recs)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
        back = read_fasta(path)
        assert back[0].seq == "ACGT" * 30

    def test_fastq_gz_roundtrip(self, tmp_path):
        path = tmp_path / "x.fq.gz"
        write_fastq(path, [SeqRecord.from_str("r", "ACGTACGT")])
        back = read_fastq(path)
        assert back[0].seq == "ACGTACGT"
