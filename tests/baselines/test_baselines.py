"""Tests for the comparator aligners and accuracy evaluation."""

import numpy as np
import pytest

from repro.baselines import BASELINES, make_baseline
from repro.baselines.registry import OurAligner
from repro.errors import ReproError
from repro.eval.accuracy import evaluate_accuracy
from repro.eval.report import render_table
from repro.eval.resources import measure_ram, peak_rss_bytes
from repro.seq.records import SeqRecord
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator


@pytest.fixture(scope="module")
def pb_reads(small_genome):
    sim = ReadSimulator.preset(small_genome, "pacbio")
    sim.length_model = LengthModel(mean=1200.0, sigma=0.25, max_length=2200)
    return sim.simulate(10, seed=21)


def _accuracy(tool, genome, reads):
    tool.build(genome)
    results = tool.map_all(reads)
    return evaluate_accuracy(list(reads), results)


class TestRegistry:
    def test_all_present(self):
        assert set(BASELINES) == {
            "manymap", "minimap2", "minialign", "Kart", "BLASR", "NGMLR", "BWA-MEM",
        }

    def test_unknown_raises(self):
        with pytest.raises(ReproError):
            make_baseline("bowtie")

    def test_map_before_build_raises(self):
        tool = make_baseline("minialign")
        with pytest.raises(RuntimeError):
            tool.map_all([])


@pytest.mark.parametrize("name", ["manymap", "minimap2", "minialign", "Kart"])
class TestFastBaselines:
    def test_maps_most_reads_correctly(self, name, small_genome, pb_reads):
        rep = _accuracy(make_baseline(name), small_genome, pb_reads)
        assert rep.n_aligned >= 7
        assert rep.sensitivity >= 0.6

    def test_index_bytes_recorded(self, name, small_genome):
        tool = make_baseline(name)
        tool.build(small_genome)
        assert tool.resources.index_bytes > 0


class TestSlowBaselines:
    """BLASR / NGMLR / BWA-MEM run on a reduced read set (they do full DP)."""

    def test_blasr_accurate(self, small_genome, pb_reads):
        rep = _accuracy(make_baseline("BLASR"), small_genome, list(pb_reads)[:4])
        assert rep.sensitivity >= 0.7

    def test_blasr_index_denser_than_minimap(self, small_genome):
        blasr = make_baseline("BLASR")
        blasr.build(small_genome)
        ours = make_baseline("manymap")
        ours.build(small_genome)
        assert blasr.resources.index_bytes > 2 * ours.resources.index_bytes

    def test_ngmlr_maps(self, small_genome, pb_reads):
        rep = _accuracy(make_baseline("NGMLR"), small_genome, list(pb_reads)[:3])
        assert rep.n_aligned >= 2

    def test_bwamem_runs_and_counts_cells(self, small_genome, pb_reads):
        tool = make_baseline("BWA-MEM")
        tool.build(small_genome)
        tool.map_all(list(pb_reads)[:2])
        assert tool.work_cells > 0

    def test_bwamem_seeding_sparser_on_noisy_reads(self, small_genome, pb_reads):
        """Exact 19-mers barely survive 13% error — the BWA-MEM failure mode."""
        from repro.chain.anchors import collect_anchors

        bwa = make_baseline("BWA-MEM")
        bwa.build(small_genome)
        ours = make_baseline("manymap")
        ours.build(small_genome)
        read = pb_reads[0]
        n_bwa = collect_anchors(read.codes, bwa.index, as_arrays=True)[0].size
        n_ours = collect_anchors(read.codes, ours.aligner.index, as_arrays=True)[0].size
        # Normalize by index density: BWA indexes ~w times more positions.
        assert n_bwa < n_ours * 3


class TestEngineParityTable5:
    def test_manymap_equals_minimap2_results(self, small_genome, pb_reads):
        """Table 5: same error rate because identical alignments."""
        ours = make_baseline("manymap")
        mm2 = make_baseline("minimap2")
        ours.build(small_genome)
        mm2.build(small_genome)
        for read in list(pb_reads)[:4]:
            a = ours.map_read(read)
            b = mm2.map_read(read)
            assert [(x.tstart, x.tend, x.score) for x in a] == [
                (x.tstart, x.tend, x.score) for x in b
            ]


class TestAccuracyEval:
    def test_counts(self, small_genome, pb_reads):
        tool = OurAligner()
        rep = _accuracy(tool, small_genome, pb_reads)
        assert rep.n_reads == len(pb_reads)
        assert rep.n_aligned == rep.n_correct + rep.n_wrong
        assert 0.0 <= rep.error_rate <= 1.0
        assert "error_rate" in rep.render()

    def test_length_mismatch_raises(self, pb_reads):
        with pytest.raises(ValueError):
            evaluate_accuracy(list(pb_reads), [])

    def test_missing_truth_raises(self):
        read = SeqRecord("x", np.zeros(10, dtype=np.uint8))
        with pytest.raises(ValueError):
            evaluate_accuracy([read], [[]])

    def test_unmapped_not_wrong(self, pb_reads):
        rep = evaluate_accuracy(list(pb_reads), [[] for _ in pb_reads])
        assert rep.n_aligned == 0 and rep.error_rate == 0.0


class TestResources:
    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 1 << 20

    def test_measure_ram_tracks_alloc(self):
        with measure_ram() as stats:
            blob = np.zeros(4 << 20, dtype=np.uint8)
            del blob
        assert stats["peak"] >= 4 << 20


class TestRenderTable:
    def test_basic(self):
        out = render_table(["tool", "time"], [["x", 1.5], ["y", 2.0]], title="T")
        assert "tool" in out and "1.50" in out

    def test_bad_row_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])
