"""Tests for banded DP and the batched inter-sequence kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align._band import band_limits, band_range, edge_patches
from repro.align.batch_kernel import align_batch
from repro.align.dp_reference import align_reference
from repro.align.manymap_kernel import align_manymap
from repro.align.mm2_kernel import align_mm2
from repro.align.scoring import Scoring
from repro.errors import AlignmentError
from repro.seq.alphabet import random_codes
from repro.seq.mutate import MutationSpec, mutate_codes

SC = Scoring()


def homologous_pair(m, seed, rate=0.06):
    t = random_codes(m, seed=seed)
    q, _ = mutate_codes(
        t, MutationSpec(sub_rate=rate, ins_rate=rate / 2, del_rate=rate / 2),
        seed=seed + 1,
    )
    if q.size == 0:
        q = random_codes(1, seed=seed + 2)
    return t, q


class TestBandMath:
    def test_limits(self):
        assert band_limits(10, 10, 3) == (-3, 3)
        assert band_limits(10, 14, 2) == (-2, 6)

    def test_negative_band_raises(self):
        with pytest.raises(AlignmentError):
            band_limits(5, 5, -1)

    def test_range_clips(self):
        lo, hi = band_limits(100, 100, 4)
        st, en = band_range(50, 0, 49, lo, hi)
        assert st == 23 and en == 27  # |50 - 2t| <= 4

    def test_edge_patches_skip_boundaries(self):
        lo, hi = band_limits(100, 100, 0)
        # r=0: the only cell is (0,0); deps are boundaries, no patches.
        assert edge_patches(0, 0, 0, lo, hi) == (None, None)


class TestBandedKernels:
    @given(st.integers(5, 90), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_generous_band_exact(self, m, seed):
        t, q = homologous_pair(m, seed)
        full = align_reference(t, q, SC).score
        band = abs(t.size - q.size) + max(t.size, q.size)
        for fn in (align_manymap, align_mm2):
            assert fn(t, q, SC, band=band).score == full

    @given(st.integers(5, 90), st.integers(0, 10**6), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_band_never_exceeds_optimum(self, m, seed, band):
        t, q = homologous_pair(m, seed, rate=0.15)
        full = align_reference(t, q, SC).score
        for fn in (align_manymap, align_mm2):
            assert fn(t, q, SC, band=band).score <= full

    def test_band_reduces_cells(self):
        t, q = homologous_pair(1500, seed=3)
        full = align_manymap(t, q, SC)
        banded = align_manymap(t, q, SC, band=64)
        assert banded.cells < full.cells / 4
        assert banded.score == full.score

    def test_banded_path_rescoring(self):
        t, q = homologous_pair(300, seed=4)
        for fn in (align_manymap, align_mm2):
            res = fn(t, q, SC, band=80, path=True)
            assert res.cigar.score(t, q, SC) == res.score

    def test_band_zero_is_diagonal_only(self):
        t = random_codes(50, seed=5)
        res = align_manymap(t, t.copy(), SC, band=0)
        assert res.score == 50 * SC.match

    def test_engines_agree_banded(self):
        t, q = homologous_pair(400, seed=6)
        for band in (8, 32, 100):
            a = align_manymap(t, q, SC, band=band).score
            b = align_mm2(t, q, SC, band=band).score
            assert a == b


class TestBatchKernel:
    @given(st.integers(1, 12), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_matches_per_pair(self, bsize, seed):
        rng = np.random.default_rng(seed)
        ts, qs = [], []
        for _ in range(bsize):
            m = int(rng.integers(1, 50))
            t = random_codes(m, rng)
            q = random_codes(int(rng.integers(1, 50)), rng)
            ts.append(t)
            qs.append(q)
        batch = align_batch(ts, qs, SC, path=True)
        for t, q, res in zip(ts, qs, batch):
            single = align_manymap(t, q, SC, mode="global", path=True)
            assert res.score == single.score
            assert res.cigar.score(t, q, SC) == res.score

    def test_empty_batch(self):
        assert align_batch([], [], SC) == []

    def test_size_mismatch_raises(self):
        with pytest.raises(AlignmentError):
            align_batch([random_codes(5, seed=0)], [], SC)

    def test_degenerate_members(self):
        empty = np.empty(0, dtype=np.uint8)
        t = random_codes(10, seed=1)
        out = align_batch([t, empty, t], [t.copy(), t, empty], SC, path=True)
        assert out[0].score == 10 * SC.match
        assert out[1].score == -SC.gap_cost(10)
        assert str(out[2].cigar) == "10D"

    def test_single_member(self):
        t, q = homologous_pair(60, seed=7)
        out = align_batch([t], [q], SC)
        assert out[0].score == align_reference(t, q, SC).score

    def test_very_ragged_batch(self):
        ts = [random_codes(m, seed=m) for m in (1, 3, 200, 7)]
        qs = [random_codes(n, seed=100 + n) for n in (150, 2, 5, 7)]
        out = align_batch(ts, qs, SC)
        for t, q, res in zip(ts, qs, out):
            assert res.score == align_reference(t, q, SC).score


class TestAlignerBatching:
    def test_batched_identical_to_unbatched(self, small_genome):
        from repro.core.aligner import Aligner
        from repro.sim.lengths import LengthModel
        from repro.sim.pbsim import ReadSimulator

        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.length_model = LengthModel(mean=900.0, sigma=0.25, max_length=1500)
        reads = sim.simulate(5, seed=51)
        a_on = Aligner(small_genome, preset="test", batch_segments=True)
        a_off = Aligner(small_genome, preset="test", batch_segments=False)
        for r in reads:
            on = a_on.map_read(r)
            off = a_off.map_read(r)
            assert [(x.tstart, x.tend, x.score, str(x.cigar)) for x in on] == [
                (x.tstart, x.tend, x.score, str(x.cigar)) for x in off
            ]
