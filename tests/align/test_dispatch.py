"""Kernel-dispatch layer: registry, bucketing, fallback, batch splits.

Routing decisions (bucket composition, min-lane fallback, path-memory
splits) may only change *throughput telemetry*, never results — every
test here pins results against per-pair :func:`align_manymap` while
checking the ``dispatch.*`` counters that describe the routing.
"""

import numpy as np
import pytest

from repro.align import Scoring, align_manymap
from repro.align.dispatch import (
    DEFAULT_KERNEL,
    DPJob,
    KernelDispatch,
    get_kernel,
    kernel_names,
)
from repro.errors import AlignmentError
from repro.obs.counters import COUNTERS, counter_delta
from repro.seq.alphabet import random_codes

SC = Scoring(match=2, mismatch=4, q=4, e=2)


def jobs_of(sizes, mode="global", path=False, zdrop=None, band=None):
    return [
        DPJob(
            target=random_codes(s, seed=2 * i),
            query=random_codes(max(1, s - 3), seed=2 * i + 1),
            mode=mode,
            path=path,
            zdrop=zdrop,
            band=band,
        )
        for i, s in enumerate(sizes)
    ]


def run_counted(dispatch, jobs):
    before = COUNTERS.totals()
    results = dispatch.run(jobs)
    return results, counter_delta(COUNTERS.totals(), before)


def assert_per_pair(results, jobs):
    for job, got in zip(jobs, results):
        kwargs = {}
        if job.zdrop is not None:
            kwargs["zdrop"] = job.zdrop
        if job.band is not None:
            kwargs["band"] = job.band
        want = align_manymap(
            job.target, job.query, SC, mode=job.mode, path=job.path, **kwargs
        )
        assert got.score == want.score
        assert (got.end_t, got.end_q) == (want.end_t, want.end_q)
        assert str(got.cigar) == str(want.cigar)


class TestRegistry:
    def test_known_kernels(self):
        assert set(kernel_names()) >= {
            "reference",
            "scalar",
            "mm2",
            "manymap",
            "batched",
            "wavefront",
        }
        assert DEFAULT_KERNEL in kernel_names()

    def test_unknown_kernel(self):
        with pytest.raises(AlignmentError, match="unknown kernel"):
            get_kernel("turbo")

    def test_capabilities(self):
        wf = get_kernel("wavefront")
        assert wf.cross_read and wf.batch_banded and wf.batch_zdrop
        assert set(wf.batch_modes) == {"global", "extend"}
        for name in ("reference", "scalar", "mm2", "manymap"):
            assert not get_kernel(name).cross_read, name
        legacy = get_kernel("batched")
        assert legacy.cross_read
        assert not (legacy.batch_banded or legacy.batch_zdrop)

    def test_invalid_buckets_rejected(self):
        with pytest.raises(AlignmentError, match="batch_buckets"):
            KernelDispatch("wavefront", SC, batch_buckets=(48, 24))
        with pytest.raises(AlignmentError, match="batch_buckets"):
            KernelDispatch("wavefront", SC, batch_buckets=(0, 24))


class TestRouting:
    def test_empty(self):
        assert KernelDispatch("wavefront", SC).run([]) == []

    def test_batches_when_lanes_suffice(self):
        jobs = jobs_of([20] * 8)
        results, delta = run_counted(KernelDispatch("wavefront", SC), jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.jobs"] == 8
        assert delta["dispatch.batched_jobs"] == 8
        assert "dispatch.fallback_jobs" not in delta

    def test_min_lane_rule_falls_back(self):
        # Two jobs landing in a huge bucket: fewer lanes than
        # max(2, cap // min_lane_div) -> per-pair fallback.
        cap = 6144
        assert cap // KernelDispatch.min_lane_div > 2
        jobs = jobs_of([cap - 10] * 2)
        results, delta = run_counted(KernelDispatch("wavefront", SC), jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.fallback_jobs"] == 2
        assert "dispatch.batches" not in delta

    def test_oversize_jobs_fall_back(self):
        dispatch = KernelDispatch("wavefront", SC, batch_max=96)
        jobs = jobs_of([20] * 4 + [500] * 2)
        results, delta = run_counted(dispatch, jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.batched_jobs"] == 4
        assert delta["dispatch.fallback_jobs"] == 2

    def test_batch_max_zero_disables_batching(self):
        dispatch = KernelDispatch("wavefront", SC, batch_max=0)
        jobs = jobs_of([20] * 6)
        results, delta = run_counted(dispatch, jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.fallback_jobs"] == 6
        assert "dispatch.batches" not in delta

    def test_per_pair_kernel_never_batches(self):
        jobs = jobs_of([20] * 6)
        results, delta = run_counted(KernelDispatch("manymap", SC), jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.fallback_jobs"] == 6

    def test_mixed_modes_grouped_separately(self):
        jobs = (
            jobs_of([30] * 4, mode="global")
            + jobs_of([30] * 4, mode="extend")
            + jobs_of([30] * 4, mode="extend", zdrop=100)
        )
        results, delta = run_counted(KernelDispatch("wavefront", SC), jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.batches"] == 3
        assert delta["dispatch.batched_jobs"] == 12

    def test_banded_jobs_batch_on_wavefront(self):
        jobs = jobs_of([60] * 5, mode="extend", band=8)
        results, delta = run_counted(KernelDispatch("wavefront", SC), jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.batched_jobs"] == 5

    def test_legacy_batched_kernel_rejects_banded_batches(self):
        # 'batched' cannot stack banded jobs; they must fall back.
        jobs = jobs_of([30] * 5, band=8)
        results, delta = run_counted(KernelDispatch("batched", SC), jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.fallback_jobs"] == 5

    def test_path_mem_splits_batches(self):
        jobs = jobs_of([90] * 6, path=True)
        # Budget for one 96x96 direction matrix per batch -> 6 batches.
        tight = KernelDispatch("wavefront", SC, path_mem=96 * 96)
        results, delta = run_counted(tight, jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.batches"] == 6
        roomy = KernelDispatch("wavefront", SC)
        _, delta = run_counted(roomy, jobs)
        assert delta["dispatch.batches"] == 1

    def test_lane_max_splits_batches(self):
        jobs = jobs_of([20] * 9)
        dispatch = KernelDispatch("wavefront", SC, lane_max=4)
        results, delta = run_counted(dispatch, jobs)
        assert_per_pair(results, jobs)
        assert delta["dispatch.batches"] == 3  # 4 + 4 + 1 lanes

    def test_results_positionally_aligned(self):
        sizes = [20, 5000, 25, 30, 7000, 40]
        jobs = jobs_of(sizes, mode="extend")
        results, _ = run_counted(KernelDispatch("wavefront", SC), jobs)
        assert_per_pair(results, jobs)  # mixed batched/fallback ordering
