"""Tests for the extension-alignment wrapper (z-drop, left/right)."""

import numpy as np
import pytest

from repro.align import Scoring, extend_alignment
from repro.align.manymap_kernel import align_manymap
from repro.errors import AlignmentError
from repro.seq.alphabet import encode, random_codes


class TestExtend:
    def test_right_extension_simple(self):
        t = encode("ACGTACGTGG")
        q = encode("ACGTACGT")
        res = extend_alignment(t, q, Scoring(match=2))
        assert res.score == 16
        assert res.q_used == 8
        assert res.t_used == 8

    def test_left_extension_mirrors_right(self):
        # Left extension on (t, q) == right extension on reversed inputs.
        t = random_codes(300, seed=0)
        q = np.concatenate([random_codes(30, seed=1), t[-200:]])
        sc = Scoring()
        left = extend_alignment(t, q, sc, direction="left")
        right = extend_alignment(t[::-1].copy(), q[::-1].copy(), sc, direction="right")
        assert left.score == right.score
        assert left.t_used == right.t_used
        assert left.q_used == right.q_used

    def test_path_produced(self):
        t = encode("ACGTACGT")
        res = extend_alignment(t, t.copy(), Scoring(match=2), path=True)
        assert str(res.cigar) == "8M"

    def test_left_path_reversed(self):
        t = encode("TTACGTACGT")
        q = encode("ACGTACGT")
        res = extend_alignment(t, q, Scoring(match=2, mismatch=4), direction="left", path=True)
        # Aligning from the right ends: all 8 query bases match.
        assert res.score == 16
        assert res.cigar.query_span == 8

    def test_zdrop_propagates(self):
        t = np.concatenate([random_codes(150, seed=2), random_codes(600, seed=3)])
        q = np.concatenate([t[:150], random_codes(600, seed=4)])
        res = extend_alignment(t, q, Scoring(), zdrop=40)
        assert res.zdropped

    def test_bad_direction_raises(self):
        t = encode("ACGT")
        with pytest.raises(AlignmentError):
            extend_alignment(t, t, direction="up")

    def test_custom_engine(self):
        t = encode("ACGTACGT")
        res = extend_alignment(t, t.copy(), Scoring(match=2), engine=align_manymap)
        assert res.score == 16

    def test_hopeless_extension_scores_zero(self):
        t = encode("AAAA")
        q = encode("TTTT")
        res = extend_alignment(t, q, Scoring(match=1, mismatch=10, q=5, e=5))
        assert res.score == 0
        assert res.t_used == 0 and res.q_used == 0
