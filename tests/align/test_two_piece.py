"""Tests for two-piece affine gap alignment (minimap2's real model)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.dp_reference import align_reference
from repro.align.scoring import Scoring
from repro.align.two_piece import (
    MAP_PB_2P,
    TwoPieceScoring,
    align_two_piece,
    score_cigar_two_piece,
)
from repro.errors import AlignmentError
from repro.seq.alphabet import encode, random_codes

NEGINF = -(10**9)


def brute_two_piece(t, q, sc, mode="global"):
    """Explicit five-matrix DP, the independent oracle."""
    m, n = len(t), len(q)
    mat = sc.matrix()
    H = [[NEGINF] * (n + 1) for _ in range(m + 1)]
    E = [[NEGINF] * (n + 1) for _ in range(m + 1)]
    E2 = [[NEGINF] * (n + 1) for _ in range(m + 1)]
    F = [[NEGINF] * (n + 1) for _ in range(m + 1)]
    F2 = [[NEGINF] * (n + 1) for _ in range(m + 1)]
    H[0][0] = 0
    for i in range(1, m + 1):
        H[i][0] = -sc.gap_cost(i)
    for j in range(1, n + 1):
        H[0][j] = -sc.gap_cost(j)
    best = NEGINF
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i][j] = max(H[i - 1][j] - sc.q, E[i - 1][j]) - sc.e
            E2[i][j] = max(H[i - 1][j] - sc.q2, E2[i - 1][j]) - sc.e2
            F[i][j] = max(H[i][j - 1] - sc.q, F[i][j - 1]) - sc.e
            F2[i][j] = max(H[i][j - 1] - sc.q2, F2[i][j - 1]) - sc.e2
            H[i][j] = max(
                H[i - 1][j - 1] + int(mat[t[i - 1], q[j - 1]]),
                E[i][j], E2[i][j], F[i][j], F2[i][j],
            )
            best = max(best, H[i][j])
    return H[m][n] if mode == "global" else best


dna_codes = st.integers(1, 30).flatmap(
    lambda k: st.lists(st.integers(0, 3), min_size=k, max_size=k)
)


class TestScoringModel:
    def test_defaults_valid(self):
        TwoPieceScoring()
        assert MAP_PB_2P.q2 == 24

    def test_slope_order_enforced(self):
        with pytest.raises(AlignmentError):
            TwoPieceScoring(e=1, e2=2)
        with pytest.raises(AlignmentError):
            TwoPieceScoring(q=10, q2=5, e=2, e2=1)

    def test_gap_cost_piecewise(self):
        sc = TwoPieceScoring(q=4, e=2, q2=24, e2=1)
        assert sc.gap_cost(1) == 6  # piece 1
        assert sc.gap_cost(100) == 124  # piece 2
        assert sc.crossover_length == 20
        assert sc.gap_cost(sc.crossover_length) == min(
            4 + 2 * 20, 24 + 1 * 20
        )

    def test_one_piece_view(self):
        assert TwoPieceScoring().one_piece.q == 4


class TestAlignment:
    @given(dna_codes, dna_codes, st.sampled_from(["global", "extend"]))
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce(self, tl, ql, mode):
        t = np.array(tl, dtype=np.uint8)
        q = np.array(ql, dtype=np.uint8)
        sc = TwoPieceScoring(q=3, e=3, q2=10, e2=1)
        assert align_two_piece(t, q, sc, mode=mode).score == brute_two_piece(
            t, q, sc, mode
        )

    @given(dna_codes, dna_codes)
    @settings(max_examples=30, deadline=None)
    def test_paths_rescore(self, tl, ql):
        t = np.array(tl, dtype=np.uint8)
        q = np.array(ql, dtype=np.uint8)
        sc = TwoPieceScoring(q=3, e=3, q2=10, e2=1)
        res = align_two_piece(t, q, sc, mode="global", path=True)
        assert score_cigar_two_piece(res.cigar, t, q, sc) == res.score

    def test_long_gap_cheaper_than_one_piece(self):
        """The whole point: a 100-base deletion is affordable."""
        t = np.concatenate([random_codes(50, seed=1), random_codes(100, seed=2),
                            random_codes(50, seed=3)])
        q = np.concatenate([t[:50], t[150:]])
        sc2 = TwoPieceScoring(match=2, mismatch=5, q=4, e=2, q2=24, e2=1)
        two = align_two_piece(t, q, sc2).score
        one = align_reference(t, q, sc2.one_piece).score
        # one-piece pays 4 + 200, two-piece only 24 + 100.
        assert two == 100 * 2 - (24 + 100)
        assert two > one

    def test_short_gap_uses_first_piece(self):
        t = encode("ACGTACGTAC")
        q = encode("ACGTCGTAC")  # 1-base deletion
        sc2 = TwoPieceScoring(match=2, mismatch=5, q=4, e=2, q2=24, e2=1)
        assert align_two_piece(t, q, sc2).score == 18 - 6

    def test_long_deletion_cigar_exact(self):
        t = np.concatenate([random_codes(40, seed=4), random_codes(60, seed=5),
                            random_codes(40, seed=6)])
        q = np.concatenate([t[:40], t[100:]])
        res = align_two_piece(t, q, MAP_PB_2P, path=True)
        assert str(res.cigar) == "40M60D40M"

    def test_empty_sequences(self):
        sc = TwoPieceScoring()
        empty = np.empty(0, dtype=np.uint8)
        t = random_codes(30, seed=7)
        assert align_two_piece(empty, empty, sc).score == 0
        assert align_two_piece(t, empty, sc).score == -sc.gap_cost(30)
        res = align_two_piece(empty, t, sc, path=True)
        assert str(res.cigar) == "30I"

    def test_bad_mode_raises(self):
        t = encode("ACGT")
        with pytest.raises(AlignmentError):
            align_two_piece(t, t, mode="diagonal")

    def test_reduces_to_one_piece_when_pieces_agree(self):
        """With q2,e2 never cheaper, results equal the one-piece oracle."""
        rng = np.random.default_rng(8)
        sc2 = TwoPieceScoring(q=2, e=2, q2=1000, e2=1)
        sc1 = Scoring(match=2, mismatch=4, q=2, e=2)
        for _ in range(10):
            t = random_codes(int(rng.integers(1, 40)), rng)
            q = random_codes(int(rng.integers(1, 40)), rng)
            # q2 so large piece 2 never wins at these lengths
            assert align_two_piece(t, q, sc2).score == align_reference(t, q, sc1).score
