"""Cross-kernel identity on simulated long reads (paper §5.3.3).

The correctness claim behind the whole dispatch layer: routing a DP job
through *any* registered kernel produces the same alignment. Pairs here
are not synthetic toys — they come from :mod:`repro.sim` PacBio-error
reads against their true genome windows, so the DP sees realistic indel
structure, and hypothesis draws random sub-batches and grouping orders
on top.

Two regimes are pinned:

* **global, unbanded** — every per-pair kernel (``scalar``/``mm2``/
  ``manymap``) plus the cross-read ``wavefront`` batch;
* **banded + z-drop extension** (the production configuration) — the
  banded kernels ``mm2``/``manymap`` plus ``wavefront``.

And end to end: mapping with each dispatch kernel selection yields
byte-identical PAF.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import api
from repro.align import Scoring, align_diff_scalar, align_manymap, align_mm2
from repro.align.dispatch import DPJob, KernelDispatch
from repro.core.aligner import Aligner
from repro.core.alignment import to_paf
from repro.seq.alphabet import revcomp_codes
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

SC = Scoring(match=2, mismatch=4, q=4, e=2)
N_PAIRS = 24


@pytest.fixture(scope="module")
def sim_pairs():
    """(target-window, read) code pairs from simulated PacBio reads."""
    genome = generate_genome(GenomeSpec(length=40_000, chromosomes=1), seed=5)
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(mean=300.0, sigma=0.4, max_length=700)
    chrom = genome.chromosomes[0].codes
    pairs = []
    for read in sim.simulate(N_PAIRS, seed=17):
        truth = read.meta["truth"]
        window = chrom[truth.start : truth.end]
        if truth.strand < 0:
            window = revcomp_codes(window)
        pairs.append((np.ascontiguousarray(window), read.codes))
    return pairs


@pytest.fixture(scope="module")
def sim_reads(small_genome):
    sim = ReadSimulator.preset(small_genome, "pacbio")
    sim.length_model = LengthModel(mean=500.0, sigma=0.4, max_length=1200)
    return list(sim.simulate(10, seed=23))


def result_key(res):
    return (res.score, res.end_t, res.end_q, res.cells, str(res.cigar))


subsets = st.lists(
    st.integers(0, N_PAIRS - 1), min_size=1, max_size=10, unique=True
)


class TestDPLevelIdentity:
    @given(subsets)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_global_all_kernels(self, sim_pairs, idxs):
        batch = [sim_pairs[i] for i in idxs]
        jobs = [DPJob(target=t, query=q, path=True) for t, q in batch]
        wavefront = KernelDispatch("wavefront", SC).run(jobs)
        for i, (t, q) in enumerate(batch):
            want = result_key(wavefront[i])
            for fn in (align_diff_scalar, align_mm2, align_manymap):
                got = result_key(fn(t, q, SC, mode="global", path=True))
                assert got == want, (fn.__name__, i)

    @given(subsets, st.sampled_from([50, 100, 400]))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_banded_zdrop_extension(self, sim_pairs, idxs, zdrop):
        batch = [sim_pairs[i] for i in idxs]
        band = 32
        jobs = [
            DPJob(
                target=t, query=q, mode="extend", path=True,
                zdrop=zdrop, band=band,
            )
            for t, q in batch
        ]
        wavefront = KernelDispatch("wavefront", SC).run(jobs)
        for i, (t, q) in enumerate(batch):
            want = result_key(wavefront[i])
            for fn in (align_mm2, align_manymap):
                got = result_key(
                    fn(
                        t, q, SC, mode="extend", path=True,
                        zdrop=zdrop, band=band,
                    )
                )
                assert got == want, (fn.__name__, i, zdrop)

    @given(subsets, st.randoms(use_true_random=False))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_grouping_never_changes_results(self, sim_pairs, idxs, rnd):
        """Dispatch routing freedom: any partition, same answers."""
        jobs = [
            DPJob(target=t, query=q, mode="extend", zdrop=200, band=32)
            for t, q in (sim_pairs[i] for i in idxs)
        ]
        want = [result_key(r) for r in KernelDispatch("wavefront", SC).run(jobs)]
        order = list(range(len(jobs)))
        rnd.shuffle(order)
        cut = rnd.randint(0, len(jobs))
        dispatch = KernelDispatch("wavefront", SC)
        got = [None] * len(jobs)
        for part in (order[:cut], order[cut:]):
            for i, res in zip(part, dispatch.run([jobs[i] for i in part])):
                got[i] = result_key(res)
        assert got == want


class TestEndToEndIdentity:
    KERNELS = ("none", "mm2", "manymap", "wavefront", "batched")

    def test_paf_identical_across_kernels(self, small_genome, sim_reads):
        aligner = Aligner(small_genome, preset="test")
        pafs = {}
        for kernel in self.KERNELS:
            results = api.map_reads(aligner, sim_reads, kernel=kernel)
            pafs[kernel] = [to_paf(a) for alns in results for a in alns]
        baseline = pafs["none"]
        assert baseline  # the corpus must actually map
        for kernel, got in pafs.items():
            assert got == baseline, kernel

    def test_batch_knobs_do_not_change_output(self, small_genome, sim_reads):
        aligner = Aligner(small_genome, preset="test")
        want = [
            to_paf(a)
            for alns in api.map_reads(aligner, sim_reads, kernel="wavefront")
            for a in alns
        ]
        for knobs in (
            {"batch_max": 96},
            {"batch_max": 0},
            {"batch_buckets": (64, 512, 6144)},
        ):
            got = [
                to_paf(a)
                for alns in api.map_reads(
                    aligner, sim_reads, kernel="wavefront", **knobs
                )
                for a in alns
            ]
            assert got == want, knobs
