"""Engine equivalence: the paper's correctness claim, property-tested.

manymap "produces the same alignment result as minimap2" (§5.3.3); here
all four engines — the Eq.(1) oracle, the Eq.(3) scalar, the
mm2-layout vectorized, and the manymap-layout vectorized kernels — are
checked against an independent O(mn) brute force and against each other.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align import (
    ENGINES,
    AlignmentResult,
    Scoring,
    align,
    align_diff_scalar,
    align_manymap,
    align_mm2,
    align_reference,
    get_engine,
)
from repro.align.diff_scalar import diff_value_bounds
from repro.errors import AlignmentError
from repro.seq.alphabet import encode, random_codes

NEG = -(10**9)


def brute_force(t, q, sc, mode="global"):
    """Independent Eq.(1) implementation with explicit Python loops."""
    m, n = len(t), len(q)
    mat = sc.matrix()
    H = [[NEG] * (n + 1) for _ in range(m + 1)]
    E = [[NEG] * (n + 1) for _ in range(m + 1)]
    F = [[NEG] * (n + 1) for _ in range(m + 1)]
    H[0][0] = 0
    for i in range(1, m + 1):
        H[i][0] = -(sc.q + sc.e * i)
    for j in range(1, n + 1):
        H[0][j] = -(sc.q + sc.e * j)
    best = NEG
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i][j] = max(H[i - 1][j] - sc.q, E[i - 1][j]) - sc.e
            F[i][j] = max(H[i][j - 1] - sc.q, F[i][j - 1]) - sc.e
            H[i][j] = max(
                H[i - 1][j - 1] + int(mat[t[i - 1], q[j - 1]]), E[i][j], F[i][j]
            )
            best = max(best, H[i][j])
    return H[m][n] if mode == "global" else best


ALL_ENGINES = [align_reference, align_diff_scalar, align_mm2, align_manymap]
VEC_ENGINES = [align_mm2, align_manymap]

dna_codes = st.integers(1, 40).flatmap(
    lambda n: st.lists(st.integers(0, 3), min_size=n, max_size=n)
)
scorings = st.sampled_from(
    [
        Scoring(),
        Scoring(match=1, mismatch=1, q=1, e=1, zdrop=100),
        Scoring(match=3, mismatch=2, q=6, e=3),
        Scoring(match=2, mismatch=5, q=4, e=2),  # map-pb
    ]
)


class TestEquivalenceProperty:
    @given(dna_codes, dna_codes, scorings, st.sampled_from(["global", "extend"]))
    @settings(max_examples=60, deadline=None)
    def test_all_engines_match_bruteforce(self, tl, ql, sc, mode):
        t = np.array(tl, dtype=np.uint8)
        q = np.array(ql, dtype=np.uint8)
        expected = brute_force(t, q, sc, mode)
        for fn in ALL_ENGINES:
            assert fn(t, q, sc, mode=mode).score == expected

    @given(dna_codes, dna_codes, scorings, st.sampled_from(["global", "extend"]))
    @settings(max_examples=40, deadline=None)
    def test_paths_rescore_to_dp_score(self, tl, ql, sc, mode):
        t = np.array(tl, dtype=np.uint8)
        q = np.array(ql, dtype=np.uint8)
        for fn in ALL_ENGINES:
            res = fn(t, q, sc, mode=mode, path=True)
            tt, qq = t[: res.end_t + 1], q[: res.end_q + 1]
            assert res.cigar.score(tt, qq, sc) == res.score

    @given(dna_codes, dna_codes)
    @settings(max_examples=40, deadline=None)
    def test_diff_values_fit_int8(self, tl, ql):
        """Suzuki–Kasahara: differences stay in an 8-bit band (§3.2)."""
        t = np.array(tl, dtype=np.uint8)
        q = np.array(ql, dtype=np.uint8)
        sc = Scoring()  # default minimap2-like parameters
        bounds = diff_value_bounds(t, q, sc)
        for key, (lo, hi) in bounds.items():
            assert -128 <= lo <= hi <= 127, (key, lo, hi)
        # And the sharper theoretical band for x, y:
        assert bounds["x"][0] >= -(sc.q + sc.e)
        assert bounds["x"][1] <= -sc.e
        assert bounds["y"][0] >= -(sc.q + sc.e)
        assert bounds["y"][1] <= -sc.e


class TestKnownAlignments:
    def test_perfect_match(self):
        t = encode("ACGTACGTAC")
        for fn in ALL_ENGINES:
            res = fn(t, t.copy(), Scoring(match=2), path=True)
            assert res.score == 20
            assert str(res.cigar) == "10M"

    def test_single_mismatch(self):
        t = encode("ACGTACGTAC")
        q = encode("ACGTTCGTAC")
        for fn in ALL_ENGINES:
            res = fn(t, q, Scoring(match=2, mismatch=4))
            assert res.score == 18 - 4

    def test_single_deletion(self):
        t = encode("ACGTACGTAC")
        q = encode("ACGTCGTAC")  # A deleted
        sc = Scoring(match=2, mismatch=4, q=4, e=2)
        for fn in ALL_ENGINES:
            res = fn(t, q, sc, path=True)
            assert res.score == 9 * 2 - 6
            assert res.cigar.target_span == 10
            assert res.cigar.query_span == 9

    def test_single_insertion(self):
        t = encode("ACGTACGTAC")
        q = encode("ACGTAACGTAC")
        sc = Scoring(match=2, mismatch=4, q=4, e=2)
        for fn in ALL_ENGINES:
            res = fn(t, q, sc)
            assert res.score == 10 * 2 - 6

    def test_long_gap_affine(self):
        t = encode("AAAA" + "CCCCCC" + "GGGG")
        q = encode("AAAAGGGG")
        sc = Scoring(match=2, mismatch=4, q=4, e=1)
        for fn in ALL_ENGINES:
            res = fn(t, q, sc, path=True)
            assert res.score == 16 - (4 + 6)
            assert str(res.cigar) == "4M6D4M"

    def test_extend_stops_at_best_prefix(self):
        # Query diverges after 8 bases; extension should report prefix.
        t = encode("ACGTACGT" + "TTTTTTTTTT")
        q = encode("ACGTACGT" + "AAAAAAAAAA")
        sc = Scoring(match=2, mismatch=4, q=4, e=2)
        for fn in ALL_ENGINES:
            res = fn(t, q, sc, mode="extend")
            assert res.score == 16
            assert res.end_t == 7 and res.end_q == 7

    def test_empty_sequences(self):
        sc = Scoring(q=4, e=2)
        empty = np.empty(0, dtype=np.uint8)
        t = encode("ACGT")
        for fn in ALL_ENGINES:
            assert fn(empty, empty, sc).score == 0
            assert fn(t, empty, sc).score == -(4 + 2 * 4)
            assert fn(empty, t, sc).score == -(4 + 2 * 4)

    def test_empty_paths(self):
        sc = Scoring()
        empty = np.empty(0, dtype=np.uint8)
        t = encode("ACG")
        for fn in ALL_ENGINES:
            assert str(fn(t, empty, sc, path=True).cigar) == "3D"
            assert str(fn(empty, t, sc, path=True).cigar) == "3I"
            assert str(fn(empty, empty, sc, path=True).cigar) == ""

    def test_ambiguous_bases_never_match(self):
        t = encode("NNNN")
        q = encode("NNNN")
        res = align_manymap(t, q, Scoring(match=2, sc_ambi=1))
        assert res.score == -4  # four ambiguous columns at -1 each


class TestZdrop:
    def test_zdrop_truncates(self):
        # Strong prefix match then a long random tail: z-drop should stop
        # the DP before computing the full matrix.
        rng = np.random.default_rng(0)
        prefix = random_codes(200, seed=1)
        t = np.concatenate([prefix, random_codes(800, seed=2)])
        q = np.concatenate([prefix, random_codes(800, seed=3)])
        sc = Scoring(match=2, mismatch=4, q=4, e=2, zdrop=50)
        for fn in [align_diff_scalar, align_mm2, align_manymap]:
            full = fn(t, q, sc, mode="extend")
            dropped = fn(t, q, sc, mode="extend", zdrop=50)
            assert dropped.zdropped
            assert dropped.cells < full.cells
            # The strong prefix score must be retained.
            assert dropped.score >= 200 * 2 * 0.8

    def test_zdrop_rejected_in_global(self):
        t = encode("ACGT")
        for fn in [align_diff_scalar, align_mm2, align_manymap]:
            with pytest.raises(AlignmentError):
                fn(t, t, Scoring(), mode="global", zdrop=10)

    def test_no_zdrop_on_clean_match(self):
        t = random_codes(500, seed=4)
        res = align_manymap(t, t.copy(), Scoring(), mode="extend", zdrop=100)
        assert not res.zdropped
        assert res.score == 1000


class TestEngineRegistry:
    def test_all_registered(self):
        assert set(ENGINES) == {
            "reference",
            "scalar",
            "mm2",
            "manymap",
            "wavefront",
        }

    def test_get_engine_unknown(self):
        with pytest.raises(AlignmentError):
            get_engine("turbo")

    def test_align_dispatches(self):
        t = encode("ACGT")
        res = align(t, t.copy(), engine="manymap")
        assert isinstance(res, AlignmentResult)
        assert res.score == 8

    def test_reference_rejects_zdrop(self):
        t = encode("ACGT")
        with pytest.raises(AlignmentError):
            align(t, t, engine="reference", mode="extend", zdrop=5)

    def test_bad_mode_raises(self):
        t = encode("ACGT")
        for name in ENGINES:
            with pytest.raises(AlignmentError):
                align(t, t, engine=name, mode="sideways")
