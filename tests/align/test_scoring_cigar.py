"""Tests for scoring parameters and CIGAR handling."""

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.align.cigar import Cigar
from repro.align.scoring import MAP_ONT, MAP_PB, SIMPLE, Scoring
from repro.seq.alphabet import encode


class TestScoring:
    def test_presets_valid(self):
        assert MAP_PB.mismatch == 5
        assert MAP_ONT.mismatch == 4
        assert SIMPLE.match == 1

    @pytest.mark.parametrize(
        "kwargs",
        [{"match": 0}, {"mismatch": -1}, {"e": 0}, {"q": -2}, {"zdrop": 0}],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(AlignmentError):
            Scoring(**kwargs)

    def test_matrix_shape_and_values(self):
        m = Scoring(match=2, mismatch=4).matrix()
        assert m.shape == (5, 5)
        assert m[0, 0] == 2 and m[0, 1] == -4
        assert (m[4, :] == -1).all() and (m[:, 4] == -1).all()

    def test_gap_cost(self):
        sc = Scoring(q=4, e=2)
        assert sc.gap_cost(0) == 0
        assert sc.gap_cost(1) == 6
        assert sc.gap_cost(5) == 14

    def test_gap_cost_negative_raises(self):
        with pytest.raises(AlignmentError):
            Scoring().gap_cost(-1)

    def test_fits_int8(self):
        assert MAP_PB.fits_int8()
        assert not Scoring(match=100, mismatch=20, q=5, e=5).fits_int8()


class TestCigar:
    def test_string_roundtrip(self):
        c = Cigar.from_string("10M2I3D1M")
        assert str(c) == "10M2I3D1M"
        assert len(c) == 4

    def test_malformed_raises(self):
        with pytest.raises(AlignmentError):
            Cigar.from_string("10M2Q")

    def test_zero_length_raises(self):
        with pytest.raises(AlignmentError):
            Cigar([(0, "M")])

    def test_from_ops_rle(self):
        c = Cigar.from_ops("MMMIID")
        assert str(c) == "3M2I1D"

    def test_spans(self):
        c = Cigar.from_string("5M2I3D")
        assert c.query_span == 7
        assert c.target_span == 8
        assert c.n_gap_bases == 5
        assert c.n_gap_opens == 2

    def test_merged(self):
        c = Cigar([(2, "M"), (3, "M"), (1, "I")])
        assert str(c.merged()) == "5M1I"

    def test_score_matches_manual(self):
        sc = Scoring(match=2, mismatch=4, q=4, e=2)
        t = encode("ACGTT")
        q = encode("ACGAT")  # one mismatch at position 3
        c = Cigar.from_string("5M")
        assert c.score(t, q, sc) == 4 * 2 - 4

    def test_score_with_gaps(self):
        sc = Scoring(match=2, mismatch=4, q=4, e=2)
        t = encode("ACGT")
        q = encode("AT")
        c = Cigar.from_string("1M2D1M")
        assert c.score(t, q, sc) == 2 + 2 - (4 + 2 * 2)

    def test_score_overrun_raises(self):
        sc = Scoring()
        with pytest.raises(AlignmentError):
            Cigar.from_string("10M").score(encode("ACGT"), encode("ACGT"), sc)

    def test_score_partial_coverage_raises(self):
        sc = Scoring()
        with pytest.raises(AlignmentError):
            Cigar.from_string("2M").score(encode("ACGT"), encode("ACGT"), sc)

    def test_identity(self):
        t = encode("ACGT")
        q = encode("AGGT")
        assert Cigar.from_string("4M").identity(t, q) == 0.75

    def test_identity_with_gap_columns(self):
        t = encode("ACGT")
        q = encode("AT")
        c = Cigar.from_string("1M2D1M")
        assert c.identity(t, q) == 0.5
