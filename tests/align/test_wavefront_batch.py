"""Cross-read wavefront batch kernel: bit-identity to per-pair manymap.

The batched kernel's contract is total: for every pair the score, end
cell, CIGAR, evaluated-cell count, z-drop flag, *and* the deterministic
counters must equal a per-pair :func:`align_manymap` call — no matter
how pairs are grouped into buckets. That invariant is what lets the
dispatch layer regroup jobs freely across backends and chunk shapes
without perturbing PAF output.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align import Scoring, align_manymap
from repro.align.wavefront_batch import align_wavefront, align_wavefront_batch
from repro.errors import AlignmentError
from repro.obs.counters import COUNTERS, counter_delta, drop_shape_dependent
from repro.seq.alphabet import encode, random_codes

SC = Scoring(match=2, mismatch=4, q=4, e=2)


def assert_same(got, want, label=""):
    assert got.score == want.score, label
    assert (got.end_t, got.end_q) == (want.end_t, want.end_q), label
    assert got.cells == want.cells, label
    assert got.zdropped == want.zdropped, label
    assert str(got.cigar) == str(want.cigar), label


def per_pair(pairs, mode="global", path=False, zdrop=None, bands=None):
    out = []
    for i, (t, q) in enumerate(pairs):
        kwargs = {}
        if zdrop is not None:
            kwargs["zdrop"] = zdrop
        if bands is not None and bands[i] is not None:
            kwargs["band"] = bands[i]
        out.append(align_manymap(t, q, SC, mode=mode, path=path, **kwargs))
    return out


codes = st.integers(0, 60).flatmap(
    lambda n: st.lists(st.integers(0, 3), min_size=n, max_size=n)
)
pair_lists = st.lists(st.tuples(codes, codes), min_size=1, max_size=8)


def to_pairs(raw):
    return [
        (np.array(t, dtype=np.uint8), np.array(q, dtype=np.uint8))
        for t, q in raw
    ]


class TestBatchIdentity:
    @given(pair_lists, st.sampled_from(["global", "extend"]), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_matches_per_pair(self, raw, mode, path):
        pairs = to_pairs(raw)
        want = per_pair(pairs, mode=mode, path=path)
        got = align_wavefront_batch(
            [t for t, _ in pairs], [q for _, q in pairs], SC,
            mode=mode, path=path,
        )
        for i, (g, w) in enumerate(zip(got, want)):
            assert_same(g, w, f"pair {i} mode={mode} path={path}")

    @given(pair_lists, st.data())
    @settings(max_examples=40, deadline=None)
    def test_mixed_bands_match_per_pair(self, raw, data):
        pairs = to_pairs(raw)
        bands = [
            data.draw(st.one_of(st.none(), st.integers(1, 16)))
            for _ in pairs
        ]
        want = per_pair(pairs, mode="extend", path=True, bands=bands)
        got = align_wavefront_batch(
            [t for t, _ in pairs], [q for _, q in pairs], SC,
            mode="extend", path=True, bands=bands,
        )
        for i, (g, w) in enumerate(zip(got, want)):
            assert_same(g, w, f"pair {i} band={bands[i]}")

    @given(pair_lists, st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_grouping_independence(self, raw, seed):
        """Results (and deterministic counters) ignore bucket composition."""
        pairs = to_pairs(raw)
        ts = [t for t, _ in pairs]
        qs = [q for _, q in pairs]
        whole = align_wavefront_batch(ts, qs, SC, mode="global", path=True)
        rng = np.random.default_rng(seed)
        cut = int(rng.integers(0, len(pairs) + 1))
        order = rng.permutation(len(pairs))
        parts = [order[:cut], order[cut:]]
        regrouped = [None] * len(pairs)
        for part in parts:
            if not len(part):
                continue
            out = align_wavefront_batch(
                [ts[i] for i in part], [qs[i] for i in part], SC,
                mode="global", path=True,
            )
            for i, res in zip(part, out):
                regrouped[i] = res
        for i, (g, w) in enumerate(zip(regrouped, whole)):
            assert_same(g, w, f"pair {i} cut={cut}")

    def test_counters_match_per_pair(self):
        pairs = [
            (random_codes(80, seed=i), random_codes(75, seed=100 + i))
            for i in range(6)
        ]
        bands = [8, None, 12, 8, None, 20]
        before = COUNTERS.totals()
        per_pair(pairs, mode="extend", bands=bands)
        solo = counter_delta(COUNTERS.totals(), before)
        before = COUNTERS.totals()
        align_wavefront_batch(
            [t for t, _ in pairs], [q for _, q in pairs], SC,
            mode="extend", bands=bands,
        )
        batched = counter_delta(COUNTERS.totals(), before)
        # Deterministic counters identical; only wavefront.* telemetry
        # (absent from the per-pair run) depends on the batching.
        assert drop_shape_dependent(batched) == drop_shape_dependent(solo)
        assert batched["wavefront.lanes"] == len(pairs)

    def test_single_lane_adapter(self):
        t = encode("ACGTACGTACGT")
        q = encode("ACGTACGAACGT")
        assert_same(
            align_wavefront(t, q, SC, path=True),
            align_manymap(t, q, SC, path=True),
        )

    def test_degenerate_lanes_in_batch(self):
        empty = np.empty(0, dtype=np.uint8)
        t = encode("ACGTACGT")
        ts = [t, empty, t, empty]
        qs = [empty, t, t.copy(), empty]
        want = per_pair(list(zip(ts, qs)), path=True)
        got = align_wavefront_batch(ts, qs, SC, mode="global", path=True)
        for g, w in zip(got, want):
            assert_same(g, w)


class TestZdropRetirement:
    """Acceptance: retiring hopeless lanes must cut dp_cells, not output."""

    @staticmethod
    def _divergent_pairs(n_pairs=6, prefix_len=150, tail=600):
        pairs = []
        for i in range(n_pairs):
            prefix = random_codes(prefix_len, seed=50 + i)
            t = np.concatenate([prefix, random_codes(tail, seed=200 + i)])
            q = np.concatenate([prefix, random_codes(tail, seed=300 + i)])
            pairs.append((t, q))
        return pairs

    def test_retirement_reduces_dp_cells(self):
        pairs = self._divergent_pairs()
        ts = [t for t, _ in pairs]
        qs = [q for _, q in pairs]
        before = COUNTERS.totals()
        full = align_wavefront_batch(ts, qs, SC, mode="extend")
        no_zdrop = counter_delta(COUNTERS.totals(), before)
        before = COUNTERS.totals()
        dropped = align_wavefront_batch(ts, qs, SC, mode="extend", zdrop=50)
        with_zdrop = counter_delta(COUNTERS.totals(), before)
        assert with_zdrop["wavefront.lanes_retired"] >= 1
        assert with_zdrop["dp_cells"] < no_zdrop["dp_cells"]
        # Retirement keeps the strong-prefix result of every lane.
        for f, d in zip(full, dropped):
            assert d.zdropped and d.cells < f.cells
            assert d.score >= 150 * 2 * 0.8

    def test_zdrop_output_matches_per_pair(self):
        pairs = self._divergent_pairs()
        want = per_pair(pairs, mode="extend", zdrop=50)
        got = align_wavefront_batch(
            [t for t, _ in pairs], [q for _, q in pairs], SC,
            mode="extend", zdrop=50,
        )
        for i, (g, w) in enumerate(zip(got, want)):
            assert_same(g, w, f"pair {i}")

    def test_clean_lanes_survive_alongside_retired(self):
        clean = random_codes(400, seed=9)
        pairs = self._divergent_pairs(n_pairs=3) + [(clean, clean.copy())]
        got = align_wavefront_batch(
            [t for t, _ in pairs], [q for _, q in pairs], SC,
            mode="extend", zdrop=50,
        )
        assert not got[-1].zdropped
        assert got[-1].score == 800


class TestBatchValidation:
    def test_length_mismatch(self):
        t = encode("ACGT")
        with pytest.raises(AlignmentError, match="batch size mismatch"):
            align_wavefront_batch([t, t], [t], SC)

    def test_bad_mode(self):
        t = encode("ACGT")
        with pytest.raises(AlignmentError, match="unknown mode"):
            align_wavefront_batch([t], [t], SC, mode="sideways")

    def test_zdrop_rejected_in_global(self):
        t = encode("ACGT")
        with pytest.raises(AlignmentError, match="zdrop"):
            align_wavefront_batch([t], [t], SC, mode="global", zdrop=10)

    def test_bands_length_mismatch(self):
        t = encode("ACGT")
        with pytest.raises(AlignmentError, match="bands length"):
            align_wavefront_batch([t, t], [t, t], SC, bands=[5])
