"""Cross-module integration tests: full pipelines, CLI, file round trips."""

import io
import subprocess
import sys

import numpy as np
import pytest

from repro import (
    Aligner,
    BatchDriver,
    GenomeSpec,
    build_index,
    evaluate_accuracy,
    generate_genome,
    load_index,
    save_index,
    simulate_reads,
)
from repro.core.alignment import to_paf
from repro.runtime.threaded import ThreadedPipeline
from repro.seq.fasta import read_fasta, write_fasta, write_fastq
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator


class TestFullPipeline:
    def test_simulate_index_align_evaluate(self, small_genome):
        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.length_model = LengthModel(mean=1000.0, sigma=0.3, max_length=2000)
        reads = sim.simulate(8, seed=31)
        aligner = Aligner(small_genome, preset="test")
        results = [aligner.map_read(r, with_cigar=False) for r in reads]
        report = evaluate_accuracy(list(reads), results)
        assert report.sensitivity >= 0.75
        assert report.error_rate <= 0.25

    def test_index_file_roundtrip_same_alignments(self, small_genome, tmp_path):
        from repro.core.presets import get_preset

        preset = get_preset("test")
        idx = build_index(small_genome, k=preset.k, w=preset.w)
        path = tmp_path / "x.mmi"
        save_index(idx, path)
        codes = small_genome.fetch("chr1", 7000, 8200)
        from repro.seq.records import SeqRecord

        read = SeqRecord("q", codes.copy())
        direct = Aligner(small_genome, preset="test", index=idx).map_read(read)
        for mode in ("buffered", "mmap"):
            loaded = load_index(path, mode=mode)
            loaded_alns = Aligner(
                small_genome, preset="test", index=loaded
            ).map_read(read)
            assert [(a.tstart, a.tend, a.score) for a in loaded_alns] == [
                (a.tstart, a.tend, a.score) for a in direct
            ]

    def test_threaded_pipeline_matches_serial(self, small_genome):
        sim = ReadSimulator.preset(small_genome, "pacbio")
        sim.length_model = LengthModel(mean=700.0, sigma=0.2, max_length=1200)
        reads = sim.simulate(6, seed=33)
        aligner = Aligner(small_genome, preset="test")
        serial = [to_paf(a) for r in reads for a in aligner.map_read(r, with_cigar=False)]
        collected = []
        pipe = ThreadedPipeline(
            load_fn=lambda r: r,
            compute_fn=lambda r: aligner.map_read(r, with_cigar=False),
            output_fn=lambda alns: collected.extend(to_paf(a) for a in alns),
        )
        n = pipe.run(list(reads))
        assert n == len(reads)
        assert collected == serial

    def test_fasta_roundtrip_through_disk(self, small_genome, tmp_path):
        ref = tmp_path / "g.fa"
        write_fasta(ref, small_genome.chromosomes)
        back = read_fasta(ref)
        assert (back[0].codes == small_genome.chromosomes[0].codes).all()


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True, text=True, timeout=600,
        )

    def test_version(self):
        out = self._run("--version")
        assert out.returncode == 0
        assert "manymap" in out.stdout

    def test_simulate_index_map(self, tmp_path):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        out = self._run(
            "simulate", "--genome-length", "40000", "--n-reads", "4",
            "--seed", "1", "--reference-out", str(ref), "--reads-out", str(reads),
        )
        assert out.returncode == 0 and ref.exists() and reads.exists()

        mmi = tmp_path / "ref.mmi"
        out = self._run("index", str(ref), "-o", str(mmi), "-k", "13", "-w", "5")
        assert out.returncode == 0 and mmi.exists()

        out = self._run("map", str(ref), str(reads), "-x", "test", "--no-cigar")
        assert out.returncode == 0
        lines = [l for l in out.stdout.splitlines() if l.strip()]
        assert len(lines) >= 3  # most reads map
        assert all(len(l.split("\t")) >= 12 for l in lines)

    def test_map_sam_output(self, tmp_path):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        self._run(
            "simulate", "--genome-length", "30000", "--n-reads", "2",
            "--seed", "2", "--reference-out", str(ref), "--reads-out", str(reads),
        )
        out = self._run("map", str(ref), str(reads), "-x", "test", "--sam")
        assert out.returncode == 0
        assert out.stdout.startswith("@HD")
        assert "@SQ" in out.stdout

    def test_unknown_subcommand_fails(self):
        out = self._run("fly")
        assert out.returncode != 0


class TestDeterminism:
    def test_pipeline_fully_deterministic(self, small_genome):
        reads = simulate_reads(small_genome, 5, seed=40)
        a1 = Aligner(small_genome, preset="test")
        a2 = Aligner(small_genome, preset="test")
        for r in reads:
            p1 = [to_paf(a) for a in a1.map_read(r)]
            p2 = [to_paf(a) for a in a2.map_read(r)]
            assert p1 == p2


class TestCliExtras:
    def _run(self, *args):
        import subprocess, sys

        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True, text=True, timeout=600,
        )

    def test_bench_fig_tables(self):
        for fig in ("fig5", "fig6", "fig7", "fig8", "table3"):
            out = self._run("bench", fig)
            assert out.returncode == 0
            assert "model" in out.stdout.lower() or "Figure" in out.stdout or "Table" in out.stdout

    def test_bench_list(self):
        out = self._run("bench", "list")
        assert out.returncode == 0 and "fig5" in out.stdout

    def test_bench_unknown(self):
        assert self._run("bench", "fig99").returncode == 1

    def test_map_threads(self, tmp_path):
        ref = tmp_path / "ref.fa"
        reads = tmp_path / "reads.fq"
        self._run(
            "simulate", "--genome-length", "30000", "--n-reads", "4",
            "--seed", "3", "--reference-out", str(ref), "--reads-out", str(reads),
        )
        serial = self._run("map", str(ref), str(reads), "-x", "test", "--no-cigar")
        threaded = self._run(
            "map", str(ref), str(reads), "-x", "test", "--no-cigar", "-t", "3"
        )
        assert threaded.returncode == 0
        assert threaded.stdout == serial.stdout

    def test_stats_subcommand(self, tmp_path):
        ref = tmp_path / "ref.fa"
        self._run(
            "simulate", "--genome-length", "30000",
            "--seed", "4", "--reference-out", str(ref),
        )
        mmi = tmp_path / "ref.mmi"
        self._run("index", str(ref), "-o", str(mmi))
        out = self._run("stats", str(mmi))
        assert out.returncode == 0
        assert "minimizers" in out.stdout
        assert "file size" in out.stdout
