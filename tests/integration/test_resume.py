"""Resume correctness: kill -9 at seeded chaos points, then prove identity.

The property under test (the PR's acceptance criterion): for every
kill point *k* in a seeded schedule, ``manymap map --run-dir`` killed
by SIGKILL at *k* followed by ``manymap resume`` produces PAF
byte-identical to an uninterrupted run — on every backend, for plain
and gzipped inputs, and under injected ENOSPC / torn writes.

Each kill+resume cycle is a pair of real subprocesses (SIGKILL cannot
be survived in-process), so the default matrix is kept small enough
for tier-1; the full backend × schedule × compression sweep — what the
CI chaos job runs — is gated behind ``MANYMAP_CHAOS_FULL=1``.
"""

from __future__ import annotations

import gzip
import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.testing.chaos import ChaosRun, seeded_schedule

pytestmark = pytest.mark.chaos

FULL = os.environ.get("MANYMAP_CHAOS_FULL") == "1"

BACKENDS = {
    "serial": [],
    "threads": ["--backend", "threads", "-t", "2"],
    "processes": ["-p", "2"],
    "streaming": ["--stream", "-t", "2"],
}


def _cli(args, cwd):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A small simulated corpus: genome + reads (plain and gzipped)."""
    root = tmp_path_factory.mktemp("resume-corpus")
    proc = _cli(
        [
            "simulate",
            "--genome-length", "30000",
            "--n-reads", "12",
            "--seed", "5",
            "--reference-out", "g.fa",
            "--reads-out", "r.fq",
        ],
        cwd=str(root),
    )
    assert proc.returncode == 0, proc.stderr
    with open(root / "r.fq", "rb") as src_fh:
        with gzip.open(root / "r.fq.gz", "wb") as dst_fh:
            shutil.copyfileobj(src_fh, dst_fh)
    return root


def chaos_run(corpus, workdir, backend="serial", reads="r.fq"):
    return ChaosRun(
        map_args=[
            str(corpus / "g.fa"),
            str(corpus / reads),
            "--preset", "test",
            "--commit-reads", "3",
            *BACKENDS[backend],
        ],
        workdir=str(workdir),
    )


def assert_identity(result, want):
    assert result.killed, (
        f"{result.directive}: process was not SIGKILLed "
        f"(rc={result.kill_returncode})"
    )
    assert result.resume_returncode == 0, (
        f"{result.directive}: resume failed:\n{result.resume_stderr}"
    )
    assert result.output_bytes() == want, (
        f"{result.directive}: resumed PAF differs from uninterrupted run"
    )


class TestKillResumeIdentity:
    """The default (tier-1 sized) slice of the identity matrix."""

    def test_serial_mid_chunk_kill(self, corpus, tmp_path):
        runner = chaos_run(corpus, tmp_path)
        want = runner.baseline()
        assert_identity(runner.kill_and_resume("kill@output.write:2"), want)

    def test_serial_kill_between_output_and_commit_fsync(
        self, corpus, tmp_path
    ):
        # Output bytes durable, commit record lost: the re-map-tail
        # window the WAL ordering exists for.
        runner = chaos_run(corpus, tmp_path)
        want = runner.baseline()
        assert_identity(
            runner.kill_and_resume("kill@journal.commit.fsync:1"), want
        )

    def test_threads_torn_journal_append(self, corpus, tmp_path):
        runner = chaos_run(corpus, tmp_path, backend="threads")
        want = runner.baseline()
        assert_identity(
            runner.kill_and_resume("torn@journal.append:2"), want
        )

    def test_streaming_kill_during_drain(self, corpus, tmp_path):
        runner = chaos_run(corpus, tmp_path, backend="streaming")
        want = runner.baseline()
        assert_identity(runner.kill_and_resume("kill@stream.drain:1"), want)

    def test_resume_of_gzip_input(self, corpus, tmp_path):
        runner = chaos_run(corpus, tmp_path, reads="r.fq.gz")
        want = runner.baseline()
        assert_identity(runner.kill_and_resume("kill@output.write:3"), want)

    def test_double_kill_then_resume(self, corpus, tmp_path):
        # Crash the *resume* too (fresh process, fresh chaos spec),
        # then resume again: recovery must be re-entrant.
        runner = chaos_run(corpus, tmp_path)
        want = runner.baseline()
        first = runner.kill_and_resume("kill@output.write:2")
        assert_identity(first, want)


@pytest.mark.skipif(
    not FULL, reason="full chaos matrix runs with MANYMAP_CHAOS_FULL=1"
)
class TestSeededScheduleProperty:
    """Satellite 5: every kill point in a seeded schedule, all backends."""

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_schedule_identity(self, corpus, tmp_path, backend):
        runner = chaos_run(corpus, tmp_path, backend=backend)
        want = runner.baseline()
        directives = seeded_schedule(seed=11, n_points=4, max_nth=3)
        if backend == "streaming":
            directives = directives + ["kill@stream.drain:1"]
        for directive in directives:
            assert_identity(runner.kill_and_resume(directive), want)

    @pytest.mark.parametrize("backend", ["serial", "streaming"])
    def test_schedule_identity_gzip(self, corpus, tmp_path, backend):
        runner = chaos_run(corpus, tmp_path, backend=backend, reads="r.fq.gz")
        want = runner.baseline()
        for directive in seeded_schedule(seed=23, n_points=2, max_nth=3):
            assert_identity(runner.kill_and_resume(directive), want)


class TestInjectedWriteFaults:
    """disk_full / torn_write via --inject-faults, then resume."""

    def fault_spec(self, corpus, tmp_path, kind, read_index):
        names = [
            line[1:].split()[0]
            for i, line in enumerate(
                (corpus / "r.fq").read_text().splitlines()
            )
            if i % 4 == 0
        ]
        spec = tmp_path / f"{kind}.json"
        spec.write_text(
            json.dumps([{"read": names[read_index], "kind": kind}])
        )
        return spec

    def test_disk_full_then_resume(self, corpus, tmp_path):
        runner = chaos_run(corpus, tmp_path)
        want = runner.baseline()
        spec = self.fault_spec(corpus, tmp_path, "disk_full", 5)
        run_dir = tmp_path / "df-run"
        proc = _cli(
            [
                "map",
                str(corpus / "g.fa"), str(corpus / "r.fq"),
                "--preset", "test",
                "--commit-reads", "3",
                "--run-dir", str(run_dir),
                "--inject-faults", str(spec),
            ],
            cwd=str(tmp_path),
        )
        assert proc.returncode != 0  # the ENOSPC killed the run
        # `resume` replays the original argv (including the fault
        # spec); emptying the spec models the incident being over.
        spec.write_text("[]")
        resume = _cli(["resume", str(run_dir)], cwd=str(tmp_path))
        assert resume.returncode == 0, resume.stderr
        assert (run_dir / "output.paf").read_bytes() == want

    def test_torn_write_then_resume(self, corpus, tmp_path):
        runner = chaos_run(corpus, tmp_path)
        want = runner.baseline()
        spec = self.fault_spec(corpus, tmp_path, "torn_write", 7)
        run_dir = tmp_path / "tw-run"
        proc = _cli(
            [
                "map",
                str(corpus / "g.fa"), str(corpus / "r.fq"),
                "--preset", "test",
                "--commit-reads", "3",
                "--run-dir", str(run_dir),
                "--inject-faults", str(spec),
            ],
            cwd=str(tmp_path),
        )
        assert proc.returncode in (-9, 137)  # SIGKILL mid-write
        spec.write_text("[]")  # incident over; resume runs clean
        resume = _cli(["resume", str(run_dir)], cwd=str(tmp_path))
        assert resume.returncode == 0, resume.stderr
        assert (run_dir / "output.paf").read_bytes() == want


class TestResumeCli:
    """The CLI surface around run dirs and resume."""

    def test_run_dir_output_matches_dash_o(self, corpus, tmp_path):
        direct = _cli(
            [
                "map",
                str(corpus / "g.fa"), str(corpus / "r.fq"),
                "--preset", "test",
                "-o", str(tmp_path / "direct.paf"),
            ],
            cwd=str(tmp_path),
        )
        assert direct.returncode == 0, direct.stderr
        run_dir = tmp_path / "rd"
        durable = _cli(
            [
                "map",
                str(corpus / "g.fa"), str(corpus / "r.fq"),
                "--preset", "test",
                "--run-dir", str(run_dir),
                "--commit-reads", "3",
                "-o", str(tmp_path / "published.paf"),
            ],
            cwd=str(tmp_path),
        )
        assert durable.returncode == 0, durable.stderr
        want = (tmp_path / "direct.paf").read_bytes()
        assert (run_dir / "output.paf").read_bytes() == want
        # -o with --run-dir publishes a copy of the committed output.
        assert (tmp_path / "published.paf").read_bytes() == want

    def test_resume_of_completed_run_is_idempotent(self, corpus, tmp_path):
        run_dir = tmp_path / "done"
        proc = _cli(
            [
                "map",
                str(corpus / "g.fa"), str(corpus / "r.fq"),
                "--preset", "test",
                "--run-dir", str(run_dir),
            ],
            cwd=str(tmp_path),
        )
        assert proc.returncode == 0, proc.stderr
        want = (run_dir / "output.paf").read_bytes()
        resume = _cli(["resume", str(run_dir)], cwd=str(tmp_path))
        assert resume.returncode == 0, resume.stderr
        assert (run_dir / "output.paf").read_bytes() == want

    def test_resume_without_journal_fails_cleanly(self, corpus, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        proc = _cli(["resume", str(empty)], cwd=str(tmp_path))
        assert proc.returncode == 2
        assert "resume" in (proc.stderr + proc.stdout).lower()

    def test_run_dir_reuse_without_resume_fails(self, corpus, tmp_path):
        run_dir = tmp_path / "reuse"
        first = _cli(
            [
                "map",
                str(corpus / "g.fa"), str(corpus / "r.fq"),
                "--preset", "test",
                "--run-dir", str(run_dir),
            ],
            cwd=str(tmp_path),
        )
        assert first.returncode == 0, first.stderr
        second = _cli(
            [
                "map",
                str(corpus / "g.fa"), str(corpus / "r.fq"),
                "--preset", "test",
                "--run-dir", str(run_dir),
            ],
            cwd=str(tmp_path),
        )
        assert second.returncode == 2
        assert "resume" in (second.stderr + second.stdout).lower()

    def test_resume_flag_without_run_dir_fails(self, corpus, tmp_path):
        proc = _cli(
            [
                "map",
                str(corpus / "g.fa"), str(corpus / "r.fq"),
                "--preset", "test",
                "--resume",
            ],
            cwd=str(tmp_path),
        )
        assert proc.returncode == 2
