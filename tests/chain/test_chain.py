"""Tests for anchor collection, chaining DP, and chain selection."""

import numpy as np
import pytest

from repro.chain.anchors import Anchor, collect_anchors
from repro.chain.chain import Chain, ChainParams, chain_anchors
from repro.chain.select import estimate_mapq, select_chains
from repro.errors import ChainError
from repro.index.index import build_index
from repro.seq.alphabet import revcomp_codes
from repro.sim.errors import CLEAN, PACBIO_CLR, apply_errors


@pytest.fixture(scope="module")
def indexed(small_genome):
    return build_index(small_genome, k=15, w=10)


def _read_from(genome, start, length, strand=1, profile=CLEAN, seed=0):
    codes = genome.fetch("chr1", start, start + length)
    if strand < 0:
        codes = revcomp_codes(codes)
    read, _ = apply_errors(codes, profile, seed=seed)
    return read


class TestCollectAnchors:
    def test_exact_read_produces_colinear_anchors(self, small_genome, indexed):
        read = _read_from(small_genome, 5000, 2000)
        rid, tpos, qpos, strand = collect_anchors(read, indexed, as_arrays=True)
        assert rid.size > 50
        fwd = strand == 0
        # Diagonal (tpos - qpos) of true matches is constant at 5000.
        diags = tpos[fwd] - qpos[fwd]
        assert (diags == 5000).mean() > 0.8

    def test_reverse_read_flipped_coordinates(self, small_genome, indexed):
        read = _read_from(small_genome, 8000, 1500, strand=-1)
        rid, tpos, qpos, strand = collect_anchors(read, indexed, as_arrays=True)
        rev = strand == 1
        assert rev.sum() > 30
        diags = tpos[rev] - qpos[rev]
        assert (diags == 8000).mean() > 0.5

    def test_sorted_output(self, small_genome, indexed):
        read = _read_from(small_genome, 2000, 3000, profile=PACBIO_CLR)
        rid, tpos, qpos, strand = collect_anchors(read, indexed, as_arrays=True)
        order = np.lexsort((qpos, tpos, strand, rid))
        assert (order == np.arange(rid.size)).all()

    def test_object_api(self, small_genome, indexed):
        read = _read_from(small_genome, 100, 600)
        anchors = collect_anchors(read, indexed)
        assert anchors and isinstance(anchors[0], Anchor)

    def test_no_anchors_for_foreign_sequence(self, indexed, rng):
        foreign = rng.integers(0, 4, size=500).astype(np.uint8)
        anchors = collect_anchors(foreign, indexed)
        assert len(anchors) <= 2  # chance collisions only


class TestChainParams:
    def test_invalid(self):
        with pytest.raises(ChainError):
            ChainParams(k=0)
        with pytest.raises(ChainError):
            ChainParams(max_dist_t=0)


class TestChainDP:
    def test_perfect_diagonal_chains_fully(self):
        n = 50
        tpos = np.arange(100, 100 + 20 * n, 20, dtype=np.int64)
        qpos = np.arange(0, 20 * n, 20, dtype=np.int64)
        rid = np.zeros(n, dtype=np.int64)
        strand = np.zeros(n, dtype=np.int64)
        chains = chain_anchors(rid, tpos, qpos, strand)
        assert len(chains) == 1
        assert chains[0].n_anchors == n
        assert chains[0].score > 40

    def test_two_diagonals_two_chains(self):
        n = 30
        t1 = np.arange(0, 20 * n, 20)
        q1 = np.arange(0, 20 * n, 20)
        t2 = np.arange(30000, 30000 + 20 * n, 20)
        q2 = np.arange(0, 20 * n, 20)
        tpos = np.concatenate([t1, t2]).astype(np.int64)
        qpos = np.concatenate([q1, q2]).astype(np.int64)
        rid = np.zeros(2 * n, dtype=np.int64)
        strand = np.zeros(2 * n, dtype=np.int64)
        order = np.lexsort((qpos, tpos, strand, rid))
        chains = chain_anchors(rid[order], tpos[order], qpos[order], strand[order])
        assert len(chains) == 2

    def test_bandwidth_splits_offdiagonal(self):
        # Second half jumps 2000 off-diagonal: more than the bandwidth.
        t1 = np.arange(0, 400, 20)
        q1 = np.arange(0, 400, 20)
        t2 = np.arange(3000, 3400, 20)
        q2 = np.arange(400, 800, 20)
        tpos = np.concatenate([t1, t2]).astype(np.int64)
        qpos = np.concatenate([q1, q2]).astype(np.int64)
        rid = np.zeros(tpos.size, dtype=np.int64)
        strand = np.zeros(tpos.size, dtype=np.int64)
        params = ChainParams(bandwidth=500, min_score=20, min_count=3)
        chains = chain_anchors(rid, tpos, qpos, strand, params)
        assert len(chains) == 2

    def test_strands_never_mix(self):
        n = 20
        tpos = np.tile(np.arange(0, 20 * n, 20), 2).astype(np.int64)
        qpos = np.tile(np.arange(0, 20 * n, 20), 2).astype(np.int64)
        rid = np.zeros(2 * n, dtype=np.int64)
        strand = np.repeat([0, 1], n).astype(np.int64)
        order = np.lexsort((qpos, tpos, strand, rid))
        chains = chain_anchors(rid[order], tpos[order], qpos[order], strand[order])
        assert len(chains) == 2
        assert {c.strand for c in chains} == {0, 1}

    def test_min_count_filters(self):
        tpos = np.array([0, 20], dtype=np.int64)
        qpos = np.array([0, 20], dtype=np.int64)
        rid = np.zeros(2, dtype=np.int64)
        strand = np.zeros(2, dtype=np.int64)
        chains = chain_anchors(rid, tpos, qpos, strand, ChainParams(min_score=1))
        assert chains == []

    def test_empty_input(self):
        z = np.empty(0, dtype=np.int64)
        assert chain_anchors(z, z, z, z) == []

    def test_unsorted_raises(self):
        tpos = np.array([100, 0], dtype=np.int64)
        qpos = np.array([0, 20], dtype=np.int64)
        z = np.zeros(2, dtype=np.int64)
        with pytest.raises(ChainError):
            chain_anchors(z, tpos, qpos, z)

    def test_mismatched_lengths_raise(self):
        z = np.zeros(3, dtype=np.int64)
        with pytest.raises(ChainError):
            chain_anchors(z, z[:2], z, z)

    def test_anchors_monotone_within_chain(self, small_genome, indexed):
        read = _read_from(small_genome, 10_000, 4000, profile=PACBIO_CLR, seed=3)
        arrays = collect_anchors(read, indexed, as_arrays=True)
        chains = chain_anchors(*arrays)
        assert chains
        for c in chains:
            ts = [a[0] for a in c.anchors]
            qs = [a[1] for a in c.anchors]
            assert ts == sorted(ts) and qs == sorted(qs)


class TestSelect:
    def _chain(self, score, q0, q1, strand=0):
        return Chain(rid=0, strand=strand, score=score, anchors=[(q0, q0), (q1, q1)])

    def test_non_overlapping_both_primary(self):
        a = self._chain(100, 0, 500)
        b = self._chain(80, 1000, 1500)
        primary, secondary = select_chains([a, b])
        assert len(primary) == 2 and not secondary

    def test_overlapping_best_wins(self):
        a = self._chain(100, 0, 500)
        b = self._chain(80, 100, 600)
        primary, secondary = select_chains([a, b])
        assert primary == [a]
        assert secondary == [b]

    def test_bad_mask_level_raises(self):
        with pytest.raises(ValueError):
            select_chains([], mask_level=2.0)

    def test_mapq_high_when_unique(self):
        c = Chain(rid=0, strand=0, score=500, anchors=[(i, i) for i in range(20)])
        assert estimate_mapq(c, []) == 60

    def test_mapq_zero_when_tied(self):
        a = Chain(rid=0, strand=0, score=500, anchors=[(i, i) for i in range(20)])
        b = Chain(rid=1, strand=0, score=500, anchors=[(i, i) for i in range(20)])
        assert estimate_mapq(a, [b]) == 0

    def test_mapq_monotone_in_gap(self):
        a = Chain(rid=0, strand=0, score=500, anchors=[(i, i) for i in range(20)])
        weaker = Chain(rid=1, strand=0, score=100, anchors=[(i, i) for i in range(20)])
        stronger = Chain(rid=1, strand=0, score=450, anchors=[(i, i) for i in range(20)])
        assert estimate_mapq(a, [weaker]) > estimate_mapq(a, [stronger])
