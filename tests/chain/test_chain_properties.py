"""Property-based tests for the chaining DP."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.chain import ChainParams, chain_anchors

PARAMS = ChainParams(k=10, min_score=15, min_count=2, bandwidth=200)


def make_sorted(rid, tpos, qpos, strand):
    order = np.lexsort((qpos, tpos, strand, rid))
    return rid[order], tpos[order], qpos[order], strand[order]


anchor_sets = st.integers(2, 40).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),  # rid
        st.lists(st.integers(0, 3000), min_size=n, max_size=n),  # tpos
        st.lists(st.integers(0, 3000), min_size=n, max_size=n),  # qpos
        st.lists(st.integers(0, 1), min_size=n, max_size=n),  # strand
    )
)


class TestChainProperties:
    @given(anchor_sets)
    @settings(max_examples=60, deadline=None)
    def test_chains_are_strictly_colinear(self, data):
        rid, tpos, qpos, strand = (np.array(x, dtype=np.int64) for x in data)
        chains = chain_anchors(*make_sorted(rid, tpos, qpos, strand), PARAMS)
        for c in chains:
            ts = [a[0] for a in c.anchors]
            qs = [a[1] for a in c.anchors]
            assert all(b > a for a, b in zip(ts, ts[1:]))
            assert all(b > a for a, b in zip(qs, qs[1:]))

    @given(anchor_sets)
    @settings(max_examples=60, deadline=None)
    def test_no_anchor_reuse(self, data):
        rid, tpos, qpos, strand = (np.array(x, dtype=np.int64) for x in data)
        chains = chain_anchors(*make_sorted(rid, tpos, qpos, strand), PARAMS)
        seen = set()
        for c in chains:
            for a in c.anchors:
                key = (c.rid, c.strand, a)
                assert key not in seen
                seen.add(key)

    @given(anchor_sets)
    @settings(max_examples=40, deadline=None)
    def test_gap_bounds_respected(self, data):
        rid, tpos, qpos, strand = (np.array(x, dtype=np.int64) for x in data)
        chains = chain_anchors(*make_sorted(rid, tpos, qpos, strand), PARAMS)
        for c in chains:
            for (t1, q1), (t2, q2) in zip(c.anchors, c.anchors[1:]):
                assert t2 - t1 <= PARAMS.max_dist_t
                assert q2 - q1 <= PARAMS.max_dist_q
                assert abs((t2 - t1) - (q2 - q1)) <= PARAMS.bandwidth

    @given(anchor_sets)
    @settings(max_examples=40, deadline=None)
    def test_scores_bounded_by_perfect_chain(self, data):
        """No chain scores above k per anchor (the match credit cap)."""
        rid, tpos, qpos, strand = (np.array(x, dtype=np.int64) for x in data)
        chains = chain_anchors(*make_sorted(rid, tpos, qpos, strand), PARAMS)
        for c in chains:
            assert c.score <= PARAMS.k * c.n_anchors + 1e-9
            assert c.score >= PARAMS.min_score

    @given(st.integers(3, 30), st.integers(10, 50))
    @settings(max_examples=30, deadline=None)
    def test_perfect_diagonal_always_one_chain(self, n, step):
        """With anchor spacing >= k, skipping an anchor always loses
        match credit, so the optimal chain is unique and complete.
        (Below k, equal-score chainings exist and ties may split.)
        """
        tpos = np.arange(0, n * step, step, dtype=np.int64)
        qpos = tpos.copy()
        z = np.zeros(n, dtype=np.int64)
        chains = chain_anchors(z, tpos, qpos, z, PARAMS)
        if step <= PARAMS.max_dist_t:
            assert len(chains) == 1
            assert chains[0].n_anchors == n
