"""Cross-backend telemetry: counters, stage timers, and trace spans.

The whole point of the telemetry design is backend independence — the
same read set must produce identical counter totals whether it is
mapped serially, on a thread pool, or across worker processes (whose
deltas are shipped home with results), and tracing must yield exactly
one span per read on every backend.
"""

from __future__ import annotations

import json

import pytest

from repro.core.aligner import Aligner
from repro.core.profiling import PipelineProfile
from repro.obs.counters import drop_shape_dependent
from repro.obs.hist import HISTOGRAMS
from repro.obs.telemetry import Telemetry, read_span, worker_id
from repro.api import map_reads
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

BACKENDS = [("serial", 1), ("threads", 2), ("processes", 2), ("streaming", 2)]


@pytest.fixture(scope="module")
def workload():
    genome = generate_genome(GenomeSpec(length=25_000, chromosomes=1), seed=5)
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(mean=600.0, sigma=0.35, max_length=2500)
    reads = list(sim.simulate(10, seed=17))
    return Aligner(genome, preset="test"), reads


@pytest.fixture(scope="module")
def runs(workload):
    """Map the same reads on every backend, capturing all telemetry."""
    aligner, reads = workload
    # Clear process-lifetime histogram min/max so the in-process
    # backends' run-scoped envelopes match the fresh-worker processes.
    HISTOGRAMS.reset()
    out = {}
    for backend, workers in BACKENDS:
        profile = PipelineProfile(label=backend)
        telemetry = Telemetry(trace=True)
        results = map_reads(
            aligner,
            reads,
            backend=backend,
            workers=workers,
            chunk_reads=3,
            profile=profile,
            telemetry=telemetry,
        )
        out[backend] = {
            "results": results,
            "counters": telemetry.counters(),
            "histograms": telemetry.histograms(),
            "profile": profile,
            "telemetry": telemetry,
        }
    return out


class TestCounterIdentity:
    def test_serial_counters_nonzero(self, runs):
        counters = runs["serial"]["counters"]
        assert counters["dp_cells"] > 0
        assert counters["anchors_seeded"] > 0
        assert counters["chains_built"] > 0
        assert counters["reads_seeded"] == 10

    # Work counters are backend-independent; only the wavefront/dispatch
    # batching telemetry tracks how jobs were pooled (chunk shapes differ
    # per backend), so the comparison drops those prefixes.

    def test_threads_match_serial(self, runs):
        assert drop_shape_dependent(
            runs["threads"]["counters"]
        ) == drop_shape_dependent(runs["serial"]["counters"])

    def test_processes_match_serial(self, runs):
        assert drop_shape_dependent(
            runs["processes"]["counters"]
        ) == drop_shape_dependent(runs["serial"]["counters"])

    def test_streaming_match_serial(self, runs):
        assert drop_shape_dependent(
            runs["streaming"]["counters"]
        ) == drop_shape_dependent(runs["serial"]["counters"])

    def test_results_identical(self, runs):
        serial = runs["serial"]["results"]
        for backend in ("threads", "processes", "streaming"):
            assert runs[backend]["results"] == serial


class TestHistogramIdentity:
    """Worker histogram deltas merge to the same run totals everywhere."""

    DETERMINISTIC = ("read.length", "band.width")

    def test_serial_histograms_nonzero(self, runs, workload):
        _, reads = workload
        hists = runs["serial"]["histograms"]
        assert hists["read.length"]["count"] == len(reads)
        assert hists["band.width"]["count"] > 0
        assert hists["latency.read_s"]["count"] == len(reads)

    def test_deterministic_histograms_identical(self, runs):
        serial = runs["serial"]["histograms"]
        for backend in ("threads", "processes", "streaming"):
            for name in self.DETERMINISTIC:
                # Full summary identity: buckets, exact moments, and the
                # derived p50/p90/p99 all match the serial run.
                assert runs[backend]["histograms"][name] == serial[name], (
                    backend,
                    name,
                )

    def test_latency_counts_identical(self, runs):
        # Latency *values* are wall-clock; only sample counts carry over.
        serial = runs["serial"]["histograms"]
        for backend in ("threads", "processes", "streaming"):
            hists = runs[backend]["histograms"]
            for name in (
                "latency.seed_chain_s",
                "latency.align_s",
                "latency.read_s",
            ):
                assert hists[name]["count"] == serial[name]["count"], (
                    backend,
                    name,
                )

    def test_percentiles_within_envelope(self, runs):
        for backend, _ in BACKENDS:
            h = runs[backend]["histograms"]["read.length"]
            assert h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"]

    def test_reads_done_counter_matches(self, runs, workload):
        _, reads = workload
        for backend, _ in BACKENDS:
            assert runs[backend]["counters"]["reads_done"] == len(reads)


class TestStageSeconds:
    def test_mapping_stages_recorded_everywhere(self, runs):
        for backend, _ in BACKENDS:
            profile = runs[backend]["profile"]
            assert profile.seconds("Seed & Chain") > 0.0, backend
            assert profile.seconds("Align") > 0.0, backend

    def test_aggregate_worker_seconds_within_tolerance(self, runs):
        # Parallel backends record aggregate worker seconds: the same
        # per-read work, so the totals stay within a loose factor of the
        # serial run (they can exceed wall-clock, never vanish).
        serial_align = runs["serial"]["profile"].seconds("Align")
        for backend in ("threads", "processes", "streaming"):
            align = runs[backend]["profile"].seconds("Align")
            assert serial_align / 20 < align < serial_align * 20, backend


class TestTraceSpans:
    def test_one_span_per_read_every_backend(self, runs, workload):
        _, reads = workload
        names = sorted(r.name for r in reads)
        for backend, _ in BACKENDS:
            spans = runs[backend]["telemetry"].spans
            assert sorted(s["read"] for s in spans) == names, backend

    def test_span_fields(self, runs, workload):
        _, reads = workload
        lengths = {r.name: len(r) for r in reads}
        for span in runs["processes"]["telemetry"].spans:
            assert span["length"] == lengths[span["read"]]
            assert span["worker"].startswith("pid:")
            assert span["chunk"] is not None  # process chunks are tagged
            assert span["spans"]["seed_chain"] >= 0.0
            assert span["spans"]["align"] >= 0.0

    def test_trace_jsonl_round_trips(self, runs, tmp_path):
        from repro.obs.telemetry import iter_trace

        telemetry = runs["threads"]["telemetry"]
        path = tmp_path / "trace.jsonl"
        n = telemetry.write_trace(str(path))
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["record"] == "run"
        assert header["run_id"] == telemetry.run_id
        assert len(lines) - 1 == n == len(telemetry.spans)
        parsed = [json.loads(line) for line in lines[1:]]
        assert parsed == [
            json.loads(json.dumps(s, sort_keys=True)) for s in telemetry.spans
        ]
        # iter_trace skips the header and yields exactly the spans.
        assert list(iter_trace(str(path))) == parsed

    def test_trace_disabled_records_nothing(self, workload):
        aligner, reads = workload
        telemetry = Telemetry(trace=False)
        map_reads(aligner, reads[:2], backend="serial", telemetry=telemetry)
        assert telemetry.spans == []
        telemetry.record(read_span("r", 1, 0.0, 0.0))
        assert telemetry.spans == []


class TestTelemetryScoping:
    def test_counters_scoped_to_construction(self, workload):
        aligner, reads = workload
        map_reads(aligner, reads[:1], backend="serial")  # pre-run noise
        telemetry = Telemetry()
        assert telemetry.counters() == {}
        map_reads(aligner, reads[:2], backend="serial", telemetry=telemetry)
        scoped = telemetry.counters()
        assert scoped["reads_seeded"] == 2

    def test_worker_id_format(self):
        wid = worker_id()
        assert wid.startswith("pid:")
        assert "/" in wid
