"""End-to-end CLI checks for --metrics / --trace / --log-level / report."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.schema import validate
from repro.seq.fasta import write_fasta, write_fastq
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

SCHEMA = json.loads(
    (Path(__file__).parents[2] / "benchmarks" / "metrics_schema.json")
    .read_text()
)


@pytest.fixture(scope="module")
def data(tmp_path_factory):
    root = tmp_path_factory.mktemp("cliobs")
    genome = generate_genome(GenomeSpec(length=20_000, chromosomes=1), seed=2)
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(mean=500.0, sigma=0.3, max_length=2000)
    reads = list(sim.simulate(6, seed=4))
    ref = root / "ref.fa"
    fq = root / "reads.fq"
    write_fasta(str(ref), genome.chromosomes)
    write_fastq(str(fq), reads)
    return str(ref), str(fq), reads


def _map(data, tmp_path, *extra):
    ref, fq, _ = data
    out = tmp_path / "out.paf"
    rc = main(
        ["map", ref, fq, "-o", str(out), "--log-level", "warning", *extra]
    )
    assert rc == 0
    return out


class TestMapMetrics:
    def test_metrics_file_schema_valid(self, data, tmp_path):
        metrics = tmp_path / "m.json"
        _map(data, tmp_path, "-x", "test", "--metrics", str(metrics))
        manifest = json.loads(metrics.read_text())
        assert validate(manifest, SCHEMA) == [], validate(manifest, SCHEMA)
        assert manifest["derived"]["dp_cells"] > 0
        assert manifest["derived"]["gcups"] > 0.0
        assert set(manifest["stages"]) >= {
            "Load Index",
            "Load Query",
            "Seed & Chain",
            "Align",
            "Output",
        }

    def test_counters_identical_across_backends(self, data, tmp_path):
        manifests = {}
        for name, flags in {
            "serial": (),
            "threads": ("-t", "2"),
            "processes": ("-p", "2", "--chunk-reads", "2"),
        }.items():
            metrics = tmp_path / f"{name}.json"
            _map(data, tmp_path, "-x", "test", "--metrics", str(metrics), *flags)
            manifests[name] = json.loads(metrics.read_text())
        assert (
            manifests["serial"]["counters"]
            == manifests["threads"]["counters"]
            == manifests["processes"]["counters"]
        )

    def test_trace_one_span_per_read(self, data, tmp_path):
        _, _, reads = data
        trace = tmp_path / "t.jsonl"
        _map(data, tmp_path, "-x", "test", "--trace", str(trace))
        spans = [json.loads(l) for l in trace.read_text().splitlines()]
        assert sorted(s["read"] for s in spans) == sorted(
            r.name for r in reads
        )
        for span in spans:
            assert set(span["spans"]) == {"seed_chain", "align"}

    def test_conflicting_backend_flags_rejected(self, data, tmp_path):
        ref, fq, _ = data
        rc = main(
            ["map", ref, fq, "-t", "2", "-p", "2", "--log-level", "error"]
        )
        assert rc == 2


class TestReportCommand:
    def test_report_single(self, data, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        _map(data, tmp_path, "-x", "test", "--metrics", str(metrics))
        assert main(["report", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "Align" in out and "GCUPS" in out and "Counters" in out

    def test_report_compare(self, data, tmp_path, capsys):
        paths = []
        for i, flags in enumerate([(), ("-t", "2")]):
            metrics = tmp_path / f"r{i}.json"
            _map(data, tmp_path, "-x", "test", "--metrics", str(metrics), *flags)
            paths.append(str(metrics))
        assert main(["report", *paths]) == 0
        out = capsys.readouterr().out
        assert "serial[1]" in out and "threads[2]" in out
        assert "Total" in out

    def test_report_missing_file(self, tmp_path):
        assert main(["report", str(tmp_path / "nope.json")]) == 1
