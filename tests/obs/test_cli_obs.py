"""End-to-end CLI checks for --metrics / --trace / --log-level / report."""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.schema import validate
from repro.seq.fasta import write_fasta, write_fastq
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

SCHEMA = json.loads(
    (Path(__file__).parents[2] / "benchmarks" / "metrics_schema.json")
    .read_text()
)


@pytest.fixture(scope="module")
def data(tmp_path_factory):
    root = tmp_path_factory.mktemp("cliobs")
    genome = generate_genome(GenomeSpec(length=20_000, chromosomes=1), seed=2)
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(mean=500.0, sigma=0.3, max_length=2000)
    reads = list(sim.simulate(6, seed=4))
    ref = root / "ref.fa"
    fq = root / "reads.fq"
    write_fasta(str(ref), genome.chromosomes)
    write_fastq(str(fq), reads)
    return str(ref), str(fq), reads


def _map(data, tmp_path, *extra):
    ref, fq, _ = data
    out = tmp_path / "out.paf"
    rc = main(
        ["map", ref, fq, "-o", str(out), "--log-level", "warning", *extra]
    )
    assert rc == 0
    return out


class TestMapMetrics:
    def test_metrics_file_schema_valid(self, data, tmp_path):
        metrics = tmp_path / "m.json"
        _map(data, tmp_path, "-x", "test", "--metrics", str(metrics))
        manifest = json.loads(metrics.read_text())
        assert validate(manifest, SCHEMA) == [], validate(manifest, SCHEMA)
        assert manifest["derived"]["dp_cells"] > 0
        assert manifest["derived"]["gcups"] > 0.0
        assert set(manifest["stages"]) >= {
            "Load Index",
            "Load Query",
            "Seed & Chain",
            "Align",
            "Output",
        }

    def test_counters_identical_across_backends(self, data, tmp_path):
        manifests = {}
        for name, flags in {
            "serial": (),
            "threads": ("-t", "2"),
            "processes": ("-p", "2", "--chunk-reads", "2"),
        }.items():
            metrics = tmp_path / f"{name}.json"
            _map(data, tmp_path, "-x", "test", "--metrics", str(metrics), *flags)
            manifests[name] = json.loads(metrics.read_text())
        # wavefront.*/dispatch.* track how DP jobs were pooled, which
        # legitimately varies with backend chunking; everything else
        # must be identical.
        from repro.obs.counters import drop_shape_dependent

        assert (
            drop_shape_dependent(manifests["serial"]["counters"])
            == drop_shape_dependent(manifests["threads"]["counters"])
            == drop_shape_dependent(manifests["processes"]["counters"])
        )

    def test_trace_one_span_per_read(self, data, tmp_path):
        _, _, reads = data
        trace = tmp_path / "t.jsonl"
        _map(data, tmp_path, "-x", "test", "--trace", str(trace))
        records = [json.loads(l) for l in trace.read_text().splitlines()]
        # First line is the run header carrying the run id.
        assert records[0]["record"] == "run"
        assert records[0]["run_id"]
        spans = records[1:]
        assert sorted(s["read"] for s in spans) == sorted(
            r.name for r in reads
        )
        for span in spans:
            assert set(span["spans"]) == {"seed_chain", "align"}
            assert span["ts"] > 0

    def test_conflicting_backend_flags_rejected(self, data, tmp_path):
        ref, fq, _ = data
        rc = main(
            ["map", ref, fq, "-t", "2", "-p", "2", "--log-level", "error"]
        )
        assert rc == 2


class TestTimelineAndProgress:
    BACKENDS = {
        "serial": (),
        "threads": ("-t", "2"),
        "processes": ("-p", "2", "--chunk-reads", "2"),
        "streaming": ("--stream", "-t", "2", "--chunk-reads", "2"),
    }

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_full_observability_run(self, data, tmp_path, backend):
        """--metrics + --timeline + --progress together on every backend."""
        _, _, reads = data
        metrics = tmp_path / "m.json"
        timeline = tmp_path / "t.json"
        beats = tmp_path / "p.jsonl"
        _map(
            data,
            tmp_path,
            "-x",
            "test",
            "--metrics",
            str(metrics),
            "--timeline",
            str(timeline),
            "--progress",
            "0.05",
            "--progress-file",
            str(beats),
            *self.BACKENDS[backend],
        )
        manifest = json.loads(metrics.read_text())
        assert validate(manifest, SCHEMA) == [], validate(manifest, SCHEMA)
        assert manifest["schema_version"] == 9
        assert manifest["run_id"]
        hists = manifest["histograms"]
        assert hists["read.length"]["count"] == len(reads)
        for name in ("latency.seed_chain_s", "latency.align_s",
                     "latency.read_s"):
            h = hists[name]
            assert h["count"] == len(reads)
            assert h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"]
        doc = json.loads(timeline.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # one slice per stage per read (chunk extents ride on top)
        assert len(slices) >= 2 * len(reads)
        assert doc["otherData"]["run_id"] == manifest["run_id"]
        lanes = {}
        for e in slices:
            lanes.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
        for key, ts in lanes.items():
            assert ts == sorted(ts), key
        records = [json.loads(l) for l in beats.read_text().splitlines()]
        assert records and records[-1]["final"] is True
        assert records[-1]["reads_done"] == len(reads)
        assert all(r["run_id"] == manifest["run_id"] for r in records)

    def test_timeline_reuses_trace_sink(self, data, tmp_path):
        """--trace + --timeline: spans spill to the sink, then re-read."""
        _, _, reads = data
        trace = tmp_path / "t.jsonl"
        timeline = tmp_path / "t.json"
        _map(
            data,
            tmp_path,
            "-x",
            "test",
            "--trace",
            str(trace),
            "--timeline",
            str(timeline),
        )
        doc = json.loads(timeline.read_text())
        stage = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] in ("seed_chain", "align")
        ]
        assert len(stage) == 2 * len(reads)

    def test_paf_identical_with_observability(self, data, tmp_path):
        """The full observability stack must not perturb the output."""
        plain = _map(data, tmp_path, "-x", "test")
        loud_dir = tmp_path / "loud"
        loud_dir.mkdir()
        loud = _map(
            data,
            loud_dir,
            "-x",
            "test",
            "--metrics",
            str(loud_dir / "m.json"),
            "--timeline",
            str(loud_dir / "t.json"),
            "--trace",
            str(loud_dir / "t.jsonl"),
            "--progress",
            "0.05",
            "--progress-file",
            str(loud_dir / "p.jsonl"),
        )
        assert loud.read_bytes() == plain.read_bytes()


class TestStatusServerE2E:
    """The live telemetry plane, end to end, against a real process.

    One streaming run with process workers and ``--status-port 0``:
    mid-run, ``/metrics`` must serve parseable OpenMetrics and
    ``/status`` a monotonically increasing ``reads_done``; afterwards
    the PAF must be byte-identical to a run with the status plane off.
    """

    N_READS = 48

    @pytest.fixture(scope="class")
    def corpus(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("statusd_e2e")
        genome = generate_genome(
            GenomeSpec(length=40_000, chromosomes=1), seed=7
        )
        sim = ReadSimulator.preset(genome, "pacbio")
        sim.length_model = LengthModel(mean=800.0, sigma=0.4, max_length=3000)
        reads = list(sim.simulate(self.N_READS, seed=8))
        ref = root / "ref.fa"
        fq = root / "reads.fq"
        write_fasta(str(ref), genome.chromosomes)
        write_fastq(str(fq), reads)
        return str(ref), str(fq)

    def _spawn(self, corpus, out_paf, *extra):
        ref, fq = corpus
        src = str(Path(__file__).parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "map", ref, fq,
                "-o", str(out_paf), "--preset", "test",
                "--stream", "-p", "2", "--chunk-reads", "4",
                *extra,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )

    def _await_url(self, proc, timeout=60.0):
        """Parse the bound status URL from the run's stderr log."""
        pattern = re.compile(r"listening on (http://127\.0\.0\.1:\d+)")
        url = None
        deadline = time.monotonic() + timeout
        lines = []
        while time.monotonic() < deadline:
            line = proc.stderr.readline()
            if not line:
                break
            lines.append(line)
            m = pattern.search(line)
            if m:
                url = m.group(1)
                break
        assert url, "no status-server URL in stderr:\n" + "".join(lines)
        # keep draining stderr so the child never blocks on the pipe
        drain = threading.Thread(
            target=lambda: proc.stderr.read(), daemon=True
        )
        drain.start()
        return url

    def test_status_plane_live_poll_and_byte_identity(self, corpus, tmp_path):
        with_status = tmp_path / "with_status.paf"
        proc = self._spawn(
            corpus, with_status, "--status-port", "0",
            "--events", str(tmp_path / "events.jsonl"),
        )
        try:
            url = self._await_url(proc)
            seen = []
            metrics_body = None
            while proc.poll() is None:
                try:
                    with urllib.request.urlopen(
                        url + "/status", timeout=5
                    ) as resp:
                        seen.append(json.loads(resp.read())["reads_done"])
                    if metrics_body is None:
                        with urllib.request.urlopen(
                            url + "/metrics", timeout=5
                        ) as resp:
                            assert resp.headers["Content-Type"].startswith(
                                "application/openmetrics-text"
                            )
                            metrics_body = resp.read().decode()
                except (urllib.error.URLError, OSError):
                    pass  # server tearing down as the run finishes
                time.sleep(0.05)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # /status was reachable mid-run and counted monotonically.
        assert seen, "never reached /status while the run was live"
        assert seen == sorted(seen), seen
        assert seen[-1] <= self.N_READS
        # /metrics parsed as OpenMetrics exposition text.
        assert metrics_body is not None
        assert metrics_body.endswith("# EOF\n")
        for line in metrics_body.splitlines():
            if not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                assert name
                float(value)

        # The event stream recorded the run's chunk lifecycle.
        events = [
            json.loads(l)
            for l in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        kinds = {e["kind"] for e in events}
        assert "chunk.done" in kinds, kinds

        # Byte-identity: the status plane must not perturb the output.
        plain = tmp_path / "plain.paf"
        proc = self._spawn(corpus, plain)
        _, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        assert with_status.read_bytes() == plain.read_bytes()


class TestReportCommand:
    def test_report_single(self, data, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        _map(data, tmp_path, "-x", "test", "--metrics", str(metrics))
        assert main(["report", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "Align" in out and "GCUPS" in out and "Counters" in out

    def test_report_compare(self, data, tmp_path, capsys):
        paths = []
        for i, flags in enumerate([(), ("-t", "2")]):
            metrics = tmp_path / f"r{i}.json"
            _map(data, tmp_path, "-x", "test", "--metrics", str(metrics), *flags)
            paths.append(str(metrics))
        assert main(["report", *paths]) == 0
        out = capsys.readouterr().out
        assert "serial[1]" in out and "threads[2]" in out
        assert "Total" in out

    def test_report_missing_file(self, tmp_path):
        assert main(["report", str(tmp_path / "nope.json")]) == 1

    def test_report_no_args_is_usage_error(self):
        assert main(["report"]) == 2

    def test_report_formats(self, data, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        _map(data, tmp_path, "-x", "test", "--metrics", str(metrics))
        assert main(["report", str(metrics), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 9
        assert main(["report", str(metrics), "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert "| Stage |" in out and "| GCUPS |" in out
        assert "| read.length |" in out  # histogram table rides along


class TestTopCommand:
    def test_top_once_on_heartbeat_file(self, data, tmp_path, capsys):
        beats = tmp_path / "p.jsonl"
        _map(
            data, tmp_path, "-x", "test",
            "--progress", "0.05", "--progress-file", str(beats),
        )
        assert main(["top", str(beats), "--once", "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "manymap top" in out and "reads" in out

    def test_top_missing_file(self, tmp_path, capsys):
        rc = main(["top", str(tmp_path / "nope.jsonl"), "--once"])
        assert rc == 1
        assert "no such file" in capsys.readouterr().err


class TestTrajectoryReport:
    def _write(self, path, benches):
        recs = [
            {
                "record": "bench",
                "bench": b,
                "created_unix": 1_754_000_000.0 + i,
                "commit": "deadbeefcafe1234",
                "reads_per_s": 10.0 * (i + 1),
                "gcups": 0.5,
                "peak_rss_bytes": 1 << 20,
            }
            for i, b in enumerate(benches)
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in recs))
        return recs

    def test_renders_table(self, tmp_path, capsys):
        traj = tmp_path / "t.jsonl"
        self._write(traj, ["wavefront", "metrics_smoke"])
        assert main(["report", "--trajectory", str(traj)]) == 0
        out = capsys.readouterr().out
        assert "wavefront" in out and "metrics_smoke" in out
        assert "deadbeefca" in out

    def test_serve_columns_appear_when_any_record_has_them(
        self, tmp_path, capsys
    ):
        traj = tmp_path / "t.jsonl"
        recs = self._write(traj, ["wavefront", "serve_smoke"])
        recs[1]["rps"] = 42.5
        recs[1]["p99_ms"] = 18.25
        traj.write_text("".join(json.dumps(r) + "\n" for r in recs))
        assert main(["report", "--trajectory", str(traj)]) == 0
        out = capsys.readouterr().out
        assert "rps" in out and "p99 ms" in out
        assert "42.5" in out and "18.2" in out
        # the map-only record renders "-" in the serve columns
        wavefront_row = next(l for l in out.splitlines() if "wavefront" in l)
        assert wavefront_row.rstrip("| ").endswith("-")

    def test_no_serve_columns_for_map_only_history(self, tmp_path, capsys):
        traj = tmp_path / "t.jsonl"
        self._write(traj, ["wavefront"])
        assert main(["report", "--trajectory", str(traj)]) == 0
        out = capsys.readouterr().out
        assert "rps" not in out and "p99 ms" not in out

    def test_conflicts_with_positionals(self, tmp_path):
        traj = tmp_path / "t.jsonl"
        self._write(traj, ["wavefront"])
        assert main(["report", str(traj), "--trajectory", str(traj)]) == 2

    def test_missing_file(self, tmp_path):
        assert main(["report", "--trajectory", str(tmp_path / "no.jsonl")]) == 1


class TestCompareCLI:
    @pytest.fixture(scope="class")
    def manifest_path(self, data, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cmp")
        metrics = tmp / "base.json"
        _map(data, tmp, "-x", "test", "--metrics", str(metrics))
        return metrics

    def _degraded(self, manifest_path, tmp_path, factor=10.0):
        m = json.loads(manifest_path.read_text())
        for key in ("gcups", "reads_per_sec", "bases_per_sec"):
            m["derived"][key] = m["derived"][key] / factor
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(m))
        return path

    def test_self_compare_passes(self, manifest_path, capsys):
        rc = main(
            ["report", "--compare", str(manifest_path), str(manifest_path)]
        )
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_regression_exits_3(self, manifest_path, tmp_path, capsys):
        bad = self._degraded(manifest_path, tmp_path)
        rc = main(["report", "--compare", str(manifest_path), str(bad)])
        assert rc == 3
        out = capsys.readouterr().out
        assert "FAIL: regression in" in out and "gcups" in out

    def test_tolerance_flag(self, manifest_path, tmp_path):
        # A 2x drop passes with a generous enough tolerance.
        bad = self._degraded(manifest_path, tmp_path, factor=2.0)
        rc = main(
            [
                "report",
                "--compare",
                str(manifest_path),
                str(bad),
                "--tolerance",
                "60",
            ]
        )
        assert rc == 0

    def test_compare_json_format(self, manifest_path, tmp_path, capsys):
        bad = self._degraded(manifest_path, tmp_path)
        rc = main(
            [
                "report",
                "--compare",
                str(manifest_path),
                str(bad),
                "--format",
                "json",
            ]
        )
        assert rc == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert set(doc["regressions"]) == {
            "gcups",
            "reads_per_sec",
            "bases_per_sec",
        }

    def test_compare_plus_positionals_rejected(self, manifest_path):
        rc = main(
            [
                "report",
                str(manifest_path),
                "--compare",
                str(manifest_path),
                str(manifest_path),
            ]
        )
        assert rc == 2

    def test_compare_missing_file(self, manifest_path, tmp_path):
        rc = main(
            [
                "report",
                "--compare",
                str(manifest_path),
                str(tmp_path / "nope.json"),
            ]
        )
        assert rc == 1
