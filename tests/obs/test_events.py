"""EventBus: ring bounds, per-kind counts, filters, and the JSONL sink."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import EVENTS, EventBus


class TestEmit:
    def test_record_shape(self):
        bus = EventBus()
        rec = bus.emit("dispatch.batch", bucket=256, lanes=8)
        assert rec["record"] == "event"
        assert rec["kind"] == "dispatch.batch"
        assert rec["bucket"] == 256 and rec["lanes"] == 8
        assert rec["seq"] == 1
        assert rec["ts"] > 0

    def test_seq_monotonic(self):
        bus = EventBus()
        seqs = [bus.emit("x")["seq"] for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert bus.seq == 5

    def test_ring_evicts_oldest(self):
        bus = EventBus(capacity=3)
        for i in range(10):
            bus.emit("tick", i=i)
        assert len(bus) == 3
        assert [e["i"] for e in bus.recent()] == [7, 8, 9]

    def test_counts_survive_eviction(self):
        bus = EventBus(capacity=2)
        for _ in range(5):
            bus.emit("a")
        bus.emit("b")
        assert bus.counts() == {"a": 5, "b": 1}

    def test_dropped_counts_ring_evictions(self):
        from repro.obs.counters import COUNTERS

        bus = EventBus(capacity=3)
        before = COUNTERS.totals().get("events.dropped", 0)
        for i in range(10):
            bus.emit("tick", i=i)
        assert bus.dropped == 7
        after = COUNTERS.totals().get("events.dropped", 0)
        assert after - before == 7

    def test_dropped_zero_until_full(self):
        bus = EventBus(capacity=8)
        for _ in range(8):
            bus.emit("x")
        assert bus.dropped == 0

    def test_clear_resets_dropped(self):
        bus = EventBus(capacity=1)
        bus.emit("a")
        bus.emit("b")
        assert bus.dropped == 1
        bus.clear()
        assert bus.dropped == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)


class TestRecent:
    @pytest.fixture()
    def bus(self):
        bus = EventBus()
        for i in range(6):
            bus.emit("even" if i % 2 == 0 else "odd", i=i)
        return bus

    def test_oldest_first(self, bus):
        assert [e["i"] for e in bus.recent()] == [0, 1, 2, 3, 4, 5]

    def test_limit_keeps_newest(self, bus):
        assert [e["i"] for e in bus.recent(limit=2)] == [4, 5]

    def test_kind_filter(self, bus):
        assert [e["i"] for e in bus.recent(kind="odd")] == [1, 3, 5]

    def test_after_seq_skips_consumed(self, bus):
        tail = bus.recent(after_seq=4)
        assert [e["seq"] for e in tail] == [5, 6]

    def test_filters_compose(self, bus):
        assert [e["i"] for e in bus.recent(limit=1, kind="even")] == [4]


class TestSink:
    def test_events_mirrored_as_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.emit("before.sink")  # not mirrored
        bus.open_sink(str(path))
        bus.emit("fault", read="r1", action="quarantine")
        bus.emit("heartbeat", reads_done=4)
        bus.close_sink()
        recs = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["kind"] for r in recs] == ["fault", "heartbeat"]
        assert recs[0]["read"] == "r1"

    def test_close_idempotent(self, tmp_path):
        bus = EventBus()
        bus.open_sink(str(tmp_path / "e.jsonl"))
        bus.close_sink()
        bus.close_sink()  # no-op, no error

    def test_reopen_replaces_sink(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        bus = EventBus()
        bus.open_sink(str(a))
        bus.emit("one")
        bus.open_sink(str(b))
        bus.emit("two")
        bus.close_sink()
        assert json.loads(a.read_text())["kind"] == "one"
        assert json.loads(b.read_text())["kind"] == "two"

    def test_ring_keeps_working_without_sink(self):
        bus = EventBus()
        bus.emit("x")
        assert len(bus) == 1


class TestListeners:
    def test_listener_sees_every_emit(self):
        bus = EventBus()
        seen = []
        bus.add_listener(seen.append)
        bus.emit("a", i=1)
        bus.emit("b", i=2)
        assert [r["kind"] for r in seen] == ["a", "b"]
        assert seen[0]["i"] == 1

    def test_remove_listener_stops_delivery(self):
        bus = EventBus()
        seen = []
        bus.add_listener(seen.append)
        bus.emit("a")
        bus.remove_listener(seen.append)
        bus.emit("b")
        assert [r["kind"] for r in seen] == ["a"]

    def test_remove_unknown_listener_is_noop(self):
        EventBus().remove_listener(lambda rec: None)

    def test_raising_listener_does_not_break_emit(self):
        bus = EventBus()
        seen = []

        def bad(rec):
            raise RuntimeError("listener bug")

        bus.add_listener(bad)
        bus.add_listener(seen.append)
        rec = bus.emit("x")
        assert rec["kind"] == "x"
        assert len(bus) == 1
        assert [r["kind"] for r in seen] == ["x"]


class TestGlobalBus:
    def test_module_global_is_an_eventbus(self):
        assert isinstance(EVENTS, EventBus)

    def test_clear_drops_ring_and_counts(self):
        bus = EventBus()
        bus.emit("x")
        bus.clear()
        assert len(bus) == 0 and bus.counts() == {}
        # seq keeps going: pollers never see it restart.
        assert bus.emit("y")["seq"] == 2
