"""Run manifests: derivation math, schema validity, report rendering."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.aligner import Aligner
from repro.core.driver import ParallelDriver
from repro.obs.metrics import (
    SCHEMA_VERSION,
    build_metrics,
    derive_metrics,
    load_metrics,
    machine_info,
    write_metrics,
)
from repro.obs.report import (
    profile_from_metrics,
    render_metrics,
    render_metrics_files,
)
from repro.obs.schema import validate
from repro.seq.genome import GenomeSpec, generate_genome
from repro.sim.lengths import LengthModel
from repro.sim.pbsim import ReadSimulator

SCHEMA = json.loads(
    (Path(__file__).parents[2] / "benchmarks" / "metrics_schema.json")
    .read_text()
)


class TestDeriveMetrics:
    def test_gcups_uses_align_seconds(self):
        d = derive_metrics(
            {"Align": 2.0, "Output": 1.0}, {"dp_cells": 4_000_000_000}
        )
        assert d["gcups"] == pytest.approx(2.0)
        assert d["dp_cells"] == 4_000_000_000

    def test_zero_align_time_gives_zero_gcups(self):
        d = derive_metrics({}, {"dp_cells": 100})
        assert d["gcups"] == 0.0

    def test_throughput_over_total_seconds(self):
        d = derive_metrics(
            {"Align": 1.0, "Load Index": 1.0},
            {},
            n_reads=10,
            total_bases=5000,
        )
        assert d["reads_per_sec"] == pytest.approx(5.0)
        assert d["bases_per_sec"] == pytest.approx(2500.0)

    def test_mean_band_width(self):
        d = derive_metrics(
            {}, {"band_width_sum": 600, "band_calls": 3}
        )
        assert d["mean_band_width"] == pytest.approx(200.0)
        assert derive_metrics({}, {})["mean_band_width"] == 0.0


class TestMachineInfo:
    def test_fields(self):
        info = machine_info()
        assert info["cpu_count"] >= 1
        assert info["python"].count(".") >= 1


@pytest.fixture(scope="module")
def driver_run():
    genome = generate_genome(GenomeSpec(length=20_000, chromosomes=1), seed=9)
    sim = ReadSimulator.preset(genome, "pacbio")
    sim.length_model = LengthModel(mean=500.0, sigma=0.3, max_length=2000)
    reads = list(sim.simulate(8, seed=13))
    driver = ParallelDriver(
        Aligner(genome, preset="test"),
        backend="serial",
        workers=1,
        trace=True,
    )
    driver.run(reads)
    return driver, reads


class TestBuildMetrics:
    def test_manifest_is_schema_valid(self, driver_run):
        driver, _ = driver_run
        manifest = driver.metrics()
        assert validate(manifest, SCHEMA) == [], validate(manifest, SCHEMA)
        assert manifest["schema_version"] == SCHEMA_VERSION

    def test_manifest_content(self, driver_run):
        driver, reads = driver_run
        manifest = driver.metrics()
        assert manifest["reads"]["n_reads"] == len(reads)
        assert manifest["reads"]["total_bases"] == sum(len(r) for r in reads)
        assert manifest["counters"]["dp_cells"] > 0
        assert manifest["derived"]["gcups"] > 0.0
        assert manifest["stages"]["Align"] > 0.0
        assert manifest["n_trace_spans"] == len(reads)
        assert manifest["peak_rss_bytes"] > 0
        assert manifest["config"]["backend"] == "serial"

    def test_write_load_round_trip(self, driver_run, tmp_path):
        driver, _ = driver_run
        manifest = driver.metrics()
        path = tmp_path / "m.json"
        write_metrics(str(path), manifest)
        assert load_metrics(str(path)) == json.loads(json.dumps(manifest))


class TestReport:
    def test_profile_from_metrics_round_trip(self, driver_run):
        driver, _ = driver_run
        manifest = driver.metrics()
        profile = profile_from_metrics(manifest)
        assert profile.seconds("Align") == pytest.approx(
            manifest["stages"]["Align"]
        )

    def test_single_manifest_render(self, driver_run):
        driver, _ = driver_run
        text = render_metrics([driver.metrics()])
        assert "Align" in text and "Total" in text
        assert "GCUPS" in text
        assert "Counters" in text
        assert "dp_cells" in text

    def test_multi_manifest_compare(self, driver_run):
        driver, _ = driver_run
        a = driver.metrics()
        b = dict(a, label="other")
        text = render_metrics([a, b])
        assert "other (s)" in text
        assert text.count("GCUPS") == 2
        assert "Counters" not in text  # counter table is single-run only

    def test_duplicate_labels_disambiguated(self, driver_run):
        driver, _ = driver_run
        a = driver.metrics()
        text = render_metrics([a, dict(a)])
        assert "#2" in text

    def test_render_metrics_files_defaults_label_to_path(
        self, driver_run, tmp_path
    ):
        driver, _ = driver_run
        manifest = driver.metrics()
        del manifest["label"]
        path = tmp_path / "run.json"
        write_metrics(str(path), manifest)
        text = render_metrics_files([str(path)])
        assert "run.json" in text

    def test_empty_manifest_list(self):
        assert "no metrics" in render_metrics([])
