"""The report formats and the compare / perf-regression gate engine."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import (
    GATED_METRICS,
    REPORT_FORMATS,
    compare_metrics,
    render_compare,
    render_metrics_files,
)


def manifest(gcups=1.0, reads_per_sec=100.0, bases_per_sec=5e4, **extra):
    m = {
        "label": extra.pop("label", "run"),
        "run_id": extra.pop("run_id", "deadbeef"),
        "stages": {"Seed & Chain": 0.5, "Align": 1.5},
        "derived": {
            "gcups": gcups,
            "reads_per_sec": reads_per_sec,
            "bases_per_sec": bases_per_sec,
            "dp_cells": 1_000_000,
        },
        "peak_rss_bytes": 100 << 20,
        "counters": {"dp_cells": 1_000_000},
        "reads": {"n_reads": 10, "n_mapped": 10},
    }
    m.update(extra)
    return m


class TestCompareMetrics:
    def test_identical_manifests_pass(self):
        cmp = compare_metrics(manifest(), manifest())
        assert cmp["ok"] is True
        assert cmp["regressions"] == []
        gated = [r for r in cmp["rows"] if r["gated"]]
        assert [r["metric"] for r in gated] == [k for k, _ in GATED_METRICS]
        assert all(r["change_pct"] == 0.0 for r in gated)

    def test_drop_beyond_tolerance_fails(self):
        cmp = compare_metrics(
            manifest(gcups=1.0), manifest(gcups=0.8), tolerance_pct=10.0
        )
        assert cmp["ok"] is False
        assert cmp["regressions"] == ["gcups"]
        row = next(r for r in cmp["rows"] if r["metric"] == "gcups")
        assert row["regressed"] is True
        assert row["change_pct"] == pytest.approx(-20.0)

    def test_drop_within_tolerance_passes(self):
        cmp = compare_metrics(
            manifest(gcups=1.0), manifest(gcups=0.95), tolerance_pct=10.0
        )
        assert cmp["ok"] is True

    def test_tolerance_is_a_strict_boundary(self):
        # Exactly -10% at 10% tolerance is not "more than" tolerance.
        cmp = compare_metrics(
            manifest(gcups=1.0), manifest(gcups=0.9), tolerance_pct=10.0
        )
        assert cmp["ok"] is True

    def test_improvement_never_regresses(self):
        cmp = compare_metrics(
            manifest(gcups=1.0), manifest(gcups=5.0), tolerance_pct=1.0
        )
        assert cmp["ok"] is True

    def test_zero_baseline_cannot_regress(self):
        cmp = compare_metrics(manifest(gcups=0.0), manifest(gcups=0.0))
        assert cmp["ok"] is True
        row = next(r for r in cmp["rows"] if r["metric"] == "gcups")
        assert row["change_pct"] is None

    def test_multiple_regressions_all_named(self):
        cmp = compare_metrics(
            manifest(), manifest(gcups=0.1, reads_per_sec=1.0)
        )
        assert cmp["regressions"] == ["gcups", "reads_per_sec"]

    def test_rss_is_informational_only(self):
        worse = manifest()
        worse["peak_rss_bytes"] = 100 << 30  # 1024x the baseline RSS
        cmp = compare_metrics(manifest(), worse)
        assert cmp["ok"] is True
        row = next(
            r for r in cmp["rows"] if r["metric"] == "peak_rss_bytes"
        )
        assert row["gated"] is False and row["regressed"] is False

    def test_labels_and_run_ids_carried(self):
        cmp = compare_metrics(
            manifest(label="base", run_id="aaa"),
            manifest(label="cand", run_id="bbb"),
        )
        assert cmp["baseline_label"] == "base"
        assert cmp["candidate_label"] == "cand"
        assert cmp["baseline_run_id"] == "aaa"
        assert cmp["candidate_run_id"] == "bbb"


class TestRenderCompare:
    def test_table_pass(self):
        out = render_compare(compare_metrics(manifest(), manifest()))
        assert out.splitlines()[-1].startswith("PASS")
        assert "gcups" in out and "tolerance 10.0%" in out

    def test_table_fail_names_the_metric(self):
        out = render_compare(
            compare_metrics(manifest(), manifest(gcups=0.1))
        )
        assert out.splitlines()[-1] == "FAIL: regression in gcups"
        assert "REGRESSED" in out

    def test_json_round_trips(self):
        cmp = compare_metrics(manifest(), manifest(gcups=0.1))
        doc = json.loads(render_compare(cmp, fmt="json"))
        assert doc == cmp

    def test_markdown_table(self):
        out = render_compare(
            compare_metrics(manifest(), manifest()), fmt="markdown"
        )
        assert "| Metric | Baseline | Candidate | Change | Status |" in out
        assert out.splitlines()[-1].startswith("PASS")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown report format"):
            render_compare(compare_metrics(manifest(), manifest()), fmt="csv")


class TestRenderMetricsFiles:
    def _write(self, tmp_path, name, m):
        path = tmp_path / name
        path.write_text(json.dumps(m))
        return str(path)

    def _full_manifest(self):
        # render_metrics_files -> load_metrics validates the schema, so
        # feed it a real manifest shape (schema_version etc.).
        m = manifest()
        m.update(
            {
                "schema_version": 4,
                "tool": "manymap",
                "version": "0",
                "created_unix": 0,
                "wall_seconds": 2.0,
                "histograms": {
                    "latency.read_s": {
                        "count": 10,
                        "zeros": 0,
                        "sum": 1.0,
                        "min": 0.05,
                        "max": 0.2,
                        "mean": 0.1,
                        "p50": 0.1,
                        "p90": 0.18,
                        "p99": 0.2,
                        "buckets": {"-3": 10},
                    }
                },
            }
        )
        return m

    def test_formats_cover_constant(self):
        assert REPORT_FORMATS == ("table", "json", "markdown")

    def test_table_includes_histograms_and_run_id(self, tmp_path):
        path = self._write(tmp_path, "m.json", self._full_manifest())
        out = render_metrics_files([path])
        assert "Histograms" in out
        assert "latency.read_s" in out
        assert "100.000ms" in out  # p50 rendered in ms
        assert "run deadbeef" in out

    def test_json_format(self, tmp_path):
        path = self._write(tmp_path, "m.json", self._full_manifest())
        doc = json.loads(render_metrics_files([path], fmt="json"))
        assert doc["derived"]["gcups"] == 1.0

    def test_markdown_format(self, tmp_path):
        path = self._write(tmp_path, "m.json", self._full_manifest())
        out = render_metrics_files([path], fmt="markdown")
        assert "| Stage |" in out
        assert "| GCUPS |" in out
        assert "| latency.read_s | 10 |" in out

    def test_unknown_format_rejected(self, tmp_path):
        path = self._write(tmp_path, "m.json", self._full_manifest())
        with pytest.raises(ValueError, match="unknown report format"):
            render_metrics_files([path], fmt="csv")
