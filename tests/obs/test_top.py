"""repro top: dashboard rendering, file tailing, and live polling."""

from __future__ import annotations

import io
import json
import os
import time

import pytest

from repro.obs.export import RunSampler
from repro.obs.statusd import StatusServer
from repro.obs.top import render_dashboard, run_top


def beat(**over):
    rec = {
        "record": "progress",
        "run_id": "abc123def456",
        "final": False,
        "elapsed_s": 12.5,
        "reads_done": 40,
        "total_reads": 100,
        "reads_per_s": 3.2,
        "window_reads_per_s": 4.1,
        "interval_reads_per_s": 4.0,
        "dp_cells": 1_500_000,
        "gcups": 0.00012,
        "quarantined": 0,
        "queues": {},
        "eta_s": 14.6,
    }
    rec.update(over)
    return rec


class TestRenderDashboard:
    def test_core_lines(self):
        frame = render_dashboard(beat(), source="p.jsonl")
        assert "running" in frame and "abc123def456"[:12] in frame
        assert "40 / 100" in frame
        assert "ETA 14s" in frame
        assert "3.2 reads/s overall" in frame
        assert "4.1 reads/s window" in frame
        assert "GCUPS" in frame and "1,500,000 DP cells" in frame
        assert "p.jsonl" in frame

    def test_final_shows_done(self):
        assert "done" in render_dashboard(beat(final=True)).splitlines()[0]

    def test_unknown_total(self):
        frame = render_dashboard(beat(total_reads=None, eta_s=None))
        assert "/ ?" in frame and "ETA --" in frame

    def test_eta_formats(self):
        assert "ETA 5s" in render_dashboard(beat(eta_s=5))
        assert "ETA 2m05s" in render_dashboard(beat(eta_s=125))
        assert "ETA 1h01m" in render_dashboard(beat(eta_s=3680))

    def test_queues_and_faults_lines(self):
        frame = render_dashboard(
            beat(
                queues={"stream.work_queue.depth.max": 3.0},
                quarantined=2,
                faults={"quarantined": 2, "retries": 1},
            )
        )
        assert "queues" in frame and "work_queue=3" in frame
        assert "2 quarantined" in frame and "1 retries" in frame

    def test_batch_line(self):
        frame = render_dashboard(
            beat(
                batch={
                    "occupancy_pct": 87.5,
                    "lanes": 64,
                    "lanes_retired": 3,
                    "batched_jobs": 10,
                    "fallback_jobs": 2,
                }
            )
        )
        assert "87.5% occupancy" in frame
        assert "10 batched / 2 fallback jobs" in frame

    def test_serve_panel(self):
        frame = render_dashboard(
            beat(
                serve={
                    "requests": 20,
                    "ok": 15,
                    "errors": 1,
                    "shed": 4,
                    "shed_queue": 2,
                    "shed_quota": 1,
                    "shed_draining": 1,
                    "batches": 6,
                    "mean_requests_per_batch": 2.5,
                    "mean_reads_per_batch": 12.0,
                    "queue_depth_max": 7,
                }
            )
        )
        assert "20 requests" in frame
        assert "15 ok / 1 err / 4 shed" in frame
        assert "(queue 2 / quota 1 / drain 1)" in frame
        assert "6 executed" in frame
        assert "2.5 req / 12.0 reads per batch" in frame
        assert "queue depth max 7" in frame

    def test_serve_panel_hides_shed_split_when_clean(self):
        frame = render_dashboard(
            beat(serve={"requests": 3, "ok": 3, "shed": 0, "batches": 2})
        )
        assert "3 ok / 0 err / 0 shed" in frame
        assert "(queue" not in frame

    def test_tracing_line(self):
        frame = render_dashboard(
            beat(tracing={"kept": 4, "started": 20, "dropped": 16})
        )
        assert "4 kept / 20 started (16 sampled out)" in frame

    def test_no_serve_panel_for_map_runs(self):
        frame = render_dashboard(beat())
        assert "serve" not in frame
        assert "traces" not in frame


class TestFileMode:
    def write_beats(self, path, recs, stale=True):
        with open(path, "w") as fh:
            for r in recs:
                fh.write(json.dumps(r) + "\n")
        if stale:  # age the file so the tailer treats it as finished
            old = time.time() - 120
            os.utime(path, (old, old))

    def test_renders_through_final_beat(self, tmp_path):
        path = tmp_path / "p.jsonl"
        self.write_beats(
            path, [beat(reads_done=10), beat(reads_done=100, final=True)]
        )
        out = io.StringIO()
        assert run_top(str(path), interval=0.01, out=out) == 0
        assert "done" in out.getvalue()
        assert "100 / 100" in out.getvalue()

    def test_finished_file_without_final_beat(self, tmp_path):
        path = tmp_path / "p.jsonl"
        self.write_beats(path, [beat(reads_done=10)])
        out = io.StringIO()
        assert run_top(str(path), interval=0.01, out=out) == 0
        assert "10 / 100" in out.getvalue()

    def test_skips_garbage_and_foreign_records(self, tmp_path):
        path = tmp_path / "p.jsonl"
        with open(path, "w") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"record": "run", "run_id": "x"}) + "\n")
            fh.write(json.dumps(beat(final=True)) + "\n")
        out = io.StringIO()
        assert run_top(str(path), interval=0.01, out=out) == 0

    def test_missing_file(self, tmp_path, capsys):
        assert run_top(str(tmp_path / "nope.jsonl"), interval=0.01) == 1
        assert "no such file" in capsys.readouterr().err

    def test_empty_stale_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        self.write_beats(path, [])
        assert run_top(str(path), interval=0.01, out=io.StringIO()) == 1
        assert "no progress records" in capsys.readouterr().err

    def test_once_renders_single_frame(self, tmp_path):
        path = tmp_path / "p.jsonl"
        self.write_beats(path, [beat(reads_done=1), beat(reads_done=2)])
        out = io.StringIO()
        assert run_top(str(path), interval=0.01, out=out, max_frames=1) == 0
        assert out.getvalue().count("manymap top") == 1

    def test_invalid_interval(self, tmp_path):
        with pytest.raises(ValueError):
            run_top(str(tmp_path), interval=0)


class TestUrlMode:
    def test_polls_live_status_endpoint(self):
        with StatusServer(sampler=RunSampler(total_reads=5), port=0) as srv:
            out = io.StringIO()
            rc = run_top(srv.url, interval=0.01, out=out, max_frames=2)
        assert rc == 0
        assert out.getvalue().count("manymap top") == 2
        assert "running" in out.getvalue()

    def test_unreachable_endpoint(self, capsys):
        # A closed port: bind-then-release to find a free one.
        import socket

        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
        s.close()
        rc = run_top(f"http://127.0.0.1:{port}", interval=0.01)
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err
