"""Live progress heartbeat: beats, JSONL records, clean shutdown."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.counters import COUNTERS
from repro.obs.progress import ProgressReporter
from repro.obs.telemetry import Telemetry


class TestLifecycle:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            ProgressReporter(interval=0.0)
        with pytest.raises(ValueError, match="interval"):
            ProgressReporter(interval=-1.0)

    def test_final_beat_even_without_a_tick(self, tmp_path):
        # Interval far longer than the run: stop() still emits one beat.
        path = tmp_path / "p.jsonl"
        reporter = ProgressReporter(interval=60.0, path=str(path))
        with reporter:
            pass
        assert reporter.beats == 1
        rec = json.loads(path.read_text())
        assert rec["final"] is True

    def test_periodic_beats(self):
        reporter = ProgressReporter(interval=0.02)
        with reporter:
            time.sleep(0.15)
        # Several interval beats plus the final one.
        assert reporter.beats >= 3

    def test_stop_is_idempotent(self):
        reporter = ProgressReporter(interval=60.0).start()
        reporter.stop()
        beats = reporter.beats
        reporter.stop()
        assert reporter.beats == beats
        assert reporter._thread is None

    def test_clean_shutdown_on_keyboard_interrupt(self):
        reporter = ProgressReporter(interval=60.0)
        with pytest.raises(KeyboardInterrupt):
            with reporter:
                raise KeyboardInterrupt()
        assert reporter.beats == 1  # final beat still emitted
        assert reporter._thread is None

    def test_clean_shutdown_on_fault_abort(self):
        reporter = ProgressReporter(interval=60.0)
        with pytest.raises(RuntimeError, match="aborting"):
            with reporter:
                raise RuntimeError("aborting on fault policy")
        assert reporter.beats == 1
        assert reporter._thread is None


class TestSampling:
    def test_counter_delta_scoped_to_start(self):
        COUNTERS.inc("reads_done", 7)  # pre-run noise
        reporter = ProgressReporter(interval=60.0).start()
        try:
            COUNTERS.inc("reads_done", 3)
            COUNTERS.inc("dp_cells", 1000)
            rec = reporter.sample()
        finally:
            reporter.stop()
        assert rec["record"] == "progress"
        assert rec["reads_done"] == 3
        assert rec["dp_cells"] >= 1000
        assert rec["reads_per_s"] > 0

    def test_telemetry_scopes_and_stamps_run_id(self):
        telemetry = Telemetry()
        COUNTERS.inc("reads_done", 5)
        reporter = ProgressReporter(telemetry=telemetry, interval=60.0)
        reporter.start()
        try:
            rec = reporter.sample()
        finally:
            reporter.stop()
        assert rec["run_id"] == telemetry.run_id
        assert rec["reads_done"] == 5  # telemetry baseline, not start()

    def test_eta_requires_total(self):
        reporter = ProgressReporter(interval=60.0, total_reads=None).start()
        try:
            assert reporter.sample()["eta_s"] is None
        finally:
            reporter.stop()

    def test_eta_with_total(self):
        reporter = ProgressReporter(interval=60.0, total_reads=10).start()
        try:
            COUNTERS.inc("reads_done", 5)
            rec = reporter.sample()
        finally:
            reporter.stop()
        assert rec["total_reads"] == 10
        assert rec["eta_s"] is not None and rec["eta_s"] >= 0


class TestJsonl:
    def test_records_written_and_final_flagged(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        telemetry = Telemetry()
        with ProgressReporter(
            telemetry=telemetry, interval=0.02, path=str(path)
        ):
            time.sleep(0.1)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(records) >= 2
        assert all(r["record"] == "progress" for r in records)
        assert all(r["run_id"] == telemetry.run_id for r in records)
        assert [r["final"] for r in records[:-1]] == [False] * (
            len(records) - 1
        )
        assert records[-1]["final"] is True
        # Elapsed time only moves forward across beats.
        elapsed = [r["elapsed_s"] for r in records]
        assert elapsed == sorted(elapsed)

    def test_file_closed_on_stop(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        reporter = ProgressReporter(interval=60.0, path=str(path))
        with reporter:
            pass
        assert reporter._fh is None
        assert path.read_text().strip()  # the final beat landed
