"""Unit tests for the request-scoped tracing plane.

Everything here runs against a private :class:`Tracer` with injected
clocks, so span timing and tail-sampling decisions are deterministic —
the global :data:`TRACER` is only touched by the enable/disable
refcount test (and restored).
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs.export import render_openmetrics
from repro.obs.tracing import (
    TRACER,
    TraceConfig,
    TraceContext,
    Tracer,
    TraceStore,
    render_trace_tree,
    trace_chrome,
)


class FakeClock:
    """A manually-advanced perf_counter/wall pair."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def perf(self) -> float:
        return self.now

    def wall(self) -> float:
        return 1_700_000_000.0 + self.now

    def tick(self, dt: float) -> None:
        self.now += dt


def make_tracer(rng=None) -> "tuple[Tracer, FakeClock]":
    clk = FakeClock()
    t = Tracer(clock=clk.perf, wall=clk.wall, rng=rng)
    t.enable()
    return t, clk


class TestTraceContext:
    def test_json_round_trip(self):
        ctx = TraceContext("t" * 16, "s" * 16, sampled=False)
        assert TraceContext.from_json(ctx.to_json()) == ctx

    def test_child_keeps_trace_id_and_sampled(self):
        ctx = TraceContext("tid", "parent", sampled=False)
        kid = ctx.child("kid")
        assert (kid.trace_id, kid.span_id, kid.sampled) == (
            "tid",
            "kid",
            False,
        )

    @pytest.mark.parametrize(
        "doc",
        [
            "not a dict",
            {},
            {"trace_id": ""},
            {"trace_id": 7},
            {"trace_id": "ok", "span_id": 9},
        ],
    )
    def test_from_json_rejects_garbage(self, doc):
        with pytest.raises(ValueError):
            TraceContext.from_json(doc)

    def test_sampled_defaults_true(self):
        assert TraceContext.from_json({"trace_id": "t"}).sampled is True


class TestTracer:
    def test_disabled_span_is_noop(self):
        t = Tracer()
        with t.use(TraceContext("tid", None)):
            with t.span("x") as sp:
                assert sp is None
        assert t.take("tid") == []

    def test_span_requires_ambient_context(self):
        t, _ = make_tracer()
        with t.span("orphan") as sp:
            assert sp is None  # enabled but no trace in flight

    def test_nested_spans_link_causally(self):
        t, clk = make_tracer()
        root = t.start_span("root")
        with t.use(root.ctx):
            with t.span("outer") as outer:
                clk.tick(0.5)
                with t.span("inner", detail=1) as inner:
                    clk.tick(0.25)
        t.end_span(root)
        spans = {s["name"]: s for s in t.take(root.trace_id)}
        assert set(spans) == {"root", "outer", "inner"}
        assert spans["outer"]["parent_id"] == root.span_id
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["inner"]["trace_id"] == root.trace_id
        assert spans["inner"]["dur_s"] == pytest.approx(0.25)
        assert spans["outer"]["dur_s"] == pytest.approx(0.75)
        assert spans["inner"]["attrs"] == {"detail": 1}

    def test_span_error_status_on_exception(self):
        t, _ = make_tracer()
        root = t.start_span("root")
        with t.use(root.ctx):
            with pytest.raises(RuntimeError):
                with t.span("boom"):
                    raise RuntimeError("x")
        t.end_span(root)
        spans = {s["name"]: s for s in t.take(root.trace_id)}
        assert spans["boom"]["status"] == "error"
        assert spans["root"]["status"] == "ok"

    def test_record_backdates_wall_ts(self):
        t, clk = make_tracer()
        ctx = TraceContext("tid", "parent")
        start = clk.perf()
        clk.tick(2.0)
        rec = t.record("waited", ctx, start, clk.perf(), depth=3)
        assert rec["dur_s"] == pytest.approx(2.0)
        # ts anchors at span *start*: wall now minus the elapsed 2s.
        assert rec["ts"] == pytest.approx(clk.wall() - 2.0)
        assert rec["parent_id"] == "parent"
        assert rec["attrs"] == {"depth": 3}
        assert t.take("tid") == [rec]

    def test_record_noop_without_context(self):
        t, clk = make_tracer()
        assert t.record("x", None, 0.0, 1.0) is None

    def test_take_collects_across_threads(self):
        t, _ = make_tracer()
        root = t.start_span("root")

        def worker():
            with t.use(root.ctx):
                with t.span("worker-side"):
                    pass

        th = threading.Thread(target=worker)
        th.start()
        th.join()
        t.end_span(root)
        names = {s["name"] for s in t.take(root.trace_id)}
        assert names == {"root", "worker-side"}

    def test_capture_and_graft(self):
        t, clk = make_tracer()
        with t.capture() as cap:
            with t.span("batch-work") as sp:
                clk.tick(0.1)
                with t.span("kernel"):
                    clk.tick(0.1)
        assert {s["name"] for s in cap.spans} == {"batch-work", "kernel"}
        grafted = t.graft(cap.spans, "member-trace", "member-span")
        by_name = {s["name"] for s in grafted}
        assert by_name == {"batch-work", "kernel"}
        for rec in grafted:
            assert rec["trace_id"] == "member-trace"
        roots = [r for r in grafted if r["parent_id"] == "member-span"]
        assert [r["name"] for r in roots] == ["batch-work"]
        kernel = next(r for r in grafted if r["name"] == "kernel")
        batch = next(r for r in grafted if r["name"] == "batch-work")
        assert kernel["parent_id"] == batch["span_id"]
        # Fresh ids: a second graft into another trace must not collide.
        again = t.graft(cap.spans, "other", "p")
        assert {r["span_id"] for r in again}.isdisjoint(
            {r["span_id"] for r in grafted}
        )

    def test_graft_empty_is_noop(self):
        t, _ = make_tracer()
        assert t.graft([], "t", "p") == []

    def test_global_tracer_refcount(self):
        assert TRACER.enabled is False
        TRACER.enable()
        TRACER.enable()
        TRACER.disable()
        assert TRACER.enabled is True  # one plane still holds it
        TRACER.disable()
        assert TRACER.enabled is False

    def test_disable_clears_pending_and_exemplars(self):
        t, _ = make_tracer()
        root = t.start_span("root")
        t.end_span(root)
        t.exemplar("h", 0.5, "tid")
        t.disable()
        assert t.take(root.trace_id) == []
        assert t.exemplars() == {}


class TestTraceStore:
    def test_keeps_everything_at_full_sample(self, tmp_path):
        t, clk = make_tracer()
        store = TraceStore(
            TraceConfig(dir=str(tmp_path), sample=1.0), tracer=t
        )
        root = t.start_span("run", sampled=store.head_sampled())
        with t.use(root.ctx):
            with t.span("child"):
                clk.tick(0.01)
        assert store.finish(root) is True
        doc = store.get(root.trace_id)
        assert doc["n_spans"] == 2
        assert doc["status"] == "ok"
        path = tmp_path / f"trace-{root.trace_id}.json"
        assert json.loads(path.read_text())["trace_id"] == root.trace_id

    def test_error_trace_always_kept_despite_sampling(self):
        t, clk = make_tracer()
        store = TraceStore(
            TraceConfig(sample=0.0, slowest_pct=0.0), tracer=t
        )
        root = t.start_span("req", sampled=store.head_sampled())
        clk.tick(0.001)
        assert store.finish(root, status="shed") is True
        assert store.get(root.trace_id)["status"] == "shed"

    def test_fast_ok_trace_dropped_when_sampled_out(self):
        t, clk = make_tracer()
        store = TraceStore(
            TraceConfig(sample=0.0, slowest_pct=0.0), tracer=t
        )
        root = t.start_span("req", sampled=store.head_sampled())
        clk.tick(0.001)
        assert store.finish(root) is False
        assert store.get(root.trace_id) is None
        # Dropped traces must not leak span buffers.
        assert t.take(root.trace_id) == []
        assert store.summary()["dropped"] == 1

    def test_tail_sampling_keeps_slowest_deterministically(self):
        """Seeded clock, sample=0: only the slowest-20% survive."""
        t, clk = make_tracer(rng=lambda: 0.999)  # head flip always loses
        store = TraceStore(
            TraceConfig(sample=0.0, slowest_pct=20.0), tracer=t
        )
        durations = [0.010 * (i + 1) for i in range(10)]  # 10ms..100ms
        kept = []
        for dur in durations:
            root = t.start_span("req", sampled=store.head_sampled())
            clk.tick(dur)
            if store.finish(root):
                kept.append(dur)
        # Every prefix-max lands at the top of its window, so the early
        # ramp keeps some; the defining check is the tail: re-running
        # the same durations shuffled low keeps nothing new.
        assert durations[-1] in kept
        for dur in [0.001, 0.002, 0.003]:
            root = t.start_span("req", sampled=store.head_sampled())
            clk.tick(dur)
            assert store.finish(root) is False
        summary = store.summary()
        assert summary["started"] == 13
        assert summary["kept"] == len(kept)
        assert summary["dropped"] == 13 - len(kept)

    def test_head_sampling_deterministic_with_seeded_rng(self):
        rolls = iter([0.2, 0.9, 0.2, 0.9])
        t, clk = make_tracer(rng=lambda: next(rolls))
        store = TraceStore(
            TraceConfig(sample=0.5, slowest_pct=0.0), tracer=t
        )
        decisions = []
        for _ in range(4):
            root = t.start_span("req", sampled=store.head_sampled())
            clk.tick(0.001)
            decisions.append(store.finish(root))
        assert decisions == [True, False, True, False]

    def test_max_traces_evicts_oldest_from_memory_and_disk(self, tmp_path):
        t, clk = make_tracer()
        store = TraceStore(
            TraceConfig(dir=str(tmp_path), max_traces=2), tracer=t
        )
        ids = []
        for _ in range(3):
            root = t.start_span("req", sampled=True)
            clk.tick(0.001)
            store.finish(root)
            ids.append(root.trace_id)
        assert not (tmp_path / f"trace-{ids[0]}.json").exists()
        assert (tmp_path / f"trace-{ids[2]}.json").exists()
        listed = {s["trace_id"] for s in store.slowest(10)}
        assert listed == set(ids[1:])

    def test_get_falls_back_to_disk(self, tmp_path):
        t, clk = make_tracer()
        store = TraceStore(
            TraceConfig(dir=str(tmp_path), max_traces=1), tracer=t
        )
        roots = []
        for _ in range(2):
            root = t.start_span("req", sampled=True)
            clk.tick(0.001)
            store.finish(root)
            roots.append(root)
        # First trace was evicted from memory but kept... no: with
        # max_traces=1 its file was unlinked too; a fresh store over the
        # same dir still serves the survivor from disk.
        fresh = TraceStore(
            TraceConfig(dir=str(tmp_path), max_traces=1), tracer=t
        )
        assert fresh.get(roots[1].trace_id)["trace_id"] == roots[1].trace_id
        assert fresh.get(roots[0].trace_id) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(sample=1.5).validated()
        with pytest.raises(ValueError):
            TraceConfig(slowest_pct=-1.0).validated()
        with pytest.raises(ValueError):
            TraceConfig(max_traces=0).validated()


class TestExemplars:
    def test_exemplar_lands_on_matching_bucket(self):
        t, _ = make_tracer()
        # 0.42 -> frexp exponent -1; bucket le=2**-1=0.5
        t.exemplar("serve.latency_s", 0.42, "abc123")
        ex = t.exemplars()["serve.latency_s"]
        hist = {
            "count": 1,
            "sum": 0.42,
            "zeros": 0,
            "buckets": {"-1": 1},
        }
        text = render_openmetrics(
            {}, {}, {"serve.latency_s": hist}, exemplars={"serve.latency_s": ex}
        )
        line = next(
            l for l in text.splitlines() if 'le="0.5"' in l
        )
        assert '# {trace_id="abc123"} 0.42' in line

    def test_no_exemplars_no_suffix(self):
        hist = {"count": 1, "sum": 0.4, "zeros": 0, "buckets": {"-1": 1}}
        text = render_openmetrics({}, {}, {"h": hist})
        assert "trace_id" not in text


def sample_doc():
    return {
        "record": "trace",
        "trace_id": "tid123",
        "root": "serve.request",
        "status": "ok",
        "ts": 10.0,
        "duration_ms": 30.0,
        "n_spans": 3,
        "spans": [
            {
                "span_id": "a",
                "parent_id": None,
                "name": "serve.request",
                "ts": 10.0,
                "dur_s": 0.030,
                "status": "ok",
                "attrs": {"reads": 2},
            },
            {
                "span_id": "b",
                "parent_id": "a",
                "name": "admission.queue",
                "ts": 10.001,
                "dur_s": 0.010,
                "status": "ok",
                "attrs": {},
            },
            {
                "span_id": "c",
                "parent_id": "a",
                "name": "serve.batch",
                "ts": 10.011,
                "dur_s": 0.015,
                "status": "error",
                "attrs": {"batch_id": 7},
            },
        ],
    }


class TestRendering:
    def test_tree_shows_hierarchy_self_time_and_status(self):
        out = render_trace_tree(sample_doc())
        lines = out.splitlines()
        assert "trace tid123" in lines[0]
        assert "root=serve.request" in lines[0]
        root_line = next(l for l in lines if "serve.request" in l and "└─" in l)
        # self = 30ms - (10+15)ms children
        assert "self     5.00 ms" in root_line
        batch_line = next(l for l in lines if "serve.batch" in l)
        assert "[error]" in batch_line
        assert "batch_id=7" in batch_line
        # children are indented under the root
        assert lines.index(root_line) < lines.index(batch_line)

    def test_tree_empty(self):
        out = render_trace_tree({"trace_id": "x", "spans": []})
        assert "(no spans)" in out

    def test_chrome_export_shape(self):
        doc = trace_chrome(sample_doc())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["run_id"] == "tid123"
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(slices) == 3
        # one lane per depth: root at 0, the two children at 1
        assert sorted({e["tid"] for e in slices}) == [0, 1]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert names == {"depth 0", "depth 1"}
        root_ev = next(e for e in slices if e["name"] == "serve.request")
        assert root_ev["ts"] == 0.0  # rebased to earliest span
        assert root_ev["dur"] == pytest.approx(30_000.0)  # µs
        err = next(e for e in slices if e["name"] == "serve.batch")
        assert err["args"]["status"] == "error"
        # per-lane slices are non-decreasing
        for tid in {e["tid"] for e in slices}:
            lane = [e["ts"] for e in slices if e["tid"] == tid]
            assert lane == sorted(lane)
