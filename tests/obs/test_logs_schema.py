"""Unit tests for structured logging and the schema-subset validator."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.logs import current_level_name, get_logger, setup_logging
from repro.obs.schema import SchemaError, assert_valid, validate


class TestLogging:
    def test_setup_is_idempotent(self):
        logger = setup_logging("info")
        setup_logging("info")
        ours = [
            h for h in logger.handlers if getattr(h, "_repro_handler", False)
        ]
        assert len(ours) == 1

    def test_level_and_worker_prefix_in_output(self):
        stream = io.StringIO()
        setup_logging("debug", stream=stream)
        get_logger("testmod").debug("hello %d", 42)
        out = stream.getvalue()
        assert "repro.testmod: hello 42" in out
        assert "[MainProcess]" in out
        setup_logging("warning")  # restore a quiet default

    def test_threshold_filters(self):
        stream = io.StringIO()
        setup_logging("error", stream=stream)
        get_logger("testmod").info("suppressed")
        assert stream.getvalue() == ""
        setup_logging("warning")

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            setup_logging("loud")

    def test_current_level_name_round_trips(self):
        setup_logging("debug")
        assert current_level_name() == "debug"
        setup_logging("warning")
        assert current_level_name() == "warning"

    def test_no_propagation_to_root(self):
        logger = setup_logging("info")
        assert logger.propagate is False
        assert logger is logging.getLogger("repro")


SCHEMA = {
    "type": "object",
    "required": ["n", "name"],
    "properties": {
        "n": {"type": "integer", "minimum": 0, "maximum": 10},
        "name": {"type": "string"},
        "tags": {"type": "array", "items": {"type": "string"}},
        "kind": {"enum": ["a", "b"]},
    },
    "additionalProperties": False,
}


class TestSchemaValidator:
    def test_valid_instance(self):
        inst = {"n": 3, "name": "x", "tags": ["t"], "kind": "a"}
        assert validate(inst, SCHEMA) == []
        assert_valid(inst, SCHEMA)  # should not raise

    def test_missing_required(self):
        errs = validate({"n": 1}, SCHEMA)
        assert any("missing required property 'name'" in e for e in errs)

    def test_wrong_type_reported_with_path(self):
        errs = validate({"n": "three", "name": "x"}, SCHEMA)
        assert any(e.startswith("$.n:") for e in errs)

    def test_bool_is_not_integer(self):
        errs = validate({"n": True, "name": "x"}, SCHEMA)
        assert any("expected type" in e for e in errs)

    def test_minimum_maximum(self):
        assert validate({"n": -1, "name": "x"}, SCHEMA)
        assert validate({"n": 11, "name": "x"}, SCHEMA)
        assert validate({"n": 10, "name": "x"}, SCHEMA) == []

    def test_enum(self):
        errs = validate({"n": 1, "name": "x", "kind": "z"}, SCHEMA)
        assert any("not in enum" in e for e in errs)

    def test_items_recurse_with_index_path(self):
        errs = validate({"n": 1, "name": "x", "tags": ["ok", 5]}, SCHEMA)
        assert any("$.tags[1]" in e for e in errs)

    def test_additional_properties_false(self):
        errs = validate({"n": 1, "name": "x", "extra": 1}, SCHEMA)
        assert any("unexpected property 'extra'" in e for e in errs)

    def test_assert_valid_raises_with_all_violations(self):
        with pytest.raises(SchemaError) as ei:
            assert_valid({"n": -1, "extra": 2}, SCHEMA)
        msg = str(ei.value)
        assert "schema violation" in msg
        assert "minimum" in msg and "extra" in msg
