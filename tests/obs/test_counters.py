"""Unit tests for the sharded counter registry."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.obs.counters import COUNTERS, CounterRegistry, counter_delta


class TestCounterRegistry:
    def test_inc_and_totals(self):
        reg = CounterRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 2)
        assert reg.totals() == {"a": 5, "b": 2}

    def test_merge_folds_worker_delta(self):
        reg = CounterRegistry()
        reg.inc("dp_cells", 10)
        reg.merge({"dp_cells": 90, "chains_built": 3})
        assert reg.totals() == {"dp_cells": 100, "chains_built": 3}

    def test_reset_zeroes_all_shards(self):
        reg = CounterRegistry()
        reg.inc("x", 7)
        reg.reset()
        assert reg.totals() == {}

    def test_threads_accumulate_into_separate_shards(self):
        reg = CounterRegistry()

        def work(_):
            for _ in range(1000):
                reg.inc("hits")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(8)))
        assert reg.totals() == {"hits": 8000}

    def test_global_registry_exists(self):
        before = COUNTERS.totals().get("__test_probe", 0)
        COUNTERS.inc("__test_probe")
        assert COUNTERS.totals()["__test_probe"] == before + 1


class TestCounterDelta:
    def test_subtracts_per_key(self):
        after = {"a": 5, "b": 2, "c": 1}
        before = {"a": 3, "b": 2}
        assert counter_delta(after, before) == {"a": 2, "c": 1}

    def test_drops_zero_entries(self):
        assert counter_delta({"a": 1}, {"a": 1}) == {}

    def test_empty_before(self):
        assert counter_delta({"a": 4}, {}) == {"a": 4}
