"""Unit tests for the streaming log2-bucket histograms."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs.hist import (
    Histogram,
    HistogramRegistry,
    hist_delta,
    merge_hist_json,
    summarize,
)


class TestHistogram:
    def test_bucket_boundaries(self):
        h = Histogram()
        # bucket e covers [2**(e-1), 2**e): 1.0 -> e=1, 2.0 -> e=2 ...
        for v in (0.5, 1.0, 1.999, 2.0, 1024.0):
            h.observe(v)
        assert h.buckets == {0: 1, 1: 2, 2: 1, 11: 1}
        assert h.count == 5
        assert h.min == 0.5
        assert h.max == 1024.0
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.999 + 2.0 + 1024.0)

    def test_zeros_and_negatives_get_the_zero_slot(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(-3.0)
        h.observe(4.0)
        assert h.zeros == 2
        assert h.count == 3
        assert h.buckets == {3: 1}
        assert h.min == 0.0
        assert h.sum == 4.0  # zeros contribute nothing to the sum

    def test_mean_excludes_zero_slot(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(10.0)
        assert h.mean == 10.0

    def test_empty_percentile_and_summary(self):
        h = Histogram()
        assert h.percentile(50) == 0.0
        s = h.summary()
        assert s["count"] == 0
        assert s["p99"] == 0.0

    def test_percentiles_clamped_to_observed_envelope(self):
        h = Histogram()
        for v in (100.0, 101.0, 102.0, 103.0):
            h.observe(v)
        # All samples share bucket 7 ([64, 128)); interpolation inside
        # the bucket must still never leave [min, max].
        for q in (1, 50, 99):
            assert 100.0 <= h.percentile(q) <= 103.0

    def test_percentile_monotone(self):
        h = Histogram()
        for i in range(1, 200):
            h.observe(float(i))
        ps = [h.percentile(q) for q in (10, 50, 90, 99)]
        assert ps == sorted(ps)
        assert h.percentile(50) == pytest.approx(100.0, rel=0.5)

    def test_merge_equals_combined_observation(self):
        a, b, both = Histogram(), Histogram(), Histogram()
        # Dyadic values: exact float sums regardless of addition order.
        for i, v in enumerate([0.25, 3.0, 7.5, 0.0, 42.0, 1.0]):
            (a if i % 2 else b).observe(v)
            both.observe(v)
        a.merge(b)
        assert a.to_json() == both.to_json()

    def test_json_round_trip(self):
        h = Histogram()
        for v in (0.0, 1.5, 300.0):
            h.observe(v)
        d = json.loads(json.dumps(h.to_json()))
        assert Histogram.from_json(d).to_json() == h.to_json()

    def test_from_json_empty_keeps_none_minmax(self):
        h = Histogram.from_json(Histogram().to_json())
        assert h.min is None and h.max is None


class TestRegistry:
    def test_observe_and_totals(self):
        reg = HistogramRegistry()
        reg.observe("x", 2.0)
        reg.observe("x", 8.0)
        reg.observe("y", 1.0)
        totals = reg.totals()
        assert totals["x"].count == 2
        assert totals["y"].count == 1

    def test_disabled_is_noop(self):
        reg = HistogramRegistry()
        reg.disable()
        reg.observe("x", 1.0)
        assert reg.totals() == {}
        reg.enable()
        reg.observe("x", 1.0)
        assert reg.totals()["x"].count == 1

    def test_threads_merge_like_counters(self):
        reg = HistogramRegistry()

        def work():
            for i in range(100):
                reg.observe("t", float(i + 1))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = reg.totals()["t"]
        assert total.count == 400
        assert total.sum == pytest.approx(4 * sum(range(1, 101)))

    def test_merge_serialized_delta(self):
        src, dst = HistogramRegistry(), HistogramRegistry()
        for v in (1.0, 2.0, 0.0):
            src.observe("x", v)
        dst.merge(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_reset(self):
        reg = HistogramRegistry()
        reg.observe("x", 1.0)
        reg.reset()
        assert reg.totals() == {}


class TestDeltaAndSummary:
    def test_delta_is_exact_for_buckets_and_moments(self):
        reg = HistogramRegistry()
        reg.observe("x", 4.0)
        before = reg.snapshot()
        reg.observe("x", 4.0)
        reg.observe("x", 9.0)
        d = hist_delta(reg.snapshot(), before)["x"]
        assert d["count"] == 2
        assert d["sum"] == pytest.approx(13.0)
        assert d["buckets"] == {"3": 1, "4": 1}

    def test_delta_drops_unchanged_histograms(self):
        reg = HistogramRegistry()
        reg.observe("quiet", 1.0)
        snap = reg.snapshot()
        assert hist_delta(snap, snap) == {}

    def test_merge_hist_json_symmetry(self):
        a, b = HistogramRegistry(), HistogramRegistry()
        a.observe("x", 3.0)
        a.observe("y", 1.0)
        b.observe("x", 5.0)
        ab = merge_hist_json(a.snapshot(), b.snapshot())
        ba = merge_hist_json(b.snapshot(), a.snapshot())
        assert ab == ba
        assert ab["x"]["count"] == 2

    def test_summarize_adds_percentiles(self):
        reg = HistogramRegistry()
        for i in range(100):
            reg.observe("x", float(i + 1))
        s = summarize(reg.snapshot())["x"]
        assert s["count"] == 100
        assert set(s) >= {"p50", "p90", "p99", "mean", "buckets"}
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["max"]

    def test_bucket_function_matches_frexp(self):
        h = Histogram()
        for e in range(-5, 20):
            lo = math.ldexp(1.0, e - 1)
            h2 = Histogram()
            h2.observe(lo)
            assert list(h2.buckets) == [e], e
        assert h.count == 0  # untouched control
