"""Chrome-trace/Perfetto timeline export: document shape and invariants."""

from __future__ import annotations

import json
from types import SimpleNamespace

from repro.obs.timeline import build_timeline, trace_events, write_timeline

T0 = 1_700_000_000.0


def span(read, worker, ts, seed=0.002, align=0.005, chunk=None, length=500):
    return {
        "read": read,
        "length": length,
        "worker": worker,
        "chunk": chunk,
        "ts": ts,
        "spans": {"seed_chain": seed, "align": align},
    }


def two_worker_spans():
    """Two pid lanes, two reads each, interleaved starts + one chunk."""
    return [
        span("r0", "pid:100/MainThread", T0 + 0.00, chunk=0),
        span("r2", "pid:200/MainThread", T0 + 0.01, chunk=1),
        span("r1", "pid:100/MainThread", T0 + 0.02, chunk=0),
        span("r3", "pid:200/MainThread", T0 + 0.03, chunk=1),
    ]


class TestTraceEvents:
    def test_stage_slices_one_per_stage_per_read(self):
        events = trace_events(two_worker_spans())
        slices = [e for e in events if e["ph"] == "X"]
        stage = [e for e in slices if e["name"] in ("seed_chain", "align")]
        # 4 reads x 2 stages, plus the chunk-extent slices.
        assert len(stage) == 8
        assert {e["args"]["read"] for e in stage} == {"r0", "r1", "r2", "r3"}

    def test_per_lane_timestamps_monotonic(self):
        # The documented invariant: within each (pid, tid) lane, event
        # start times never decrease, even with overlapping wall clocks.
        spans = two_worker_spans()
        # Force clock skew: a later span claims an earlier start.
        spans.append(span("r4", "pid:100/MainThread", T0 + 0.019, chunk=0))
        events = trace_events(spans)
        lanes = {}
        for e in events:
            if e["ph"] != "X":
                continue
            lanes.setdefault((e["pid"], e["tid"]), []).append(e)
        assert len(lanes) >= 2
        for key, evs in lanes.items():
            ts = [e["ts"] for e in evs]
            assert ts == sorted(ts), key
            ends = [e["ts"] + e["dur"] for e in evs]
            for prev_end, start in zip(ends, ts[1:]):
                assert start >= prev_end, key

    def test_timestamps_rebased_to_microseconds(self):
        events = trace_events(two_worker_spans())
        slices = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in slices) == 0.0
        # 30 ms spread -> everything well under a second in us.
        assert max(e["ts"] for e in slices) < 1e6

    def test_metadata_lane_names(self):
        events = trace_events(two_worker_spans(), label="processes[2]")
        meta = [e for e in events if e["ph"] == "M"]
        proc = [e for e in meta if e["name"] == "process_name"]
        assert {e["pid"] for e in proc} == {100, 200}
        assert any("processes[2]" in e["args"]["name"] for e in proc)
        threads = [e for e in meta if e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in threads} >= {
            "MainThread",
            "MainThread chunks",
        }

    def test_chunk_sub_lane(self):
        events = trace_events(two_worker_spans())
        chunks = [e for e in events if e["name"].startswith("chunk ")]
        assert len(chunks) == 2  # chunk 0 on pid 100, chunk 1 on pid 200
        for e in chunks:
            assert e["tid"] > 1000  # offset onto the chunks sub-lane
            assert e["dur"] > 0.0
        # A chunk extent covers both of its reads' stage slices.
        c0 = next(e for e in chunks if e["args"]["chunk"] == 0)
        lane0 = [
            e
            for e in events
            if e["ph"] == "X" and e["pid"] == 100 and e["tid"] < 1000
        ]
        assert c0["ts"] <= min(e["ts"] for e in lane0)
        assert c0["ts"] + c0["dur"] >= max(e["ts"] + e["dur"] for e in lane0)

    def test_fault_instant_markers(self):
        fault = SimpleNamespace(
            kind="error",
            read="bad1",
            action="quarantine",
            reason="ValueError: boom",
            attempts=2,
            ts=T0 + 0.015,
        )
        events = trace_events(two_worker_spans(), faults=[fault])
        marks = [e for e in events if e["ph"] == "i"]
        assert len(marks) == 1
        assert marks[0]["name"] == "error:bad1"
        assert marks[0]["args"]["action"] == "quarantine"
        assert marks[0]["ts"] >= 0.0
        # The fault pid lane gets a name too.
        assert any(
            e["ph"] == "M" and e["pid"] == 0 and e["args"]["name"] == "faults"
            for e in events
        )

    def test_spans_without_timestamps_are_skipped(self):
        s = span("old", "pid:1/T", T0)
        del s["ts"]
        assert trace_events([s]) == []

    def test_empty_input(self):
        assert trace_events([]) == []


class TestDocument:
    def test_build_timeline_shape(self):
        doc = build_timeline(
            two_worker_spans(),
            run_id="abc123",
            gauges={"stream.queue.depth.max": 4},
            label="streaming[2]",
        )
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        other = doc["otherData"]
        assert other["tool"] == "manymap"
        assert other["run_id"] == "abc123"
        assert other["gauges"] == {"stream.queue.depth.max": 4}

    def test_write_timeline_round_trip(self, tmp_path):
        path = tmp_path / "timeline.json"
        n = write_timeline(
            str(path), two_worker_spans(), run_id="rid", label="serial[1]"
        )
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n > 0
        assert doc["otherData"]["run_id"] == "rid"
        # Every event is a dict with the trace-event required keys.
        for e in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["ts"] >= 0.0 and e["dur"] >= 0.0
