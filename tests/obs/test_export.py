"""Export layer: OpenMetrics rendering and the shared RunSampler."""

from __future__ import annotations

import math

from repro.obs.export import (
    RunSampler,
    metric_name,
    render_openmetrics,
    status_record,
)
from repro.obs.hist import Histogram


def hist_json(values):
    h = Histogram()
    for v in values:
        h.observe(v)
    return h.to_json()


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("fault.quarantined") == "manymap_fault_quarantined"

    def test_arbitrary_punctuation_sanitized(self):
        assert metric_name("a-b/c d") == "manymap_a_b_c_d"

    def test_digit_prefix_guarded(self):
        assert metric_name("9lives", prefix="") == "_9lives"


class TestRenderOpenmetrics:
    def test_golden_counters_and_gauges(self):
        text = render_openmetrics(
            {"reads_done": 7, "dp_cells": 1234},
            {"stream.queue.depth": 2.5},
        )
        assert text == (
            "# TYPE manymap_dp_cells counter\n"
            "manymap_dp_cells_total 1234\n"
            "# TYPE manymap_reads_done counter\n"
            "manymap_reads_done_total 7\n"
            "# TYPE manymap_stream_queue_depth gauge\n"
            "manymap_stream_queue_depth 2.5\n"
            "# EOF\n"
        )

    def test_ends_with_eof(self):
        assert render_openmetrics({}).endswith("# EOF\n")

    def test_histogram_buckets_cumulative(self):
        # 5 -> bucket le=8, 100 -> le=128, 0 -> zeros slot.
        text = render_openmetrics({}, {}, {"lat": hist_json([5, 100, 0])})
        lines = text.splitlines()
        assert "# TYPE manymap_lat histogram" in lines
        assert 'manymap_lat_bucket{le="8"} 2' in lines  # zeros fold in
        assert 'manymap_lat_bucket{le="128"} 3' in lines
        assert 'manymap_lat_bucket{le="+Inf"} 3' in lines
        assert "manymap_lat_count 3" in lines
        assert "manymap_lat_sum 105" in lines

    def test_bucket_counts_monotone_and_close_at_count(self):
        h = hist_json([0.5, 1.5, 3.0, 3.5, 100.0, 0.0, -1.0])
        text = render_openmetrics({}, {}, {"h": h})
        cums = []
        for line in text.splitlines():
            if line.startswith('manymap_h_bucket{le="') and "+Inf" not in line:
                cums.append(int(line.rsplit(" ", 1)[1]))
        assert cums == sorted(cums)
        assert cums[-1] <= h["count"]
        assert f"manymap_h_count {h['count']}" in text

    def test_bucket_bounds_are_powers_of_two(self):
        text = render_openmetrics({}, {}, {"h": hist_json([3.0])})
        for line in text.splitlines():
            if line.startswith('manymap_h_bucket{le="') and "+Inf" not in line:
                bound = float(line.split('le="')[1].split('"')[0])
                assert math.log2(bound) == int(math.log2(bound))

    def test_integral_floats_render_without_dot(self):
        text = render_openmetrics({}, {"g": 4.0})
        assert "manymap_g 4\n" in text


class TestRunSampler:
    def test_self_baselined_counters(self):
        from repro.obs.counters import COUNTERS

        sampler = RunSampler()
        COUNTERS.inc("test.export.delta", 3)
        assert sampler.counters().get("test.export.delta") == 3
        # a second sampler starts from the new baseline
        assert "test.export.delta" not in RunSampler().counters()

    def test_sample_record_shape(self):
        rec = RunSampler(total_reads=10).sample()
        assert rec["record"] == "progress"
        assert rec["final"] is False
        for key in (
            "run_id", "elapsed_s", "reads_done", "total_reads", "reads_per_s",
            "window_reads_per_s", "interval_reads_per_s", "dp_cells", "gcups",
            "quarantined", "queues", "eta_s",
        ):
            assert key in rec, key

    def test_eta_none_without_total(self):
        assert RunSampler().sample()["eta_s"] is None

    def test_eta_none_at_zero_rate(self):
        assert RunSampler(total_reads=100).sample()["eta_s"] is None

    def test_sliding_window_eta(self):
        from repro.obs.counters import COUNTERS

        sampler = RunSampler(total_reads=100)
        COUNTERS.inc("reads_done", 50)
        rec = sampler.sample()
        assert rec["reads_done"] == 50
        assert rec["window_reads_per_s"] > 0
        assert rec["eta_s"] is not None and rec["eta_s"] >= 0

    def test_window_rate_tracks_recent_not_cumulative(self):
        from repro.obs.counters import COUNTERS

        sampler = RunSampler(total_reads=1000, window=2)
        COUNTERS.inc("reads_done", 10)
        sampler.sample()
        sampler.sample()  # window now [(t1,10),(t2,10)]: recent rate ~0
        rec = sampler.sample(update=False)
        assert rec["reads_per_s"] > 0  # cumulative average still positive
        assert rec["eta_s"] is None  # window saw no new reads -> rate 0

    def test_readonly_sample_does_not_advance_window(self):
        sampler = RunSampler(total_reads=10)
        before = list(sampler._window)
        sampler.sample(update=False)
        assert list(sampler._window) == before
        sampler.sample(update=True)
        assert len(sampler._window) == len(before) + 1

    def test_final_flag_passes_through(self):
        assert RunSampler().sample(final=True)["final"] is True

    def test_run_id_empty_without_telemetry(self):
        assert RunSampler().run_id == ""


class TestStatusRecord:
    def test_shape(self):
        rec = status_record(RunSampler(total_reads=5))
        assert rec["record"] == "status"
        assert "batch" in rec and "faults" in rec
        assert isinstance(rec["faults"], dict)

    def test_fault_counters_stripped_of_prefix(self):
        from repro.obs.counters import COUNTERS

        sampler = RunSampler()
        COUNTERS.inc("fault.quarantined", 2)
        COUNTERS.inc("fault.retries", 1)
        rec = status_record(sampler)
        assert rec["faults"]["quarantined"] == 2
        assert rec["faults"]["retries"] == 1
        assert rec["quarantined"] == 2
