"""StatusServer: endpoint contracts over a live RunSampler."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.counters import COUNTERS
from repro.obs.events import EVENTS
from repro.obs.export import OPENMETRICS_CONTENT_TYPE, RunSampler
from repro.obs.statusd import StatusServer


@pytest.fixture()
def server():
    srv = StatusServer(sampler=RunSampler(total_reads=10), port=0).start()
    yield srv
    srv.stop()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5) as resp:
        return resp.status, resp.headers, resp.read().decode("utf-8")


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = get(server, "/healthz")
        assert status == 200 and body == "ok\n"

    def test_root_is_alias_for_healthz(self, server):
        assert get(server, "/")[2] == "ok\n"

    def test_metrics_openmetrics(self, server):
        COUNTERS.inc("test.statusd.hits", 4)
        status, headers, body = get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
        assert body.endswith("# EOF\n")
        assert "manymap_test_statusd_hits_total 4" in body
        # every non-comment line is "name[{labels}] value"
        for line in body.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name and float(value) >= 0

    def test_status_json(self, server):
        COUNTERS.inc("reads_done", 3)
        status, headers, body = get(server, "/status")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        rec = json.loads(body)
        assert rec["record"] == "status"
        assert rec["reads_done"] == 3
        assert rec["total_reads"] == 10
        assert "batch" in rec and "faults" in rec

    def test_events_endpoint(self, server):
        EVENTS.emit("statusd.test", n=1)
        EVENTS.emit("statusd.test", n=2)
        doc = json.loads(get(server, "/events?kind=statusd.test")[2])
        assert doc["record"] == "events"
        assert [e["n"] for e in doc["events"]] == [1, 2]
        assert doc["counts"]["statusd.test"] >= 2
        assert doc["seq"] >= doc["events"][-1]["seq"]

    def test_events_after_seq_and_limit(self, server):
        first = EVENTS.emit("statusd.seq")["seq"]
        EVENTS.emit("statusd.seq")
        doc = json.loads(
            get(server, f"/events?kind=statusd.seq&after_seq={first}")[2]
        )
        assert [e["seq"] for e in doc["events"]] == [first + 1]
        doc = json.loads(get(server, "/events?limit=1")[2])
        assert len(doc["events"]) == 1

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404


class TestLifecycle:
    def test_port_zero_binds_free_port(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_port_validation(self):
        with pytest.raises(ValueError):
            StatusServer(port=-1)
        with pytest.raises(ValueError):
            StatusServer(port=70000)

    def test_stop_idempotent(self):
        srv = StatusServer(port=0).start()
        srv.stop()
        srv.stop()
        assert srv.port == 0

    def test_start_idempotent(self, server):
        assert server.start() is server

    def test_context_manager(self):
        with StatusServer(port=0) as srv:
            assert get(srv, "/healthz")[0] == 200
            port = srv.port
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=1
            )

    def test_default_sampler_when_none_given(self):
        srv = StatusServer(port=0)
        assert isinstance(srv.sampler, RunSampler)
