"""Tests for repro.utils: timers, RNG plumbing, formatting."""

import time

import numpy as np
import pytest

from repro.utils import StageTimer, Timer, as_rng, human_bytes, human_count, si, spawn_rngs, timed


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        t.start()
        time.sleep(0.01)
        t.stop()
        assert t.elapsed >= 0.009

    def test_resume(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timed_context(self):
        with timed() as t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert not t.running


class TestStageTimer:
    def test_stage_accumulation(self):
        st = StageTimer()
        with st.stage("a"):
            time.sleep(0.002)
        with st.stage("a"):
            pass
        with st.stage("b"):
            pass
        assert set(st.stages) == {"a", "b"}
        assert st.total == pytest.approx(sum(st.stages.values()))

    def test_add_and_breakdown_order(self):
        st = StageTimer()
        st.add("load", 1.0)
        st.add("align", 3.0)
        rows = st.breakdown()
        assert [r[0] for r in rows] == ["load", "align"]
        assert rows[1][2] == pytest.approx(75.0)

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            StageTimer().add("x", -1.0)

    def test_render_contains_stages(self):
        st = StageTimer()
        st.add("align", 2.0)
        out = st.render("breakdown")
        assert "align" in out and "Total" in out


class TestRng:
    def test_as_rng_from_seed_deterministic(self):
        a = as_rng(42).integers(0, 100, 10)
        b = as_rng(42).integers(0, 100, 10)
        assert (a == b).all()

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(7, 3)
        assert len(rngs) == 3
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(draws)) == 3

    def test_spawn_rngs_reproducible(self):
        a = [r.integers(0, 10**9) for r in spawn_rngs(5, 2)]
        b = [r.integers(0, 10**9) for r in spawn_rngs(5, 2)]
        assert a == b

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestFmt:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, "0 B"), (1023, "1023 B"), (1024, "1 KB"), (5 * 2**30, "5 GB")],
    )
    def test_human_bytes(self, n, expected):
        assert human_bytes(n) == expected

    def test_human_bytes_negative(self):
        assert human_bytes(-2048) == "-2 KB"

    @pytest.mark.parametrize("n,expected", [(999, "999"), (1000, "1K"), (4_985_012_420, "4.99G")])
    def test_si(self, n, expected):
        assert si(n) == expected

    def test_human_count(self):
        assert human_count(895439) == "895,439"
