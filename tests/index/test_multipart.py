"""Tests for the multi-part index."""

import numpy as np
import pytest

from repro.chain.anchors import collect_anchors
from repro.errors import IndexFormatError
from repro.index.index import build_index
from repro.index.multipart import MultipartIndex, build_multipart_index
from repro.seq.records import SeqRecord
from repro.sim.errors import PACBIO_CLR, apply_errors


@pytest.fixture(scope="module")
def mono(multi_genome):
    return build_index(multi_genome, k=13, w=7, occ_filter_frac=None)


@pytest.fixture(scope="module")
def multi(multi_genome):
    # Force one chromosome per part.
    return build_multipart_index(
        multi_genome, k=13, w=7, part_bases=1, occ_filter_frac=None
    )


class TestBuild:
    def test_parts_split_by_budget(self, multi_genome, multi):
        assert len(multi.parts) == len(multi_genome)
        assert multi.rid_offsets == list(range(len(multi_genome)))

    def test_one_part_when_budget_large(self, multi_genome):
        mp = build_multipart_index(multi_genome, k=13, w=7, part_bases=10**9)
        assert len(mp.parts) == 1

    def test_names_lengths_global(self, multi_genome, multi, mono):
        assert multi.names == mono.names
        assert (multi.lengths == mono.lengths).all()

    def test_total_minimizers_match(self, multi, mono):
        assert multi.n_minimizers == mono.n_minimizers

    def test_peak_part_smaller_than_total(self, multi):
        assert multi.peak_part_bytes < multi.nbytes

    def test_bad_part_size(self, multi_genome):
        with pytest.raises(IndexFormatError):
            build_multipart_index(multi_genome, part_bases=0)

    def test_mismatched_parts_rejected(self, multi_genome):
        a = build_index(multi_genome.chromosomes[:1], k=13, w=7)
        b = build_index(multi_genome.chromosomes[1:], k=15, w=7)
        with pytest.raises(IndexFormatError):
            MultipartIndex(parts=[a, b], rid_offsets=[0, 1])

    def test_empty_rejected(self):
        with pytest.raises(IndexFormatError):
            MultipartIndex(parts=[], rid_offsets=[])


class TestQuery:
    def _read(self, genome, rid, start, length, seed=0):
        codes = genome.chromosomes[rid].codes[start : start + length]
        read, _ = apply_errors(codes, PACBIO_CLR, seed=seed)
        return read

    def test_anchors_identical_to_monolithic(self, multi_genome, mono, multi):
        for rid in range(3):
            read = self._read(multi_genome, rid, 2000, 1500, seed=rid)
            a = collect_anchors(read, mono, as_arrays=True)
            b = collect_anchors(read, multi, as_arrays=True)
            for x, y in zip(a, b):
                assert (x == y).all()

    def test_global_rids(self, multi_genome, multi):
        read = self._read(multi_genome, 2, 1000, 1200, seed=9)
        rid, tpos, qpos, strand = collect_anchors(read, multi, as_arrays=True)
        assert rid.size > 0
        assert (rid == 2).mean() > 0.8

    def test_aligner_over_multipart(self, multi_genome, multi):
        from repro.core.aligner import Aligner
        from repro.core.presets import get_preset

        preset = get_preset("test").with_overrides(k=13, w=7)
        al = Aligner(multi_genome, preset=preset, index=multi)
        codes = multi_genome.chromosomes[1].codes[3000:4500]
        alns = al.map_read(SeqRecord("m", codes.copy()))
        assert alns
        assert alns[0].tname == multi_genome.names[1]
        assert alns[0].tstart == 3000
