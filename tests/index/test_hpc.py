"""Tests for homopolymer-compressed seeding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.hpc import hpc_compress, run_end_positions
from repro.index.index import build_index
from repro.index.minimizer import extract_minimizers
from repro.index.store import load_index, save_index
from repro.seq.alphabet import encode, random_codes, revcomp_codes

dna = st.text(alphabet="ACGT", min_size=0, max_size=150)


class TestCompress:
    def test_basic(self):
        comp, pos = hpc_compress(encode("AAACCGTTT"))
        assert (comp == encode("ACGT")).all()
        assert pos.tolist() == [0, 3, 5, 6]

    def test_no_runs_identity(self):
        codes = encode("ACGTACGT")
        comp, pos = hpc_compress(codes)
        assert (comp == codes).all()
        assert (pos == np.arange(8)).all()

    def test_empty(self):
        comp, pos = hpc_compress(np.empty(0, dtype=np.uint8))
        assert comp.size == 0 and pos.size == 0

    @given(dna)
    @settings(max_examples=50, deadline=None)
    def test_no_adjacent_duplicates(self, s):
        comp, _ = hpc_compress(encode(s))
        if comp.size > 1:
            assert (comp[1:] != comp[:-1]).all()

    @given(dna)
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, s):
        comp, _ = hpc_compress(encode(s))
        comp2, _ = hpc_compress(comp)
        assert (comp == comp2).all()

    @given(dna)
    @settings(max_examples=50, deadline=None)
    def test_commutes_with_revcomp(self, s):
        codes = encode(s)
        a, _ = hpc_compress(revcomp_codes(codes))
        b = revcomp_codes(hpc_compress(codes)[0])
        assert (a == b).all()

    def test_run_end_positions(self):
        codes = encode("AAACCGTTT")
        comp, pos = hpc_compress(codes)
        ends = run_end_positions(codes, pos)
        assert ends.tolist() == [2, 4, 5, 8]


class TestHpcMinimizers:
    def test_indel_in_homopolymer_preserves_minimizers(self):
        """The raison d'etre: run-length indels do not break HPC seeds."""
        base = "ACGTTTGACGTCAGATTTCACGGATCGAACTGACGTACGTTGCA" * 3
        stretched = base.replace("TTT", "TTTTT")
        v1 = extract_minimizers(encode(base), k=7, w=4, as_arrays=True, hpc=True)[0]
        v2 = extract_minimizers(encode(stretched), k=7, w=4, as_arrays=True, hpc=True)[0]
        assert set(v1.tolist()) == set(v2.tolist())
        # Without HPC, the stretch changes the seed set.
        u1 = extract_minimizers(encode(base), k=7, w=4, as_arrays=True)[0]
        u2 = extract_minimizers(encode(stretched), k=7, w=4, as_arrays=True)[0]
        assert set(u1.tolist()) != set(u2.tolist())

    def test_positions_in_original_coordinates(self):
        codes = encode("AAAA" + "ACGTCAGTTAGC" * 5)
        _, pos, _ = extract_minimizers(codes, k=5, w=3, as_arrays=True, hpc=True)
        assert pos.max() < codes.size
        assert pos.min() >= 0
        assert (np.diff(pos) > 0).all()  # still sorted

    def test_index_hpc_roundtrip(self, small_genome, tmp_path):
        idx = build_index(small_genome, k=15, w=8, hpc=True)
        assert idx.hpc
        path = tmp_path / "hpc.mmi"
        save_index(idx, path)
        back = load_index(path)
        assert back.hpc

    def test_hpc_index_smaller(self, small_genome):
        plain = build_index(small_genome, k=15, w=8)
        hpc = build_index(small_genome, k=15, w=8, hpc=True)
        # Compression shortens the sequence, so fewer minimizers.
        assert hpc.n_minimizers <= plain.n_minimizers


class TestHpcAligner:
    def test_map_pb_hpc_preset(self, small_genome):
        from repro.core.aligner import Aligner
        from repro.seq.records import SeqRecord

        al = Aligner(small_genome, preset="map-pb-hpc")
        assert al.index.hpc
        codes = small_genome.fetch("chr1", 4000, 6000)
        alns = al.map_read(SeqRecord("x", codes.copy()))
        assert alns
        a = alns[0]
        assert a.tstart == 4000 and a.tend == 6000
        assert a.cigar.query_span == a.qend - a.qstart

    def test_mismatched_hpc_index_raises(self, small_genome):
        from repro.core.aligner import Aligner
        from repro.core.presets import get_preset
        from repro.errors import AlignmentError

        preset = get_preset("map-pb-hpc")
        plain = build_index(small_genome, k=preset.k, w=preset.w, hpc=False)
        with pytest.raises(AlignmentError):
            Aligner(small_genome, preset="map-pb-hpc", index=plain)
