"""Tests for the minimizer index and its binary serialization."""

import numpy as np
import pytest

from repro.errors import IndexFormatError
from repro.index.index import MinimizerIndex, build_index
from repro.index.minimizer import extract_minimizers
from repro.index.store import index_file_size, load_index, save_index
from repro.seq.genome import Genome
from repro.seq.records import SeqRecord


@pytest.fixture(scope="module")
def index(multi_genome):
    return build_index(multi_genome, k=13, w=7)


class TestBuild:
    def test_keys_sorted_unique(self, index):
        assert (np.diff(index.keys.astype(np.int64)) > 0).all() or index.n_keys <= 1
        assert index.starts.size == index.n_keys + 1
        assert index.starts[-1] == index.n_minimizers

    def test_all_minimizers_present(self, multi_genome, index):
        total = 0
        for rec in multi_genome:
            vals = extract_minimizers(rec.codes, k=13, w=7, as_arrays=True)[0]
            total += vals.size
        assert index.n_minimizers == total

    def test_lookup_finds_source_position(self, multi_genome, index):
        rec = multi_genome.chromosomes[1]
        values, positions, strands = extract_minimizers(
            rec.codes, k=13, w=7, as_arrays=True
        )
        # Check the first dozen minimizers are retrievable at their position.
        found = 0
        for v, p in zip(values[:12], positions[:12]):
            rid, pos, _ = index.lookup(int(v))
            if ((rid == 1) & (pos == p)).any():
                found += 1
        # Occurrence filtering may drop repetitive ones, but most survive.
        assert found >= 8

    def test_lookup_missing_value(self, index):
        rid, pos, strand = index.lookup(0xDEADBEEF)
        assert rid.size == 0

    def test_empty_genome_raises(self):
        with pytest.raises(IndexFormatError):
            build_index(Genome([]))

    def test_names_and_lengths(self, multi_genome, index):
        assert index.names == multi_genome.names
        assert (index.lengths == [len(c) for c in multi_genome]).all()

    def test_stats(self, index):
        s = index.stats()
        assert s["n_sequences"] == 3
        assert s["n_minimizers"] > 0
        assert s["bytes"] == index.nbytes


class TestOccurrenceFilter:
    def test_cutoff_monotone(self, index):
        loose = index.occurrence_cutoff(1e-1)
        tight = index.occurrence_cutoff(1e-6)
        assert tight >= loose >= 1

    def test_bad_frac_raises(self, index):
        with pytest.raises(IndexFormatError):
            index.occurrence_cutoff(1.5)

    def test_max_occ_suppresses(self, multi_genome):
        idx = build_index(multi_genome, k=13, w=7, occ_filter_frac=None)
        counts = np.diff(idx.starts)
        heavy = int(np.argmax(counts))
        value = int(idx.keys[heavy])
        assert idx.lookup(value)[0].size == counts[heavy]
        idx.max_occ = int(counts[heavy]) - 1
        assert idx.lookup(value)[0].size == 0


class TestLookupMany:
    def test_matches_single_lookups(self, index):
        values = index.keys[:: max(1, index.n_keys // 50)][:40]
        qidx, rid, pos, strand = index.lookup_many(values)
        for qi in range(values.size):
            mask = qidx == qi
            r1, p1, s1 = index.lookup(int(values[qi]))
            assert (rid[mask] == r1).all()
            assert (pos[mask] == p1).all()

    def test_missing_values_yield_nothing(self, index):
        qidx, rid, pos, strand = index.lookup_many(
            np.array([1, 2, 3], dtype=np.uint64)
        )
        # These hash values are essentially never real minimizers.
        assert qidx.size == rid.size == pos.size

    def test_empty_input(self, index):
        qidx, rid, pos, strand = index.lookup_many(np.empty(0, dtype=np.uint64))
        assert qidx.size == 0


class TestStore:
    def test_roundtrip_buffered(self, index, tmp_path):
        path = tmp_path / "ref.mmi"
        written = save_index(index, path)
        assert written == index_file_size(path)
        back = load_index(path, mode="buffered")
        assert back.k == index.k and back.w == index.w
        assert back.max_occ == index.max_occ
        assert back.names == index.names
        assert (back.keys == index.keys).all()
        assert (back.hit_pos == index.hit_pos).all()

    def test_roundtrip_mmap(self, index, tmp_path):
        path = tmp_path / "ref.mmi"
        save_index(index, path)
        back = load_index(path, mode="mmap")
        assert isinstance(back.keys, np.memmap)
        assert (np.asarray(back.keys) == index.keys).all()
        # mmap-backed index must answer queries identically.
        v = int(index.keys[index.n_keys // 2])
        assert (back.lookup(v)[1] == index.lookup(v)[1]).all()

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "junk.mmi"
        path.write_bytes(b"NOTANIDX" + b"\0" * 100)
        with pytest.raises(IndexFormatError):
            load_index(path)

    def test_bad_mode_raises(self, index, tmp_path):
        path = tmp_path / "ref.mmi"
        save_index(index, path)
        with pytest.raises(IndexFormatError):
            load_index(path, mode="turbo")

    @pytest.mark.parametrize("mode", ["buffered", "mmap"])
    def test_truncated_file_raises(self, index, tmp_path, mode):
        """Descriptors are validated against the real file size upfront."""
        path = tmp_path / "ref.mmi"
        total = save_index(index, path)
        with open(path, "rb+") as f:
            f.truncate(total - 64)
        with pytest.raises(IndexFormatError, match="truncated"):
            load_index(path, mode=mode)

    @pytest.mark.parametrize("mode", ["buffered", "mmap"])
    def test_corrupt_descriptor_raises(self, index, tmp_path, mode):
        """A descriptor whose nbytes disagrees with dtype x shape is rejected."""
        import json

        path = tmp_path / "ref.mmi"
        save_index(index, path)
        raw = bytearray(path.read_bytes())
        hlen = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[16 : 16 + hlen])
        header["arrays"][0]["nbytes"] += 8
        new_header = json.dumps(header).encode()
        # Only safe to rewrite in place if the length is preserved;
        # pad by shrinking a name-free field is fragile, so re-save.
        blob = raw[:8] + len(new_header).to_bytes(8, "little") + new_header
        data_start = (len(blob) + 63) // 64 * 64
        path.write_bytes(bytes(blob) + b"\0" * (data_start - len(blob)) + b"\0" * 256)
        with pytest.raises(IndexFormatError):
            load_index(path, mode=mode)

    @pytest.mark.parametrize("mode", ["buffered", "mmap"])
    def test_descriptor_past_eof_raises(self, index, tmp_path, mode):
        import json

        path = tmp_path / "ref.mmi"
        save_index(index, path)
        raw = path.read_bytes()
        hlen = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[16 : 16 + hlen])
        # Claim the last array sits far past the end of the file.
        header["arrays"][-1]["offset"] = 1 << 40
        new_header = json.dumps(header).encode()
        blob = raw[:8] + len(new_header).to_bytes(8, "little") + new_header
        path.write_bytes(blob + raw[16 + hlen :])
        with pytest.raises(IndexFormatError, match="truncated"):
            load_index(path, mode=mode)

    def test_alignment_of_data(self, index, tmp_path):
        """All array offsets are 64-byte aligned (mmap-friendliness)."""
        import json

        path = tmp_path / "ref.mmi"
        save_index(index, path)
        raw = path.read_bytes()
        hlen = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[16 : 16 + hlen])
        for desc in header["arrays"]:
            assert desc["offset"] % 64 == 0


def _flip_data_byte(path):
    """Flip one byte inside the last array's data region (not the header)."""
    import json

    raw = bytearray(path.read_bytes())
    hlen = int.from_bytes(raw[8:16], "little")
    header = json.loads(raw[16 : 16 + hlen])
    data_start = (16 + hlen + 63) // 64 * 64
    desc = header["arrays"][-1]
    pos = data_start + desc["offset"] + desc["nbytes"] // 2
    raw[pos] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestChecksum:
    def test_header_has_crc32(self, index, tmp_path):
        import json

        path = tmp_path / "ref.mmi"
        save_index(index, path)
        raw = path.read_bytes()
        hlen = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[16 : 16 + hlen])
        assert isinstance(header["crc32"], int)

    def test_buffered_detects_flipped_byte(self, index, tmp_path):
        path = tmp_path / "ref.mmi"
        save_index(index, path)
        _flip_data_byte(path)
        with pytest.raises(IndexFormatError, match="checksum"):
            load_index(path, mode="buffered")

    def test_mmap_default_stays_lazy(self, index, tmp_path):
        """mmap skips verification by default to preserve demand paging."""
        path = tmp_path / "ref.mmi"
        save_index(index, path)
        _flip_data_byte(path)
        back = load_index(path, mode="mmap")  # no raise: lazy by design
        assert back.k == index.k

    def test_mmap_verify_true_detects(self, index, tmp_path):
        path = tmp_path / "ref.mmi"
        save_index(index, path)
        _flip_data_byte(path)
        with pytest.raises(IndexFormatError, match="checksum"):
            load_index(path, mode="mmap", verify=True)

    def test_verify_false_skips_check(self, index, tmp_path):
        path = tmp_path / "ref.mmi"
        save_index(index, path)
        _flip_data_byte(path)
        back = load_index(path, mode="buffered", verify=False)
        assert back.k == index.k

    def test_legacy_file_without_crc_loads(self, index, tmp_path):
        """Pre-checksum files (no crc32 header key) still load cleanly."""
        import json

        path = tmp_path / "ref.mmi"
        save_index(index, path)
        raw = path.read_bytes()
        hlen = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[16 : 16 + hlen])
        old_data_start = (16 + hlen + 63) // 64 * 64
        del header["crc32"]
        new_header = json.dumps(header).encode()
        blob = raw[:8] + len(new_header).to_bytes(8, "little") + new_header
        data_start = (len(blob) + 63) // 64 * 64
        # Re-pad so the data section keeps its descriptor offsets.
        path.write_bytes(
            blob + b"\0" * (data_start - len(blob)) + raw[old_data_start:]
        )
        back = load_index(path, mode="buffered")
        assert (back.keys == index.keys).all()

    def test_deprecated_alias_removed(self):
        """The PR-3 ``IndexError_`` shim is gone — only the real name."""
        import repro.errors as errs

        with pytest.raises(AttributeError):
            errs.IndexError_
        assert errs.IndexFormatError is IndexFormatError
