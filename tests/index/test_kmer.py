"""Tests for k-mer packing, reverse complement, and hashing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SequenceError
from repro.index.kmer import MAX_K, hash64, pack_kmers, rc_packed, unpack_kmer
from repro.seq.alphabet import encode, revcomp


dna = st.text(alphabet="ACGT", min_size=1, max_size=80)


class TestPack:
    def test_single_kmer_value(self):
        kmers, valid = pack_kmers(encode("ACGT"), 4)
        # A=00 C=01 G=10 T=11 -> 0b00011011 = 27
        assert kmers[0] == 27 and valid[0]

    def test_sliding(self):
        kmers, _ = pack_kmers(encode("ACGTA"), 4)
        assert kmers.size == 2
        assert unpack_kmer(kmers[1], 4) == "CGTA"

    def test_ambiguous_masks_window(self):
        _, valid = pack_kmers(encode("ACGNACG"), 3)
        # windows covering index 3 ('N') are invalid: windows 1,2,3
        assert valid.tolist() == [True, False, False, False, True]

    def test_short_input_empty(self):
        kmers, valid = pack_kmers(encode("AC"), 5)
        assert kmers.size == 0 and valid.size == 0

    @pytest.mark.parametrize("k", [0, MAX_K + 1])
    def test_bad_k_raises(self, k):
        with pytest.raises(SequenceError):
            pack_kmers(encode("ACGT"), k)

    @given(dna, st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_unpack_roundtrip(self, s, k):
        if len(s) < k:
            return
        kmers, _ = pack_kmers(encode(s), k)
        for i, km in enumerate(kmers):
            assert unpack_kmer(int(km), k) == s[i : i + k]


class TestRcPacked:
    @given(dna, st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_matches_string_revcomp(self, s, k):
        if len(s) < k:
            return
        kmers, _ = pack_kmers(encode(s), k)
        rcs = rc_packed(kmers, k)
        for i in range(kmers.size):
            assert unpack_kmer(int(rcs[i]), k) == revcomp(s[i : i + k])

    @given(dna, st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_involution(self, s, k):
        if len(s) < k:
            return
        kmers, _ = pack_kmers(encode(s), k)
        assert (rc_packed(rc_packed(kmers, k), k) == kmers).all()


class TestHash64:
    def test_deterministic(self):
        keys = np.arange(100, dtype=np.uint64)
        assert (hash64(keys, 30) == hash64(keys, 30)).all()

    def test_stays_in_mask(self):
        keys = np.arange(1000, dtype=np.uint64)
        assert hash64(keys, 30).max() < (1 << 30)

    def test_injective_on_small_domain(self):
        # The hash is invertible, so distinct keys must map to distinct values.
        keys = np.arange(200_000, dtype=np.uint64)
        out = hash64(keys, 30)
        assert np.unique(out).size == keys.size

    def test_bad_bits_raises(self):
        with pytest.raises(SequenceError):
            hash64(np.zeros(1, np.uint64), 0)

    def test_full_width(self):
        out = hash64(np.array([2**63], dtype=np.uint64), 64)
        assert out.dtype == np.uint64
