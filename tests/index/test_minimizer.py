"""Tests for minimizer extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SequenceError
from repro.index.kmer import hash64, pack_kmers, rc_packed
from repro.index.minimizer import extract_minimizers
from repro.seq.alphabet import encode, random_codes, revcomp_codes

dna = st.text(alphabet="ACGT", min_size=20, max_size=300)


def brute_force_minimizers(codes, k, w):
    """Reference implementation: enumerate every window explicitly."""
    fwd, valid = pack_kmers(codes, k)
    if fwd.size == 0:
        return set()
    rev = rc_packed(fwd, k)
    canonical = np.minimum(fwd, rev)
    sym = fwd == rev
    h = hash64(canonical, 2 * k)
    big = np.uint64(0xFFFFFFFFFFFFFFFF)
    h = np.where(valid & ~sym, h, big)
    n = h.size
    out = set()
    ww = min(w, n)
    for j in range(max(1, n - ww + 1)):
        window = h[j : j + ww]
        m = window.min()
        if m == big:
            continue
        for d in range(ww):
            if window[d] == m:
                out.add((int(h[j + d]), j + d + k - 1))
    return out


class TestExtract:
    @given(dna, st.integers(3, 9), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce(self, s, k, w):
        codes = encode(s)
        got = extract_minimizers(codes, k=k, w=w)
        expected = brute_force_minimizers(codes, k, w)
        assert {(m.value, m.pos) for m in got} == expected

    def test_empty_for_short_input(self):
        assert extract_minimizers(encode("AC"), k=5, w=3) == []

    def test_bad_window_raises(self):
        with pytest.raises(SequenceError):
            extract_minimizers(encode("ACGTACGT"), k=3, w=0)

    def test_density_roughly_2_over_w1(self):
        # Expected minimizer density is ~2/(w+1) for random sequences.
        codes = random_codes(200_000, seed=0)
        k, w = 15, 10
        mins = extract_minimizers(codes, k=k, w=w, as_arrays=True)
        density = mins[1].size / codes.size
        assert abs(density - 2 / (w + 1)) < 0.03

    def test_positions_are_kmer_ends(self):
        codes = random_codes(1000, seed=1)
        values, positions, strands = extract_minimizers(codes, k=11, w=5, as_arrays=True)
        assert positions.min() >= 10
        assert positions.max() <= 999

    def test_strand_symmetry(self):
        """Minimizer values are identical on the reverse complement strand."""
        codes = random_codes(5000, seed=2)
        fwd = extract_minimizers(codes, k=13, w=7, as_arrays=True)
        rc = extract_minimizers(revcomp_codes(codes), k=13, w=7, as_arrays=True)
        assert set(fwd[0].tolist()) == set(rc[0].tolist())

    def test_ambiguous_bases_skipped(self):
        codes = encode("ACGT" * 10 + "N" * 20 + "TGCA" * 10)
        values, positions, _ = extract_minimizers(codes, k=5, w=3, as_arrays=True)
        # No minimizer's k-mer may overlap the N block (positions 40..59).
        for p in positions:
            assert p < 40 or p - 4 >= 60

    def test_as_arrays_consistent_with_objects(self):
        codes = random_codes(2000, seed=3)
        objs = extract_minimizers(codes, k=9, w=4)
        arrs = extract_minimizers(codes, k=9, w=4, as_arrays=True)
        assert [(m.value, m.pos, m.strand) for m in objs] == list(
            zip(arrs[0].tolist(), arrs[1].tolist(), arrs[2].tolist())
        )
