"""The asyncio HTTP front-end: one resident session, many requests.

:class:`MappingServer` binds one socket (``port=0`` asks the OS, as
everywhere else in this codebase) and serves two surfaces on it:

``POST /map``
    A JSON :class:`~repro.api.MapRequest` body; the response is the
    matching :class:`~repro.api.MapResult` document (HTTP 200 on
    success, 400 for malformed/poisoned requests, 429 when shed by
    admission, 503 while draining). The connection model is
    deliberately boring — ``Connection: close``, one request per
    connection — because request cost is dominated by mapping, not
    connection setup, and it keeps the stdlib-only parser tiny.

``GET /metrics`` / ``/status`` / ``/events`` / ``/healthz``
    The exact observability surface the per-run status daemon serves
    (:func:`repro.obs.httpd.obs_route` — shared router, same bytes), so
    a Prometheus scrape job pointed at the serve port just works.

Request flow: the event loop *only* parses HTTP and awaits ticket
futures; all mapping happens on the batcher's worker threads. Graceful
drain (SIGTERM/SIGINT): stop admitting (new requests see 503), let the
batcher flush queued work for up to ``drain_timeout_s``, fail whatever
is left, then close the socket.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Dict, Optional, Tuple

from ..api import MappingSession, MapRequest, ServeConfig
from ..errors import ParseError, ServeError
from ..obs.counters import COUNTERS
from ..obs.events import EVENTS
from ..obs.export import RunSampler
from ..obs.httpd import json_reply, obs_route, text_reply
from ..obs.logs import get_logger
from ..obs.telemetry import Telemetry
from ..obs.tracing import TRACER, TraceStore
from .admission import AdmissionError, AdmissionQueue, DrainingError
from .batcher import AdaptiveBatcher

__all__ = ["MappingServer", "ServerThread"]

#: Refuse request bodies beyond this many bytes (64 MiB): a full
#: ``max_reads_per_request`` of long reads fits comfortably below it.
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: delta-seconds ``Retry-After`` sent with every 429/503 so
#: well-behaved clients (:class:`repro.serve.client.RetryPolicy`)
#: back off instead of hammering a shedding server.
RETRY_AFTER_S = 1


class MappingServer:
    """The ``repro serve`` daemon over one :class:`MappingSession`."""

    def __init__(
        self,
        session: MappingSession,
        config: Optional[ServeConfig] = None,
        telemetry: Optional[Telemetry] = None,
        request_journal=None,
    ) -> None:
        self.session = session
        self.config = (config or ServeConfig()).validated()
        self.telemetry = telemetry or Telemetry()
        #: optional :class:`repro.serve.journal.RequestJournal`;
        #: admitted requests are journaled durably and replayed by the
        #: next start() if this process dies before answering them.
        self.request_journal = request_journal
        self.sampler = RunSampler(self.telemetry)
        #: tail-sampling trace store (None unless ``config.tracing``).
        self.traces: Optional[TraceStore] = (
            TraceStore(self.config.tracing)
            if self.config.tracing is not None and self.config.tracing.enabled
            else None
        )
        self.queue = AdmissionQueue(self.config, gauges=self.telemetry.gauges)
        self.batcher = AdaptiveBatcher(
            session, self.queue, self.config, gauges=self.telemetry.gauges
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False
        self._log = get_logger("serve")

    # -- lifecycle ------------------------------------------------------ #

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            return 0
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return (
            f"http://{self.config.host}:{self.port}" if self._server else ""
        )

    async def start(self) -> "MappingServer":
        if self._server is not None:
            return self
        if self.request_journal is not None:
            # Crash recovery before any new traffic: answer what the
            # previous process left admitted-but-unanswered.
            from .journal import replay_pending

            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, replay_pending, self.request_journal, self.session
            )
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        if self.traces is not None:
            TRACER.enable()
        self.batcher.start()
        EVENTS.emit("serve.start", url=self.url, run_id=self.telemetry.run_id)
        self._log.info("serving on %s", self.url)
        return self

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (call from the loop thread)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.shutdown())
                )
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: 503 new work, flush queued, close the socket."""
        if self._server is None or self._draining:
            return
        self._draining = True
        EVENTS.emit("serve.drain", queued=self.queue.depth)
        self.queue.begin_drain()
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None, self.queue.wait_empty, self.config.drain_timeout_s
        )
        self.queue.stop()
        failed = 0
        if not drained:
            failed = self.queue.fail_pending(
                DrainingError("server shut down before this request ran")
            )
        await loop.run_in_executor(None, self.batcher.join, 5.0)
        if self.traces is not None:
            TRACER.disable()
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        EVENTS.emit("serve.stop", drained=bool(drained), failed=failed)
        self._log.info(
            "serve stopped (drained=%s, failed=%d)", drained, failed
        )
        if self._stopped is not None:
            self._stopped.set()

    # -- HTTP ----------------------------------------------------------- #

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            reply = await self._route(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # pragma: no cover - parser last resort
            self._log.exception("request handling failed")
            reply = json_reply(500, {"error": str(exc)})
        code, ctype, body = reply
        extra = (
            f"Retry-After: {RETRY_AFTER_S}\r\n"
            if code in (429, 503)
            else ""
        )
        head = (
            f"HTTP/1.1 {code} {_REASONS.get(code, 'Unknown')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    async def _route(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return text_reply(400, "empty request\n")
        parts = request_line.split()
        if len(parts) < 2:
            return text_reply(400, "malformed request line\n")
        method, target = parts[0].upper(), parts[1]
        path, _, query = target.partition("?")
        headers = await self._read_headers(reader)

        if method == "GET":
            reply = obs_route(self.sampler, path, query, traces=self.traces)
            return reply if reply is not None else text_reply(
                404, "not found\n"
            )
        if method != "POST":
            return text_reply(405, "method not allowed\n")
        if path.rstrip("/") != "/map":
            return text_reply(404, "not found\n")

        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return text_reply(400, "bad Content-Length\n")
        if length <= 0:
            return text_reply(400, "request body required\n")
        if length > MAX_BODY_BYTES:
            return text_reply(413, "request body too large\n")
        body = await reader.readexactly(length)
        return await self._handle_map(body)

    @staticmethod
    async def _read_headers(
        reader: asyncio.StreamReader,
    ) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                return headers
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

    async def _handle_map(self, body: bytes) -> Tuple[int, str, bytes]:
        COUNTERS.inc("serve.requests")
        try:
            doc = json.loads(body)
        except ValueError as exc:
            COUNTERS.inc("serve.errors")
            return json_reply(400, {"error": f"invalid JSON: {exc}"})
        try:
            request = MapRequest.from_json(doc)
        except ParseError as exc:
            COUNTERS.inc("serve.errors")
            return json_reply(400, {"error": str(exc)})
        root = self._trace_root(request)
        try:
            ticket = self.queue.submit(
                request, trace=root.ctx if root is not None else None
            )
        except AdmissionError as exc:
            COUNTERS.inc("serve.shed")
            payload = {
                "error": str(exc),
                "request_id": request.request_id,
                "shed": True,
            }
            if root is not None:
                payload["trace_id"] = root.trace_id
                self.traces.finish(root, status="shed")
            return json_reply(exc.http_status, payload)
        if self.request_journal is not None:
            self.request_journal.admitted(request)
        try:
            result = await asyncio.wrap_future(ticket.future)
        except ServeError as exc:
            status = getattr(exc, "http_status", 503)
            if self.request_journal is not None:
                # The client got an answer (an error one): not replayed.
                self.request_journal.done(request.request_id, f"http:{status}")
            payload = {"error": str(exc), "request_id": request.request_id}
            if root is not None:
                payload["trace_id"] = root.trace_id
                self.traces.finish(
                    root, status="deadline" if status == 504 else "error"
                )
            return json_reply(status, payload)
        if self.request_journal is not None:
            self.request_journal.done(request.request_id, result.status)
        if root is not None:
            result = result.replace(trace_id=root.trace_id)
            self.traces.finish(
                root, status="ok" if result.ok else "error"
            )
        return json_reply(200 if result.ok else 400, result.to_json())

    def _trace_root(self, request: MapRequest):
        """Open the request's root span (None when tracing is off).

        A client-supplied :class:`~repro.obs.tracing.TraceContext`
        joins the caller's trace — its trace_id and head-sampling
        decision are honored; otherwise a fresh trace starts with this
        store's head-sample coin flip.
        """
        if self.traces is None:
            return None
        ctx = request.trace
        return TRACER.start_span(
            "serve.request",
            trace_id=ctx.trace_id if ctx is not None else None,
            parent_id=ctx.span_id if ctx is not None else None,
            sampled=(
                ctx.sampled if ctx is not None
                else self.traces.head_sampled()
            ),
            attrs={
                "request_id": request.request_id,
                "tenant": request.tenant,
                "reads": request.n_reads,
            },
        )


class ServerThread:
    """A :class:`MappingServer` on a private loop in a daemon thread.

    The in-process deployment shape used by tests and benchmarks (and
    handy for notebooks): ``start()`` returns once the socket is bound,
    ``stop()`` runs the same graceful drain the SIGTERM path runs.
    """

    def __init__(
        self,
        session: MappingSession,
        config: Optional[ServeConfig] = None,
        telemetry: Optional[Telemetry] = None,
        request_journal=None,
    ) -> None:
        self.server = MappingServer(
            session, config, telemetry, request_journal=request_journal
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url

    def start(self, timeout_s: float = 10.0) -> "ServerThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServeError("serve thread failed to bind in time")
        if self._error is not None:
            raise ServeError(f"serve thread failed: {self._error}")
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.serve_forever()

        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def stop(self, timeout_s: float = 30.0) -> None:
        thread, self._thread = self._thread, None
        if thread is None or self._loop is None:
            return
        fut = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        try:
            fut.result(timeout_s)
        finally:
            thread.join(timeout_s)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
