"""Journal-backed request replay: crash recovery for ``manymap serve``.

A serve process that dies mid-flight (OOM, node loss, ``kill -9``)
used to take every admitted-but-unanswered request with it — the
client sees a dead connection and has no idea whether its work ran.
With ``manymap serve --journal DIR`` every admitted request is
journaled durably *before* it is batched, and marked done once its
HTTP response is sent; on the next start the server replays the
admitted-but-not-done remainder through the resident session and
parks the results in ``DIR/replayed.jsonl`` for the operator (the
original connections are gone — mapping is deterministic, so a client
that retried got identical bytes anyway).

Record framing reuses the run journal's CRC-per-line JSONL
(:class:`repro.runtime.journal.JournalFile`), so a torn tail from the
crash is detected and ignored, not replayed:

``request.admitted``
    fsynced before the request enters the batcher; carries the full
    wire-form request (it must survive the process).
``request.done``
    appended (unfsynced — losing one merely replays a deterministic,
    idempotent request) when the response goes out, any status: a
    request the client got an *answer* for, even a 4xx/5xx, is not
    replayed.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

from ..api import MapRequest, MappingSession
from ..obs.counters import COUNTERS
from ..obs.events import EVENTS
from ..obs.logs import get_logger
from ..runtime.journal import JournalFile

__all__ = ["RequestJournal", "replay_pending", "REQUESTS_NAME", "REPLAYED_NAME"]

REQUESTS_NAME = "requests.jsonl"
REPLAYED_NAME = "replayed.jsonl"


class RequestJournal:
    """Durable admitted/done lifecycle records for one serve deployment.

    Thread-safe (the asyncio handler and batcher workers both touch
    it). Append-only across restarts: one file accumulates the
    deployment's whole request history, and :meth:`pending` folds it
    into the set a restart must replay.
    """

    def __init__(self, journal_dir: str) -> None:
        self.dir = os.fspath(journal_dir)
        os.makedirs(self.dir, exist_ok=True)
        self.path = os.path.join(self.dir, REQUESTS_NAME)
        self.replayed_path = os.path.join(self.dir, REPLAYED_NAME)
        self._lock = threading.Lock()
        self._journal = JournalFile(self.path)

    def admitted(self, request: MapRequest) -> None:
        """Record (durably) that ``request`` entered the batcher."""
        with self._lock:
            self._journal.append(
                {
                    "t": "request.admitted",
                    "ts": time.time(),
                    "request_id": request.request_id,
                    "tenant": request.tenant,
                    "request": request.to_json(),
                },
                sync=True,
            )

    def done(self, request_id: str, status: str) -> None:
        """Record that ``request_id`` was answered (any status)."""
        with self._lock:
            self._journal.append(
                {
                    "t": "request.done",
                    "ts": time.time(),
                    "request_id": request_id,
                    "status": status,
                }
            )

    def pending(self) -> List[Dict]:
        """Admitted-but-unanswered request documents, in admission order."""
        records, _ = JournalFile.replay(self.path)
        admitted: Dict[str, Dict] = {}
        order: List[str] = []
        for rec in records:
            rid = rec.get("request_id")
            if not rid:
                continue
            if rec.get("t") == "request.admitted":
                if rid not in admitted:
                    order.append(rid)
                admitted[rid] = rec.get("request") or {}
            elif rec.get("t") == "request.done":
                if rid in admitted:
                    order.remove(rid)
                    del admitted[rid]
        return [admitted[rid] for rid in order]

    def close(self) -> None:
        self._journal.close()


def replay_pending(
    journal: RequestJournal, session: MappingSession
) -> int:
    """Map every pending request; results land in ``replayed.jsonl``.

    Called before the server starts admitting new traffic. Each
    replayed request is marked done (status prefixed ``replayed:``) so
    a crash *during* replay resumes where it left off, and its full
    ``MapResult`` document is appended to ``DIR/replayed.jsonl``. A
    request document that no longer parses is marked done as
    ``replayed:unparseable`` rather than wedging the restart loop.
    Returns the number of requests replayed.
    """
    import json

    log = get_logger("serve.journal")
    pending = journal.pending()
    if not pending:
        return 0
    n = 0
    with open(journal.replayed_path, "a", encoding="utf-8") as out:
        for doc in pending:
            try:
                request = MapRequest.from_json(doc)
            except Exception as exc:
                rid = str(doc.get("request_id", "?")) if isinstance(
                    doc, dict
                ) else "?"
                log.warning("replay: dropping unparseable %s: %s", rid, exc)
                journal.done(rid, "replayed:unparseable")
                continue
            result = session.map_request(request)
            out.write(json.dumps(result.to_json(), sort_keys=True) + "\n")
            out.flush()
            journal.done(request.request_id, f"replayed:{result.status}")
            COUNTERS.inc("serve.replayed")
            n += 1
        os.fsync(out.fileno())
    EVENTS.emit("serve.replay", replayed=n)
    log.info("replayed %d pending request(s) from %s", n, journal.path)
    return n
