"""The adaptive batcher: coalesced requests → pooled DP batches.

The paper's throughput story (cross-read batched DP, PR 6) only pays
off in a serving shape if concurrent small requests actually share
wavefront batches. The :class:`AdaptiveBatcher` worker threads pull
coalesced ticket batches off the :class:`~repro.serve.admission.
AdmissionQueue` and execute each through one
:meth:`MappingSession.map_batch <repro.api.MappingSession.map_batch>`
call, so the kernel-dispatch layer sees every coalesced request's
reads as one DP bucket population — dispatch batch count < request
count is the measurable win (``serve.batches`` vs ``serve.admitted``).

:class:`BatchController` governs *how much* to coalesce: with
``adaptive_batching`` the live read target starts at a quarter of
``max_batch_reads`` and multiplicatively grows while observed p99
request latency (over the last ``latency_window`` requests) sits
comfortably under ``latency_target_ms``, shrinking as soon as p99
crosses it — the grow-gently/shrink-fast rule GPU batch schedulers
use, bounded to ``[min_batch_reads, max_batch_reads]``.

Fault isolation: a pooled batch runs with no fault policy, so a poison
read raises out of the pooled call. The batch then falls back to
per-request :meth:`MappingSession.map_request
<repro.api.MappingSession.map_request>` reruns — mapping is
deterministic, so only the poisoned request resolves to an error
result (HTTP 400) while its batch neighbors still succeed.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from ..api import MappingSession, MapResult, ServeConfig
from ..obs.counters import COUNTERS
from ..obs.events import EVENTS
from ..obs.hist import HISTOGRAMS
from ..obs.logs import get_logger
from ..obs.tracing import TRACER
from .admission import AdmissionQueue, DeadlineError, Ticket

__all__ = ["AdaptiveBatcher", "BatchController"]


class BatchController:
    """The live batch-read target, adapted against observed p99 latency.

    Thread-safe. With ``adaptive_batching=False`` the target is pinned
    at ``max_batch_reads`` and :meth:`observe` is a no-op. Adaptation
    waits out a short cooldown (a quarter window) between moves so one
    slow batch cannot thrash the target.
    """

    GROW = 1.5
    SHRINK = 0.5
    #: grow only while p99 is below this fraction of the target.
    HEADROOM = 0.8

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._latencies: List[float] = []  # ring of recent ms
        self._since_change = 0
        self._cooldown = max(4, config.latency_window // 4)
        if config.adaptive_batching:
            self._target = max(
                config.min_batch_reads, config.max_batch_reads // 4
            )
        else:
            self._target = config.max_batch_reads

    @property
    def target_reads(self) -> int:
        with self._lock:
            return self._target

    def p99_ms(self) -> Optional[float]:
        """p99 over the current window (None until any observation)."""
        with self._lock:
            if not self._latencies:
                return None
            ordered = sorted(self._latencies)
            rank = max(0, int(0.99 * len(ordered)) - 1)
            return ordered[min(rank + 1, len(ordered) - 1)]

    def observe(self, latency_ms: float) -> None:
        """Feed one request's total latency; maybe move the target."""
        cfg = self.config
        if not cfg.adaptive_batching:
            return
        with self._lock:
            self._latencies.append(latency_ms)
            if len(self._latencies) > cfg.latency_window:
                del self._latencies[: -cfg.latency_window]
            self._since_change += 1
            if self._since_change < self._cooldown:
                return
        p99 = self.p99_ms()
        if p99 is None:
            return
        with self._lock:
            old = self._target
            if p99 > cfg.latency_target_ms:
                self._target = max(
                    cfg.min_batch_reads, int(self._target * self.SHRINK)
                )
            elif p99 < cfg.latency_target_ms * self.HEADROOM:
                self._target = min(
                    cfg.max_batch_reads,
                    max(self._target + 1, int(self._target * self.GROW)),
                )
            if self._target != old:
                self._since_change = 0
                EVENTS.emit(
                    "serve.batch.resize",
                    target_reads=self._target,
                    was=old,
                    p99_ms=round(p99, 3),
                )


class AdaptiveBatcher:
    """``batch_workers`` threads turning ticket batches into results."""

    def __init__(
        self,
        session: MappingSession,
        queue: AdmissionQueue,
        config: ServeConfig,
        gauges=None,
    ) -> None:
        self.session = session
        self.queue = queue
        self.config = config
        self.controller = BatchController(config)
        self._gauges = gauges
        self._threads: List[threading.Thread] = []
        self._batch_lock = threading.Lock()
        self._next_batch_id = 1
        self._log = get_logger("serve.batcher")

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> "AdaptiveBatcher":
        if self._threads:
            return self
        for i in range(self.config.batch_workers):
            t = threading.Thread(
                target=self._run, name=f"serve-batcher-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def join(self, timeout_s: Optional[float] = None) -> bool:
        """Join the workers (after ``queue.stop()``); True when all exited."""
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        for t in self._threads:
            left = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            t.join(left)
        alive = any(t.is_alive() for t in self._threads)
        if not alive:
            self._threads = []
        return not alive

    # -- the worker loop ------------------------------------------------ #

    def _run(self) -> None:
        timeout_s = self.config.batch_timeout_ms / 1000.0
        while True:
            target = self.controller.target_reads
            if self._gauges is not None:
                self._gauges.set("serve.batch.target_reads", target)
            tickets = self.queue.collect(target, timeout_s)
            if not tickets:
                return  # queue stopped/drained dry
            try:
                self._execute(tickets)
            except Exception as exc:  # pragma: no cover - last resort
                self._log.exception("batch execution failed")
                for ticket in tickets:
                    if not ticket.future.done():
                        ticket.future.set_exception(exc)

    def _execute(self, tickets: List[Ticket]) -> None:
        # Deadline check *before* spending DP time: a request that
        # already waited past its timeout_ms gets its 504 now instead
        # of slowing the batch for everyone else.
        live: List[Ticket] = []
        for ticket in tickets:
            if ticket.expired:
                self._expire(ticket, where="queued")
            else:
                live.append(ticket)
        tickets = live
        if not tickets:
            return
        with self._batch_lock:
            batch_id = self._next_batch_id
            self._next_batch_id += 1
        n_reads = sum(t.request.n_reads for t in tickets)
        traced = [t for t in tickets if t.trace is not None]
        t0 = time.perf_counter()
        if traced:
            # Execute under a capture so the pooled run's kernel spans
            # are collected once, then grafted into every member trace.
            with TRACER.capture() as captured:
                results = self._map_tickets(tickets)
        else:
            results = self._map_tickets(tickets)
        t1 = time.perf_counter()
        map_ms = (t1 - t0) * 1000.0
        if traced:
            # Every coalesced member gets its own serve.batch span, all
            # linked by one shared `batch_span` uid (plus batch_id), so
            # each kept trace is self-contained yet provably shared.
            link = TRACER.new_id()
            for ticket in traced:
                bspan = TRACER.record(
                    "serve.batch",
                    ticket.trace,
                    t0,
                    t1,
                    batch_id=batch_id,
                    batch_span=link,
                    requests=len(tickets),
                    reads=n_reads,
                    coalesced=len(tickets) > 1,
                )
                if bspan is not None and captured.spans:
                    TRACER.graft(
                        captured.spans,
                        ticket.trace.trace_id,
                        bspan["span_id"],
                    )

        COUNTERS.inc("serve.batches")
        COUNTERS.inc("serve.batch_requests", len(tickets))
        COUNTERS.inc("serve.batch_reads", n_reads)
        if len(tickets) > 1:
            COUNTERS.inc("serve.coalesced")
        HISTOGRAMS.observe("serve.batch.reads", float(n_reads))
        EVENTS.emit(
            "serve.batch",
            batch_id=batch_id,
            requests=len(tickets),
            reads=n_reads,
            map_ms=round(map_ms, 3),
        )

        for ticket, result in zip(tickets, results):
            if ticket.expired:
                # The batch finished, but past this request's deadline:
                # the caller has already given up — answer 504, never a
                # stale success.
                self._expire(ticket, where="executed")
                continue
            queue_ms = (t0 - ticket.enqueued_at) * 1000.0
            total_ms = (time.perf_counter() - ticket.enqueued_at) * 1000.0
            result = result.replace(
                batch_id=batch_id,
                batch_requests=len(tickets),
                queue_ms=queue_ms,
                map_ms=map_ms,
                total_ms=total_ms,
            )
            COUNTERS.inc("serve.ok" if result.ok else "serve.errors")
            HISTOGRAMS.observe("serve.latency_s", total_ms / 1000.0)
            if ticket.trace is not None:
                # OpenMetrics exemplar: this latency bucket's freshest
                # trace id, scraped alongside the histogram itself.
                TRACER.exemplar(
                    "serve.latency_s",
                    total_ms / 1000.0,
                    ticket.trace.trace_id,
                )
            HISTOGRAMS.observe("serve.queue_wait_s", queue_ms / 1000.0)
            self.controller.observe(total_ms)
            self.queue.done(ticket)
            if not ticket.future.done():
                ticket.future.set_result(result)

    def _expire(self, ticket: Ticket, where: str) -> None:
        """Resolve an overdue ticket with a 504 :class:`DeadlineError`."""
        req = ticket.request
        COUNTERS.inc("serve.deadline")
        EVENTS.emit(
            "serve.deadline",
            request_id=req.request_id,
            tenant=req.tenant,
            timeout_ms=req.timeout_ms,
            where=where,
        )
        self.queue.done(ticket)
        if not ticket.future.done():
            ticket.future.set_exception(
                DeadlineError(
                    f"request {req.request_id}: deadline of "
                    f"{req.timeout_ms:g} ms exceeded ({where})"
                )
            )

    def _map_tickets(self, tickets: List[Ticket]) -> List[MapResult]:
        """One pooled DP pass; per-request rerun to isolate any poison."""
        from ..core.alignment import to_paf

        # Pooling requires one with_cigar setting; mixed batches run as
        # homogeneous sub-groups under the same batch id.
        groups: List[List[Ticket]] = []
        for flag in (True, False):
            group = [t for t in tickets if t.request.with_cigar is flag]
            if group:
                groups.append(group)

        out = {}
        for group in groups:
            reads = [r for t in group for r in t.request.reads]
            with_cigar = group[0].request.with_cigar
            try:
                if any(t.request.on_error == "skip" for t in group):
                    # skip-mode requests need per-read fault absorption.
                    raise _PerRequest()
                alns = self.session.map_batch(reads, with_cigar=with_cigar)
            except Exception:
                # A poison read (or skip semantics): isolate per request.
                # Each rerun runs under its own ticket's trace context,
                # so its span lands in that request's trace — not in the
                # shared batch capture.
                for ticket in group:
                    with TRACER.use(ticket.trace):
                        out[id(ticket)] = self.session.map_request(
                            ticket.request
                        )
                continue
            cursor = 0
            for ticket in group:
                req = ticket.request
                per_read = alns[cursor : cursor + req.n_reads]
                cursor += req.n_reads
                out[id(ticket)] = MapResult(
                    request_id=req.request_id,
                    read_names=tuple(r.name for r in req.reads),
                    paf=tuple(
                        tuple(to_paf(a) for a in read_alns)
                        for read_alns in per_read
                    ),
                )
        return [out[id(t)] for t in tickets]


class _PerRequest(Exception):
    """Internal: force the per-request fallback path."""
