"""Admission control: the bounded, tenant-fair request queue.

Every ``POST /map`` passes through one :class:`AdmissionQueue` before
any mapping work happens. Admission is where the server says *no*:

- the queue holds at most ``max_queue_requests`` requests — excess is
  shed immediately with :class:`QueueFullError` (HTTP 429), so a burst
  degrades into fast rejections instead of unbounded memory growth;
- each tenant may have at most ``tenant_quota`` requests outstanding
  (queued + in flight) — one greedy client hits
  :class:`TenantQuotaError` (429) while others keep flowing;
- one request may carry at most ``max_reads_per_request`` reads
  (:class:`RequestTooLargeError`, 400 — resubmit split);
- a draining server admits nothing (:class:`DrainingError`, 503).

Dequeue order is round-robin across tenants (FIFO within a tenant), so
batch composition interleaves tenants fairly: with two active tenants
each batch takes requests alternately, regardless of who queued more.
Requests are never split across batches — the unit of admission is the
unit of batching.

Tickets carry a :class:`concurrent.futures.Future`; the asyncio server
awaits it via ``asyncio.wrap_future`` while the batcher's worker
threads resolve it, so the queue itself needs no event loop and is
directly testable from synchronous code.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

from ..api import MapRequest, ServeConfig
from ..errors import ServeError
from ..obs.counters import COUNTERS
from ..obs.tracing import TRACER, TraceContext

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "DeadlineError",
    "DrainingError",
    "QueueFullError",
    "RequestTooLargeError",
    "TenantQuotaError",
    "Ticket",
]


class AdmissionError(ServeError):
    """A request the server refused to admit; carries an HTTP status."""

    http_status = 429


class QueueFullError(AdmissionError):
    """The admission queue is at ``max_queue_requests``."""

    http_status = 429


class TenantQuotaError(AdmissionError):
    """The tenant is at ``tenant_quota`` outstanding requests."""

    http_status = 429


class RequestTooLargeError(AdmissionError):
    """The request exceeds ``max_reads_per_request``."""

    http_status = 400


class DrainingError(AdmissionError):
    """The server is draining and admits no new work."""

    http_status = 503


class DeadlineError(ServeError):
    """The request's ``timeout_ms`` deadline passed before its result.

    Raised by the batcher — *not* at admission — so it is a plain
    :class:`~repro.errors.ServeError` (the request was admitted and
    counted; it just took too long). HTTP 504.
    """

    http_status = 504


class Ticket:
    """One admitted request: the unit flowing queue → batch → response.

    ``trace`` is the request's root span context (None when tracing is
    off): the queue emits the ``admission.queue`` wait span under it at
    dequeue, the batcher parents its batch/kernel spans under it.
    """

    __slots__ = ("request", "enqueued_at", "deadline", "future", "trace")

    def __init__(
        self,
        request: MapRequest,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.request = request
        self.trace = trace
        self.enqueued_at = time.perf_counter()
        timeout_ms = getattr(request, "timeout_ms", None)
        #: absolute ``perf_counter`` deadline, or None (wait forever).
        self.deadline = (
            None
            if timeout_ms is None
            else self.enqueued_at + timeout_ms / 1000.0
        )
        self.future: "Future" = Future()

    @property
    def queue_ms(self) -> float:
        return (time.perf_counter() - self.enqueued_at) * 1000.0

    @property
    def expired(self) -> bool:
        """True once the request's deadline has passed."""
        return (
            self.deadline is not None
            and time.perf_counter() > self.deadline
        )


class AdmissionQueue:
    """Bounded multi-tenant request queue with round-robin dequeue.

    Thread-safe throughout; :meth:`submit` never blocks (it admits or
    raises), the batcher blocks in :meth:`collect`. ``gauges`` is the
    server telemetry's :class:`~repro.obs.gauges.GaugeSet` — queue
    depth is mirrored there (``serve.queue.requests`` + its
    ``\\*.max`` high-water) on every transition.
    """

    def __init__(self, config: ServeConfig, gauges=None) -> None:
        self.config = config.validated()
        self._gauges = gauges
        self._cond = threading.Condition()
        self._queues: Dict[str, List[Ticket]] = {}
        self._rotation: List[str] = []  # round-robin tenant order
        self._outstanding: Dict[str, int] = {}  # queued + in flight
        self._queued = 0
        self._draining = False
        self._stopped = False

    # -- the request side ---------------------------------------------- #

    def submit(
        self,
        request: MapRequest,
        trace: Optional[TraceContext] = None,
    ) -> Ticket:
        """Admit ``request`` or raise an :class:`AdmissionError`.

        Sheds *before* touching the queue, so rejected requests cost
        O(1) and never perturb queued work. ``trace`` is the request's
        root span context, carried on the ticket for the batcher.
        """
        cfg = self.config
        if request.n_reads > cfg.max_reads_per_request:
            COUNTERS.inc("serve.shed.oversize")
            raise RequestTooLargeError(
                f"request {request.request_id}: {request.n_reads} reads "
                f"> max_reads_per_request {cfg.max_reads_per_request}"
            )
        with self._cond:
            if self._draining or self._stopped:
                COUNTERS.inc("serve.shed.draining")
                raise DrainingError("server is draining; retry elsewhere")
            if self._queued >= cfg.max_queue_requests:
                COUNTERS.inc("serve.shed.queue")
                raise QueueFullError(
                    f"admission queue full ({cfg.max_queue_requests})"
                )
            tenant = request.tenant
            if self._outstanding.get(tenant, 0) >= cfg.tenant_quota:
                COUNTERS.inc("serve.shed.quota")
                raise TenantQuotaError(
                    f"tenant {tenant!r} at quota ({cfg.tenant_quota} "
                    f"outstanding)"
                )
            ticket = Ticket(request, trace=trace)
            if tenant not in self._queues:
                self._queues[tenant] = []
                self._rotation.append(tenant)
            self._queues[tenant].append(ticket)
            self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1
            self._queued += 1
            self._sync_gauges()
            self._cond.notify_all()
        COUNTERS.inc("serve.admitted")
        COUNTERS.inc(f"serve.tenant.{request.tenant}.requests")
        return ticket

    def done(self, ticket: Ticket) -> None:
        """Mark a request finished (response sent): frees tenant quota."""
        tenant = ticket.request.tenant
        with self._cond:
            left = self._outstanding.get(tenant, 0) - 1
            if left > 0:
                self._outstanding[tenant] = left
            else:
                self._outstanding.pop(tenant, None)
            self._cond.notify_all()

    # -- the batcher side ---------------------------------------------- #

    def collect(
        self, target_reads: int, timeout_s: float
    ) -> List[Ticket]:
        """Block for the next coalesced batch of tickets.

        Waits for the first queued request, then keeps collecting until
        the batch holds ``target_reads`` reads or ``timeout_s`` has
        passed since that first request was seen — the classic
        size-or-deadline batching rule. Dequeue is round-robin across
        tenants; requests are never split (a request larger than the
        target rides alone). Returns ``[]`` only when the queue is
        stopped and empty — the batcher's exit signal.
        """
        with self._cond:
            while self._queued == 0:
                if self._stopped or self._draining:
                    return []
                self._cond.wait(0.05)
            deadline = time.monotonic() + timeout_s
            while self._queued_reads_locked() < target_reads:
                left = deadline - time.monotonic()
                if left <= 0 or self._stopped or self._draining:
                    break
                self._cond.wait(min(left, 0.05))
            batch = self._pop_locked(target_reads)
            depth_after = self._queued
        now = time.perf_counter()
        for ticket in batch:
            if ticket.trace is not None:
                TRACER.record(
                    "admission.queue",
                    ticket.trace,
                    ticket.enqueued_at,
                    now,
                    tenant=ticket.request.tenant,
                    depth_after=depth_after,
                )
        return batch

    def _queued_reads_locked(self) -> int:
        return sum(
            t.request.n_reads for q in self._queues.values() for t in q
        )

    def _pop_locked(self, target_reads: int) -> List[Ticket]:
        batch: List[Ticket] = []
        reads = 0
        while self._queued:
            progressed = False
            for tenant in list(self._rotation):
                queue = self._queues.get(tenant)
                if not queue:
                    continue
                ticket = queue[0]
                n = ticket.request.n_reads
                if batch and reads + n > target_reads:
                    continue  # keep whole requests; try other tenants
                queue.pop(0)
                if not queue:
                    self._queues.pop(tenant, None)
                    self._rotation.remove(tenant)
                else:
                    # rotate: this tenant goes to the back of the order.
                    self._rotation.remove(tenant)
                    self._rotation.append(tenant)
                self._queued -= 1
                batch.append(ticket)
                reads += n
                progressed = True
                if reads >= target_reads:
                    break
            if not progressed or reads >= target_reads:
                break
        self._sync_gauges()
        return batch

    # -- lifecycle ------------------------------------------------------ #

    def begin_drain(self) -> None:
        """Stop admitting; queued work still gets batched and answered."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def stop(self) -> None:
        """Drain + wake every waiter; :meth:`collect` returns [] when dry."""
        with self._cond:
            self._draining = True
            self._stopped = True
            self._cond.notify_all()

    def fail_pending(self, exc: Exception) -> int:
        """Resolve every still-queued ticket with ``exc`` (drain gave up)."""
        with self._cond:
            pending = [t for q in self._queues.values() for t in q]
            self._queues.clear()
            self._rotation.clear()
            self._queued = 0
            self._sync_gauges()
        for ticket in pending:
            if not ticket.future.done():
                ticket.future.set_exception(exc)
        return len(pending)

    def wait_empty(self, timeout_s: float) -> bool:
        """Block until the queue is empty (True) or the timeout passes."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while self._queued:
                left = deadline - time.monotonic()
                if left <= 0:
                    return False
                self._cond.wait(min(left, 0.05))
            return True

    @property
    def depth(self) -> int:
        with self._cond:
            return self._queued

    def outstanding(self, tenant: str) -> int:
        with self._cond:
            return self._outstanding.get(tenant, 0)

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def _sync_gauges(self) -> None:
        if self._gauges is None:
            return
        self._gauges.set("serve.queue.requests", self._queued)
        self._gauges.high_water("serve.queue.requests.max", self._queued)
