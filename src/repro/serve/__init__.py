"""``repro serve`` — mapping as a service.

A long-lived asyncio HTTP-JSON front-end over one resident
:class:`repro.api.MappingSession`: the index is opened (mmap'd) once,
then concurrent ``POST /map`` requests are admitted under per-tenant
quotas, coalesced by an adaptive batcher into the same cross-read DP
batches the one-shot CLI uses, and answered with per-request PAF.

The package splits along the request's path through the server:

:mod:`~repro.serve.admission`
    Bounded queue + per-tenant fairness/quotas; sheds with 429.
:mod:`~repro.serve.batcher`
    Coalesces admitted requests under a latency target into
    :meth:`MappingSession.map_batch <repro.api.MappingSession.map_batch>`
    calls; grows/shrinks the batch read target against observed p99.
:mod:`~repro.serve.server`
    The asyncio HTTP front-end + graceful SIGTERM drain, with the
    observability surface (:func:`repro.obs.httpd.obs_route`) mounted
    on the same port.
:mod:`~repro.serve.client`
    A tiny stdlib client for tests, benchmarks and scripts.

Wire model (:class:`repro.api.MapRequest` / ``MapResult``) and serving
knobs (:class:`repro.api.ServeConfig`) live in :mod:`repro.api` — the
server speaks exactly the objects the Python facade uses.
"""

from .admission import (
    AdmissionQueue,
    DeadlineError,
    DrainingError,
    QueueFullError,
    RequestTooLargeError,
    TenantQuotaError,
)
from .batcher import AdaptiveBatcher, BatchController
from .client import RetryPolicy, ServeClient, ShedError
from .journal import RequestJournal
from .server import MappingServer, ServerThread

__all__ = [
    "AdmissionQueue",
    "AdaptiveBatcher",
    "BatchController",
    "DeadlineError",
    "DrainingError",
    "MappingServer",
    "QueueFullError",
    "RequestJournal",
    "RequestTooLargeError",
    "RetryPolicy",
    "ServeClient",
    "ServerThread",
    "ShedError",
    "TenantQuotaError",
]
