"""A tiny stdlib client for the serve front-end.

Used by the serve tests, ``benchmarks/bench_serve.py``, and anyone who
wants to script against a running ``repro serve`` without pulling in an
HTTP library: one blocking call per request over ``urllib``, speaking
the versioned :class:`~repro.api.MapRequest` / ``MapResult`` wire
model. Raise-on-shed is deliberate — 429/503 surface as
:class:`ShedError` with the HTTP status attached, so load generators
can count sheds without parsing bodies.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict

from ..api import MapRequest, MapResult
from ..errors import ServeError

__all__ = ["ServeClient", "ShedError"]


class ShedError(ServeError):
    """The server refused the request (429 quota/queue or 503 drain)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """Blocking HTTP client bound to one serve base URL."""

    def __init__(self, url: str, timeout_s: float = 60.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def map(self, request: MapRequest) -> MapResult:
        """POST one request; returns its result (even an error result).

        HTTP 200/400 responses decode to :class:`MapResult` (a 400 is a
        well-formed error result — poison reads land here); 429/503
        raise :class:`ShedError`; anything else raises
        :class:`~repro.errors.ServeError`.
        """
        body = json.dumps(request.to_json()).encode("utf-8")
        req = urllib.request.Request(
            self.url + "/map",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                doc = json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            if exc.code in (429, 503):
                raise ShedError(exc.code, payload.decode("utf-8", "replace"))
            try:
                doc = json.loads(payload)
            except ValueError:
                raise ServeError(
                    f"HTTP {exc.code}: {payload[:200]!r}"
                ) from exc
            if doc.get("record") != "map_result":
                raise ServeError(
                    f"HTTP {exc.code}: {doc.get('error', doc)}"
                ) from exc
        return MapResult.from_json(doc)

    # -- observability surface ------------------------------------------ #

    def _get(self, path: str) -> bytes:
        with urllib.request.urlopen(
            self.url + path, timeout=self.timeout_s
        ) as resp:
            return resp.read()

    def status(self) -> Dict:
        return json.loads(self._get("/status"))

    def metrics(self) -> str:
        return self._get("/metrics").decode("utf-8")

    def events(self, **params) -> Dict:
        query = "&".join(f"{k}={v}" for k, v in params.items())
        return json.loads(self._get("/events" + ("?" + query if query else "")))

    def healthy(self) -> bool:
        try:
            return self._get("/healthz").strip() == b"ok"
        except (urllib.error.URLError, ConnectionError):
            return False
