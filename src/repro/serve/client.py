"""A tiny stdlib client for the serve front-end.

Used by the serve tests, ``benchmarks/bench_serve.py``, and anyone who
wants to script against a running ``repro serve`` without pulling in an
HTTP library: one blocking call per request over ``urllib``, speaking
the versioned :class:`~repro.api.MapRequest` / ``MapResult`` wire
model. Raise-on-shed is deliberate — 429/503 surface as
:class:`ShedError` with the HTTP status attached, so load generators
can count sheds without parsing bodies.

Retries: construct with a :class:`RetryPolicy` and :meth:`ServeClient.
map` absorbs the transient failure modes a well-behaved client should —
HTTP 429 (quota/queue shed), 503 (drain), and connection resets —
with exponential backoff and *full jitter* (the AWS rule: sleep a
uniform random fraction of the exponentially-growing cap, so a
thundering herd of retriers decorrelates instead of re-colliding).
A server-sent ``Retry-After`` header overrides the computed delay,
and a per-call wall-clock budget bounds the total time one ``map``
call may spend retrying. Non-transient failures (400 poison results,
unexpected statuses) are never retried.
"""

from __future__ import annotations

import dataclasses
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..api import MapRequest, MapResult
from ..errors import ServeError
from ..obs.tracing import TRACER, TraceContext

__all__ = ["RetryPolicy", "ServeClient", "ShedError"]


class ShedError(ServeError):
    """The server refused the request (429 quota/queue or 503 drain).

    ``retry_after_s`` carries the server's ``Retry-After`` header
    (seconds) when one was sent, else ``None``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class RetryPolicy:
    """How :meth:`ServeClient.map` retries transient failures.

    ``max_attempts`` counts the *total* tries (1 = no retry). Delay
    before retry ``n`` (1-based) is ``uniform(0, min(max_delay_s,
    base_delay_s * 2**(n-1)))`` — exponential backoff, full jitter —
    unless the server named a longer wait via ``Retry-After``, which
    wins (capped at ``max_delay_s``). ``budget_s`` bounds the whole
    call: once elapsed time plus the next sleep would exceed it, the
    last error is raised instead. ``retry_statuses`` lists the HTTP
    codes considered transient; connection-level failures (reset,
    refused, EOF mid-response) always qualify.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    budget_s: float = 30.0
    retry_statuses: Tuple[int, ...] = (429, 503)

    def validated(self) -> "RetryPolicy":
        if self.max_attempts < 1:
            raise ServeError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ServeError("retry delays must be >= 0")
        if self.budget_s <= 0:
            raise ServeError(f"budget_s must be > 0: {self.budget_s}")
        return self

    def delay_s(
        self, attempt: int, rng: Callable[[], float]
    ) -> float:
        """Full-jitter backoff before retry ``attempt`` (1-based)."""
        cap = min(self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1)))
        return rng() * cap


class ServeClient:
    """Blocking HTTP client bound to one serve base URL.

    ``retry`` enables transparent retries on :meth:`map`; ``sleep``
    and ``rng`` are injectable for deterministic tests (``rng`` must
    return uniform floats in [0, 1)).

    ``trace=True`` attaches a fresh
    :class:`~repro.obs.tracing.TraceContext` to every request that
    does not already carry one, so a tracing-enabled server links its
    spans under the client's trace id. Retries reuse the *same*
    trace_id with a *new* span_id per attempt — the attempts are
    distinct causal parents inside one logical trace.
    """

    def __init__(
        self,
        url: str,
        timeout_s: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[Callable[[], float]] = None,
        trace: bool = False,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry = retry.validated() if retry is not None else None
        self._sleep = sleep
        self._rng = rng if rng is not None else random.random
        self.trace = trace
        #: attempts spent by the most recent :meth:`map` call.
        self.last_attempts = 0

    def map(self, request: MapRequest) -> MapResult:
        """POST one request; returns its result (even an error result).

        HTTP 200/400 responses decode to :class:`MapResult` (a 400 is a
        well-formed error result — poison reads land here); 429/503
        raise :class:`ShedError`; anything else raises
        :class:`~repro.errors.ServeError`. With a :class:`RetryPolicy`,
        sheds and connection failures are retried under the policy's
        attempt/budget limits before the final error escapes.
        """
        policy = self.retry
        self.last_attempts = 1
        request = self._with_trace(request, attempt=1)
        if policy is None:
            return self._map_once(request)
        t0 = time.monotonic()
        attempt = 1
        while True:
            retry_after: Optional[float] = None
            try:
                self.last_attempts = attempt
                return self._map_once(request)
            except ShedError as exc:
                if exc.status not in policy.retry_statuses:
                    raise
                retry_after = exc.retry_after_s
                err: Exception = exc
            except (urllib.error.URLError, ConnectionError) as exc:
                err = exc
            if attempt >= policy.max_attempts:
                raise err
            delay = policy.delay_s(attempt, self._rng)
            if retry_after is not None:
                delay = max(delay, min(retry_after, policy.max_delay_s))
            if (time.monotonic() - t0) + delay > policy.budget_s:
                raise err
            self._sleep(delay)
            attempt += 1
            request = self._with_trace(request, attempt=attempt)

    def _with_trace(self, request: MapRequest, attempt: int) -> MapRequest:
        """Attach/refresh the request's trace context for one attempt.

        Same ``trace_id`` across attempts (it names the logical
        request); a fresh ``span_id`` per retry (each attempt is its
        own causal parent on the server). A caller-supplied context is
        honored as-is on the first attempt.
        """
        if not self.trace:
            return request
        ctx = request.trace
        if ctx is None:
            ctx = TraceContext(
                trace_id=TRACER.new_id(),
                span_id=TRACER.new_id(),
                sampled=True,
            )
        elif attempt > 1:
            ctx = dataclasses.replace(ctx, span_id=TRACER.new_id())
        else:
            return request
        return dataclasses.replace(request, trace=ctx)

    def _map_once(self, request: MapRequest) -> MapResult:
        body = json.dumps(request.to_json()).encode("utf-8")
        req = urllib.request.Request(
            self.url + "/map",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                doc = json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            if exc.code in (429, 503):
                raise ShedError(
                    exc.code,
                    payload.decode("utf-8", "replace"),
                    retry_after_s=_retry_after_s(exc.headers),
                )
            try:
                doc = json.loads(payload)
            except ValueError:
                raise ServeError(
                    f"HTTP {exc.code}: {payload[:200]!r}"
                ) from exc
            if doc.get("record") != "map_result":
                raise ServeError(
                    f"HTTP {exc.code}: {doc.get('error', doc)}"
                ) from exc
        return MapResult.from_json(doc)

    # -- observability surface ------------------------------------------ #

    def _get(self, path: str) -> bytes:
        with urllib.request.urlopen(
            self.url + path, timeout=self.timeout_s
        ) as resp:
            return resp.read()

    def status(self) -> Dict:
        return json.loads(self._get("/status"))

    def metrics(self) -> str:
        return self._get("/metrics").decode("utf-8")

    def events(self, **params) -> Dict:
        query = "&".join(f"{k}={v}" for k, v in params.items())
        return json.loads(self._get("/events" + ("?" + query if query else "")))

    def traces(self, slowest: int = 10) -> Dict:
        """``GET /traces?slowest=N`` — kept-trace summaries."""
        return json.loads(self._get(f"/traces?slowest={int(slowest)}"))

    def get_trace(self, trace_id: str, chrome: bool = False) -> Dict:
        """``GET /trace/<id>`` — one trace's span tree (or Chrome doc)."""
        path = f"/trace/{trace_id}"
        if chrome:
            path += "?format=chrome"
        return json.loads(self._get(path))

    def healthy(self) -> bool:
        try:
            return self._get("/healthz").strip() == b"ok"
        except (urllib.error.URLError, ConnectionError):
            return False


def _retry_after_s(headers) -> Optional[float]:
    """Parse a delta-seconds ``Retry-After`` header (None when absent).

    HTTP-date forms are ignored — the serve front-end only ever sends
    delta-seconds, and a misparsed date must not become a huge sleep.
    """
    if headers is None:
        return None
    raw = headers.get("Retry-After")
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None
