"""Extension alignment with z-drop (ksw2_extz analogue).

minimap2 extends outward from chain anchors: the alignment is anchored
at the sequence beginnings and free at the ends, and the DP stops early
once the running score falls more than ``zdrop`` below the best seen —
cutting off hopeless tails in O(zdrop/e) extra diagonals.

``direction='left'`` extends toward lower coordinates by aligning the
reversed sequences (extension DP is symmetric under joint reversal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import AlignmentError
from .cigar import Cigar
from .result import AlignmentResult
from .scoring import Scoring


@dataclass
class ExtendResult:
    """Result of a one-sided extension.

    ``t_used`` / ``q_used`` are the number of target/query bases covered
    by the extension (from the anchored end).
    """

    score: int
    t_used: int
    q_used: int
    cigar: Optional[Cigar] = None
    zdropped: bool = False


def extend_alignment(
    target: np.ndarray,
    query: np.ndarray,
    scoring: Scoring = Scoring(),
    engine: Optional[Callable[..., AlignmentResult]] = None,
    direction: str = "right",
    path: bool = False,
    zdrop: Optional[int] = None,
    band: Optional[int] = None,
) -> ExtendResult:
    """Extend an alignment from the anchored end of both sequences."""
    if direction not in ("left", "right"):
        raise AlignmentError(f"unknown direction {direction!r}")
    if engine is None:
        from .manymap_kernel import align_manymap

        engine = align_manymap
    t = np.ascontiguousarray(target, dtype=np.uint8)
    s = np.ascontiguousarray(query, dtype=np.uint8)
    if direction == "left":
        t = t[::-1].copy()
        s = s[::-1].copy()
    if zdrop is None:
        zdrop = scoring.zdrop
    kwargs = {}
    if band is not None:
        kwargs["band"] = band
    res = engine(t, s, scoring, mode="extend", path=path, zdrop=zdrop, **kwargs)
    return finish_extension(res, t.size, s.size, path, direction=direction)


def finish_extension(
    res: AlignmentResult,
    t_size: int,
    q_size: int,
    path: bool,
    direction: str = "right",
) -> ExtendResult:
    """Turn a raw ``mode='extend'`` kernel result into an ExtendResult.

    Shared by :func:`extend_alignment` and the pooled chain-assembly
    path, which runs the extension DP through the kernel dispatch and
    post-processes the raw results here.
    """
    cigar = res.cigar
    if cigar is not None:
        # The engine's CIGAR covers the whole matrix; clip to the argmax
        # prefix is already guaranteed because traceback starts there.
        if direction == "left":
            cigar = Cigar(list(reversed(cigar.ops))).merged()
    if res.score <= 0 and (t_size == 0 or q_size == 0 or res.score < 0):
        # An extension that never rises above 0 is not worth keeping.
        return ExtendResult(0, 0, 0, Cigar([]) if path else None, res.zdropped)
    return ExtendResult(
        score=res.score,
        t_used=res.end_t + 1,
        q_used=res.end_q + 1,
        cigar=cigar,
        zdropped=res.zdropped,
    )
