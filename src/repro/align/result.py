"""Common result type returned by every DP engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cigar import Cigar


@dataclass
class AlignmentResult:
    """Outcome of one base-level alignment.

    ``score`` is the semi-global score of the chosen mode; ``end_t`` /
    ``end_q`` are the 0-based coordinates of the last aligned base pair
    (for ``mode='global'`` always the sequence ends; for extension the
    argmax cell). ``cigar`` is present when the engine ran with
    ``path=True``. ``cells`` counts DP cells actually computed, the
    quantity GCUPS is defined over.
    """

    score: int
    end_t: int
    end_q: int
    cigar: Optional[Cigar] = None
    cells: int = 0
    zdropped: bool = False

    @property
    def gcups_cells(self) -> int:
        return self.cells
