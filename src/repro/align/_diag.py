"""Shared machinery for the anti-diagonal difference-formula kernels.

Coordinate conventions (matching the paper §3.2/§4.3):

* Unpadded cell ``(ti, qj)``: target index ``ti ∈ [0, m)``, query index
  ``qj ∈ [0, n)``.
* Diagonal coordinates: ``r = ti + qj ∈ [0, m+n-2]``, ``t = ti``.
  Diagonal ``r`` covers ``t ∈ [st, en]`` with ``st = max(0, r-n+1)``,
  ``en = min(m-1, r)``.
* Difference arrays: ``u,y`` indexed by ``t`` (size m); ``v,x`` indexed
  by ``t`` in the minimap2 layout or by ``t' = t - r + n`` in the
  manymap layout (size n+1).
* The running ``H`` values are kept per *offset* diagonal ``d = qj - ti``
  (index ``dd = r - 2t + m - 1``, size m+n-1) because ``H[i][j]`` depends
  on ``H[i-1][j-1]`` which shares the same ``d`` — an in-place update
  with no shift in any layout.

Boundary values (derived from ``H[i][0] = H[0][i] = -(q + i·e)``):

* first-row/column ``u``/``v`` seed: ``-(q+e)`` at ``r = 0``, else ``-e``;
* ``x``/``y`` seeds are always ``-(q+e)``;
* the diagonal-H seed for row/column 0 is ``c_r = 0`` if ``r == 0`` else
  ``-(q + r·e)``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import AlignmentError
from .cigar import Cigar

#: Direction-matrix bit layout.
SRC_MASK = 0x3  # bits 0-1: 0 = diagonal, 1 = E (deletion), 2 = F (insertion)
SRC_DIAG = 0
SRC_E = 1
SRC_F = 2
X_CONT = 0x4  # bit 2: E-chain extension (x took the max with > 0)
Y_CONT = 0x8  # bit 3: F-chain extension


def diag_range(r: int, m: int, n: int) -> Tuple[int, int]:
    """Inclusive ``(st, en)`` target-index range of diagonal ``r``."""
    return max(0, r - n + 1), min(m - 1, r)


def boundary_c(r: int, q: int, e: int) -> int:
    """H boundary value shared by ``H[0][r]`` and ``H[r][0]``."""
    return 0 if r == 0 else -(q + r * e)


def first_seed(r: int, q: int, e: int) -> int:
    """Boundary value of ``u``/``v`` entering diagonal ``r``."""
    return -(q + e) if r == 0 else -e


def traceback_dir(dirmat: np.ndarray, end_ti: int, end_qj: int) -> Cigar:
    """Backtrack a direction matrix produced by a difference kernel.

    ``dirmat`` is ``(m, n)`` uint8 with the bit layout above. The state
    machine mirrors ksw2: in state M the source bits of the current cell
    decide; in state E/D (resp. F/I) the continuation bit of the cell
    above (resp. left) decides whether the gap chain continues.
    """
    if end_ti >= dirmat.shape[0] or end_qj >= dirmat.shape[1]:
        raise AlignmentError(
            f"traceback start ({end_ti},{end_qj}) outside matrix {dirmat.shape}"
        )
    ops_rev: List[str] = []
    ti, qj = end_ti, end_qj
    state = "M"
    while ti >= 0 and qj >= 0:
        d = int(dirmat[ti, qj])
        if state == "M":
            src = d & SRC_MASK
            if src == SRC_DIAG:
                ops_rev.append("M")
                ti -= 1
                qj -= 1
            elif src == SRC_E:
                state = "E"
            else:
                state = "F"
        elif state == "E":
            ops_rev.append("D")
            cont = ti >= 1 and (int(dirmat[ti - 1, qj]) & X_CONT)
            ti -= 1
            state = "E" if cont else "M"
        else:
            ops_rev.append("I")
            cont = qj >= 1 and (int(dirmat[ti, qj - 1]) & Y_CONT)
            qj -= 1
            state = "F" if cont else "M"
    # One of the coordinates ran off the top/left edge: the rest is gap.
    if qj >= 0:
        ops_rev.extend("I" * (qj + 1))
    if ti >= 0:
        ops_rev.extend("D" * (ti + 1))
    return Cigar.from_ops(reversed(ops_rev))
