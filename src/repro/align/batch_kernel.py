"""Batched inter-sequence gap alignment (SWIPE-style).

The aligner's gap-fill step runs hundreds of *small* DPs per read (the
segments between adjacent chain anchors). Under CPython each
anti-diagonal costs a fixed ~30 µs of NumPy dispatch, so per-pair
kernels are overhead-bound on small segments. This module applies the
*inter-sequence* parallelization of SWIPE (Rognes 2011, the paper's
related work §2.1): B pairs advance through the SAME anti-diagonal
sweep simultaneously, one array row per pair, so the dispatch overhead
amortizes over the whole batch.

Implementation notes:

* arrays are (B, M) in plain ``t`` space; the ``v``/``x`` dependency is
  realized as one uniform column shift per diagonal (a batched analogue
  of the mm2 layout — the layout distinction the paper benchmarks is a
  per-pair ILP property that batching makes irrelevant);
* per-row activity masks handle ragged ``(m_b, n_b)`` shapes;
* H values ride their own diagonal buffers, and per-pair global scores
  are harvested on each pair's final diagonal;
* path mode stores a (B, M, N+1) direction volume whose last column is
  a write dump for masked lanes.

Results are bit-identical to running :func:`align_manymap` /
:func:`align_mm2` per pair in ``mode='global'`` (property-tested).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AlignmentError
from ..obs.counters import COUNTERS
from ._diag import X_CONT, Y_CONT, traceback_dir
from .dp_reference import NEG, _degenerate
from .result import AlignmentResult
from .scoring import Scoring


def align_batch(
    targets: Sequence[np.ndarray],
    queries: Sequence[np.ndarray],
    scoring: Scoring = Scoring(),
    path: bool = False,
) -> List[AlignmentResult]:
    """Globally align ``queries[i]`` to ``targets[i]`` for all i at once."""
    if len(targets) != len(queries):
        raise AlignmentError(
            f"batch size mismatch: {len(targets)} targets, {len(queries)} queries"
        )
    B = len(targets)
    if B == 0:
        return []

    results: List[Optional[AlignmentResult]] = [None] * B
    live: List[int] = []
    for i, (t, s) in enumerate(zip(targets, queries)):
        deg = _degenerate(t.size, s.size, scoring, path)
        if deg is not None:
            results[i] = deg
        else:
            live.append(i)
    if not live:
        return results  # type: ignore[return-value]

    ts = [np.ascontiguousarray(targets[i], dtype=np.uint8) for i in live]
    ss = [np.ascontiguousarray(queries[i], dtype=np.uint8) for i in live]
    COUNTERS.inc("batch_calls")
    COUNTERS.inc("batch_pairs", len(live))
    COUNTERS.inc("dp_cells", sum(t.size * s.size for t, s in zip(ts, ss)))
    out = _align_batch_live(ts, ss, scoring, path)
    for i, res in zip(live, out):
        results[i] = res
    return results  # type: ignore[return-value]


def _align_batch_live(
    ts: List[np.ndarray],
    ss: List[np.ndarray],
    scoring: Scoring,
    path: bool,
) -> List[AlignmentResult]:
    B = len(ts)
    m = np.array([t.size for t in ts], dtype=np.int64)
    n = np.array([s.size for s in ss], dtype=np.int64)
    M = int(m.max())
    N = int(n.max())
    R = int((m + n).max()) - 1

    mat = scoring.matrix().astype(np.int64)
    q, e = scoring.q, scoring.e
    oe = q + e

    AMBIG_PAD = 4  # padding code: scores the (negative) ambiguous penalty
    T2 = np.full((B, M), AMBIG_PAD, dtype=np.intp)
    S2 = np.full((B, N), AMBIG_PAD, dtype=np.intp)
    for b in range(B):
        T2[b, : m[b]] = ts[b]
        S2[b, : n[b]] = ss[b]

    U = np.zeros((B, M), dtype=np.int64)
    Y = np.zeros((B, M), dtype=np.int64)
    V = np.zeros((B, M), dtype=np.int64)
    X = np.zeros((B, M), dtype=np.int64)
    Hprev2 = np.full((B, M), NEG, dtype=np.int64)
    Hprev1 = np.full((B, M), NEG, dtype=np.int64)
    scores = np.full(B, NEG, dtype=np.int64)

    dir3 = np.zeros((B, M, N + 1), dtype=np.uint8) if path else None
    rows = np.arange(B)[:, None]
    TT = np.arange(M, dtype=np.int64)[None, :]

    for r in range(R + 1):
        st = np.maximum(0, r - n + 1)  # (B,)
        en = np.minimum(m - 1, r)
        A = (TT >= st[:, None]) & (TT <= en[:, None])
        if not A.any():
            continue
        c_r = 0 if r == 0 else -(q + r * e)
        fs = -(q + e) if r == 0 else -e

        # Boundary seeds: column r for rows still having a j=0 cell...
        en_eq_r = en == r
        if en_eq_r.any() and r < M:
            U[en_eq_r, r] = fs
            Y[en_eq_r, r] = -oe

        # Shifted reads of v/x (one uniform column shift for every row);
        # column 0 carries the i=0 boundary for rows with st == 0.
        vsh = np.empty_like(V)
        xsh = np.empty_like(X)
        vsh[:, 1:] = V[:, :-1]
        xsh[:, 1:] = X[:, :-1]
        vsh[:, 0] = fs
        xsh[:, 0] = -oe

        # Diagonal H dependency: H[i-1][j-1] lives one column left, two
        # diagonals back; boundary cells read c_r.
        hsh = np.empty_like(Hprev2)
        hsh[:, 1:] = Hprev2[:, :-1]
        hsh[:, 0] = c_r
        if en_eq_r.any() and r < M:
            hsh[en_eq_r, r] = c_r

        qcols = np.clip(r - TT, 0, N - 1)
        sq = S2[rows, qcols]
        sc = mat[T2, sq]

        a = xsh + vsh
        b = Y + U
        z = np.maximum(np.maximum(sc, a), b)

        if path:
            bits = np.where(z == sc, 0, np.where(z == a, 1, 2))
            bits += (a - z + q > 0) * X_CONT
            bits += (b - z + q > 0) * Y_CONT
            dump = np.where(A, r - TT, N)
            dir3[rows, TT, dump] = bits

        u_old = U
        U = np.where(A, z - vsh, U)
        V = np.where(A, z - u_old, V)
        X = np.where(A, np.maximum(a - z + q, 0) - oe, X)
        Y = np.where(A, np.maximum(b - z + q, 0) - oe, Y)

        Hcur = np.where(A, hsh + z, Hprev2)
        # Rotation: current becomes prev1; prev1 becomes prev2 base for
        # the NEXT diagonal's shift.
        Hprev2 = Hprev1
        Hprev1 = Hcur

        # Harvest finished pairs: r == m + n - 2 at t = m - 1.
        fin = (m + n - 2) == r
        if fin.any():
            scores[fin] = Hcur[fin, m[fin] - 1]

    out: List[AlignmentResult] = []
    for b in range(B):
        cigar = None
        if path:
            cigar = traceback_dir(
                dir3[b, : m[b], : n[b]], int(m[b]) - 1, int(n[b]) - 1
            )
        out.append(
            AlignmentResult(
                score=int(scores[b]),
                end_t=int(m[b]) - 1,
                end_q=int(n[b]) - 1,
                cigar=cigar,
                cells=int(m[b]) * int(n[b]),
            )
        )
    return out
