"""CIGAR representation, validation, and scoring.

Conventions match SAM: alignments are reported query-vs-target, ``M``
consumes both sequences, ``I`` consumes query only (insertion into the
target), ``D`` consumes target only (deletion from the target).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from ..errors import AlignmentError
from .scoring import Scoring

#: Valid CIGAR operation characters used by the aligner core.
OPS = "MIDNSHP=X"

_CIGAR_RE = re.compile(r"(\d+)([MIDNSHP=X])")

CigarOp = Tuple[int, str]  # (length, op)


@dataclass
class Cigar:
    """A run-length encoded alignment path."""

    ops: List[CigarOp]

    def __post_init__(self) -> None:
        for length, op in self.ops:
            if op not in OPS:
                raise AlignmentError(f"invalid CIGAR op {op!r}")
            if length <= 0:
                raise AlignmentError(f"non-positive CIGAR run length {length}{op}")

    @classmethod
    def from_string(cls, s: str) -> "Cigar":
        ops = [(int(n), op) for n, op in _CIGAR_RE.findall(s)]
        if s and "".join(f"{n}{op}" for n, op in ops) != s:
            raise AlignmentError(f"malformed CIGAR string {s!r}")
        return cls(ops)

    @classmethod
    def from_ops(cls, raw: Iterable[str]) -> "Cigar":
        """Build from a per-base op sequence, run-length encoding it."""
        ops: List[CigarOp] = []
        for op in raw:
            if ops and ops[-1][1] == op:
                ops[-1] = (ops[-1][0] + 1, op)
            else:
                ops.append((1, op))
        return cls(ops)

    def __str__(self) -> str:
        return "".join(f"{n}{op}" for n, op in self.ops)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cigar) and self.ops == other.ops

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def query_span(self) -> int:
        """Number of query bases consumed (M, I, =, X, S)."""
        return sum(n for n, op in self.ops if op in "MI=XS")

    @property
    def target_span(self) -> int:
        """Number of target bases consumed (M, D, N, =, X)."""
        return sum(n for n, op in self.ops if op in "MDN=X")

    @property
    def n_gap_bases(self) -> int:
        return sum(n for n, op in self.ops if op in "ID")

    @property
    def n_gap_opens(self) -> int:
        return sum(1 for _, op in self.ops if op in "ID")

    def merged(self) -> "Cigar":
        """Coalesce adjacent runs with equal ops."""
        out: List[CigarOp] = []
        for n, op in self.ops:
            if out and out[-1][1] == op:
                out[-1] = (out[-1][0] + n, op)
            else:
                out.append((n, op))
        return Cigar(out)

    def score(
        self, target: np.ndarray, query: np.ndarray, scoring: Scoring
    ) -> int:
        """Re-score this path against the sequences independently of DP.

        Used by the test suite to validate tracebacks: the path's score
        must equal the DP score even when tie-broken differently.
        """
        mat = scoring.matrix()
        ti = qi = 0
        total = 0
        for n, op in self.ops:
            if op in "M=X":
                t = target[ti : ti + n].astype(np.intp)
                s = query[qi : qi + n].astype(np.intp)
                if t.size != n or s.size != n:
                    raise AlignmentError("CIGAR overruns sequence ends")
                total += int(mat[t, s].sum())
                ti += n
                qi += n
            elif op == "D":
                total -= scoring.gap_cost(n)
                ti += n
            elif op == "I":
                total -= scoring.gap_cost(n)
                qi += n
            elif op == "S":
                qi += n
            else:
                raise AlignmentError(f"cannot score CIGAR op {op!r}")
        if ti != target.size or qi != query.size:
            raise AlignmentError(
                f"CIGAR spans ({ti},{qi}) do not cover sequences "
                f"({target.size},{query.size})"
            )
        return total

    def identity(self, target: np.ndarray, query: np.ndarray) -> float:
        """BLAST-style identity: matches / alignment columns."""
        ti = qi = 0
        matches = 0
        columns = 0
        for n, op in self.ops:
            if op in "M=X":
                matches += int(
                    (target[ti : ti + n] == query[qi : qi + n]).sum()
                )
                columns += n
                ti += n
                qi += n
            elif op == "D":
                columns += n
                ti += n
            elif op == "I":
                columns += n
                qi += n
            elif op == "S":
                qi += n
        return matches / columns if columns else 0.0
