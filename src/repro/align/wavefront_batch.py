"""Cross-read batched wavefront kernel: Eq. (4) across many pairs at once.

:func:`align_manymap` sweeps one (target, query) pair per call, paying
the NumPy dispatch overhead of every anti-diagonal for a single vector
of at most ``min(m, n)`` lanes.  This module stacks a *bucket* of pairs
into one 2-D wavefront — axis 0 is the pair ("lane"), axis 1 the
anti-diagonal slot — so a single vectorized sweep advances **all** pairs
in the bucket, amortizing the per-diagonal dispatch cost across reads
(the SWIPE inter-sequence trick applied to the paper's Eq. (4) layout).

Layout, per lane ``b`` with target length ``m_b`` and query length
``n_b`` (``Nmax = max n_b``):

* All difference arrays share the transformed column coordinate
  ``t'' = t - r + Nmax``.  For ``v``/``x`` this is the manymap Eq. (4)
  property: the dependency of cell ``(r, t)`` lands on the very slot it
  overwrites, so the batched update stays a plain in-place masked
  store, exactly as in the per-pair kernel.  Anchoring at the *shared*
  ``Nmax`` (rather than each lane's own ``n_b``) makes the sweep
  window of same-shape lanes coincide, so the padded column span of a
  bucket tracks the band width, not the spread of query lengths — and
  the per-diagonal target-code read degenerates to a contiguous slice.
* ``u``/``y`` use the same coordinate, which turns their same-``t``
  dependency into a uniform shift-by-one read — one contiguous copy
  per diagonal, shared by every lane.
* The running ``H`` values live per *offset* diagonal
  (``dd = r - 2t + m_b - 1``), as in the per-pair kernel.  That index
  is static for the whole sweep, so lanes that skip a diagonal (banded
  parity gaps, retirement) need no propagation work — ``H`` moves with
  one gather + one scatter per diagonal.

Per-lane *active masks* reproduce the banded corridor of each pair
independently (pairs of different band widths can share a bucket), and
Z-drop retirement turns a lane's mask off mid-sweep so hopeless
extensions stop costing cells.  Finished/retired lanes are compacted
away once they make up half the bucket.

Bit-identity: for every pair the scores, end cells, CIGARs, and the
deterministic counters (``dp_calls``/``dp_cells``/``band_*``/
``zdrop_hits`` and the ``band.width`` histogram) are identical to
calling :func:`align_manymap` per pair — regardless of how pairs are
grouped into buckets.  Only the ``wavefront.*`` occupancy/padding
telemetry depends on bucket composition (see
:data:`repro.obs.counters.SHAPE_DEPENDENT_PREFIXES`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import AlignmentError
from ..obs.counters import COUNTERS
from ..obs.hist import HISTOGRAMS
from ..seq.alphabet import AMBIG
from ._band import band_limits
from ._diag import X_CONT, Y_CONT, boundary_c, first_seed, traceback_dir
from .dp_reference import NEG, _degenerate, _validate
from .result import AlignmentResult
from .scoring import Scoring

#: Band sentinel for unbanded lanes: wide enough that the corridor never
#: clips, even (so parity tests against it reduce to the parity of r).
_NO_BAND = np.int64(1) << 40


def align_wavefront_batch(
    targets: Sequence[np.ndarray],
    queries: Sequence[np.ndarray],
    scoring: Scoring = Scoring(),
    mode: str = "global",
    path: bool = False,
    zdrop: Optional[int] = None,
    bands: Optional[Sequence[Optional[int]]] = None,
) -> List[AlignmentResult]:
    """Align ``queries[i]`` to ``targets[i]`` for all i in one wavefront.

    ``mode``/``path``/``zdrop`` apply to every pair; ``bands`` may give a
    different band (or ``None`` for unbanded) per pair. Results are
    bit-identical to per-pair :func:`align_manymap` calls.
    """
    if len(targets) != len(queries):
        raise AlignmentError(
            f"batch size mismatch: {len(targets)} targets, {len(queries)} queries"
        )
    if mode not in ("global", "extend"):
        raise AlignmentError(f"unknown mode {mode!r}")
    if zdrop is not None and mode != "extend":
        raise AlignmentError("zdrop only applies to mode='extend'")
    if bands is not None and len(bands) != len(targets):
        raise AlignmentError(
            f"bands length {len(bands)} does not match batch size {len(targets)}"
        )

    P = len(targets)
    results: List[Optional[AlignmentResult]] = [None] * P
    lanes: List[int] = []
    pairs = []
    for i in range(P):
        t, s = _validate(targets[i], queries[i])
        deg = _degenerate(t.size, s.size, scoring, path)
        if deg is not None:
            results[i] = deg
            continue
        lanes.append(i)
        pairs.append((t, s))
    if not lanes:
        return results  # type: ignore[return-value]

    B = len(lanes)
    m = np.array([t.size for t, _ in pairs], dtype=np.int64)
    n = np.array([s.size for _, s in pairs], dtype=np.int64)
    band_arr = np.full(B, -1, dtype=np.int64)
    lo = np.full(B, -_NO_BAND, dtype=np.int64)
    hi = np.full(B, _NO_BAND, dtype=np.int64)
    if bands is not None:
        for b, i in enumerate(lanes):
            if bands[i] is not None:
                band_arr[b] = bands[i]
                lo[b], hi[b] = band_limits(int(m[b]), int(n[b]), int(bands[i]))

    Mmax = int(m.max())
    Nmax = int(n.max())
    W = Nmax + 2  # +1 guard column so the u/y shift reads stay in bounds
    matflat = scoring.matrix().ravel()  # int32, row-major 5x5
    q, e = scoring.q, scoring.e
    oe = q + e
    neg = np.int32(NEG)

    T2 = np.full((B, Mmax), AMBIG, dtype=np.uint8)
    S2 = np.full((B, Nmax), AMBIG, dtype=np.uint8)
    for b, (t, s) in enumerate(pairs):
        T2[b, : t.size] = t
        S2[b, : s.size] = s
    # Flat substitution-matrix row offsets of the target codes; adding
    # the (static) query-code column gives the per-cell matrix index.
    TR = T2.astype(np.intp) * 5
    # In t'' coordinates the query index of a cell is static:
    # qj = Nmax - t''.  Pre-gather the query codes once.
    col = np.arange(W, dtype=np.int64)
    qidx = np.clip(Nmax - col[None, :].repeat(B, axis=0), 0, Nmax - 1)
    Sg = np.where(
        (col[None, :] >= Nmax - n[:, None] + 1) & (col[None, :] <= Nmax),
        np.take_along_axis(S2, qidx, axis=1),
        np.uint8(AMBIG),
    ).astype(np.intp)

    U = np.zeros((B, W), dtype=np.int32)
    Y = np.zeros((B, W), dtype=np.int32)
    V = np.zeros((B, W), dtype=np.int32)
    X = np.zeros((B, W), dtype=np.int32)
    # H per offset diagonal, re-anchored per lane at j = dd - m + Mmax so
    # that the column of cell (r, t'') is lane-independent:
    #   j = (Mmax + 2*Nmax - 1 - r) - 2*t''
    # One anti-diagonal therefore reads/writes a single shared strided
    # *view* of HD — no gather/scatter.
    WH = Mmax + Nmax - 1
    HD = np.full((B, WH), neg, dtype=np.int32)

    D = None
    DJ = 0
    flat_base = rowoff = None
    if path:
        DJ = Mmax * Nmax
        D = np.zeros((B, DJ + 1), dtype=np.uint8)
        # Cell (t, qj) stores at t*n + qj = t''*(n-1) + (r-Nmax)*n + Nmax;
        # rowoff shifts that into the flattened (B, DJ+1) buffer.
        flat_base = col[None, :] * (n - 1)[:, None] + Nmax
        rowoff = np.arange(B, dtype=np.int64) * (DJ + 1)

    track_best = mode == "extend"
    best = np.full(B, neg, dtype=np.int32)
    bt = np.zeros(B, dtype=np.int64)
    bq = np.zeros(B, dtype=np.int64)
    cells = np.zeros(B, dtype=np.int64)
    zdropped = np.zeros(B, dtype=bool)
    alive = np.ones(B, dtype=bool)
    orig = np.array(lanes, dtype=np.int64)

    padded_cells = 0
    active_cells = 0
    lanes_retired = 0

    def harvest(rows: np.ndarray) -> None:
        """Extract results for (current-index) lanes that just finished."""
        for b in rows:
            mb, nb = int(m[b]), int(n[b])
            if mode == "global":
                score = int(HD[b, nb - 1 - mb + Mmax])  # dd = n-1 re-anchored
                end_t, end_q = mb - 1, nb - 1
            else:
                score = int(best[b])
                end_t, end_q = int(bt[b]), int(bq[b])
            cigar = None
            if path:
                dirmat = D[b, : mb * nb].reshape(mb, nb)
                cigar = traceback_dir(dirmat, end_t, end_q)
            zflag = bool(zdropped[b])
            results[orig[b]] = AlignmentResult(
                score=score,
                end_t=end_t,
                end_q=end_q,
                cigar=cigar,
                cells=int(cells[b]),
                zdropped=zflag,
            )
            COUNTERS.inc("dp_calls")
            COUNTERS.inc("dp_cells", int(cells[b]))
            if band_arr[b] >= 0:
                width = 2 * int(band_arr[b]) + 1
                COUNTERS.inc("band_calls")
                COUNTERS.inc("band_width_sum", width)
                HISTOGRAMS.observe("band.width", width)
            if zflag:
                COUNTERS.inc("zdrop_hits")

    rows_idx = np.arange(B)
    r = 0
    r_stop = int((m + n).max()) - 1
    while alive.any() and r < r_stop:
        st0 = np.maximum(0, r - n + 1)
        en0 = np.minimum(m - 1, r)
        stb = np.maximum(st0, -((hi - r) // 2))
        enb = np.minimum(en0, (r - lo) // 2)
        act = alive & (stb <= enb)
        if act.any():
            stp = stb - r + Nmax
            enp = enb - r + Nmax
            cmin = int(stp[act].min())
            cmax = int(enp[act].max())
            L = cmax - cmin + 1
            cc = col[cmin : cmax + 1]
            A = act[:, None] & (cc >= stp[:, None]) & (cc <= enp[:, None])

            # Shift-by-one reads for the same-t u/y dependency.
            ush = U[:, cmin + 1 : cmax + 2].copy()
            ysh = Y[:, cmin + 1 : cmax + 2].copy()

            # Boundary seeds (same clipped-range conditions as per-pair).
            # In t'' coordinates both enter at lane-independent columns.
            fs = np.int32(first_seed(r, q, e))
            cr = np.int32(boundary_c(r, q, e))
            se = act & (enb == r)  # j=0 boundary enters at t'' = Nmax
            if se.any():
                rows = rows_idx[se]
                ush[rows, Nmax - cmin] = fs
                ysh[rows, Nmax - cmin] = -oe
                HD[rows, Mmax - 1 - r] = cr  # dd = m-1-r re-anchored
            ss = act & (stb == 0)  # i=0 boundary enters at t'' = Nmax - r
            if ss.any():
                rows = rows_idx[ss]
                V[rows, Nmax - r] = fs
                X[rows, Nmax - r] = -oe
                HD[rows, Mmax - 1 + r] = cr  # dd = r+m-1 re-anchored

            # Band edge re-seeds (per lane; no-ops for unbanded lanes).
            ut = (r - lo) // 2
            uy_ok = (
                act & ((r - lo) % 2 == 0) & (ut >= stb) & (ut <= enb) & (ut <= r - 1)
            )
            if uy_ok.any():
                rows = rows_idx[uy_ok]
                ccol = (ut - r + Nmax)[uy_ok] - cmin
                ush[rows, ccol] = -oe
                ysh[rows, ccol] = -oe
            vt = (r - hi) // 2
            vx_ok = (
                act & ((r - hi) % 2 == 0) & (vt >= stb) & (vt <= enb) & (vt >= 1)
            )
            if vx_ok.any():
                rows = rows_idx[vx_ok]
                ccol = (vt - r + Nmax)[vx_ok]
                V[rows, ccol] = -oe
                X[rows, ccol] = -oe

            Vl = V[:, cmin : cmax + 1]
            Xl = X[:, cmin : cmax + 1]

            # Target codes: t = t'' + r - Nmax is lane-independent, so
            # the matrix-row read is a contiguous slice.
            t_lo = cmin + r - Nmax
            sc = matflat[TR[:, t_lo : t_lo + L] + Sg[:, cmin : cmax + 1]]

            a = Xl + Vl
            bb = ysh + ush
            z = np.maximum(np.maximum(sc, a), bb)
            az = a - z + q
            bz = bb - z + q

            if path:
                # src bits 0/1/2 as uint8 bool-view arithmetic, then the
                # gap-continuation flags.
                ne_sc = z != sc
                bits = ne_sc.view(np.uint8) + (ne_sc & (z != a)).view(np.uint8)
                bits += (az > 0).view(np.uint8) * X_CONT
                bits += (bz > 0).view(np.uint8) * Y_CONT
                flat = flat_base[:, cmin : cmax + 1] + (
                    (r - Nmax) * n + rowoff
                )[:, None]
                D.reshape(-1)[flat[A]] = bits[A]

            u_new = z - Vl
            v_new = z - ush
            np.copyto(Xl, np.maximum(az, 0) - oe, where=A)
            np.copyto(Y[:, cmin : cmax + 1], np.maximum(bz, 0) - oe, where=A)
            np.copyto(U[:, cmin : cmax + 1], u_new, where=A)
            np.copyto(Vl, v_new, where=A)

            # H chain: the re-anchored column j = J0 - 2*t'' is shared by
            # every lane, so one negative-stride view covers the diagonal.
            J0 = Mmax + 2 * Nmax - 1 - r
            jstop = J0 - 2 * cmax - 2
            Hv = HD[:, J0 - 2 * cmin : (jstop if jstop >= 0 else None) : -2]
            Hnew = Hv + z
            np.copyto(Hv, Hnew, where=A)

            Lb = enb - stb + 1
            cells[act] += Lb[act]
            n_act = int(act.sum())
            padded_cells += n_act * L
            active_cells += int(Lb[act].sum())

            if track_best:
                Hm = np.where(A, Hnew, neg)
                dmax = Hm.max(axis=1)
                upd = act & (dmax > best)
                if upd.any():
                    # Ties take the largest t (first max of the t-descending
                    # per-pair scan) — i.e. the last occurrence here.
                    kk = (L - 1) - np.argmax(Hm[upd][:, ::-1], axis=1)
                    tb_new = kk + cmin + r - Nmax
                    best[upd] = dmax[upd]
                    bt[upd] = tb_new
                    bq[upd] = r - tb_new
                if zdrop is not None:
                    zd = act & (best.astype(np.int64) - dmax > zdrop)
                    if zd.any():
                        zdropped |= zd
                        alive &= ~zd
                        lanes_retired += int(zd.sum())
                        harvest(rows_idx[zd])

        fin = alive & (m + n - 2 == r)
        if fin.any():
            alive &= ~fin
            harvest(rows_idx[fin])

        # Compact away finished/retired lanes once they dominate.
        nb_alive = int(alive.sum())
        if nb_alive and B >= 8 and 2 * nb_alive <= B:
            keep = rows_idx[alive]
            m, n, lo, hi, band_arr = m[keep], n[keep], lo[keep], hi[keep], band_arr[keep]
            TR, Sg = TR[keep], Sg[keep]
            U, Y, V, X, HD = U[keep], Y[keep], V[keep], X[keep], HD[keep]
            best, bt, bq = best[keep], bt[keep], bq[keep]
            cells, zdropped, orig = cells[keep], zdropped[keep], orig[keep]
            if path:
                D = D[keep]
                flat_base = flat_base[keep]
                rowoff = np.arange(nb_alive, dtype=np.int64) * (DJ + 1)
            alive = np.ones(nb_alive, dtype=bool)
            B = nb_alive
            rows_idx = np.arange(B)
        r += 1

    if alive.any():  # defensive: every lane finishes at r = m + n - 2
        harvest(rows_idx[alive])

    COUNTERS.inc("wavefront.calls")
    COUNTERS.inc("wavefront.lanes", len(lanes))
    COUNTERS.inc("wavefront.cells_active", active_cells)
    COUNTERS.inc("wavefront.cells_padded", padded_cells)
    if lanes_retired:
        COUNTERS.inc("wavefront.lanes_retired", lanes_retired)
    if padded_cells:
        HISTOGRAMS.observe(
            "wavefront.occupancy", round(100.0 * active_cells / padded_cells)
        )
    HISTOGRAMS.observe("wavefront.lanes", len(lanes))
    return results  # type: ignore[return-value]


def align_wavefront(
    target: np.ndarray,
    query: np.ndarray,
    scoring: Scoring = Scoring(),
    mode: str = "global",
    path: bool = False,
    zdrop: Optional[int] = None,
    band: Optional[int] = None,
) -> AlignmentResult:
    """Per-pair adapter: a one-lane batch (engine-registry signature)."""
    return align_wavefront_batch(
        [target],
        [query],
        scoring,
        mode=mode,
        path=path,
        zdrop=zdrop,
        bands=[band] if band is not None else None,
    )[0]
