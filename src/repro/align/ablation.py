"""Ablation kernel: the two-array-swap alternative (§4.3.1).

The paper rejects one obvious fix for the intra-loop dependency —
"use two arrays and swap them in each iteration, but it will double the
space usage". This kernel implements exactly that: ``v``/``x`` each get
a read copy and a write copy, swapped per diagonal. No shift is needed
(like manymap) but the working set doubles and an extra buffer rotation
runs per diagonal — the benchmark ``bench_ablation_layouts`` quantifies
both against the paper's choice.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AlignmentError
from ._diag import boundary_c, diag_range, first_seed
from .dp_reference import NEG, _degenerate, _validate
from .result import AlignmentResult
from .scoring import Scoring


def align_swap(
    target: np.ndarray,
    query: np.ndarray,
    scoring: Scoring = Scoring(),
    mode: str = "global",
    path: bool = False,
    zdrop: Optional[int] = None,
) -> AlignmentResult:
    """Eq. (3) with double-buffered v/x arrays (score modes only)."""
    if path:
        raise AlignmentError("the swap ablation kernel is score-only")
    if mode not in ("global", "extend"):
        raise AlignmentError(f"unknown mode {mode!r}")
    if zdrop is not None and mode != "extend":
        raise AlignmentError("zdrop only applies to mode='extend'")
    t, s = _validate(target, query)
    m, n = t.size, s.size
    deg = _degenerate(m, n, scoring, False)
    if deg is not None:
        return deg

    mat = scoring.matrix().astype(np.int64)
    q, e = scoring.q, scoring.e
    oe = q + e

    U = np.zeros(m, dtype=np.int64)
    Y = np.zeros(m, dtype=np.int64)
    V_r = np.zeros(m, dtype=np.int64)  # read buffer (previous diagonal)
    X_r = np.zeros(m, dtype=np.int64)
    V_w = np.zeros(m, dtype=np.int64)  # write buffer (current diagonal)
    X_w = np.zeros(m, dtype=np.int64)
    HD = np.full(m + n - 1, NEG, dtype=np.int64)

    track_best = mode == "extend" or zdrop is not None
    best = NEG
    best_cell = (0, 0)
    cells = 0
    zdropped = False
    for r in range(m + n - 1):
        st, en = diag_range(r, m, n)
        L = en - st + 1
        if en == r:
            U[r] = first_seed(r, q, e)
            Y[r] = -oe
            HD[m - 1 - r] = boundary_c(r, q, e)
        if st == 0:
            HD[r + m - 1] = boundary_c(r, q, e)

        sl = slice(st, en + 1)
        # Shifted reads come from the READ buffer — no hazard, no shift
        # instruction, but twice the arrays to keep hot.
        vsh = np.empty(L, dtype=np.int64)
        xsh = np.empty(L, dtype=np.int64)
        if st == 0:
            vsh[0] = first_seed(r, q, e)
            xsh[0] = -oe
            vsh[1:] = V_r[0:en]
            xsh[1:] = X_r[0:en]
        else:
            vsh[:] = V_r[st - 1 : en]
            xsh[:] = X_r[st - 1 : en]

        sc = mat[t[sl], s[r - en : r - st + 1][::-1]]
        a = xsh + vsh
        b = Y[sl] + U[sl]
        z = np.maximum(np.maximum(sc, a), b)
        u_new = z - vsh
        V_w[sl] = z - U[sl]
        X_w[sl] = np.maximum(a - z + q, 0) - oe
        Y[sl] = np.maximum(b - z + q, 0) - oe
        U[sl] = u_new
        # The swap: write buffer becomes next diagonal's read buffer.
        V_r, V_w = V_w, V_r
        X_r, X_w = X_w, X_r

        hv = HD[r - 2 * en + m - 1 : r - 2 * st + m : 2]
        hv += z[::-1]
        cells += L
        if track_best:
            k = int(hv.argmax())
            diag_max = int(hv[k])
            if diag_max > best:
                best = diag_max
                tt_best = en - k
                best_cell = (tt_best, r - tt_best)
            if zdrop is not None and best - diag_max > zdrop:
                zdropped = True
                break

    if mode == "global":
        score = int(HD[n - 1]) if not zdropped else NEG
        end_t, end_q = m - 1, n - 1
    else:
        score = best
        end_t, end_q = best_cell
    return AlignmentResult(
        score=score, end_t=end_t, end_q=end_q, cigar=None,
        cells=cells, zdropped=zdropped,
    )
