"""Two-piece affine gap penalty (minimap2's actual scoring model).

The paper's formulas use one-piece affine costs "for simplicity"
(§3.2); real minimap2 scores gaps with ``min(q + k·e, q2 + k·e2)``
where the second piece (``q2=24, e2=1`` by default) makes long
structural gaps affordable without inviting short spurious ones. This
module implements the full two-piece recurrence with four gap states::

    H[i][j] = max(H[i-1][j-1] + s, E[i][j], F[i][j], E2[i][j], F2[i][j])
    E [i][j] = max(H[i-1][j] - q,  E [i-1][j]) - e      (piece 1, in T)
    E2[i][j] = max(H[i-1][j] - q2, E2[i-1][j]) - e2     (piece 2, in T)
    F/F2 symmetric along j

row-vectorized like the one-piece oracle (the closed-form prefix-max F
trick applies to each piece independently). Traceback distinguishes the
pieces so CIGAR gap runs are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import AlignmentError
from .cigar import Cigar
from .dp_reference import NEG, _degenerate, _validate
from .result import AlignmentResult
from .scoring import Scoring


@dataclass(frozen=True)
class TwoPieceScoring:
    """Substitution scores plus a two-piece gap cost."""

    match: int = 2
    mismatch: int = 4
    q: int = 4
    e: int = 2
    q2: int = 24
    e2: int = 1
    sc_ambi: int = 1
    zdrop: int = 400

    def __post_init__(self) -> None:
        if self.match <= 0 or self.e <= 0 or self.e2 <= 0:
            raise AlignmentError(f"invalid two-piece scoring: {self}")
        if self.e2 >= self.e:
            raise AlignmentError(
                "the second piece must have the SHALLOWER slope (e2 < e); "
                f"got e={self.e}, e2={self.e2}"
            )
        if self.q2 <= self.q:
            raise AlignmentError(
                "the second piece must have the LARGER open cost (q2 > q); "
                f"got q={self.q}, q2={self.q2}"
            )

    @property
    def one_piece(self) -> Scoring:
        """The first gap piece as a plain :class:`Scoring`."""
        return Scoring(
            match=self.match, mismatch=self.mismatch, q=self.q, e=self.e,
            sc_ambi=self.sc_ambi, zdrop=self.zdrop,
        )

    def matrix(self) -> np.ndarray:
        return self.one_piece.matrix()

    def gap_cost(self, length: int) -> int:
        """min over the two pieces — the effective piecewise-linear cost."""
        if length < 0:
            raise AlignmentError(f"negative gap length {length}")
        if length == 0:
            return 0
        return min(self.q + length * self.e, self.q2 + length * self.e2)

    @property
    def crossover_length(self) -> int:
        """Gap length where piece 2 becomes cheaper than piece 1."""
        # q + L e > q2 + L e2  <=>  L > (q2 - q) / (e - e2)
        return int(np.ceil((self.q2 - self.q) / (self.e - self.e2)))


#: minimap2's map-pb two-piece defaults.
MAP_PB_2P = TwoPieceScoring(match=2, mismatch=5, q=4, e=2, q2=24, e2=1)


def align_two_piece(
    target: np.ndarray,
    query: np.ndarray,
    scoring: TwoPieceScoring = TwoPieceScoring(),
    mode: str = "global",
    path: bool = False,
) -> AlignmentResult:
    """Two-piece affine-gap semi-global alignment (row-vectorized)."""
    if mode not in ("global", "extend"):
        raise AlignmentError(f"unknown mode {mode!r}")
    t, s = _validate(target, query)
    m, n = t.size, s.size
    deg = _degenerate_2p(m, n, scoring, path)
    if deg is not None:
        return deg

    mat = scoring.matrix().astype(np.int64)
    q, e, q2, e2 = scoring.q, scoring.e, scoring.q2, scoring.e2
    ramp1 = e * np.arange(n + 1, dtype=np.int64)
    ramp2 = e2 * np.arange(n + 1, dtype=np.int64)

    Hprev = np.empty(n + 1, dtype=np.int64)
    Hprev[0] = 0
    j_idx = np.arange(1, n + 1, dtype=np.int64)
    Hprev[1:] = -np.minimum(q + e * j_idx, q2 + e2 * j_idx)
    E = np.full(n + 1, NEG, dtype=np.int64)
    E2 = np.full(n + 1, NEG, dtype=np.int64)

    keep = path
    if keep:
        H_all = np.empty((m + 1, n + 1), dtype=np.int64)
        E_all = np.full((m + 1, n + 1), NEG, dtype=np.int64)
        E2_all = np.full((m + 1, n + 1), NEG, dtype=np.int64)
        F_all = np.full((m + 1, n + 1), NEG, dtype=np.int64)
        F2_all = np.full((m + 1, n + 1), NEG, dtype=np.int64)
        H_all[0] = Hprev

    best = NEG
    best_ij = (0, 0)
    for i in range(1, m + 1):
        E[1:] = np.maximum(Hprev[1:] - q, E[1:]) - e
        E2[1:] = np.maximum(Hprev[1:] - q2, E2[1:]) - e2
        srow = mat[t[i - 1], s]
        hnof = np.maximum(Hprev[:-1] + srow, np.maximum(E[1:], E2[1:]))
        h0 = -min(q + e * i, q2 + e2 * i)
        A = np.empty(n + 1, dtype=np.int64)
        A[0] = h0
        A[1:] = hnof
        P1 = np.maximum.accumulate(A + ramp1)
        F = P1[:-1] - q - ramp1[1:]
        P2 = np.maximum.accumulate(A + ramp2)
        F2 = P2[:-1] - q2 - ramp2[1:]
        Hrow = np.maximum(hnof, np.maximum(F, F2))
        Hcur = np.empty(n + 1, dtype=np.int64)
        Hcur[0] = h0
        Hcur[1:] = Hrow
        if keep:
            H_all[i] = Hcur
            E_all[i, 1:] = E[1:]
            E2_all[i, 1:] = E2[1:]
            F_all[i, 1:] = F
            F2_all[i, 1:] = F2
        row_best = int(Hrow.max())
        if row_best > best:
            best = row_best
            best_ij = (i, int(Hrow.argmax()) + 1)
        Hprev = Hcur

    if mode == "global":
        score = int(Hprev[n])
        end_i, end_j = m, n
    else:
        score = best
        end_i, end_j = best_ij

    cigar = None
    if path:
        cigar = _traceback_2p(
            H_all, E_all, E2_all, F_all, F2_all, scoring, end_i, end_j
        )
    return AlignmentResult(
        score=score, end_t=end_i - 1, end_q=end_j - 1, cigar=cigar,
        cells=m * n,
    )


def score_cigar_two_piece(
    cigar: Cigar, target: np.ndarray, query: np.ndarray, sc: TwoPieceScoring
) -> int:
    """Re-score a path under two-piece gap costs (test oracle helper)."""
    mat = sc.matrix()
    ti = qi = 0
    total = 0
    for nrun, op in cigar.ops:
        if op in "M=X":
            total += int(mat[target[ti : ti + nrun].astype(np.intp),
                             query[qi : qi + nrun].astype(np.intp)].sum())
            ti += nrun
            qi += nrun
        elif op == "D":
            total -= sc.gap_cost(nrun)
            ti += nrun
        elif op == "I":
            total -= sc.gap_cost(nrun)
            qi += nrun
        else:
            raise AlignmentError(f"cannot score CIGAR op {op!r}")
    if ti != target.size or qi != query.size:
        raise AlignmentError("CIGAR does not cover the sequences")
    return total


def _degenerate_2p(m, n, scoring, path) -> Optional[AlignmentResult]:
    if m and n:
        return None
    if m == 0 and n == 0:
        return AlignmentResult(0, -1, -1, Cigar([]) if path else None, 0)
    if m == 0:
        cig = Cigar([(n, "I")]) if path else None
        return AlignmentResult(-scoring.gap_cost(n), -1, n - 1, cig, 0)
    cig = Cigar([(m, "D")]) if path else None
    return AlignmentResult(-scoring.gap_cost(m), m - 1, -1, cig, 0)


def _traceback_2p(H, E, E2, F, F2, sc, i, j) -> Cigar:
    """Value-based traceback over all five matrices."""
    ops_rev = []
    state = "M"
    while i > 0 or j > 0:
        if state == "M":
            if i == 0:
                ops_rev.append((j, "I"))
                break
            if j == 0:
                ops_rev.append((i, "D"))
                break
            h = H[i, j]
            if h != E[i, j] and h != E2[i, j] and h != F[i, j] and h != F2[i, j]:
                ops_rev.append((1, "M"))
                i -= 1
                j -= 1
            elif h == E[i, j]:
                state = "E"
            elif h == E2[i, j]:
                state = "E2"
            elif h == F[i, j]:
                state = "F"
            else:
                state = "F2"
        elif state in ("E", "E2"):
            ops_rev.append((1, "D"))
            mat_, qq, ee = (E, sc.q, sc.e) if state == "E" else (E2, sc.q2, sc.e2)
            cont = i >= 2 and mat_[i, j] == mat_[i - 1, j] - ee
            i -= 1
            state = state if cont else "M"
        else:
            ops_rev.append((1, "I"))
            mat_, qq, ee = (F, sc.q, sc.e) if state == "F" else (F2, sc.q2, sc.e2)
            cont = j >= 2 and mat_[i, j] == mat_[i, j - 1] - ee
            j -= 1
            state = state if cont else "M"
    return Cigar.from_ops(
        op for count, op in reversed(ops_rev) for _ in range(count)
    ).merged()
