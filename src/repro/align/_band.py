"""Band clipping for the anti-diagonal kernels (minimap2's ``-r``).

A band restricts the DP to offset diagonals ``d = j - i`` within
``[lo, hi] = [min(0, n-m) - band, max(0, n-m) + band]`` — the
corner-to-corner corridor widened by ``band`` on each side, which is
what minimap2's global gap-fill uses. In ``(r, t)`` coordinates
``d = r - 2t``, so each anti-diagonal's ``t`` range shrinks to::

    t ∈ [ ceil((r - hi) / 2),  floor((r - lo) / 2) ]

Because band membership depends only on ``d``, a cell's diagonal chain
(H dependency) never crosses the band edge; only the ``u,y`` dependency
(at ``d - 1``) of cells sitting exactly on ``d == lo``, and the ``v,x``
dependency (at ``d + 1``) of cells on ``d == hi``, reference
out-of-band neighbours. Those single slots per diagonal are re-seeded
with the pessimistic-but-finite value ``-(q+e)`` — the same
treat-the-edge-as-a-fresh-gap approximation ksw2's banded kernels use.
The resulting score never exceeds the unbanded optimum and equals it
whenever the optimal path stays inside the corridor (property-tested).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import AlignmentError


def band_limits(m: int, n: int, band: int) -> Tuple[int, int]:
    """Allowed offset-diagonal interval ``[lo, hi]`` for a given band."""
    if band < 0:
        raise AlignmentError(f"band must be non-negative: {band}")
    return min(0, n - m) - band, max(0, n - m) + band


def band_range(r: int, st: int, en: int, lo: int, hi: int) -> Tuple[int, int]:
    """Clip diagonal ``r``'s ``[st, en]`` to the band corridor."""
    st_b = max(st, -((hi - r) // 2))  # ceil((r - hi) / 2)
    en_b = min(en, (r - lo) // 2)  # floor((r - lo) / 2)
    return st_b, en_b


def edge_patches(
    r: int, st_b: int, en_b: int, lo: int, hi: int
) -> Tuple[Optional[int], Optional[int]]:
    """``(uy_t, vx_t)``: the t-slots needing the edge re-seed this diagonal.

    ``uy_t`` is the cell on ``d == lo`` whose ``(r-1, t)`` dependency is
    out of band (skipped when that dependency is the j=0 boundary, i.e.
    ``t == r``). ``vx_t`` is the cell on ``d == hi`` whose ``(r-1, t-1)``
    dependency is out of band (skipped for the i=0 boundary, ``t == 0``).
    """
    uy_t = vx_t = None
    if (r - lo) % 2 == 0:
        t = (r - lo) // 2
        if st_b <= t <= en_b and t <= r - 1:
            uy_t = t
    if (r - hi) % 2 == 0:
        t = (r - hi) // 2
        if st_b <= t <= en_b and t >= 1:
            vx_t = t
    return uy_t, vx_t
