"""Equation (3) vectorized per anti-diagonal — minimap2's kernel model.

``u, v, x, y`` are all indexed by ``t`` (minimap2's layout, Figure 2b).
The dependency of cell ``(r, t)`` on ``v_{r-1,t-1}`` / ``x_{r-1,t-1}``
therefore sits one slot to the *left* of the slot being overwritten, so
each diagonal must materialize shifted copies of ``V`` and ``X`` before
updating them — the NumPy analogue of the extra ``_mm_slli_si128`` /
``_mm_alignr_epi8`` work in minimap2's SSE kernel (Figure 3a). Those two
extra O(L) copies per diagonal are the measurable cost the manymap
layout removes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AlignmentError
from ..obs.counters import COUNTERS
from ..obs.hist import HISTOGRAMS
from ._band import band_limits, band_range, edge_patches
from ._diag import (
    X_CONT,
    Y_CONT,
    boundary_c,
    diag_range,
    first_seed,
    traceback_dir,
)
from .dp_reference import NEG, _degenerate, _validate
from .result import AlignmentResult
from .scoring import Scoring


def align_mm2(
    target: np.ndarray,
    query: np.ndarray,
    scoring: Scoring = Scoring(),
    mode: str = "global",
    path: bool = False,
    zdrop: Optional[int] = None,
    band: Optional[int] = None,
) -> AlignmentResult:
    """Vectorized Eq. (3) alignment in the minimap2 memory layout.

    ``band`` has the same semantics as in :func:`align_manymap`.
    """
    if mode not in ("global", "extend"):
        raise AlignmentError(f"unknown mode {mode!r}")
    if zdrop is not None and mode != "extend":
        raise AlignmentError("zdrop only applies to mode='extend'")
    t, s = _validate(target, query)
    m, n = t.size, s.size
    deg = _degenerate(m, n, scoring, path)
    if deg is not None:
        return deg
    band_lo = band_hi = None
    if band is not None:
        band_lo, band_hi = band_limits(m, n, band)

    mat = scoring.matrix().astype(np.int64)
    q, e = scoring.q, scoring.e
    oe = q + e

    U = np.zeros(m, dtype=np.int64)
    Y = np.zeros(m, dtype=np.int64)
    V = np.zeros(m, dtype=np.int64)
    X = np.zeros(m, dtype=np.int64)
    HD = np.full(m + n - 1, NEG, dtype=np.int64)
    dirflat = np.zeros(m * n, dtype=np.uint8) if path else None
    flat_base = np.arange(m, dtype=np.int64) * (n - 1) if path else None
    tcodes = t.astype(np.intp)
    scodes = s.astype(np.intp)

    track_best = mode == "extend" or zdrop is not None
    best = NEG
    best_cell = (0, 0)
    cells = 0
    zdropped = False
    for r in range(m + n - 1):
        st, en = diag_range(r, m, n)
        if band is not None:
            st, en = band_range(r, st, en, band_lo, band_hi)
            if st > en:
                continue
        L = en - st + 1
        if en == r:
            U[r] = first_seed(r, q, e)
            Y[r] = -oe
            HD[m - 1 - r] = boundary_c(r, q, e)
        if st == 0:
            HD[r + m - 1] = boundary_c(r, q, e)
        if band is not None:
            uy_t, vx_t = edge_patches(r, st, en, band_lo, band_hi)
            if uy_t is not None:
                U[uy_t] = -oe
                Y[uy_t] = -oe
            if vx_t is not None:
                # The shifted copy reads V[t-1]/X[t-1] in this layout.
                V[vx_t - 1] = -oe
                X[vx_t - 1] = -oe

        sl = slice(st, en + 1)
        # --- the minimap2 shift: build v_{r-1,t-1} / x_{r-1,t-1} vectors ---
        vsh = np.empty(L, dtype=np.int64)
        xsh = np.empty(L, dtype=np.int64)
        if st == 0:
            vsh[0] = first_seed(r, q, e)
            xsh[0] = -oe
            vsh[1:] = V[0:en]
            xsh[1:] = X[0:en]
        else:
            vsh[:] = V[st - 1 : en]
            xsh[:] = X[st - 1 : en]
        # --------------------------------------------------------------------

        sc = mat[tcodes[sl], scodes[r - en : r - st + 1][::-1]]
        a = xsh + vsh
        b = Y[sl] + U[sl]
        z = np.maximum(np.maximum(sc, a), b)

        if path:
            bits = np.where(z == sc, 0, np.where(z == a, 1, 2))
            bits += (a - z + q > 0) * X_CONT
            bits += (b - z + q > 0) * Y_CONT
            dirflat[flat_base[sl] + r] = bits

        u_new = z - vsh
        v_new = z - U[sl]
        x_new = np.maximum(a - z + q, 0) - oe
        y_new = np.maximum(b - z + q, 0) - oe
        U[sl] = u_new
        V[sl] = v_new
        X[sl] = x_new
        Y[sl] = y_new

        hv = HD[r - 2 * en + m - 1 : r - 2 * st + m : 2]  # t = en .. st
        hv += z[::-1]
        cells += L
        if track_best:
            k = int(hv.argmax())
            diag_max = int(hv[k])
            if diag_max > best:
                best = diag_max
                tt_best = en - k
                best_cell = (tt_best, r - tt_best)
            if zdrop is not None and best - diag_max > zdrop:
                zdropped = True
                break

    if mode == "global":
        score = int(HD[n - 1]) if not zdropped else NEG
        end_t, end_q = m - 1, n - 1
    else:
        score = best
        end_t, end_q = best_cell

    COUNTERS.inc("dp_calls")
    COUNTERS.inc("dp_cells", cells)
    if band is not None:
        COUNTERS.inc("band_calls")
        COUNTERS.inc("band_width_sum", 2 * band + 1)
        HISTOGRAMS.observe("band.width", 2 * band + 1)
    if zdropped:
        COUNTERS.inc("zdrop_hits")

    cigar = None
    if path:
        cigar = traceback_dir(dirflat.reshape(m, n), end_t, end_q)
    return AlignmentResult(
        score=score,
        end_t=end_t,
        end_q=end_q,
        cigar=cigar,
        cells=cells,
        zdropped=zdropped,
    )
