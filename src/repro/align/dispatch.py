"""Kernel-dispatch layer: capability registry + cross-read DP batching.

The aligner used to hard-wire one per-pair engine (``ENGINES``) and a
private segment-bucketing loop inside ``core/aligner.py``. This module
replaces both with a small registry of *kernel capabilities* and a
:class:`KernelDispatch` executor that any pipeline stage can hand a flat
list of :class:`DPJob` s:

* **per-pair kernels** (``reference``/``scalar``/``mm2``/``manymap``)
  run each job through one engine call;
* **cross-read batched kernels** (``wavefront``, legacy ``batched``)
  stack many jobs into a single wavefront sweep, amortizing the
  per-anti-diagonal NumPy dispatch cost across reads.

Dispatch groups jobs by ``(mode, path, zdrop)``, buckets them on a
doubling size ladder so one long outlier cannot inflate a whole batch's
padding, splits path-mode batches to a direction-matrix memory budget,
and falls back to the per-pair engine for oversize or otherwise
unbatchable jobs. Because every batched kernel in the registry is
bit-identical to its per-pair fallback, the routing decisions (bucket
composition, fallback, sub-batch splits) can never change results —
only throughput — which is what keeps PAF output byte-identical across
backends and chunk shapes.

Only grouping-dependent telemetry (``dispatch.*``; see
:data:`repro.obs.counters.SHAPE_DEPENDENT_PREFIXES`) varies with how
jobs are pooled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AlignmentError
from ..obs.counters import COUNTERS
from ..obs.events import EVENTS
from ..obs.tracing import TRACER
from .batch_kernel import align_batch
from .diff_scalar import align_diff_scalar
from .dp_reference import align_reference
from .manymap_kernel import align_manymap
from .mm2_kernel import align_mm2
from .result import AlignmentResult
from .scoring import Scoring
from .wavefront_batch import align_wavefront_batch

__all__ = [
    "KernelSpec",
    "DPJob",
    "KernelDispatch",
    "register_kernel",
    "get_kernel",
    "kernel_names",
    "DEFAULT_KERNEL",
]

#: Kernel used when nothing is configured: the cross-read wavefront.
DEFAULT_KERNEL = "wavefront"

#: Doubling size ladder for cross-read buckets (legacy prefix retained
#: so default grouping of small gap segments is unchanged).
_WAVEFRONT_BUCKETS = (24, 48, 96, 192, 384, 768, 1536, 3072, 6144)


@dataclass(frozen=True)
class KernelSpec:
    """Capabilities of one registered kernel.

    ``fn`` is the per-pair engine (also the fallback for unbatchable
    jobs). ``batch_fn``, when set, takes
    ``(targets, queries, scoring, mode, path, zdrop, bands)`` and must
    return per-pair bit-identical results.
    """

    name: str
    fn: Callable[..., AlignmentResult]
    banded: bool = False
    supports_zdrop: bool = True
    batch_fn: Optional[Callable[..., List[AlignmentResult]]] = None
    batch_modes: Tuple[str, ...] = ()
    batch_banded: bool = False
    batch_zdrop: bool = False
    batch_max: int = 0
    batch_buckets: Tuple[int, ...] = ()
    description: str = ""

    @property
    def cross_read(self) -> bool:
        return self.batch_fn is not None


@dataclass(frozen=True)
class DPJob:
    """One base-level DP request (a gap segment or an extension)."""

    target: np.ndarray
    query: np.ndarray
    mode: str = "global"
    path: bool = False
    zdrop: Optional[int] = None
    band: Optional[int] = None

    @property
    def size(self) -> int:
        return max(self.target.size, self.query.size)


def _legacy_batch(targets, queries, scoring, mode, path, zdrop, bands):
    """Adapter: the (global/unbanded) SWIPE batch kernel."""
    if mode != "global" or zdrop is not None or bands is not None:
        raise AlignmentError("legacy batch kernel is global/unbanded only")
    return align_batch(targets, queries, scoring, path=path)


_KERNELS: Dict[str, KernelSpec] = {}


def register_kernel(spec: KernelSpec) -> KernelSpec:
    """Add (or replace) a kernel in the registry."""
    _KERNELS[spec.name] = spec
    return spec


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel spec by name."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise AlignmentError(
            f"unknown kernel {name!r}; available: {sorted(_KERNELS)}"
        ) from None


def kernel_names() -> List[str]:
    return sorted(_KERNELS)


register_kernel(
    KernelSpec(
        name="reference",
        fn=align_reference,
        banded=False,
        supports_zdrop=False,
        description="Eq. (1) full-matrix oracle (per pair)",
    )
)
register_kernel(
    KernelSpec(
        name="scalar",
        fn=align_diff_scalar,
        banded=False,
        description="Eq. (3) scalar difference loop (per pair)",
    )
)
register_kernel(
    KernelSpec(
        name="mm2",
        fn=align_mm2,
        banded=True,
        description="Eq. (3) anti-diagonal vectors + shift (per pair)",
    )
)
register_kernel(
    KernelSpec(
        name="manymap",
        fn=align_manymap,
        banded=True,
        description="Eq. (4) in-place anti-diagonal vectors (per pair)",
    )
)
register_kernel(
    KernelSpec(
        name="batched",
        fn=align_manymap,
        banded=True,
        batch_fn=_legacy_batch,
        batch_modes=("global",),
        batch_max=192,
        batch_buckets=(24, 48, 96, 192),
        description="SWIPE segment batcher (global gaps), manymap fallback",
    )
)
register_kernel(
    KernelSpec(
        name="wavefront",
        fn=align_manymap,
        banded=True,
        batch_fn=align_wavefront_batch,
        batch_modes=("global", "extend"),
        batch_banded=True,
        batch_zdrop=True,
        batch_max=_WAVEFRONT_BUCKETS[-1],
        batch_buckets=_WAVEFRONT_BUCKETS,
        description="cross-read Eq. (4) wavefront (banded + z-drop)",
    )
)


class KernelDispatch:
    """Executes flat job lists through one kernel spec.

    Parameters
    ----------
    kernel:
        Registry name or a :class:`KernelSpec`.
    scoring:
        Scoring applied to every job.
    batch_max:
        Largest ``max(|T|, |Q|)`` eligible for cross-read batching;
        bigger jobs run per pair. ``None`` uses the kernel default.
    batch_buckets:
        Ascending size-bucket caps. ``None`` uses the kernel default.
    path_mem:
        Byte budget for one batch's direction matrices in path mode;
        batches are split to stay under it.
    lane_max:
        Hard cap on pairs per batched call.
    """

    #: A bucket of cap C only batches with >= max(2, C // min_lane_div)
    #: lanes; thinner buckets fall back to the per-pair engine.
    min_lane_div = 96

    def __init__(
        self,
        kernel: str = DEFAULT_KERNEL,
        scoring: Scoring = Scoring(),
        batch_max: Optional[int] = None,
        batch_buckets: Optional[Sequence[int]] = None,
        path_mem: int = 64 << 20,
        lane_max: int = 512,
    ) -> None:
        self.spec = kernel if isinstance(kernel, KernelSpec) else get_kernel(kernel)
        self.scoring = scoring
        self.batch_max = (
            int(batch_max) if batch_max is not None else self.spec.batch_max
        )
        buckets = (
            tuple(batch_buckets)
            if batch_buckets is not None
            else self.spec.batch_buckets
        )
        if any(b <= 0 for b in buckets) or list(buckets) != sorted(buckets):
            raise AlignmentError(
                f"batch_buckets must be positive and ascending, got {buckets!r}"
            )
        self.batch_buckets = tuple(b for b in buckets if b <= self.batch_max)
        self.path_mem = path_mem
        self.lane_max = lane_max

    @property
    def banded(self) -> bool:
        """Whether the per-pair engine (the fallback) supports banding."""
        return self.spec.banded

    # ---------------------------------------------------------------- #

    def run(self, jobs: Sequence[DPJob]) -> List[AlignmentResult]:
        """Execute all jobs; results are positionally aligned to jobs."""
        results: List[Optional[AlignmentResult]] = [None] * len(jobs)
        if not jobs:
            return []
        COUNTERS.inc("dispatch.jobs", len(jobs))
        groups: Dict[Tuple[str, bool, Optional[int]], List[int]] = {}
        for i, job in enumerate(jobs):
            groups.setdefault((job.mode, job.path, job.zdrop), []).append(i)
        for (mode, path, zdrop), idxs in groups.items():
            self._run_group(jobs, idxs, mode, path, zdrop, results)
        return results  # type: ignore[return-value]

    def _run_group(
        self,
        jobs: Sequence[DPJob],
        idxs: List[int],
        mode: str,
        path: bool,
        zdrop: Optional[int],
        results: List[Optional[AlignmentResult]],
    ) -> None:
        spec = self.spec
        batchable = (
            spec.batch_fn is not None
            and mode in spec.batch_modes
            and (zdrop is None or spec.batch_zdrop)
            and bool(self.batch_buckets)
        )
        singles: List[int] = []
        fallback_reasons: Dict[str, int] = {}

        def _fall(i: int, reason: str) -> None:
            singles.append(i)
            fallback_reasons[reason] = fallback_reasons.get(reason, 0) + 1

        buckets: Dict[int, List[int]] = {}
        if batchable:
            cap_max = self.batch_buckets[-1]
            for i in idxs:
                job = jobs[i]
                if job.size > cap_max:
                    _fall(i, "oversize")
                    continue
                if job.band is not None and not spec.batch_banded:
                    _fall(i, "unbatchable_band")
                    continue
                for cap in self.batch_buckets:
                    if job.size <= cap:
                        buckets.setdefault(cap, []).append(i)
                        break
        else:
            for i in idxs:
                _fall(i, "capability")

        for cap in sorted(buckets):
            bidxs = buckets[cap]
            # Per-diagonal sweep cost grows with the bucket's size cap,
            # so big buckets need enough lanes to amortize it; thin
            # batches of long pairs run faster per pair.
            if len(bidxs) < max(2, cap // self.min_lane_div):
                for i in bidxs:
                    _fall(i, "thin_bucket")
                continue
            n_batches = 0
            with TRACER.span(
                "kernel.bucket",
                kernel=spec.name,
                mode=mode,
                path=path,
                bucket=cap,
            ) as sp:
                cells = 0
                for sub in self._split(bidxs, cap, path):
                    out = spec.batch_fn(
                        [jobs[i].target for i in sub],
                        [jobs[i].query for i in sub],
                        self.scoring,
                        mode,
                        path,
                        zdrop,
                        self._bands(jobs, sub),
                    )
                    for i, res in zip(sub, out):
                        results[i] = res
                        if sp is not None:
                            cells += res.cells
                    COUNTERS.inc("dispatch.batches")
                    n_batches += 1
                if sp is not None:
                    # Occupancy: how full the padded (cap x lanes) DP
                    # matrix really was with job cells.
                    used = sum(jobs[i].size for i in bidxs)
                    sp.attrs.update(
                        lanes=len(bidxs),
                        batches=n_batches,
                        dp_cells=cells,
                        occupancy_pct=round(
                            100.0 * used / (cap * len(bidxs)), 1
                        ),
                    )
            COUNTERS.inc("dispatch.batched_jobs", len(bidxs))
            EVENTS.emit(
                "dispatch.batch",
                kernel=spec.name,
                mode=mode,
                path=path,
                bucket=cap,
                lanes=len(bidxs),
                batches=n_batches,
            )

        if singles:
            COUNTERS.inc("dispatch.fallback_jobs", len(singles))
            EVENTS.emit(
                "dispatch.fallback",
                kernel=spec.name,
                mode=mode,
                path=path,
                jobs=len(singles),
                reasons=fallback_reasons,
            )
            with TRACER.span(
                "kernel.fallback",
                kernel=spec.name,
                mode=mode,
                jobs=len(singles),
            ):
                for i in singles:
                    results[i] = self._run_single(jobs[i])

    def _bands(
        self, jobs: Sequence[DPJob], sub: List[int]
    ) -> Optional[List[Optional[int]]]:
        bands = [jobs[i].band for i in sub]
        return bands if any(b is not None for b in bands) else None

    def _split(self, bidxs: List[int], cap: int, path: bool) -> List[List[int]]:
        """Chop a bucket into memory/lane-bounded sub-batches."""
        per = self.lane_max
        if path:
            per = min(per, max(1, self.path_mem // max(1, cap * cap)))
        if len(bidxs) <= per:
            return [bidxs]
        return [bidxs[k : k + per] for k in range(0, len(bidxs), per)]

    def _run_single(self, job: DPJob) -> AlignmentResult:
        kwargs = {}
        if job.zdrop is not None:
            kwargs["zdrop"] = job.zdrop
        if job.band is not None and self.spec.banded:
            kwargs["band"] = job.band
        return self.spec.fn(
            job.target,
            job.query,
            self.scoring,
            mode=job.mode,
            path=job.path,
            **kwargs,
        )
