"""Equation (1) reference dynamic programming — the correctness oracle.

Semi-global affine-gap alignment with the classic three-matrix
recurrence::

    H[i][j] = max(H[i-1][j-1] + s(T_i, Q_j), E[i][j], F[i][j])
    E[i][j] = max(H[i-1][j] - q, E[i-1][j]) - e      (gap consuming T)
    F[i][j] = max(H[i][j-1] - q, F[i][j-1]) - e      (gap consuming Q)

Both sequence *beginnings* are aligned (boundary gap penalties apply);
``mode='global'`` scores at the bottom-right cell, ``mode='extend'``
takes the maximum over the whole matrix (free end).

The implementation is row-vectorized. ``E`` is a plain vector update;
``F``'s within-row dependency is removed with the closed form

    F[i][j] = max_{j' < j} (Hnof[i][j'] - q - (j - j')·e)

which is exact because a gap opening from an F-dominated ``H`` cell is
never better than extending the existing gap (q > 0). The max is a
single ``np.maximum.accumulate`` — the same "eliminate the sequential
scan" spirit as the paper's kernel work, applied to the oracle.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import AlignmentError
from ..obs.counters import COUNTERS
from .cigar import Cigar
from .result import AlignmentResult
from .scoring import Scoring

NEG = -(1 << 29)


def _validate(target: np.ndarray, query: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    t = np.ascontiguousarray(target, dtype=np.uint8)
    s = np.ascontiguousarray(query, dtype=np.uint8)
    if t.ndim != 1 or s.ndim != 1:
        raise AlignmentError("sequences must be 1-D code arrays")
    return t, s


def _degenerate(
    m: int, n: int, scoring: Scoring, path: bool
) -> Optional[AlignmentResult]:
    """Handle empty-sequence alignments (pure gap or empty/empty)."""
    if m and n:
        return None
    if m == 0 and n == 0:
        return AlignmentResult(0, -1, -1, Cigar([]) if path else None, 0)
    if m == 0:
        cig = Cigar([(n, "I")]) if path else None
        return AlignmentResult(-scoring.gap_cost(n), -1, n - 1, cig, 0)
    cig = Cigar([(m, "D")]) if path else None
    return AlignmentResult(-scoring.gap_cost(m), m - 1, -1, cig, 0)


def align_reference(
    target: np.ndarray,
    query: np.ndarray,
    scoring: Scoring = Scoring(),
    mode: str = "global",
    path: bool = False,
) -> AlignmentResult:
    """Align ``query`` against ``target`` with the Eq. (1) recurrence.

    Returns the score (and CIGAR when ``path=True``). O(m·n) time and,
    in path mode, O(m·n) memory for the stored matrices.
    """
    if mode not in ("global", "extend"):
        raise AlignmentError(f"unknown mode {mode!r}")
    t, s = _validate(target, query)
    m, n = t.size, s.size
    deg = _degenerate(m, n, scoring, path)
    if deg is not None:
        return deg

    mat = scoring.matrix().astype(np.int64)
    q, e = scoring.q, scoring.e
    j_idx = np.arange(1, n + 1, dtype=np.int64)
    ramp = e * np.arange(n + 1, dtype=np.int64)

    Hprev = np.empty(n + 1, dtype=np.int64)
    Hprev[0] = 0
    Hprev[1:] = -(q + e * j_idx)
    E = np.full(n + 1, NEG, dtype=np.int64)

    keep = path
    if keep:
        H_all = np.empty((m + 1, n + 1), dtype=np.int64)
        E_all = np.full((m + 1, n + 1), NEG, dtype=np.int64)
        F_all = np.full((m + 1, n + 1), NEG, dtype=np.int64)
        H_all[0] = Hprev

    best = NEG
    best_ij = (0, 0)
    for i in range(1, m + 1):
        E[1:] = np.maximum(Hprev[1:] - q, E[1:]) - e
        srow = mat[t[i - 1], s]
        hnof = np.maximum(Hprev[:-1] + srow, E[1:])
        h0 = -(q + e * i)
        # Closed-form F via prefix max of (opening candidates + e*j').
        A = np.empty(n + 1, dtype=np.int64)
        A[0] = h0
        A[1:] = hnof
        P = np.maximum.accumulate(A + ramp)
        F = P[:-1] - q - ramp[1:]
        Hrow = np.maximum(hnof, F)
        Hcur = np.empty(n + 1, dtype=np.int64)
        Hcur[0] = h0
        Hcur[1:] = Hrow
        if keep:
            H_all[i] = Hcur
            E_all[i, 1:] = E[1:]
            F_all[i, 1:] = F
        row_best = int(Hrow.max())
        if row_best > best:
            best = row_best
            best_ij = (i, int(Hrow.argmax()) + 1)
        Hprev = Hcur

    if mode == "global":
        score = int(Hprev[n])
        end_i, end_j = m, n
    else:
        score = best
        end_i, end_j = best_ij

    COUNTERS.inc("dp_calls")
    COUNTERS.inc("dp_cells", m * n)
    cigar = None
    if path:
        cigar = _traceback_values(H_all, E_all, F_all, q, e, end_i, end_j)
    return AlignmentResult(
        score=score,
        end_t=end_i - 1,
        end_q=end_j - 1,
        cigar=cigar,
        cells=m * n,
    )


def _traceback_values(
    H: np.ndarray,
    E: np.ndarray,
    F: np.ndarray,
    q: int,
    e: int,
    i: int,
    j: int,
) -> Cigar:
    """Value-based traceback over stored H/E/F matrices.

    Preference order on ties: diagonal, then E (deletion), then F
    (insertion) — the same order the difference kernels encode, so the
    engines agree wherever paths are unique.
    """
    ops_rev = []
    state = "M"
    while i > 0 or j > 0:
        if state == "M":
            if i == 0:
                ops_rev.append((j, "I"))
                break
            if j == 0:
                ops_rev.append((i, "D"))
                break
            if H[i, j] != E[i, j] and H[i, j] != F[i, j]:
                ops_rev.append((1, "M"))
                i -= 1
                j -= 1
            elif H[i, j] == E[i, j]:
                # A diagonal tie may exist; either path re-scores to the
                # same value, so accepting E here is sound.
                state = "E"
            else:
                state = "F"
        elif state == "E":
            ops_rev.append((1, "D"))
            cont = i >= 2 and E[i, j] == E[i - 1, j] - e
            i -= 1
            state = "E" if cont else "M"
        else:
            ops_rev.append((1, "I"))
            cont = j >= 2 and F[i, j] == F[i, j - 1] - e
            j -= 1
            state = "F" if cont else "M"
    return Cigar.from_ops(
        op for count, op in reversed(ops_rev) for _ in range(count)
    ).merged()
