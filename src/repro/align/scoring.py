"""Alignment scoring parameters.

One-piece affine gap penalty ``q + k·e`` as in the paper's formulas
(§3.2). The substitution matrix follows minimap2: ``+A`` for a match,
``-B`` for a mismatch, and ambiguous bases score ``sc_ambi`` (never
positive) so N-runs cannot create phantom matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AlignmentError
from ..seq.alphabet import AMBIG


@dataclass(frozen=True)
class Scoring:
    """Affine-gap scoring: match +A, mismatch -B, gap cost q + k·e."""

    match: int = 2
    mismatch: int = 4
    q: int = 4  # gap open
    e: int = 2  # gap extend
    sc_ambi: int = 1  # penalty (positive value, applied negatively) for N
    zdrop: int = 400

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise AlignmentError(f"match score must be positive: {self.match}")
        if self.mismatch < 0 or self.q < 0 or self.e <= 0:
            raise AlignmentError(
                f"mismatch/gap costs must be non-negative (e > 0): "
                f"B={self.mismatch} q={self.q} e={self.e}"
            )
        if self.zdrop <= 0:
            raise AlignmentError(f"zdrop must be positive: {self.zdrop}")

    @property
    def gap_open_total(self) -> int:
        """Cost of opening a length-1 gap: q + e."""
        return self.q + self.e

    def matrix(self) -> np.ndarray:
        """5×5 substitution matrix over codes (A,C,G,T,N) as int32."""
        m = np.full((5, 5), -self.mismatch, dtype=np.int32)
        np.fill_diagonal(m, self.match)
        m[AMBIG, :] = -self.sc_ambi
        m[:, AMBIG] = -self.sc_ambi
        return m

    def gap_cost(self, length: int) -> int:
        """Total (positive) cost of a gap of ``length`` bases."""
        if length < 0:
            raise AlignmentError(f"negative gap length {length}")
        return 0 if length == 0 else self.q + length * self.e

    def fits_int8(self) -> bool:
        """Whether difference values provably fit signed 8-bit lanes.

        Suzuki–Kasahara bound: diagonal differences lie within
        ``[-(q+e) - match, match + q + e]``; 8-bit vectorization (the
        whole point of the difference formulation, §3.2) needs that band
        inside [-128, 127].
        """
        band = self.match + self.q + self.e + self.mismatch
        return band <= 127


#: minimap2's ``-ax map-pb`` preset (PacBio CLR reads).
MAP_PB = Scoring(match=2, mismatch=5, q=4, e=2, zdrop=400)

#: minimap2's ``-ax map-ont`` preset (Oxford Nanopore reads).
MAP_ONT = Scoring(match=2, mismatch=4, q=4, e=2, zdrop=400)

#: A small symmetric scheme handy in unit tests.
SIMPLE = Scoring(match=1, mismatch=1, q=1, e=1, zdrop=100)
