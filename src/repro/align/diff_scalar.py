"""Equation (3): the difference formula in minimap2's layout, scalar.

This is the straight transcription of the paper's Algorithm-1
*predecessor*: ``u, v, x, y`` all indexed by ``t``, iterated along each
anti-diagonal. The intra-loop dependency the paper describes (§4.3.1)
is visible here as the ``v_prev``/``x_prev`` temporaries that carry the
*old* ``V[t-1]``/``X[t-1]`` across iterations — exactly minimap2's
temporary-variable workaround, which is what blocks clean vectorization.

Being a scalar Python loop this engine exists for correctness
cross-checking and teaching, not speed; the vectorized kernels live in
``mm2_kernel.py`` and ``manymap_kernel.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AlignmentError
from ..obs.counters import COUNTERS
from ._diag import (
    SRC_DIAG,
    SRC_E,
    SRC_F,
    X_CONT,
    Y_CONT,
    boundary_c,
    diag_range,
    first_seed,
    traceback_dir,
)
from .dp_reference import NEG, _degenerate, _validate
from .result import AlignmentResult
from .scoring import Scoring


def diff_value_bounds(
    target: np.ndarray,
    query: np.ndarray,
    scoring: Scoring = Scoring(),
) -> dict:
    """Observed min/max of the u, v, x, y difference values.

    Supports the paper's premise (§3.2) that differences — unlike raw
    scores — stay within an 8-bit band regardless of sequence length,
    which is what allows 16/32/64-lane 8-bit SIMD.
    """
    t, s = _validate(target, query)
    m, n = t.size, s.size
    if m == 0 or n == 0:
        return {"u": (0, 0), "v": (0, 0), "x": (0, 0), "y": (0, 0)}
    mat = scoring.matrix()
    q, e = scoring.q, scoring.e
    oe = q + e
    U = np.zeros(m, dtype=np.int64)
    Y = np.zeros(m, dtype=np.int64)
    V = np.zeros(m, dtype=np.int64)
    X = np.zeros(m, dtype=np.int64)
    lo = {k: 1 << 30 for k in "uvxy"}
    hi = {k: -(1 << 30) for k in "uvxy"}

    def upd(key: str, val: int) -> None:
        if val < lo[key]:
            lo[key] = val
        if val > hi[key]:
            hi[key] = val

    for r in range(m + n - 1):
        st, en = diag_range(r, m, n)
        if en == r:
            U[r] = first_seed(r, q, e)
            Y[r] = -oe
        if st == 0:
            v_prev, x_prev = first_seed(r, q, e), -oe
        else:
            v_prev, x_prev = int(V[st - 1]), int(X[st - 1])
        for tt in range(st, en + 1):
            qj = r - tt
            u_old, y_old = int(U[tt]), int(Y[tt])
            a = x_prev + v_prev
            b = y_old + u_old
            z = max(int(mat[t[tt], s[qj]]), a, b)
            v_next, x_next = int(V[tt]), int(X[tt])
            U[tt] = z - v_prev
            V[tt] = z - u_old
            X[tt] = max(0, a - z + q) - oe
            Y[tt] = max(0, b - z + q) - oe
            upd("u", int(U[tt]))
            upd("v", int(V[tt]))
            upd("x", int(X[tt]))
            upd("y", int(Y[tt]))
            v_prev, x_prev = v_next, x_next
    return {k: (lo[k], hi[k]) for k in "uvxy"}


def align_diff_scalar(
    target: np.ndarray,
    query: np.ndarray,
    scoring: Scoring = Scoring(),
    mode: str = "global",
    path: bool = False,
    zdrop: Optional[int] = None,
) -> AlignmentResult:
    """Scalar difference-formula alignment (Eq. 3, minimap2 layout)."""
    if mode not in ("global", "extend"):
        raise AlignmentError(f"unknown mode {mode!r}")
    if zdrop is not None and mode != "extend":
        raise AlignmentError("zdrop only applies to mode='extend'")
    t, s = _validate(target, query)
    m, n = t.size, s.size
    deg = _degenerate(m, n, scoring, path)
    if deg is not None:
        return deg

    mat = scoring.matrix()
    q, e = scoring.q, scoring.e
    oe = q + e

    U = np.zeros(m, dtype=np.int64)
    Y = np.zeros(m, dtype=np.int64)
    V = np.zeros(m, dtype=np.int64)  # minimap2 layout: indexed by t
    X = np.zeros(m, dtype=np.int64)
    HD = np.full(m + n - 1, NEG, dtype=np.int64)  # H per offset diagonal

    dirmat = np.zeros((m, n), dtype=np.uint8) if path else None

    best = NEG
    best_cell = (0, 0)
    cells = 0
    zdropped = False
    for r in range(m + n - 1):
        st, en = diag_range(r, m, n)
        # Seed boundaries entering this diagonal.
        if en == r:  # cell (r, t=r) exists: its (i, j-1) dep is column 0
            U[r] = first_seed(r, q, e)
            Y[r] = -oe
            HD[m - 1 - r] = boundary_c(r, q, e)
        if st == 0:  # cell (r, 0): its (i-1, j) dep is row 0
            v_prev = first_seed(r, q, e)
            x_prev = -oe
            HD[r + m - 1] = boundary_c(r, q, e)
        else:
            v_prev = int(V[st - 1])
            x_prev = int(X[st - 1])

        diag_max = NEG
        for tt in range(st, en + 1):
            qj = r - tt
            u_old = int(U[tt])
            y_old = int(Y[tt])
            a = x_prev + v_prev
            b = y_old + u_old
            sc = int(mat[t[tt], s[qj]])
            z = sc if sc >= a else a
            if b > z:
                z = b
            if path:
                src = SRC_DIAG
                if z == a and z != sc:
                    src = SRC_E
                if z == b and z != sc and z != a:
                    src = SRC_F
                bits = src
                if a - z + q > 0:
                    bits |= X_CONT
                if b - z + q > 0:
                    bits |= Y_CONT
                dirmat[tt, qj] = bits
            # Save old V[t]/X[t] before overwriting: the next iteration
            # (t+1) needs them as its (r-1, t) left-neighbour values.
            v_next, x_next = int(V[tt]), int(X[tt])
            U[tt] = z - v_prev
            V[tt] = z - u_old
            xa = a - z + q
            X[tt] = (xa if xa > 0 else 0) - oe
            yb = b - z + q
            Y[tt] = (yb if yb > 0 else 0) - oe
            v_prev, x_prev = v_next, x_next

            dd = r - 2 * tt + m - 1
            h = int(HD[dd]) + z
            HD[dd] = h
            if h > diag_max:
                diag_max = h
            if h > best:
                best = h
                best_cell = (tt, qj)
            cells += 1
        if zdrop is not None and best - diag_max > zdrop:
            zdropped = True
            break

    if mode == "global":
        score = int(HD[n - 1]) if not zdropped else NEG
        end_t, end_q = m - 1, n - 1
    else:
        score = best
        end_t, end_q = best_cell

    COUNTERS.inc("dp_calls")
    COUNTERS.inc("dp_cells", cells)
    if zdropped:
        COUNTERS.inc("zdrop_hits")
    cigar = None
    if path:
        cigar = traceback_dir(dirmat, end_t, end_q)
    return AlignmentResult(
        score=score,
        end_t=end_t,
        end_q=end_q,
        cigar=cigar,
        cells=cells,
        zdropped=zdropped,
    )
