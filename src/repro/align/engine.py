"""DP engine registry: select an alignment kernel by name.

Engines are interchangeable — same signature, same results — differing
only in formulation and memory layout:

========== ============================================ ==============
name       implementation                               models
========== ============================================ ==============
reference  Eq. (1) full-matrix, row-vectorized          oracle
scalar     Eq. (3) scalar loop, minimap2 layout         ksw2 logic
mm2        Eq. (3) anti-diagonal vectors + shift        minimap2 SIMD
manymap    Eq. (4) anti-diagonal vectors, in-place      manymap SIMD
========== ============================================ ==============
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..errors import AlignmentError
from ..obs.counters import COUNTERS
from .diff_scalar import align_diff_scalar
from .dp_reference import align_reference
from .manymap_kernel import align_manymap
from .mm2_kernel import align_mm2
from .result import AlignmentResult
from .scoring import Scoring
from .wavefront_batch import align_wavefront

EngineFn = Callable[..., AlignmentResult]

ENGINES: Dict[str, EngineFn] = {
    "reference": align_reference,
    "scalar": align_diff_scalar,
    "mm2": align_mm2,
    "manymap": align_manymap,
    "wavefront": align_wavefront,
}


def get_engine(name: str) -> EngineFn:
    """Look up an engine function by registry name."""
    try:
        return ENGINES[name]
    except KeyError:
        raise AlignmentError(
            f"unknown engine {name!r}; available: {sorted(ENGINES)}"
        ) from None


def align(
    target: np.ndarray,
    query: np.ndarray,
    scoring: Scoring = Scoring(),
    engine: str = "manymap",
    mode: str = "global",
    path: bool = False,
    zdrop: Optional[int] = None,
) -> AlignmentResult:
    """Align with the named engine (the package-level convenience API)."""
    fn = get_engine(engine)
    # dp_calls/dp_cells are self-reported inside each kernel; here only
    # the per-engine call mix is recorded — and only for calls that
    # actually complete, so failures don't inflate the mix.
    try:
        if fn is align_reference:
            if zdrop is not None:
                raise AlignmentError(
                    "the reference engine does not support zdrop"
                )
            out = fn(target, query, scoring, mode=mode, path=path)
        else:
            out = fn(target, query, scoring, mode=mode, path=path, zdrop=zdrop)
    except Exception:
        COUNTERS.inc(f"engine_errors.{engine}")
        raise
    COUNTERS.inc(f"engine_calls.{engine}")
    return out
