"""Base-level alignment: the paper's core contribution lives here.

Four interchangeable DP implementations are provided, all computing the
same semi-global affine-gap alignment:

* :mod:`dp_reference` — Equation (1), row-vectorized full-matrix H/E/F
  dynamic programming. The correctness oracle.
* :mod:`diff_scalar` — Equation (3), the Suzuki–Kasahara difference
  formulation in minimap2's anti-diagonal layout, scalar loop. Mirrors
  ksw2's logic including the temporary-variable dependency workaround.
* :mod:`mm2_kernel` — Equation (3) vectorized per anti-diagonal, with
  the explicit vector-shift of the ``v``/``x`` arrays that minimap2's
  SIMD kernel needs (Figure 3a).
* :mod:`manymap_kernel` — Equation (4): the paper's revised memory
  layout (``t' = t - r + |Q|``) that makes every dependency land on the
  index being overwritten, so the update is a plain in-place vector
  operation (Figure 3b) with no shift and no temporary.
"""

from .scoring import Scoring, MAP_PB, MAP_ONT, SIMPLE  # noqa: F401
from .cigar import Cigar, CigarOp
from .result import AlignmentResult
from .dp_reference import align_reference
from .diff_scalar import align_diff_scalar
from .mm2_kernel import align_mm2
from .manymap_kernel import align_manymap
from .extend import extend_alignment, finish_extension, ExtendResult
from .engine import ENGINES, get_engine, align
from .batch_kernel import align_batch
from .wavefront_batch import align_wavefront, align_wavefront_batch
from .dispatch import (
    DPJob,
    KernelDispatch,
    KernelSpec,
    DEFAULT_KERNEL,
    get_kernel,
    kernel_names,
    register_kernel,
)
from .ablation import align_swap
from .two_piece import TwoPieceScoring, MAP_PB_2P, align_two_piece

__all__ = [
    "Scoring",
    "MAP_PB",
    "MAP_ONT",
    "SIMPLE",
    "Cigar",
    "CigarOp",
    "AlignmentResult",
    "align_reference",
    "align_diff_scalar",
    "align_mm2",
    "align_manymap",
    "extend_alignment",
    "finish_extension",
    "ExtendResult",
    "ENGINES",
    "get_engine",
    "align",
    "align_batch",
    "align_wavefront",
    "align_wavefront_batch",
    "DPJob",
    "KernelDispatch",
    "KernelSpec",
    "DEFAULT_KERNEL",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "align_swap",
    "TwoPieceScoring",
    "MAP_PB_2P",
    "align_two_piece",
]
