"""Equation (4): the manymap dependency-free kernel (the paper's core).

The coordinate transform ``t' = t - r + |Q|`` is applied to the ``v``
and ``x`` matrices (Figure 2c). After the transform, cell ``(r, t)``
reads ``v``/``x`` at index ``t'`` — the *same* index it writes — so the
whole anti-diagonal update is a plain load/compute/store with no vector
shift, no temporary, and no read-before-write hazard (Figure 3b). ``u``
and ``y`` keep the ``t`` layout, whose dependency was already aligned.

Space stays linear: ``v, x`` need ``|Q| + 1`` slots, ``u, y`` need
``|T|`` (the paper's O(|Q|) claim refers to the transformed pair).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AlignmentError
from ..obs.counters import COUNTERS
from ..obs.hist import HISTOGRAMS
from ._band import band_limits, band_range, edge_patches
from ._diag import (
    X_CONT,
    Y_CONT,
    boundary_c,
    diag_range,
    first_seed,
    traceback_dir,
)
from .dp_reference import NEG, _degenerate, _validate
from .result import AlignmentResult
from .scoring import Scoring


def align_manymap(
    target: np.ndarray,
    query: np.ndarray,
    scoring: Scoring = Scoring(),
    mode: str = "global",
    path: bool = False,
    zdrop: Optional[int] = None,
    band: Optional[int] = None,
) -> AlignmentResult:
    """Vectorized Eq. (4) alignment in the manymap memory layout.

    ``band`` restricts the DP to the corner-to-corner diagonal corridor
    widened by ``band`` (minimap2's ``-r``); the banded score never
    exceeds the unbanded optimum and equals it whenever the optimal
    path stays inside the corridor.
    """
    if mode not in ("global", "extend"):
        raise AlignmentError(f"unknown mode {mode!r}")
    if zdrop is not None and mode != "extend":
        raise AlignmentError("zdrop only applies to mode='extend'")
    t, s = _validate(target, query)
    m, n = t.size, s.size
    deg = _degenerate(m, n, scoring, path)
    if deg is not None:
        return deg
    band_lo = band_hi = None
    if band is not None:
        band_lo, band_hi = band_limits(m, n, band)

    mat = scoring.matrix().astype(np.int64)
    q, e = scoring.q, scoring.e
    oe = q + e

    U = np.zeros(m, dtype=np.int64)
    Y = np.zeros(m, dtype=np.int64)
    V = np.zeros(n + 1, dtype=np.int64)  # manymap layout: indexed by t'
    X = np.zeros(n + 1, dtype=np.int64)
    HD = np.full(m + n - 1, NEG, dtype=np.int64)
    dirflat = np.zeros(m * n, dtype=np.uint8) if path else None
    # Hoisted out of the diagonal loop: per-cell flat dir indices.
    flat_base = np.arange(m, dtype=np.int64) * (n - 1) if path else None
    tcodes = t.astype(np.intp)
    scodes = s.astype(np.intp)

    track_best = mode == "extend" or zdrop is not None
    best = NEG
    best_cell = (0, 0)
    cells = 0
    zdropped = False
    for r in range(m + n - 1):
        st, en = diag_range(r, m, n)
        if band is not None:
            st, en = band_range(r, st, en, band_lo, band_hi)
            if st > en:
                continue
        L = en - st + 1
        if en == r:
            U[r] = first_seed(r, q, e)
            Y[r] = -oe
            HD[m - 1 - r] = boundary_c(r, q, e)
        if st == 0:
            # Boundary enters at t' = n - r for cell (r, t=0).
            V[n - r] = first_seed(r, q, e)
            X[n - r] = -oe
            HD[r + m - 1] = boundary_c(r, q, e)
        if band is not None:
            uy_t, vx_t = edge_patches(r, st, en, band_lo, band_hi)
            if uy_t is not None:
                U[uy_t] = -oe
                Y[uy_t] = -oe
            if vx_t is not None:
                V[vx_t - r + n] = -oe
                X[vx_t - r + n] = -oe

        sl = slice(st, en + 1)
        spv = slice(st - r + n, en - r + n + 1)  # the t' window of this diagonal

        sc = mat[tcodes[sl], scodes[r - en : r - st + 1][::-1]]
        # Dependency-free loads: every read index equals its write index.
        a = X[spv] + V[spv]
        b = Y[sl] + U[sl]
        z = np.maximum(np.maximum(sc, a), b)

        if path:
            bits = np.where(z == sc, 0, np.where(z == a, 1, 2))
            bits += (a - z + q > 0) * X_CONT
            bits += (b - z + q > 0) * Y_CONT
            dirflat[flat_base[sl] + r] = bits

        u_new = z - V[spv]
        v_new = z - U[sl]
        # In-place stores over the very slots the loads came from.
        X[spv] = np.maximum(a - z + q, 0) - oe
        Y[sl] = np.maximum(b - z + q, 0) - oe
        U[sl] = u_new
        V[spv] = v_new

        hv = HD[r - 2 * en + m - 1 : r - 2 * st + m : 2]  # t = en .. st
        hv += z[::-1]
        cells += L
        if track_best:
            k = int(hv.argmax())
            diag_max = int(hv[k])
            if diag_max > best:
                best = diag_max
                tt_best = en - k
                best_cell = (tt_best, r - tt_best)
            if zdrop is not None and best - diag_max > zdrop:
                zdropped = True
                break

    if mode == "global":
        score = int(HD[n - 1]) if not zdropped else NEG
        end_t, end_q = m - 1, n - 1
    else:
        score = best
        end_t, end_q = best_cell

    COUNTERS.inc("dp_calls")
    COUNTERS.inc("dp_cells", cells)
    if band is not None:
        # The corridor width in cells — GCUPS is defined over band
        # areas (the `cells` sum above), not |Q| x |T|.
        COUNTERS.inc("band_calls")
        COUNTERS.inc("band_width_sum", 2 * band + 1)
        HISTOGRAMS.observe("band.width", 2 * band + 1)
    if zdropped:
        COUNTERS.inc("zdrop_hits")

    cigar = None
    if path:
        cigar = traceback_dir(dirflat.reshape(m, n), end_t, end_q)
    return AlignmentResult(
        score=score,
        end_t=end_t,
        end_q=end_q,
        cigar=cigar,
        cells=cells,
        zdropped=zdropped,
    )
