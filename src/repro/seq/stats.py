"""Dataset statistics — the columns of the paper's Table 4."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..utils.fmt import human_count
from .records import ReadSet


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of a read dataset (paper Table 4 rows)."""

    platform: str
    n_reads: int
    mean_length: float
    max_length: int
    total_bases: int

    def render(self) -> str:
        rows = [
            ("Platform", self.platform),
            ("Number of Reads", human_count(self.n_reads)),
            ("Average Length (bp)", f"{self.mean_length:,.1f}"),
            ("Maximum Length (bp)", human_count(self.max_length)),
            ("Total Bases", human_count(self.total_bases)),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


def dataset_stats(reads: ReadSet) -> DatasetStats:
    """Compute :class:`DatasetStats` for a read set."""
    lengths = reads.lengths()
    if lengths.size == 0:
        return DatasetStats(reads.platform, 0, 0.0, 0, 0)
    return DatasetStats(
        platform=reads.platform,
        n_reads=int(lengths.size),
        mean_length=float(lengths.mean()),
        max_length=int(lengths.max()),
        total_bases=int(lengths.sum()),
    )
