"""Synthetic reference genome generation (the hg38 substitute).

The generator produces multi-chromosome genomes with controllable GC
content, interspersed repeat families (so multi-mapping / occurrence
filtering is exercised as on real genomes), and tandem repeats. See
DESIGN.md §2 for why this preserves the behaviour the paper measures:
seeding, chaining, and base-level alignment are length-agnostic, and
repeats are what make the heuristics non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SequenceError
from ..utils.rng import SeedLike, as_rng
from .alphabet import decode, random_codes, revcomp_codes
from .records import SeqRecord


@dataclass(frozen=True)
class GenomeSpec:
    """Parameters of a synthetic genome.

    ``repeat_fraction`` is the approximate fraction of each chromosome
    covered by copies of shared repeat elements (human genomes are ~50%
    repetitive; defaults are milder to keep small test genomes mappable).
    """

    length: int = 1_000_000
    chromosomes: int = 1
    gc: float = 0.41  # human-like GC content
    repeat_fraction: float = 0.10
    repeat_families: int = 4
    repeat_length: int = 300
    repeat_divergence: float = 0.02
    tandem_fraction: float = 0.01
    tandem_unit: int = 8
    seed_name: str = "chr"

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise SequenceError(f"genome length must be positive: {self.length}")
        if self.chromosomes <= 0:
            raise SequenceError(f"need at least one chromosome: {self.chromosomes}")
        if not 0.0 <= self.repeat_fraction < 1.0:
            raise SequenceError(f"repeat fraction {self.repeat_fraction} out of range")
        if not 0.0 <= self.tandem_fraction < 1.0:
            raise SequenceError(f"tandem fraction {self.tandem_fraction} out of range")


@dataclass
class Genome:
    """A reference genome: named chromosomes of code arrays."""

    chromosomes: List[SeqRecord] = field(default_factory=list)

    @property
    def names(self) -> List[str]:
        return [c.name for c in self.chromosomes]

    @property
    def total_length(self) -> int:
        return sum(len(c) for c in self.chromosomes)

    def __iter__(self):
        return iter(self.chromosomes)

    def __len__(self) -> int:
        return len(self.chromosomes)

    def get(self, name: str) -> SeqRecord:
        for c in self.chromosomes:
            if c.name == name:
                return c
        raise KeyError(name)

    def fetch(self, name: str, start: int, end: int) -> np.ndarray:
        """Return codes of ``name[start:end)`` (clamped to bounds)."""
        chrom = self.get(name)
        start = max(0, start)
        end = min(len(chrom), end)
        if end <= start:
            raise SequenceError(f"empty region {name}:{start}-{end}")
        return chrom.codes[start:end]

    def to_fasta_str(self, width: int = 80) -> str:
        out = []
        for c in self.chromosomes:
            out.append(f">{c.name}")
            s = decode(c.codes)
            out.extend(s[i : i + width] for i in range(0, len(s), width))
        return "\n".join(out) + "\n"


def _mutate_repeat(
    repeat: np.ndarray, divergence: float, rng: np.random.Generator
) -> np.ndarray:
    """Substitute a fraction of bases so repeat copies are imperfect."""
    copy = repeat.copy()
    k = rng.binomial(copy.size, divergence)
    if k:
        pos = rng.choice(copy.size, size=k, replace=False)
        copy[pos] = (copy[pos] + rng.integers(1, 4, size=k)) % 4
    return copy


def generate_genome(spec: GenomeSpec = GenomeSpec(), seed: SeedLike = 0) -> Genome:
    """Generate a synthetic genome from ``spec``.

    Chromosome lengths split ``spec.length`` approximately evenly with
    ±20% jitter. Repeat elements are drawn once per family and pasted
    (possibly reverse-complemented, with per-copy divergence) at random
    loci; tandem repeats are short units repeated in runs.
    """
    rng = as_rng(seed)
    # Split total length into chromosomes with jitter.
    weights = 1.0 + 0.2 * (rng.random(spec.chromosomes) - 0.5)
    weights /= weights.sum()
    lengths = np.maximum((weights * spec.length).astype(np.int64), 1)

    families = [
        random_codes(spec.repeat_length, rng, gc=spec.gc)
        for _ in range(spec.repeat_families)
    ]

    chroms: List[SeqRecord] = []
    for ci, clen in enumerate(lengths):
        codes = random_codes(int(clen), rng, gc=spec.gc)
        # Interspersed repeats.
        n_copies = int(spec.repeat_fraction * clen / max(spec.repeat_length, 1))
        for _ in range(n_copies):
            fam = families[int(rng.integers(len(families)))]
            copy = _mutate_repeat(fam, spec.repeat_divergence, rng)
            if rng.random() < 0.5:
                copy = revcomp_codes(copy)
            if copy.size >= clen:
                continue
            start = int(rng.integers(0, clen - copy.size))
            codes[start : start + copy.size] = copy
        # Tandem repeats.
        tandem_bases = int(spec.tandem_fraction * clen)
        while tandem_bases > 0:
            unit = random_codes(spec.tandem_unit, rng, gc=spec.gc)
            run = int(rng.integers(4, 20)) * spec.tandem_unit
            run = min(run, tandem_bases, int(clen) - 1)
            if run < spec.tandem_unit:
                break
            start = int(rng.integers(0, clen - run))
            reps = int(np.ceil(run / spec.tandem_unit))
            codes[start : start + run] = np.tile(unit, reps)[:run]
            tandem_bases -= run
        chroms.append(SeqRecord(f"{spec.seed_name}{ci + 1}", codes))
    return Genome(chroms)
