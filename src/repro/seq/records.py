"""Sequence record containers shared across the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..errors import SequenceError
from .alphabet import decode, encode


@dataclass
class SeqRecord:
    """One named sequence, stored as a code array.

    ``meta`` carries simulator ground truth (origin chromosome, strand,
    interval) for accuracy evaluation; real-world records leave it empty.
    """

    name: str
    codes: np.ndarray
    quality: Optional[np.ndarray] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=np.uint8)
        if self.quality is not None:
            self.quality = np.asarray(self.quality, dtype=np.uint8)
            if self.quality.shape != self.codes.shape:
                raise SequenceError(
                    f"{self.name}: quality length {self.quality.size} != "
                    f"sequence length {self.codes.size}"
                )

    @classmethod
    def from_str(cls, name: str, seq: str, **meta: object) -> "SeqRecord":
        return cls(name=name, codes=encode(seq), meta=dict(meta))

    @property
    def seq(self) -> str:
        """The record decoded back to an ASCII string."""
        return decode(self.codes)

    def __len__(self) -> int:
        return int(self.codes.size)


@dataclass
class ReadSet:
    """An ordered collection of reads plus dataset-level metadata."""

    reads: List[SeqRecord] = field(default_factory=list)
    platform: str = "unknown"

    def __iter__(self) -> Iterator[SeqRecord]:
        return iter(self.reads)

    def __len__(self) -> int:
        return len(self.reads)

    def __getitem__(self, i: int) -> SeqRecord:
        return self.reads[i]

    def append(self, read: SeqRecord) -> None:
        self.reads.append(read)

    @property
    def total_bases(self) -> int:
        return sum(len(r) for r in self.reads)

    def lengths(self) -> np.ndarray:
        return np.array([len(r) for r in self.reads], dtype=np.int64)
