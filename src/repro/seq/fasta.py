"""FASTA/FASTQ parsing and writing.

Two read paths are provided, mirroring the paper's I/O discussion
(§4.4.2): a conventional buffered line parser, and a whole-file path that
works over a ``memoryview`` so it can run on top of an ``mmap``-backed
buffer from :mod:`repro.runtime.mmio` without copying the file into
Python objects first.
"""

from __future__ import annotations

import io
import os
from typing import IO, Iterable, Iterator, List, Union

import numpy as np

from ..errors import ParseError
from .alphabet import encode
from .records import SeqRecord

PathOrHandle = Union[str, os.PathLike, IO[str]]


def _open_text(path: PathOrHandle, mode: str) -> IO[str]:
    if hasattr(path, "read") or hasattr(path, "write"):
        return path  # type: ignore[return-value]
    if str(path).endswith(".gz"):
        import gzip

        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)


def iter_fasta(path: PathOrHandle) -> Iterator[SeqRecord]:
    """Stream records from a FASTA file (buffered line parser).

    Malformed input raises :class:`ParseError` naming the offending
    record and its approximate line number, for both plain and
    gzip-compressed files.
    """
    handle = _open_text(path, "r")
    close = handle is not path
    try:
        name: str | None = None
        chunks: List[str] = []
        lineno = 0
        for raw in handle:
            lineno += 1
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield SeqRecord(name, encode("".join(chunks)))
                name = line[1:].split()[0] if len(line) > 1 else ""
                if not name:
                    raise ParseError(
                        f"FASTA header with empty name at line {lineno}"
                    )
                chunks = []
            else:
                if name is None:
                    raise ParseError(
                        "FASTA sequence data before first header "
                        f"at line {lineno}"
                    )
                chunks.append(line)
        if name is not None:
            yield SeqRecord(name, encode("".join(chunks)))
    finally:
        if close:
            handle.close()


def read_fasta(path: PathOrHandle) -> List[SeqRecord]:
    """Read a whole FASTA file into a list of records."""
    return list(iter_fasta(path))


def iter_fastq(path: PathOrHandle) -> Iterator[SeqRecord]:
    """Stream records from a FASTQ file (4-line records).

    Malformed records — bad header/separator lines, a quality string
    whose length does not match the sequence, or a final record cut
    short mid-way — raise :class:`ParseError` naming the record and its
    approximate line number. Works identically for plain and
    gzip-compressed files (both go through the same text handle).
    """
    handle = _open_text(path, "r")
    close = handle is not path
    lineno = 0

    def next_line(name: str) -> str:
        nonlocal lineno
        raw = handle.readline()
        if raw == "":
            raise ParseError(
                f"truncated FASTQ record {name!r} at line {lineno + 1}: "
                "file ended mid-record"
            )
        lineno += 1
        return raw.rstrip("\n")

    try:
        while True:
            header = handle.readline()
            if not header:
                return
            lineno += 1
            header_line = lineno
            header = header.rstrip("\n")
            if not header:
                continue
            if not header.startswith("@"):
                raise ParseError(
                    f"FASTQ header must start with '@' at line "
                    f"{header_line}: {header!r}"
                )
            name = header[1:].split()[0] if len(header) > 1 else ""
            seq = next_line(name)
            plus = next_line(name)
            qual = next_line(name)
            if not plus.startswith("+"):
                raise ParseError(
                    f"FASTQ separator must start with '+' in record "
                    f"{name!r} at line {lineno - 1}: {plus!r}"
                )
            if len(qual) != len(seq):
                raise ParseError(
                    f"FASTQ quality length {len(qual)} != sequence length "
                    f"{len(seq)} in record {name!r} at line {lineno}"
                )
            q = np.frombuffer(qual.encode("ascii"), dtype=np.uint8) - 33
            yield SeqRecord(name, encode(seq), quality=q)
    finally:
        if close:
            handle.close()


def read_fastq(path: PathOrHandle) -> List[SeqRecord]:
    """Read a whole FASTQ file into a list of records."""
    return list(iter_fastq(path))


def iter_reads(path: PathOrHandle) -> Iterator[SeqRecord]:
    """Stream records from a read file, dispatching on its extension.

    ``.fq`` / ``.fastq`` (optionally ``.gz``-suffixed) parse as FASTQ;
    everything else as FASTA. This is the shared reader path every
    mapping entry point goes through (:func:`repro.api.map_file` and
    the CLI), so streaming and batch backends see the same records.
    """
    name = str(path) if not (hasattr(path, "read")) else getattr(path, "name", "")
    base = name[: -len(".gz")] if name.endswith(".gz") else name
    if base.endswith((".fq", ".fastq")):
        return iter_fastq(path)
    return iter_fasta(path)


def parse_fasta_buffer(buf: Union[bytes, memoryview, np.ndarray]) -> List[SeqRecord]:
    """Parse FASTA from an in-memory buffer (the mmap-friendly path).

    The buffer is scanned once for record boundaries; sequence bytes are
    encoded directly from slices of the buffer, never materialized as
    Python strings. This is the "consecutive file reads" layout the paper
    uses to replace fragmented parsing (§4.4.2).
    """
    if isinstance(buf, np.ndarray):
        data = buf.tobytes()
    else:
        data = bytes(buf)
    records: List[SeqRecord] = []
    pos = 0
    n = len(data)
    if data.find(b">") == -1:
        raise ParseError("buffer contains no FASTA records")
    while pos < n:
        if data[pos : pos + 1] != b">":
            nxt = data.find(b">", pos)
            if nxt == -1:
                break
            pos = nxt
            continue
        eol = data.find(b"\n", pos)
        if eol == -1:
            raise ParseError("truncated FASTA header")
        name = data[pos + 1 : eol].split()[0].decode("ascii") if eol > pos + 1 else ""
        if not name:
            raise ParseError("FASTA header with empty name")
        nxt = data.find(b">", eol)
        body = data[eol + 1 : nxt if nxt != -1 else n]
        seq = body.replace(b"\n", b"").replace(b"\r", b"")
        records.append(SeqRecord(name, encode(seq)))
        pos = nxt if nxt != -1 else n
    return records


def write_fasta(
    path: PathOrHandle, records: Iterable[SeqRecord], width: int = 80
) -> None:
    """Write records as FASTA with fixed line width."""
    handle = _open_text(path, "w")
    close = handle is not path
    try:
        for rec in records:
            handle.write(f">{rec.name}\n")
            s = rec.seq
            for i in range(0, len(s), width):
                handle.write(s[i : i + width])
                handle.write("\n")
    finally:
        if close:
            handle.close()


def write_fastq(path: PathOrHandle, records: Iterable[SeqRecord]) -> None:
    """Write records as FASTQ (flat quality 'I' when absent)."""
    handle = _open_text(path, "w")
    close = handle is not path
    try:
        for rec in records:
            if rec.quality is not None:
                qual = (rec.quality + 33).astype(np.uint8).tobytes().decode("ascii")
            else:
                qual = "I" * len(rec)
            handle.write(f"@{rec.name}\n{rec.seq}\n+\n{qual}\n")
    finally:
        if close:
            handle.close()
