"""2-bit DNA encoding and vectorized sequence primitives.

Sequences are stored as ``uint8`` NumPy arrays of *codes* 0..3 for
``ACGT`` (4 marks an ambiguous base, which minimap2 also treats as a
never-matching filler). All hot paths (encode, decode, revcomp) are
single vectorized table lookups, per the NumPy optimization guide:
no Python-level loops, no copies beyond the output array.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import SequenceError
from ..utils.rng import SeedLike, as_rng

#: Canonical base order; code ``i`` encodes ``BASES[i]``.
BASES = "ACGTN"

#: Number of unambiguous nucleotide codes.
NUC = 4

#: Code used for 'N' / ambiguous bases.
AMBIG = 4

# ASCII -> code lookup (256 entries; unknown characters map to 255).
_ENC = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _ENC[ord(_b)] = _i
    _ENC[ord(_b.lower())] = _i
# IUPAC ambiguity codes all collapse to AMBIG, as minimap2 does.
for _b in "RYSWKMBDHV":
    _ENC[ord(_b)] = AMBIG
    _ENC[ord(_b.lower())] = AMBIG

# code -> ASCII lookup.
_DEC = np.frombuffer(BASES.encode(), dtype=np.uint8).copy()

# code -> complement code (A<->T, C<->G, N->N).
_COMP = np.array([3, 2, 1, 0, 4], dtype=np.uint8)


def encode(seq: Union[str, bytes]) -> np.ndarray:
    """Encode an ASCII DNA string into a ``uint8`` code array.

    Raises :class:`SequenceError` on characters outside the IUPAC
    alphabet; ambiguity codes become ``AMBIG``.
    """
    if isinstance(seq, str):
        raw = np.frombuffer(seq.encode("ascii", "strict"), dtype=np.uint8)
    else:
        raw = np.frombuffer(seq, dtype=np.uint8)
    codes = _ENC[raw]
    if codes.max(initial=0) == 255:
        bad = chr(int(raw[codes == 255][0]))
        raise SequenceError(f"invalid DNA character {bad!r}")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a code array back to an ASCII string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() > AMBIG:
        raise SequenceError(f"invalid code {int(codes.max())}")
    return _DEC[codes].tobytes().decode("ascii")


def complement_codes(codes: np.ndarray) -> np.ndarray:
    """Return the base-complement of a code array (no reversal)."""
    return _COMP[np.asarray(codes, dtype=np.uint8)]


def revcomp_codes(codes: np.ndarray) -> np.ndarray:
    """Reverse-complement a code array."""
    return _COMP[np.asarray(codes, dtype=np.uint8)[::-1]]


def revcomp(seq: str) -> str:
    """Reverse-complement an ASCII DNA string."""
    return decode(revcomp_codes(encode(seq)))


def random_codes(
    n: int, seed: SeedLike = None, gc: float = 0.5
) -> np.ndarray:
    """Draw ``n`` random base codes with the given GC fraction.

    The GC mass is split evenly between G and C (and AT mass between A
    and T), matching how simple genome simulators parameterize
    composition.
    """
    if n < 0:
        raise SequenceError(f"negative length {n}")
    if not 0.0 <= gc <= 1.0:
        raise SequenceError(f"GC fraction {gc} outside [0, 1]")
    rng = as_rng(seed)
    at = (1.0 - gc) / 2.0
    p = np.array([at, gc / 2.0, gc / 2.0, at])
    return rng.choice(NUC, size=n, p=p).astype(np.uint8)
