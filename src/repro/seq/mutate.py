"""Variant injection: derive a diverged sequence from a template.

Used to build test pairs with known relatedness (e.g. "two sequences 5%
diverged") for DP and chaining tests, independent of the full read
simulator in :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import SequenceError
from ..utils.rng import SeedLike, as_rng
from .alphabet import NUC


@dataclass(frozen=True)
class MutationSpec:
    """Per-base mutation rates applied independently."""

    sub_rate: float = 0.0
    ins_rate: float = 0.0
    del_rate: float = 0.0
    max_indel: int = 3

    def __post_init__(self) -> None:
        total = self.sub_rate + self.ins_rate + self.del_rate
        if not 0.0 <= total < 1.0:
            raise SequenceError(f"total mutation rate {total} out of [0, 1)")
        if self.max_indel < 1:
            raise SequenceError(f"max_indel must be >= 1: {self.max_indel}")


def mutate_codes(
    codes: np.ndarray, spec: MutationSpec, seed: SeedLike = None
) -> Tuple[np.ndarray, List[Tuple[int, str, int]]]:
    """Apply ``spec`` to ``codes``; return (mutated, event log).

    The event log holds ``(template_position, kind, length)`` tuples with
    ``kind`` in ``{'S','I','D'}`` so tests can check the mutated sequence
    aligns back with roughly the expected edit structure.
    """
    rng = as_rng(seed)
    out: List[np.ndarray] = []
    events: List[Tuple[int, str, int]] = []
    n = codes.size
    # Draw one uniform per template base and partition into event kinds.
    u = rng.random(n)
    sub_hi = spec.sub_rate
    ins_hi = sub_hi + spec.ins_rate
    del_hi = ins_hi + spec.del_rate
    i = 0
    while i < n:
        ui = u[i]
        if ui < sub_hi:
            new = (int(codes[i]) + int(rng.integers(1, NUC))) % NUC
            out.append(np.array([new], dtype=np.uint8))
            events.append((i, "S", 1))
            i += 1
        elif ui < ins_hi:
            ln = int(rng.integers(1, spec.max_indel + 1))
            ins = rng.integers(0, NUC, size=ln).astype(np.uint8)
            out.append(np.array([codes[i]], dtype=np.uint8))
            out.append(ins)
            events.append((i, "I", ln))
            i += 1
        elif ui < del_hi:
            ln = int(rng.integers(1, spec.max_indel + 1))
            ln = min(ln, n - i)
            events.append((i, "D", ln))
            i += ln
        else:
            out.append(codes[i : i + 1])
            i += 1
    if not out:
        return np.empty(0, dtype=np.uint8), events
    return np.concatenate(out).astype(np.uint8), events
