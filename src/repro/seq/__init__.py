"""Sequence substrate: DNA encoding, FASTA/FASTQ I/O, synthetic genomes.

This subpackage replaces the paper's external data dependencies (hg38,
PacBio/Nanopore read files) with fully synthetic but statistically
controlled equivalents — see DESIGN.md §2.
"""

from .alphabet import (
    BASES,
    decode,
    encode,
    complement_codes,
    revcomp,
    revcomp_codes,
    random_codes,
)
from .records import SeqRecord, ReadSet
from .fasta import (
    iter_fasta,
    iter_fastq,
    iter_reads,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)
from .genome import Genome, GenomeSpec, generate_genome
from .mutate import MutationSpec, mutate_codes
from .stats import DatasetStats, dataset_stats

__all__ = [
    "BASES",
    "decode",
    "encode",
    "complement_codes",
    "revcomp",
    "revcomp_codes",
    "random_codes",
    "SeqRecord",
    "ReadSet",
    "iter_fasta",
    "iter_fastq",
    "iter_reads",
    "read_fasta",
    "read_fastq",
    "write_fasta",
    "write_fastq",
    "Genome",
    "GenomeSpec",
    "generate_genome",
    "MutationSpec",
    "mutate_codes",
    "DatasetStats",
    "dataset_stats",
]
