"""Shared helpers for baseline aligners."""

from __future__ import annotations

from typing import Optional

from ..core.alignment import Alignment
from ..index.index import MinimizerIndex
from ..seq.records import SeqRecord


def make_alignment(
    read: SeqRecord,
    index: MinimizerIndex,
    rid: int,
    tstart: int,
    tend: int,
    qstart: int,
    qend: int,
    strand: int,
    score: int,
    mapq: int,
    n_match: Optional[int] = None,
) -> Alignment:
    """Assemble an :class:`Alignment` record from interval estimates."""
    tlen = int(index.lengths[rid])
    tstart = max(0, min(tstart, tlen - 1))
    tend = max(tstart + 1, min(tend, tlen))
    qlen = len(read)
    qstart = max(0, min(qstart, qlen - 1))
    qend = max(qstart + 1, min(qend, qlen))
    block = max(tend - tstart, qend - qstart)
    return Alignment(
        qname=read.name,
        qlen=qlen,
        qstart=qstart,
        qend=qend,
        strand=strand,
        tname=index.names[rid],
        tlen=tlen,
        tstart=tstart,
        tend=tend,
        n_match=n_match if n_match is not None else int(0.8 * block),
        block_len=block,
        mapq=mapq,
        score=score,
    )
