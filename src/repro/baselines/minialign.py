"""minialign-like baseline: sparse minimizers, single-diagonal chains.

minialign trades a little accuracy for speed relative to minimap2 by
seeding more sparsely and selecting loci with a cheaper heuristic. The
reimplementation keeps those two signatures: a wider minimizer window
(w=16) and locus selection by diagonal-bucket voting instead of the
full chaining DP — occasionally fooled by repeats, hence the higher
error rate in Table 5 (0.97% vs minimap2's 0.38%).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..chain.anchors import collect_anchors
from ..core.alignment import Alignment
from ..index.index import build_index
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from ._util import make_alignment
from .base import BaselineAligner


class MinialignAligner(BaselineAligner):
    """Sparse-seeded, vote-chained long read aligner."""

    name = "minialign"

    def __init__(self, k: int = 15, w: int = 16, bucket: int = 256) -> None:
        super().__init__()
        self.k, self.w, self.bucket = k, w, bucket
        self.work_cells = 0

    def build(self, genome: Genome) -> None:
        self.genome = genome
        self.index = build_index(genome, k=self.k, w=self.w, occ_filter_frac=1e-3)
        self.resources.index_bytes = self.index.nbytes

    def map_read(self, read: SeqRecord) -> List[Alignment]:
        rid, tpos, qpos, strand = collect_anchors(
            read.codes, self.index, as_arrays=True
        )
        if rid.size < 3:
            return []
        # Vote on (rid, strand, diagonal bucket).
        diag = (tpos - qpos) // self.bucket
        key = (rid << 34) ^ (strand << 33) ^ (diag + (1 << 30))
        uniq, counts = np.unique(key, return_counts=True)
        best = int(np.argmax(counts))
        sel = key == uniq[best]
        votes = int(counts[best])
        if votes < 3:
            return []
        r = int(rid[sel][0])
        s = int(strand[sel][0])
        t_lo, t_hi = int(tpos[sel].min()), int(tpos[sel].max())
        q_lo, q_hi = int(qpos[sel].min()), int(qpos[sel].max())
        # Extend the interval to the read ends along the diagonal.
        tstart = t_lo - self.k + 1 - q_lo
        tend = t_hi + (len(read) - q_hi)
        self.work_cells += votes * self.bucket  # banded verify pass
        # MAPQ from vote dominance over the runner-up bucket.
        second = int(np.partition(counts, -2)[-2]) if counts.size > 1 else 0
        mapq = int(min(60, 60 * (1 - second / votes)))
        return [
            make_alignment(
                read, self.index, r, tstart, tend, 0, len(read),
                1 if s == 0 else -1, score=votes * self.k, mapq=mapq,
            )
        ]
