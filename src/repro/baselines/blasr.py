"""BLASR-like baseline: dense exact-match seeds + full-region DP.

BLASR (Chaisson & Tesler 2012) finds exact matches with a suffix-array
and refines candidate loci with full dynamic programming. The two
signatures kept here: **no seed subsampling** (every k-mer position is
indexed, hence the 11.8 GB index in Table 5 — ~2× minimap2's) and a
**whole-region DP verification** of the best candidate instead of
anchored gap filling — accurate, but an order of magnitude more DP
cells than minimap2, hence the longer runtime.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..align.dp_reference import align_reference
from ..align.scoring import MAP_PB
from ..chain.anchors import collect_anchors
from ..core.alignment import Alignment
from ..index.index import build_index
from ..seq.alphabet import revcomp_codes
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from ._util import make_alignment
from .base import BaselineAligner


class BlasrAligner(BaselineAligner):
    """Dense-seeded aligner with full-DP candidate verification."""

    name = "BLASR"

    def __init__(self, k: int = 13) -> None:
        super().__init__()
        self.k = k
        self.work_cells = 0

    def build(self, genome: Genome) -> None:
        self.genome = genome
        # w=1: every position indexed — the suffix-array-density signature.
        self.index = build_index(genome, k=self.k, w=1, occ_filter_frac=1e-4)
        self.resources.index_bytes = self.index.nbytes

    def map_read(self, read: SeqRecord) -> List[Alignment]:
        rid_a, tpos, qpos, strand = collect_anchors(
            read.codes, self.index, as_arrays=True
        )
        if rid_a.size < 3:
            return []
        # BLASR-style candidate selection: cluster dense exact matches by
        # diagonal (its "basic local alignment" pass), no chain scoring —
        # repeats can capture the vote, which is where its errors come from.
        n = len(read)
        diag = tpos - qpos
        key = (rid_a << 34) ^ (strand << 33) ^ ((diag // 512) + (1 << 30))
        uniq, counts = np.unique(key, return_counts=True)
        order = np.argsort(-counts)
        best = uniq[order[0]]
        sel = key == best
        r = int(rid_a[sel][0])
        s = int(strand[sel][0])
        d = int(np.median(diag[sel]))
        t_lo = max(0, d)
        t_hi = min(int(self.index.lengths[r]), d + n + 256)
        target = self.genome.chromosomes[r].codes[t_lo:t_hi]
        query = read.codes if s == 0 else revcomp_codes(read.codes)
        # Whole-region DP refinement (the successive-refinement step).
        res = align_reference(target, query, MAP_PB, mode="extend")
        self.work_cells += res.cells
        second = int(counts[order[1]]) if counts.size > 1 else 0
        mapq = max(0, int(60 * (1 - second / int(counts[order[0]]))))
        return [
            make_alignment(
                read, self.index, r,
                t_lo, t_lo + res.end_t + 1, 0, res.end_q + 1,
                1 if s == 0 else -1,
                score=res.score, mapq=mapq,
            )
        ]
