"""NGMLR-like baseline: convex-gap subsegment alignment.

NGMLR (Sedlazeck et al. 2018) targets structural-variant detection: it
aligns a read as a sequence of subsegments, each placed by DP, joined
under a convex gap penalty so large SV gaps cost little more than small
ones. The signatures kept here: per-subsegment DP placement (lots of
DP cells → the long runtimes in Table 5) and convex-cost stitching that
tolerates big jumps between segments.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..align.manymap_kernel import align_manymap
from ..align.scoring import MAP_PB
from ..chain.anchors import collect_anchors
from ..core.alignment import Alignment
from ..index.index import build_index
from ..seq.alphabet import revcomp_codes
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from ._util import make_alignment
from .base import BaselineAligner


class NgmlrAligner(BaselineAligner):
    """Subsegment aligner with convex gap stitching."""

    name = "NGMLR"

    def __init__(self, k: int = 13, w: int = 5, segment: int = 512) -> None:
        super().__init__()
        self.k, self.w, self.segment = k, w, segment
        self.work_cells = 0

    def build(self, genome: Genome) -> None:
        self.genome = genome
        self.index = build_index(genome, k=self.k, w=self.w, occ_filter_frac=1e-3)
        self.resources.index_bytes = self.index.nbytes

    def _place_segment(
        self, seg: np.ndarray
    ) -> Optional[Tuple[int, int, int, int]]:
        """DP-verify the best anchor diagonal of one subsegment.

        Returns (rid, strand, tstart, score) or None.
        """
        rid, tpos, qpos, strand = collect_anchors(seg, self.index, as_arrays=True)
        if rid.size == 0:
            return None
        # Candidate locus: densest diagonal (in the fragment's own frame).
        diag = tpos - qpos
        key = (rid << 34) ^ (strand.astype(np.int64) << 33) ^ ((diag // 64) + (1 << 30))
        uniq, counts = np.unique(key, return_counts=True)
        sel = key == uniq[int(np.argmax(counts))]
        r = int(rid[sel][0])
        s = int(strand[sel][0])
        d = int(np.median(diag[sel]))
        # Window starts ON the diagonal: extension mode anchors both
        # sequence beginnings, so leading target slack would be charged
        # as a gap.
        t_lo = max(0, d)
        t_hi = min(int(self.index.lengths[r]), d + seg.size + 64)
        target = self.genome.chromosomes[r].codes[t_lo:t_hi]
        qseg = seg if s == 0 else revcomp_codes(seg)
        res = align_manymap(target, qseg, MAP_PB, mode="extend")
        self.work_cells += res.cells
        if res.score < seg.size // 4:
            return None
        return r, s, t_lo, int(res.score)

    def map_read(self, read: SeqRecord) -> List[Alignment]:
        codes = read.codes
        n = codes.size
        placements = []
        for off in range(0, n, self.segment):
            m = min(self.segment, n - off)
            seg = codes[off : off + m]
            hit = self._place_segment(seg)
            if hit is not None:
                placements.append((off, m) + hit)
        if not placements:
            return []
        # Convex-gap stitching: pick the (rid, strand) whose segments
        # dominate total score; jumps are allowed (SV tolerance) with a
        # log-cost penalty.
        by_locus = {}
        for off, m, r, s, t0, sc in placements:
            by_locus.setdefault((r, s), []).append((off, m, t0, sc))
        best_key, best_val = None, -math.inf
        for key, segs in by_locus.items():
            total = sum(sc for *_, sc in segs)
            # convex penalty on inter-segment jumps
            segs.sort()
            for (o1, m1, t1, _), (o2, m2, t2, _) in zip(segs, segs[1:]):
                jump = abs((t2 - t1) - (o2 - o1))
                if jump > 0:
                    total -= 2.0 * math.log2(1 + jump)
            if total > best_val:
                best_key, best_val = key, total
        r, s = best_key
        segs = sorted(by_locus[best_key])
        t_lo = min(t for _, _, t, _ in segs)
        t_hi = max(t + m for _, m, t, _ in segs)
        support = len(segs) / max(1, len(placements))
        mapq = int(min(60, 60 * support))
        return [
            make_alignment(
                read, self.index, r,
                t_lo - segs[0][0], t_hi + (n - (segs[-1][0] + segs[-1][1])),
                0, n, 1 if s == 0 else -1,
                score=int(best_val), mapq=mapq,
            )
        ]
