"""Common interface and resource accounting for baseline aligners."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.alignment import Alignment
from ..seq.genome import Genome
from ..seq.records import SeqRecord


@dataclass
class BaselineResources:
    """Index size and rough working memory, for Table 5's columns."""

    index_bytes: int = 0
    peak_extra_bytes: int = 0

    @property
    def ram_bytes(self) -> int:
        return self.index_bytes + self.peak_extra_bytes


class BaselineAligner(abc.ABC):
    """Abstract aligner: build once over a genome, then map reads."""

    #: Human-readable tool name (Table 5 column header).
    name: str = "baseline"

    def __init__(self) -> None:
        self.genome: Optional[Genome] = None
        self.resources = BaselineResources()

    @abc.abstractmethod
    def build(self, genome: Genome) -> None:
        """Index the reference; must set ``self.genome`` and resources."""

    @abc.abstractmethod
    def map_read(self, read: SeqRecord) -> List[Alignment]:
        """Map one read; best alignment first; empty if unmapped."""

    def map_all(self, reads) -> List[List[Alignment]]:
        if self.genome is None:
            raise RuntimeError(f"{self.name}: call build() before mapping")
        return [self.map_read(r) for r in reads]
