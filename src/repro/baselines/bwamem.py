"""BWA-MEM-like baseline: short-read seeding on long noisy reads.

BWA-MEM seeds with (super-)maximal exact matches — long exact
stretches that barely exist in 13%-error PacBio CLR reads — and
extends each seed with banded Smith–Waterman. Table 5 shows the
consequence: worst accuracy (1.16%) and the longest runtime. The
reimplementation keeps both signatures: long exact k-mer seeds indexed
at every position (k=19, w=1) and per-seed banded extension with no
long-read chaining model.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..align.manymap_kernel import align_manymap
from ..align.scoring import Scoring
from ..chain.anchors import collect_anchors
from ..core.alignment import Alignment
from ..index.index import build_index
from ..seq.alphabet import revcomp_codes
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from ._util import make_alignment
from .base import BaselineAligner

#: BWA-MEM's default scoring (1/-4/6,1) — tuned for <1% error short reads,
#: which is exactly why it struggles on CLR data.
BWA_SCORING = Scoring(match=1, mismatch=4, q=6, e=1, zdrop=100)


class BwaMemAligner(BaselineAligner):
    """Exact-seed + per-seed-extension aligner (short-read heritage)."""

    name = "BWA-MEM"

    def __init__(self, k: int = 19, max_seeds: int = 8) -> None:
        super().__init__()
        self.k = k
        self.max_seeds = max_seeds
        self.work_cells = 0

    def build(self, genome: Genome) -> None:
        self.genome = genome
        # Every position indexed (FM-index density), long exact seeds.
        self.index = build_index(genome, k=self.k, w=1, occ_filter_frac=1e-4)
        self.resources.index_bytes = self.index.nbytes

    def map_read(self, read: SeqRecord) -> List[Alignment]:
        rid, tpos, qpos, strand = collect_anchors(
            read.codes, self.index, as_arrays=True
        )
        if rid.size == 0:
            return []
        n = len(read)
        # Extend each seed independently (no long-read chaining): score
        # a window around the seed and keep the best extension.
        order = np.arange(rid.size)
        if order.size > self.max_seeds:
            order = np.linspace(0, order.size - 1, self.max_seeds).astype(int)
        best = None
        for i in order:
            r, t0, q0, s = int(rid[i]), int(tpos[i]), int(qpos[i]), int(strand[i])
            query = read.codes if s == 0 else revcomp_codes(read.codes)
            # Window starts on the seed diagonal (extension mode anchors
            # both beginnings) and allows +150 of trailing slack.
            w_lo = max(0, t0 - q0)
            w_hi = min(int(self.index.lengths[r]), t0 + (n - q0) + 150)
            target = self.genome.chromosomes[r].codes[w_lo:w_hi]
            res = align_manymap(
                target, query, BWA_SCORING, mode="extend", zdrop=BWA_SCORING.zdrop
            )
            self.work_cells += res.cells
            if best is None or res.score > best[0]:
                best = (res.score, r, s, w_lo, w_lo + res.end_t + 1, res.end_q + 1)
        if best is None or best[0] < n // 10:
            return []
        score, r, s, t_lo, t_hi, q_used = best
        return [
            make_alignment(
                read, self.index, r, t_lo, t_hi, 0, q_used,
                1 if s == 0 else -1, score=int(score),
                mapq=40,
            )
        ]
