"""Baseline registry, including our own aligners behind the same API."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.aligner import Aligner
from ..core.alignment import Alignment
from ..errors import ReproError
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from .base import BaselineAligner
from .blasr import BlasrAligner
from .bwamem import BwaMemAligner
from .kart import KartAligner
from .minialign import MinialignAligner
from .ngmlr import NgmlrAligner


class OurAligner(BaselineAligner):
    """Adapter exposing the core Aligner through the baseline API.

    ``engine='mm2'`` plays the role of minimap2 (original layout),
    ``engine='manymap'`` the accelerated aligner — both produce the
    same alignments, differing only in kernel cost.
    """

    def __init__(self, engine: str = "manymap", preset: str = "test") -> None:
        super().__init__()
        self.engine = engine
        self.preset = preset
        self.name = "manymap" if engine == "manymap" else "minimap2"
        self.work_cells = 0

    def build(self, genome: Genome) -> None:
        self.genome = genome
        self.aligner = Aligner(genome, preset=self.preset, engine=self.engine)
        self.resources.index_bytes = self.aligner.index.nbytes

    def map_read(self, read: SeqRecord) -> List[Alignment]:
        alns = self.aligner.map_read(read, with_cigar=False)
        self.work_cells += sum(
            a.block_len * 64 for a in alns  # banded gap-fill cell estimate
        )
        return alns


BASELINES: Dict[str, Callable[[], BaselineAligner]] = {
    "manymap": lambda: OurAligner(engine="manymap"),
    "minimap2": lambda: OurAligner(engine="mm2"),
    "minialign": MinialignAligner,
    "Kart": KartAligner,
    "BLASR": BlasrAligner,
    "NGMLR": NgmlrAligner,
    "BWA-MEM": BwaMemAligner,
}


def make_baseline(name: str) -> BaselineAligner:
    """Instantiate a registered aligner by Table 5 name."""
    try:
        return BASELINES[name]()
    except KeyError:
        raise ReproError(
            f"unknown baseline {name!r}; available: {sorted(BASELINES)}"
        ) from None
