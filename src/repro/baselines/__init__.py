"""Comparator aligners for Table 5.

Each baseline is a *real, simplified* reimplementation capturing the
algorithmic signature that distinguishes the original tool from
minimap2 — which is what drives Table 5's accuracy/speed ordering:

* ``minialign`` — minimap2-style seeding with sparser minimizers and a
  cruder single-diagonal chain: faster, a bit less accurate.
* ``Kart`` — divide-and-conquer: fragments mapped independently by
  diagonal voting, no base-level DP: fastest, least accurate.
* ``BLASR`` — dense exact-match seeding (no subsampling) + full DP:
  accurate but slow.
* ``NGMLR`` — subsegment alignment with a convex gap model: accurate,
  slowest of the accurate tools.
* ``BWA-MEM`` — short-read-style long exact seeds + per-seed extension
  without long-read chaining: mis-tuned for 13%-error reads, worst
  accuracy and very slow.
"""

from .base import BaselineAligner, BaselineResources
from .minialign import MinialignAligner
from .kart import KartAligner
from .blasr import BlasrAligner
from .ngmlr import NgmlrAligner
from .bwamem import BwaMemAligner
from .registry import BASELINES, make_baseline

__all__ = [
    "BaselineAligner",
    "BaselineResources",
    "MinialignAligner",
    "KartAligner",
    "BlasrAligner",
    "NgmlrAligner",
    "BwaMemAligner",
    "BASELINES",
    "make_baseline",
]
