"""Kart-like baseline: divide-and-conquer fragment mapping.

Kart splits a read into fragments, maps each independently, and stitches
the results — no global chaining, no base-level DP across the read.
That makes it extremely fast (shortest KNL runtime in Table 5) but the
least accurate (4.1% error): fragments landing in repeats vote
independently and the stitcher can assemble a wrong locus.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

import numpy as np

from ..chain.anchors import collect_anchors
from ..core.alignment import Alignment
from ..index.index import build_index
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from ._util import make_alignment
from .base import BaselineAligner


class KartAligner(BaselineAligner):
    """Fragment-vote divide-and-conquer aligner."""

    name = "Kart"

    def __init__(self, k: int = 15, w: int = 10, fragment: int = 400) -> None:
        super().__init__()
        self.k, self.w, self.fragment = k, w, fragment
        self.work_cells = 0

    def build(self, genome: Genome) -> None:
        self.genome = genome
        self.index = build_index(genome, k=self.k, w=self.w, occ_filter_frac=2e-4)
        self.resources.index_bytes = self.index.nbytes

    def _map_fragment(
        self, codes: np.ndarray, offset_fwd: int, offset_rc: int
    ) -> Optional[Tuple[int, int, int]]:
        """Best (rid, strand, diagonal) of one fragment, by majority vote.

        Anchor query positions are in the fragment's own frame; shifting
        by the fragment's offset in the (possibly reverse-complemented)
        read frame makes diagonals comparable across fragments.
        """
        rid, tpos, qpos, strand = collect_anchors(codes, self.index, as_arrays=True)
        if rid.size == 0:
            return None
        offset = np.where(strand == 0, offset_fwd, offset_rc)
        diag = tpos - (qpos + offset)
        votes = Counter(
            (int(r), int(s), int(d) // 128) for r, s, d in zip(rid, strand, diag)
        )
        (r, s, db), n = votes.most_common(1)[0]
        if n < 2:
            return None
        return r, s, db * 128

    def map_read(self, read: SeqRecord) -> List[Alignment]:
        codes = read.codes
        n = codes.size
        frags = []
        for off in range(0, n, self.fragment):
            m = min(self.fragment, n - off)
            hit = self._map_fragment(codes[off : off + m], off, n - off - m)
            if hit is not None:
                frags.append(hit)
        if not frags:
            return []
        # Stitch: the most common (rid, strand, ~diagonal) wins.
        votes = Counter((r, s, d // 512) for r, s, d in frags)
        (r, s, dq), support = votes.most_common(1)[0]
        diag = dq * 512
        tstart = diag
        tend = diag + n
        self.work_cells += n  # one linear verification pass
        mapq = int(min(60, 20 * support))
        return [
            make_alignment(
                read, self.index, r, tstart, tend, 0, n,
                1 if s == 0 else -1, score=support * self.fragment // 4, mapq=mapq,
            )
        ]
