"""The stable public mapping API: sessions, requests, and results.

Everything a library consumer needs sits behind one session object,
two convenience calls, and a handful of value objects::

    import repro

    # open the index once, map many times (what `repro serve` holds
    # resident across requests):
    with repro.MappingSession.open("ref.fa", "ref.mmi") as session:
        results = session.map_reads(reads)
        stats = session.map_file("reads.fq.gz", out)
        result = session.map_request(repro.MapRequest.make(reads))

    # the classic one-shot facade — now thin clients of the same
    # session object:
    aligner = repro.open_index("ref.fa", "ref.mmi")
    opts = repro.MapOptions(backend="streaming", workers=4)
    results = repro.api.map_reads(aligner, reads, opts)
    with open("out.paf", "w") as out:
        stats = repro.api.map_file(aligner, "reads.fq.gz", out, opts)

:class:`MapOptions` holds every knob of a mapping run;
:class:`MapRequest` / :class:`MapResult` are the versioned
request/response model shared by the one-shot path, the Python facade,
and the ``repro serve`` front-end (:mod:`repro.serve`);
:class:`ServeConfig` is the serving-shape companion (batching,
admission, tenancy). Backends resolve through the registry in
:mod:`repro.runtime.backends`, so ``MapOptions(backend=...)`` accepts
exactly what the CLI's ``--backend`` flag does.

This module is covered by an API-surface snapshot test
(``tests/core/test_api.py``): changing a public name or signature here
is a deliberate, test-acknowledged act.
"""

from __future__ import annotations

import dataclasses
import io
import itertools
import os
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .core.aligner import Aligner
from .core.alignment import Alignment, sam_header, to_paf, to_sam
from .errors import ParseError, SchedulerError
from .index.store import load_index
from .obs.tracing import TRACER, TraceConfig, TraceContext, TraceStore
from .runtime import backends as _backends
from .runtime.faults import FaultPolicy, write_quarantine
from .runtime.streaming import StreamStats, stream_map
from .seq.fasta import iter_reads, read_fasta
from .seq.genome import Genome
from .seq.records import SeqRecord

__all__ = [
    "API_VERSION",
    "MapOptions",
    "MapRequest",
    "MapResult",
    "MappingSession",
    "ServeConfig",
    "StreamStats",
    "open_index",
    "map_reads",
    "map_file",
]

#: Version of the request/response wire model (:class:`MapRequest` /
#: :class:`MapResult`). Bump on any incompatible field change; servers
#: reject requests claiming a newer version than they speak.
API_VERSION = 1


@dataclass(frozen=True)
class MapOptions:
    """Every knob of a mapping run, in one replaceable value object.

    ``backend`` — a :func:`repro.runtime.backends.backend_names` entry
    (``serial`` / ``threads`` / ``processes`` / ``streaming``).
    ``workers`` — pool width (ignored by ``serial``).
    ``chunk_reads`` / ``chunk_bases`` — scheduling-chunk bounds (the
    process and streaming backends; also sizes :func:`map_file`'s
    bounded batches on the batch backends, so it caps memory
    everywhere).
    ``longest_first`` — LPT submission order (§4.4.4); never affects
    output order.
    ``window_reads`` / ``queue_chunks`` — streaming look-ahead window
    and queue capacity (backpressure).
    ``stream_processes`` — back the streaming pipeline's compute
    workers with a process pool (mmap-shared index) instead of threads.
    ``index_path`` — serialized index for process workers to mmap;
    defaults to the path recorded by :func:`open_index`.
    ``fault_policy`` — a :class:`repro.runtime.faults.FaultPolicy`
    controlling per-read error handling, the watchdog timeout, and
    worker-crash recovery; ``None`` (default) keeps every backend
    strictly fail-fast with zero overhead.
    ``kernel`` — base-level DP kernel selection, applied to the aligner
    before mapping: a :func:`repro.align.kernel_names` entry routes DP
    through that kernel's dispatch (cross-read wavefront batching for
    ``wavefront``); ``"none"`` forces the legacy per-pair engine path;
    ``None`` (default) leaves the aligner's configuration untouched.
    Kernel choice never changes mapped output (batched kernels are
    bit-identical to their per-pair fallback; the unbanded
    ``reference``/``scalar`` oracles are the documented exception) —
    only throughput and the ``wavefront.*``/``dispatch.*`` telemetry.
    ``batch_max`` / ``batch_buckets`` — cross-read batching knobs
    forwarded to the dispatch layer (``None`` defers to the preset,
    then the kernel's defaults).
    ``progress_interval`` / ``progress_path`` — live heartbeat: a
    :class:`repro.obs.progress.ProgressReporter` daemon thread emits a
    status line (reads done, reads/s, GCUPS, queue depths, ETA) every
    ``progress_interval`` seconds through the ``repro.progress`` logger
    and, with ``progress_path``, as JSON records to that file. Setting
    only ``progress_path`` uses the default 2 s cadence. ``None``/
    ``None`` (default) starts no thread.
    ``status_port`` — mount a :class:`repro.obs.statusd.StatusServer`
    on ``127.0.0.1:status_port`` for the duration of the run, serving
    ``/metrics`` (OpenMetrics), ``/status`` (JSON heartbeat), ``/events``
    and ``/healthz``; ``0`` binds an OS-assigned free port (logged);
    ``None`` (default) starts no server. The heartbeat and the server
    share one :class:`repro.obs.export.RunSampler`.
    ``events_path`` — mirror the run's structured event stream
    (dispatch decisions, pool respawns, faults, heartbeats — the
    :data:`repro.obs.events.EVENTS` ring) to this JSONL file.
    ``run_dir`` — make the run durable: write output and a write-ahead
    journal (:mod:`repro.runtime.journal`) into this directory, with
    an fsynced commit every ``commit_reads`` reads, so a killed run
    can be resumed byte-identically. ``resume`` — continue the run in
    ``run_dir`` from its last verified commit instead of requiring a
    fresh directory (``manymap resume`` sets this). Both apply to
    :func:`map_file` only (the journal checkpoints a *file* corpus);
    ``run_dir=None`` (default) journals nothing and costs nothing.
    ``tracing`` — a :class:`repro.obs.tracing.TraceConfig`: give the
    run a request-scoped trace plane (one root trace, per-chunk spans,
    per-bucket kernel spans) with tail-based sampling and an optional
    on-disk trace store; ``None`` (default) traces nothing and the
    instrumentation points cost one branch each.
    """

    backend: str = "serial"
    workers: int = 1
    with_cigar: bool = True
    longest_first: bool = True
    chunk_reads: int = 32
    chunk_bases: int = 1_000_000
    window_reads: int = 256
    queue_chunks: int = 8
    stream_processes: bool = False
    index_path: Optional[str] = None
    kernel: Optional[str] = None
    batch_max: Optional[int] = None
    batch_buckets: Optional[Tuple[int, ...]] = None
    fault_policy: Optional["FaultPolicy"] = None
    progress_interval: Optional[float] = None
    progress_path: Optional[str] = None
    status_port: Optional[int] = None
    events_path: Optional[str] = None
    run_dir: Optional[str] = None
    resume: bool = False
    commit_reads: int = 256
    tracing: Optional[TraceConfig] = None

    def replace(self, **changes) -> "MapOptions":
        """A copy with ``changes`` applied (unknown names: TypeError)."""
        return dataclasses.replace(self, **changes)

    def validated(self) -> "MapOptions":
        """Self, after checking every field; raises SchedulerError."""
        _backends.get_backend(self.backend)
        for name in ("workers", "chunk_reads", "chunk_bases",
                     "window_reads", "queue_chunks"):
            if getattr(self, name) < 1:
                raise SchedulerError(
                    f"{name} must be >= 1: {getattr(self, name)}"
                )
        if self.kernel is not None:
            from .align.dispatch import kernel_names

            if self.kernel != "none" and self.kernel not in kernel_names():
                raise SchedulerError(
                    f"unknown kernel {self.kernel!r}; expected 'none' or "
                    f"one of {kernel_names()}"
                )
        if self.batch_max is not None and self.batch_max < 0:
            raise SchedulerError(
                f"batch_max must be >= 0: {self.batch_max}"
            )
        if self.fault_policy is not None:
            self.fault_policy.validated()
        if self.progress_interval is not None and self.progress_interval <= 0:
            raise SchedulerError(
                f"progress_interval must be > 0: {self.progress_interval}"
            )
        if self.status_port is not None and not (
            0 <= self.status_port <= 65535
        ):
            raise SchedulerError(
                f"status_port must be in [0, 65535]: {self.status_port}"
            )
        if self.commit_reads < 1:
            raise SchedulerError(
                f"commit_reads must be >= 1: {self.commit_reads}"
            )
        if self.resume and not self.run_dir:
            raise SchedulerError("resume=True needs run_dir to be set")
        if self.tracing is not None:
            try:
                self.tracing.validated()
            except ValueError as exc:
                raise SchedulerError(str(exc)) from exc
        return self


#: ``MapRequest.on_error`` values: abort the whole request on the first
#: failing read, or skip (quarantine) failing reads and keep the rest.
REQUEST_ON_ERROR = ("abort", "skip")


@dataclass(frozen=True)
class MapRequest:
    """One versioned mapping request: a named batch of reads to map.

    The same value object flows through every entry point — built
    directly in Python, decoded from the ``POST /map`` JSON body by
    ``repro serve``, or synthesized by :meth:`make`. ``tenant`` scopes
    fairness and quotas on the server; ``on_error`` picks per-request
    fault semantics (``abort``: the request fails naming the first bad
    read; ``skip``: bad reads are quarantined via
    :mod:`repro.runtime.faults` and the rest of the request succeeds).
    ``timeout_ms`` is the caller's per-request deadline: the server
    answers 504 instead of mapping (or instead of returning a result
    computed after the deadline) once that many milliseconds have
    passed since admission; ``None`` means wait forever.
    ``trace`` is an optional :class:`repro.obs.tracing.TraceContext`:
    when set (by :class:`repro.serve.client.ServeClient` with tracing
    on, or by any caller that wants to stitch the server's spans into
    its own trace), the server joins that trace instead of starting a
    fresh one and echoes the ``trace_id`` in the result.
    """

    request_id: str
    reads: Tuple[SeqRecord, ...]
    tenant: str = "default"
    with_cigar: bool = True
    on_error: str = "abort"
    timeout_ms: Optional[float] = None
    trace: Optional[TraceContext] = None
    api_version: int = API_VERSION

    @classmethod
    def make(
        cls,
        reads: Sequence[SeqRecord],
        request_id: Optional[str] = None,
        **kwargs,
    ) -> "MapRequest":
        """A request over ``reads`` with a generated id when none given."""
        return cls(
            request_id=request_id or uuid.uuid4().hex[:12],
            reads=tuple(reads),
            **kwargs,
        ).validated()

    @classmethod
    def from_json(cls, doc: Dict) -> "MapRequest":
        """Decode the wire form; raises :class:`ParseError` on bad input."""
        if not isinstance(doc, dict):
            raise ParseError(f"request body must be a JSON object, got "
                             f"{type(doc).__name__}")
        version = doc.get("api_version", API_VERSION)
        if not isinstance(version, int) or version > API_VERSION:
            raise ParseError(
                f"api_version {version!r} is newer than this server's "
                f"{API_VERSION}"
            )
        raw = doc.get("reads")
        if not isinstance(raw, list) or not raw:
            raise ParseError("request needs a non-empty 'reads' list")
        reads: List[SeqRecord] = []
        for i, rec in enumerate(raw):
            if not isinstance(rec, dict):
                raise ParseError(f"reads[{i}] must be an object")
            name = str(rec.get("name") or f"read{i:04d}")
            seq = rec.get("seq")
            if not isinstance(seq, str) or not seq:
                raise ParseError(f"reads[{i}] ({name}): missing 'seq'")
            try:
                reads.append(SeqRecord.from_str(name, seq))
            except Exception as exc:
                raise ParseError(f"reads[{i}] ({name}): {exc}") from exc
        timeout_ms = doc.get("timeout_ms")
        if timeout_ms is not None:
            try:
                timeout_ms = float(timeout_ms)
            except (TypeError, ValueError) as exc:
                raise ParseError(
                    f"timeout_ms must be a number: {timeout_ms!r}"
                ) from exc
        trace = doc.get("trace")
        if trace is not None:
            try:
                trace = TraceContext.from_json(trace)
            except ValueError as exc:
                raise ParseError(f"bad trace context: {exc}") from exc
        return cls(
            request_id=str(doc.get("request_id") or uuid.uuid4().hex[:12]),
            reads=tuple(reads),
            tenant=str(doc.get("tenant") or "default"),
            with_cigar=bool(doc.get("with_cigar", True)),
            on_error=str(doc.get("on_error", "abort")),
            timeout_ms=timeout_ms,
            trace=trace,
            api_version=version,
        ).validated()

    def to_json(self) -> Dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "reads": [
                {"name": r.name, "seq": r.seq} for r in self.reads
            ],
            "with_cigar": self.with_cigar,
            "on_error": self.on_error,
            "timeout_ms": self.timeout_ms,
            "trace": self.trace.to_json() if self.trace else None,
            "api_version": self.api_version,
        }

    def validated(self) -> "MapRequest":
        if not self.request_id:
            raise ParseError("request_id must be non-empty")
        if not self.reads:
            raise ParseError(f"request {self.request_id}: no reads")
        if not self.tenant:
            raise ParseError(f"request {self.request_id}: empty tenant")
        if self.on_error not in REQUEST_ON_ERROR:
            raise ParseError(
                f"on_error must be one of {REQUEST_ON_ERROR}: "
                f"{self.on_error!r}"
            )
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ParseError(
                f"request {self.request_id}: timeout_ms must be > 0: "
                f"{self.timeout_ms}"
            )
        return self

    @property
    def n_reads(self) -> int:
        return len(self.reads)

    @property
    def total_bases(self) -> int:
        return sum(len(r) for r in self.reads)


@dataclass(frozen=True)
class MapResult:
    """The response to one :class:`MapRequest`.

    ``paf`` carries one tuple of PAF lines per read, in request order
    (a read with no hits contributes an empty tuple) — byte-identical
    to what the one-shot CLI writes for the same read. ``status`` is
    ``"ok"`` or ``"error"``; an error result names the culprit in
    ``error`` and carries no alignments. ``quarantined`` lists reads
    absorbed by an ``on_error="skip"`` request. The timing fields are
    filled by the server (zero on the one-shot path except ``map_ms``);
    ``batch_id`` / ``batch_requests`` describe the coalesced batch this
    request rode in. ``trace_id`` names the request's distributed
    trace when the server ran with tracing enabled (fetch the span
    tree at ``GET /trace/<id>``); empty otherwise.
    """

    request_id: str
    status: str = "ok"
    read_names: Tuple[str, ...] = ()
    paf: Tuple[Tuple[str, ...], ...] = ()
    quarantined: Tuple[str, ...] = ()
    error: Optional[str] = None
    batch_id: int = 0
    batch_requests: int = 1
    queue_ms: float = 0.0
    map_ms: float = 0.0
    total_ms: float = 0.0
    trace_id: str = ""
    api_version: int = API_VERSION

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def paf_lines(self) -> List[str]:
        """All PAF lines of the request, flattened in read order."""
        return [line for lines in self.paf for line in lines]

    def replace(self, **changes) -> "MapResult":
        return dataclasses.replace(self, **changes)

    def to_json(self) -> Dict:
        return {
            "record": "map_result",
            "request_id": self.request_id,
            "status": self.status,
            "reads": [
                {"name": name, "paf": list(lines)}
                for name, lines in zip(self.read_names, self.paf)
            ],
            "quarantined": list(self.quarantined),
            "error": self.error,
            "batch_id": self.batch_id,
            "batch_requests": self.batch_requests,
            "timing": {
                "queue_ms": self.queue_ms,
                "map_ms": self.map_ms,
                "total_ms": self.total_ms,
            },
            "trace_id": self.trace_id,
            "api_version": self.api_version,
        }

    @classmethod
    def from_json(cls, doc: Dict) -> "MapResult":
        if not isinstance(doc, dict) or doc.get("record") != "map_result":
            raise ParseError("not a map_result document")
        reads = doc.get("reads") or []
        timing = doc.get("timing") or {}
        return cls(
            request_id=str(doc.get("request_id", "")),
            status=str(doc.get("status", "error")),
            read_names=tuple(str(r.get("name", "")) for r in reads),
            paf=tuple(tuple(r.get("paf") or ()) for r in reads),
            quarantined=tuple(doc.get("quarantined") or ()),
            error=doc.get("error"),
            batch_id=int(doc.get("batch_id", 0)),
            batch_requests=int(doc.get("batch_requests", 1)),
            queue_ms=float(timing.get("queue_ms", 0.0)),
            map_ms=float(timing.get("map_ms", 0.0)),
            total_ms=float(timing.get("total_ms", 0.0)),
            trace_id=str(doc.get("trace_id") or ""),
            api_version=int(doc.get("api_version", API_VERSION)),
        )


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of a ``repro serve`` deployment, in one value object.

    Batching: requests are coalesced until the batch holds
    ``max_batch_reads`` reads (never splitting one request) or
    ``batch_timeout_ms`` has passed since the first request arrived.
    With ``adaptive_batching`` the live read target starts at a quarter
    of the maximum and grows/shrinks between ``min_batch_reads`` and
    ``max_batch_reads`` as the observed request p99 latency (over the
    last ``latency_window`` requests) tracks ``latency_target_ms``.

    Admission: at most ``max_queue_requests`` requests may be queued
    (excess is shed with HTTP 429), at most ``tenant_quota`` may be
    outstanding (queued + in flight) per tenant, and one request may
    carry at most ``max_reads_per_request`` reads. ``batch_workers``
    mapping threads execute batches concurrently. ``drain_timeout_s``
    bounds the graceful SIGTERM drain before leftover requests are
    failed with 503.

    ``tracing`` (a :class:`repro.obs.tracing.TraceConfig`) turns on
    per-request distributed tracing: every admitted request becomes a
    root→admission→batch→kernel span tree, tail-sampled into a bounded
    :class:`repro.obs.tracing.TraceStore` and served at
    ``GET /trace/<id>`` / ``GET /traces?slowest=N``; ``None``
    (default) traces nothing.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch_reads: int = 64
    min_batch_reads: int = 4
    batch_timeout_ms: float = 20.0
    adaptive_batching: bool = True
    latency_target_ms: float = 500.0
    latency_window: int = 64
    max_queue_requests: int = 256
    max_reads_per_request: int = 512
    tenant_quota: int = 64
    batch_workers: int = 1
    drain_timeout_s: float = 10.0
    tracing: Optional[TraceConfig] = None

    def replace(self, **changes) -> "ServeConfig":
        return dataclasses.replace(self, **changes)

    def validated(self) -> "ServeConfig":
        if not (0 <= self.port <= 65535):
            raise SchedulerError(f"port must be in [0, 65535]: {self.port}")
        for name in (
            "max_batch_reads",
            "min_batch_reads",
            "max_queue_requests",
            "max_reads_per_request",
            "tenant_quota",
            "batch_workers",
            "latency_window",
        ):
            if getattr(self, name) < 1:
                raise SchedulerError(
                    f"{name} must be >= 1: {getattr(self, name)}"
                )
        if self.min_batch_reads > self.max_batch_reads:
            raise SchedulerError(
                f"min_batch_reads {self.min_batch_reads} > "
                f"max_batch_reads {self.max_batch_reads}"
            )
        for name in ("batch_timeout_ms", "latency_target_ms"):
            if getattr(self, name) <= 0:
                raise SchedulerError(
                    f"{name} must be > 0: {getattr(self, name)}"
                )
        if self.drain_timeout_s < 0:
            raise SchedulerError(
                f"drain_timeout_s must be >= 0: {self.drain_timeout_s}"
            )
        if self.tracing is not None:
            try:
                self.tracing.validated()
            except ValueError as exc:
                raise SchedulerError(str(exc)) from exc
        return self

    def to_json(self) -> Dict:
        return dataclasses.asdict(self)


def _resolve(
    options: Optional[MapOptions], overrides: dict, aligner=None
) -> MapOptions:
    opts = (options or MapOptions()).replace(**overrides)
    if opts.index_path is None and aligner is not None:
        src = getattr(aligner, "index_source", None)
        if src:
            opts = opts.replace(index_path=src)
    return opts.validated()


def _apply_kernel(aligner, opts: MapOptions) -> None:
    """Apply the options' kernel/batching selection to the aligner.

    A no-op when none of the kernel fields are set, so shared aligners
    are never reconfigured behind the caller's back by a plain run.
    """
    if (
        opts.kernel is None
        and opts.batch_max is None
        and opts.batch_buckets is None
    ):
        return
    if not callable(getattr(aligner, "set_kernel", None)):
        return  # duck-typed aligners: nothing to configure
    kernel = opts.kernel
    if kernel is None:
        kernel = aligner._kernel_arg  # only batching knobs changed
    elif kernel == "none":
        kernel = None
    aligner.set_kernel(
        kernel,
        batch_max=(
            opts.batch_max if opts.batch_max is not None else aligner.batch_max
        ),
        batch_buckets=(
            opts.batch_buckets
            if opts.batch_buckets is not None
            else aligner.batch_buckets
        ),
    )


def _fault_telemetry(opts: MapOptions, telemetry):
    """Ensure a Telemetry exists when something downstream needs one:
    the quarantine sidecar, the status server (run_id + gauges on
    ``/status``), or the events sink (run-scoped event counts)."""
    pol = opts.fault_policy
    needs = (
        (pol is not None and pol.failed_reads)
        or opts.status_port is not None
        or opts.events_path is not None
    )
    if telemetry is None and needs:
        from .obs.telemetry import Telemetry

        return Telemetry()
    return telemetry


def _finish_faults(opts: MapOptions, telemetry) -> None:
    """Write the quarantine sidecar once, at the end of a public call."""
    pol = opts.fault_policy
    if pol is not None and pol.failed_reads and telemetry is not None:
        write_quarantine(
            pol.failed_reads,
            telemetry.faults,
            run_id=getattr(telemetry, "run_id", ""),
        )


@contextmanager
def _trace_plane(opts: MapOptions, label: str = "map_file"):
    """The run's request-scoped trace plane, or a no-op context.

    Yields ``(store, root)``: a :class:`repro.obs.tracing.TraceStore`
    and the run's root span, with the root's context made ambient on
    the calling thread so per-chunk and per-bucket kernel spans nest
    under it. The root is finished (and tail-sampled into the store)
    on exit, with ``status="error"`` when the run raised.
    """
    cfg = opts.tracing
    if cfg is None or not cfg.enabled:
        yield None, None
        return
    store = TraceStore(cfg)
    TRACER.enable()
    root = TRACER.start_span(
        f"run.{label}",
        sampled=store.head_sampled(),
        attrs={"backend": opts.backend, "workers": opts.workers},
    )
    try:
        with TRACER.use(root.ctx):
            yield store, root
    except BaseException:
        store.finish(root, status="error")
        TRACER.disable()
        raise
    store.finish(root, status="ok")
    TRACER.disable()


@contextmanager
def _live_plane(
    opts: MapOptions,
    telemetry,
    total_reads: Optional[int] = None,
    traces: Optional[TraceStore] = None,
):
    """The run's live telemetry plane, or a no-op context.

    One shared :class:`repro.obs.export.RunSampler` feeds both the
    progress heartbeat and the ``--status-port`` HTTP endpoint, so the
    JSONL beats and ``/status`` agree field for field; ``--events``
    attaches the JSONL sink to the global event bus for the run.
    """
    want_progress = (
        opts.progress_interval is not None or opts.progress_path is not None
    )
    want_status = opts.status_port is not None
    if not (want_progress or want_status or opts.events_path):
        yield None
        return
    from .obs.events import EVENTS
    from .obs.export import RunSampler

    sampler = RunSampler(telemetry=telemetry, total_reads=total_reads)
    if opts.events_path:
        EVENTS.open_sink(opts.events_path)
    server = reporter = None
    try:
        if want_status:
            from .obs.statusd import StatusServer

            server = StatusServer(
                sampler=sampler, port=opts.status_port, traces=traces
            ).start()
        if want_progress:
            from .obs.progress import ProgressReporter

            reporter = ProgressReporter(
                telemetry=telemetry,
                interval=opts.progress_interval or 2.0,
                total_reads=total_reads,
                path=opts.progress_path,
                sampler=sampler,
            ).start()
        yield sampler
    finally:
        if reporter is not None:
            reporter.stop()
        if server is not None:
            server.stop()
        if opts.events_path:
            EVENTS.close_sink()


def open_index(
    reference: Union[Genome, str, os.PathLike],
    index_path: Optional[Union[str, os.PathLike]] = None,
    *,
    preset: str = "map-pb",
    engine: str = "manymap",
    load_mode: str = "mmap",
) -> Aligner:
    """Build an :class:`Aligner` over a reference and optional saved index.

    ``reference`` is a :class:`Genome` or a FASTA path. With
    ``index_path`` the serialized index is loaded (``load_mode='mmap'``
    keeps it page-cache shared, §4.4.2) and its path is remembered on
    the aligner (``aligner.index_source``) so process-backed mapping
    reuses the same file zero-copy; without it the index is built
    in-process.
    """
    genome = (
        reference
        if isinstance(reference, Genome)
        else Genome(read_fasta(os.fspath(reference)))
    )
    index = None
    if index_path is not None:
        index = load_index(os.fspath(index_path), mode=load_mode)
    aligner = Aligner(genome, preset=preset, engine=engine, index=index)
    aligner.index_source = os.fspath(index_path) if index_path else None
    return aligner


class MappingSession:
    """Open the index once, map many times.

    The one mapping engine shared by every front-end: the module-level
    :func:`map_reads` / :func:`map_file` facade functions, the CLI
    one-shot path, and the ``repro serve`` batcher are all thin clients
    of this class. The session pins an :class:`Aligner` (and thus its
    mmap'd index) plus default :class:`MapOptions`; each call resolves
    per-call overrides against those defaults, so a server can hold one
    session resident and serve many requests without re-reading the
    index.
    """

    def __init__(
        self, aligner: Aligner, options: Optional[MapOptions] = None
    ):
        self.aligner = aligner
        self.options = options or MapOptions()
        self._closed = False
        _apply_kernel(aligner, self.options)

    @classmethod
    def open(
        cls,
        reference: Union[Genome, str, os.PathLike],
        index_path: Optional[Union[str, os.PathLike]] = None,
        *,
        preset: str = "map-pb",
        engine: str = "manymap",
        load_mode: str = "mmap",
        options: Optional[MapOptions] = None,
    ) -> "MappingSession":
        """:func:`open_index` + session in one call."""
        aligner = open_index(
            reference,
            index_path,
            preset=preset,
            engine=engine,
            load_mode=load_mode,
        )
        return cls(aligner, options)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Mark the session closed; later map calls raise."""
        self._closed = True

    def __enter__(self) -> "MappingSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SchedulerError("MappingSession is closed")

    def _opts(
        self, options: Optional[MapOptions], overrides: dict
    ) -> MapOptions:
        return _resolve(options or self.options, overrides, self.aligner)

    def map_reads(
        self,
        reads: Sequence[SeqRecord],
        options: Optional[MapOptions] = None,
        *,
        profile=None,
        telemetry=None,
        **overrides,
    ) -> List[List[Alignment]]:
        """Map a read collection; results in input order on any backend.

        ``overrides`` are applied on top of ``options`` (which defaults
        to the session's options). ``profile`` / ``telemetry`` are the
        usual :class:`~repro.core.profiling.PipelineProfile` /
        :class:`~repro.obs.telemetry.Telemetry` collectors.
        """
        self._check_open()
        opts = self._opts(options, overrides)
        _apply_kernel(self.aligner, opts)
        telemetry = _fault_telemetry(opts, telemetry)
        with _trace_plane(opts, label="map_reads") as (tstore, _root):
            with _live_plane(
                opts, telemetry, total_reads=len(reads), traces=tstore
            ):
                results = _backends.dispatch(
                    self.aligner, reads, opts, profile=profile,
                    telemetry=telemetry,
                )
        _finish_faults(opts, telemetry)
        return results

    def map_file(
        self,
        reads_path: Union[str, os.PathLike],
        output: Optional[io.TextIOBase] = None,
        options: Optional[MapOptions] = None,
        *,
        sam: bool = False,
        profile=None,
        telemetry=None,
        **overrides,
    ) -> StreamStats:
        """Map a FASTA/FASTQ(.gz) file, writing PAF (or SAM) as it goes.

        Every backend consumes the file through the shared streaming
        reader (:func:`repro.seq.fasta.iter_reads`): the ``streaming``
        backend runs the full overlapped pipeline with constant memory;
        the batch backends read bounded batches of
        ``chunk_reads × workers × 4`` reads at a time, so
        ``chunk_reads`` bounds memory on every backend. Output lines
        are written strictly in input order either way, so the bytes
        are identical across backends. Returns the run's
        :class:`StreamStats`.

        With ``options.run_dir`` the run is durable: output goes to
        ``RUN_DIR/output.paf`` through the write-ahead journal
        (:mod:`repro.runtime.journal`, fsynced commit every
        ``commit_reads`` reads), the ``output`` handle is ignored, and
        ``options.resume=True`` continues a killed run from its last
        verified commit — skipping the committed reads on the way in,
        so the final bytes are identical to an uninterrupted run.
        """
        self._check_open()
        aligner = self.aligner
        opts = self._opts(options, overrides)
        _apply_kernel(aligner, opts)
        telemetry = _fault_telemetry(opts, telemetry)

        journal = None
        if opts.run_dir:
            from .runtime.journal import RunJournal

            journal = RunJournal(
                opts.run_dir,
                identity={
                    "reads": os.path.abspath(os.fspath(reads_path)),
                    "sam": bool(sam),
                    "with_cigar": bool(opts.with_cigar),
                    "preset": getattr(aligner.preset, "name", None),
                    "engine": getattr(aligner, "engine_name", None),
                },
                commit_reads=opts.commit_reads,
                resume=opts.resume,
            )

        def write_header() -> None:
            if not sam:
                return
            text = (
                sam_header(aligner.index.names, aligner.index.lengths) + "\n"
            )
            if journal is not None:
                if journal.offset == 0:  # fresh run, not a resume
                    journal.write_text(text)
                    journal.commit()
            elif output is not None:
                output.write(text)

        # Write-time fault injection (disk_full / torn_write): the
        # sink consults the injector with the read name and payload.
        injector = getattr(opts.fault_policy, "injector", None)
        on_write = getattr(injector, "on_write", None)

        def emit(read: SeqRecord, alns: List[Alignment]) -> None:
            if journal is not None:
                text = "".join(
                    (to_sam(aln, read) if sam else to_paf(aln)) + "\n"
                    for aln in alns
                )
                if on_write is not None:
                    on_write(read.name, fh=journal.output_handle,
                             payload=text)
                journal.write_text(text)
                journal.read_done()
                return
            if output is None:
                return
            if on_write is not None:
                on_write(read.name, fh=output, payload=None)
            for aln in alns:
                output.write(to_sam(aln, read) if sam else to_paf(aln))
                output.write("\n")

        source = iter_reads(os.fspath(reads_path))
        if journal is not None and journal.reads_done:
            # Committed reads re-map to the same bytes; don't re-map them.
            source = itertools.islice(source, journal.reads_done, None)
        tstore = None
        try:
            with _trace_plane(opts, label="map_file") as (tstore, _root):
                stats = self._run_map_file(
                    source, emit, write_header, opts, journal,
                    profile=profile, telemetry=telemetry, traces=tstore,
                )
        except BaseException:
            if journal is not None:
                journal.close()  # keep the last commit; no completion
            raise
        if journal is not None:
            journal.complete()
            stats.journal = journal.summary()
            if telemetry is not None:
                # journal.* lands in the run-scoped counter delta, so
                # the metrics manifest and report see commit activity.
                telemetry.absorb(dict(journal.counters))
        if tstore is not None:
            stats.tracing = tstore.summary()
        return stats

    def _run_map_file(
        self, source, emit, write_header, opts, journal, *,
        profile=None, telemetry=None, traces=None,
    ) -> StreamStats:
        """The backend split of :meth:`map_file`, journal-agnostic."""
        from .runtime.journal import journal_events

        aligner = self.aligner
        write_header()
        if opts.backend == "streaming":
            with _live_plane(opts, telemetry, traces=traces), \
                    journal_events(journal):
                stats = stream_map(
                    aligner,
                    source,
                    emit,
                    workers=opts.workers,
                    use_processes=opts.stream_processes,
                    with_cigar=opts.with_cigar,
                    longest_first=opts.longest_first,
                    chunk_reads=opts.chunk_reads,
                    chunk_bases=opts.chunk_bases,
                    window_reads=opts.window_reads,
                    queue_chunks=opts.queue_chunks,
                    index_path=opts.index_path,
                    profile=profile,
                    telemetry=telemetry,
                    fault_policy=opts.fault_policy,
                )
            _finish_faults(opts, telemetry)
            return stats

        # Batch backends: bounded batches through the same reader path.
        from contextlib import nullcontext

        def stage(name):
            return (
                profile.stage(name) if profile is not None else nullcontext()
            )

        stats = StreamStats()
        batch_size = opts.chunk_reads * max(1, opts.workers) * 4
        with _live_plane(opts, telemetry, traces=traces), \
                journal_events(journal):
            while True:
                batch: List[SeqRecord] = []
                with stage("Load Query"):
                    for read in source:
                        batch.append(read)
                        if len(batch) >= batch_size:
                            break
                if not batch:
                    break
                stats.n_chunks += 1
                with TRACER.span(
                    "chunk", chunk=stats.n_chunks, reads=len(batch)
                ):
                    results = _backends.dispatch(
                        aligner, batch, opts, profile=profile,
                        telemetry=telemetry,
                    )
                with stage("Output"):
                    for read, alns in zip(batch, results):
                        emit(read, alns)
                stats.n_reads += len(batch)
                stats.total_bases += sum(len(r) for r in batch)
                stats.n_mapped += sum(1 for alns in results if alns)
                stats.n_alignments += sum(len(alns) for alns in results)
                if len(batch) < batch_size:
                    break
        _finish_faults(opts, telemetry)
        return stats

    def map_batch(
        self,
        reads: Sequence[SeqRecord],
        with_cigar: bool = True,
    ) -> List[List[Alignment]]:
        """Map reads in-process, pooling their base-level DP.

        The serve batcher's hot path: one
        :func:`repro.runtime.faults.map_chunk_reads` call feeds the
        whole coalesced batch through the kernel-dispatch layer as
        chunk-wide DP buckets (falling back to the per-read loop when
        pooling does not apply). Errors propagate raw — callers that
        must name the failing read re-run per read (mapping is
        deterministic).
        """
        self._check_open()
        from .runtime.faults import map_chunk_reads, map_one_read

        with TRACER.span("session.map_batch", reads=len(reads)) as sp:
            pooled = map_chunk_reads(
                self.aligner, list(reads), with_cigar, None
            )
            if pooled is not None:
                return [alns for alns, _, _, _ in pooled]
            if sp is not None:
                sp.attrs["pooled"] = False
            return [
                map_one_read(self.aligner, read, with_cigar, None)[0]
                for read in reads
            ]

    def map_request(self, request: MapRequest) -> MapResult:
        """Map one :class:`MapRequest` deterministically, alone.

        The per-request fallback the server uses to isolate a poison
        read after a pooled batch fails, and the one-process reference
        path for clients that skip HTTP entirely. ``on_error="abort"``
        returns an error result naming the first failing read;
        ``on_error="skip"`` quarantines failing reads via
        :mod:`repro.runtime.faults` and maps the rest.
        """
        self._check_open()
        from .runtime.faults import map_one_read

        request.validated()
        t0 = time.perf_counter()
        policy = (
            FaultPolicy(on_error="skip", max_retries=0)
            if request.on_error == "skip"
            else None
        )
        paf: List[Tuple[str, ...]] = []
        quarantined: List[str] = []
        with TRACER.span(
            "session.map_request", reads=request.n_reads
        ) as sp:
            for read in request.reads:
                try:
                    alns, _, _, fault = map_one_read(
                        self.aligner, read, request.with_cigar, policy
                    )
                except Exception as exc:  # abort mode: name the culprit
                    if sp is not None:
                        sp.status = "error"
                    return MapResult(
                        request_id=request.request_id,
                        status="error",
                        error=f"read {read.name!r}: {exc}",
                        map_ms=(time.perf_counter() - t0) * 1000.0,
                    )
                if fault is not None:
                    quarantined.append(read.name)
                    paf.append(())
                else:
                    paf.append(tuple(to_paf(a) for a in alns))
        return MapResult(
            request_id=request.request_id,
            read_names=tuple(r.name for r in request.reads),
            paf=tuple(paf),
            quarantined=tuple(quarantined),
            map_ms=(time.perf_counter() - t0) * 1000.0,
        )


def map_reads(
    aligner: Aligner,
    reads: Sequence[SeqRecord],
    options: Optional[MapOptions] = None,
    *,
    profile=None,
    telemetry=None,
    **overrides,
) -> List[List[Alignment]]:
    """Map a read collection; results in input order on any backend.

    A thin client of :class:`MappingSession` — see
    :meth:`MappingSession.map_reads`. ``overrides`` are applied on top
    of ``options`` (e.g.
    ``map_reads(a, reads, backend="processes", workers=8)``).
    """
    return MappingSession(aligner).map_reads(
        reads, options, profile=profile, telemetry=telemetry, **overrides
    )


def map_file(
    aligner: Aligner,
    reads_path: Union[str, os.PathLike],
    output: Optional[io.TextIOBase] = None,
    options: Optional[MapOptions] = None,
    *,
    sam: bool = False,
    profile=None,
    telemetry=None,
    **overrides,
) -> StreamStats:
    """Map a FASTA/FASTQ(.gz) file, writing PAF (or SAM) as it goes.

    A thin client of :class:`MappingSession` — see
    :meth:`MappingSession.map_file`.
    """
    return MappingSession(aligner).map_file(
        reads_path,
        output,
        options,
        sam=sam,
        profile=profile,
        telemetry=telemetry,
        **overrides,
    )
