"""The stable public mapping API: ``open_index`` / ``map_reads`` / ``map_file``.

Everything a library consumer needs sits behind three calls and one
options object::

    import repro

    aligner = repro.open_index("ref.fa", "ref.mmi")       # or a Genome
    opts = repro.MapOptions(backend="streaming", workers=4)

    # batch: results in input order, byte-identical across backends
    results = repro.api.map_reads(aligner, reads, opts)

    # streaming: constant-memory file-to-file mapping
    with open("out.paf", "w") as out:
        stats = repro.api.map_file(aligner, "reads.fq.gz", out, opts)

:class:`MapOptions` replaces the keyword sprawl previously duplicated
across ``runtime/parallel.map_reads``, ``runtime/procpool``, the
drivers, and the CLI — those entry points still work but delegate here
(the two module-level functions emit :class:`DeprecationWarning`).
Backends resolve through the registry in
:mod:`repro.runtime.backends`, so ``MapOptions(backend=...)`` accepts
exactly what the CLI's ``--backend`` flag does.

This module is covered by an API-surface snapshot test
(``tests/core/test_api.py``): changing a public name or signature here
is a deliberate, test-acknowledged act.
"""

from __future__ import annotations

import dataclasses
import io
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from .core.aligner import Aligner
from .core.alignment import Alignment, sam_header, to_paf, to_sam
from .errors import SchedulerError
from .index.store import load_index
from .runtime import backends as _backends
from .runtime.faults import FaultPolicy, write_quarantine
from .runtime.streaming import StreamStats, stream_map
from .seq.fasta import iter_reads, read_fasta
from .seq.genome import Genome
from .seq.records import SeqRecord

__all__ = [
    "MapOptions",
    "StreamStats",
    "open_index",
    "map_reads",
    "map_file",
]


@dataclass(frozen=True)
class MapOptions:
    """Every knob of a mapping run, in one replaceable value object.

    ``backend`` — a :func:`repro.runtime.backends.backend_names` entry
    (``serial`` / ``threads`` / ``processes`` / ``streaming``).
    ``workers`` — pool width (ignored by ``serial``).
    ``chunk_reads`` / ``chunk_bases`` — scheduling-chunk bounds (the
    process and streaming backends; also sizes :func:`map_file`'s
    bounded batches on the batch backends, so it caps memory
    everywhere).
    ``longest_first`` — LPT submission order (§4.4.4); never affects
    output order.
    ``window_reads`` / ``queue_chunks`` — streaming look-ahead window
    and queue capacity (backpressure).
    ``stream_processes`` — back the streaming pipeline's compute
    workers with a process pool (mmap-shared index) instead of threads.
    ``index_path`` — serialized index for process workers to mmap;
    defaults to the path recorded by :func:`open_index`.
    ``fault_policy`` — a :class:`repro.runtime.faults.FaultPolicy`
    controlling per-read error handling, the watchdog timeout, and
    worker-crash recovery; ``None`` (default) keeps every backend
    strictly fail-fast with zero overhead.
    ``kernel`` — base-level DP kernel selection, applied to the aligner
    before mapping: a :func:`repro.align.kernel_names` entry routes DP
    through that kernel's dispatch (cross-read wavefront batching for
    ``wavefront``); ``"none"`` forces the legacy per-pair engine path;
    ``None`` (default) leaves the aligner's configuration untouched.
    Kernel choice never changes mapped output (batched kernels are
    bit-identical to their per-pair fallback; the unbanded
    ``reference``/``scalar`` oracles are the documented exception) —
    only throughput and the ``wavefront.*``/``dispatch.*`` telemetry.
    ``batch_max`` / ``batch_buckets`` — cross-read batching knobs
    forwarded to the dispatch layer (``None`` defers to the preset,
    then the kernel's defaults).
    ``progress_interval`` / ``progress_path`` — live heartbeat: a
    :class:`repro.obs.progress.ProgressReporter` daemon thread emits a
    status line (reads done, reads/s, GCUPS, queue depths, ETA) every
    ``progress_interval`` seconds through the ``repro.progress`` logger
    and, with ``progress_path``, as JSON records to that file. Setting
    only ``progress_path`` uses the default 2 s cadence. ``None``/
    ``None`` (default) starts no thread.
    ``status_port`` — mount a :class:`repro.obs.statusd.StatusServer`
    on ``127.0.0.1:status_port`` for the duration of the run, serving
    ``/metrics`` (OpenMetrics), ``/status`` (JSON heartbeat), ``/events``
    and ``/healthz``; ``0`` binds an OS-assigned free port (logged);
    ``None`` (default) starts no server. The heartbeat and the server
    share one :class:`repro.obs.export.RunSampler`.
    ``events_path`` — mirror the run's structured event stream
    (dispatch decisions, pool respawns, faults, heartbeats — the
    :data:`repro.obs.events.EVENTS` ring) to this JSONL file.
    """

    backend: str = "serial"
    workers: int = 1
    with_cigar: bool = True
    longest_first: bool = True
    chunk_reads: int = 32
    chunk_bases: int = 1_000_000
    window_reads: int = 256
    queue_chunks: int = 8
    stream_processes: bool = False
    index_path: Optional[str] = None
    kernel: Optional[str] = None
    batch_max: Optional[int] = None
    batch_buckets: Optional[Tuple[int, ...]] = None
    fault_policy: Optional["FaultPolicy"] = None
    progress_interval: Optional[float] = None
    progress_path: Optional[str] = None
    status_port: Optional[int] = None
    events_path: Optional[str] = None

    def replace(self, **changes) -> "MapOptions":
        """A copy with ``changes`` applied (unknown names: TypeError)."""
        return dataclasses.replace(self, **changes)

    def validated(self) -> "MapOptions":
        """Self, after checking every field; raises SchedulerError."""
        _backends.get_backend(self.backend)
        for name in ("workers", "chunk_reads", "chunk_bases",
                     "window_reads", "queue_chunks"):
            if getattr(self, name) < 1:
                raise SchedulerError(
                    f"{name} must be >= 1: {getattr(self, name)}"
                )
        if self.kernel is not None:
            from .align.dispatch import kernel_names

            if self.kernel != "none" and self.kernel not in kernel_names():
                raise SchedulerError(
                    f"unknown kernel {self.kernel!r}; expected 'none' or "
                    f"one of {kernel_names()}"
                )
        if self.batch_max is not None and self.batch_max < 0:
            raise SchedulerError(
                f"batch_max must be >= 0: {self.batch_max}"
            )
        if self.fault_policy is not None:
            self.fault_policy.validated()
        if self.progress_interval is not None and self.progress_interval <= 0:
            raise SchedulerError(
                f"progress_interval must be > 0: {self.progress_interval}"
            )
        if self.status_port is not None and not (
            0 <= self.status_port <= 65535
        ):
            raise SchedulerError(
                f"status_port must be in [0, 65535]: {self.status_port}"
            )
        return self


def _resolve(
    options: Optional[MapOptions], overrides: dict, aligner=None
) -> MapOptions:
    opts = (options or MapOptions()).replace(**overrides)
    if opts.index_path is None and aligner is not None:
        src = getattr(aligner, "index_source", None)
        if src:
            opts = opts.replace(index_path=src)
    return opts.validated()


def _apply_kernel(aligner, opts: MapOptions) -> None:
    """Apply the options' kernel/batching selection to the aligner.

    A no-op when none of the kernel fields are set, so shared aligners
    are never reconfigured behind the caller's back by a plain run.
    """
    if (
        opts.kernel is None
        and opts.batch_max is None
        and opts.batch_buckets is None
    ):
        return
    if not callable(getattr(aligner, "set_kernel", None)):
        return  # duck-typed aligners: nothing to configure
    kernel = opts.kernel
    if kernel is None:
        kernel = aligner._kernel_arg  # only batching knobs changed
    elif kernel == "none":
        kernel = None
    aligner.set_kernel(
        kernel,
        batch_max=(
            opts.batch_max if opts.batch_max is not None else aligner.batch_max
        ),
        batch_buckets=(
            opts.batch_buckets
            if opts.batch_buckets is not None
            else aligner.batch_buckets
        ),
    )


def _fault_telemetry(opts: MapOptions, telemetry):
    """Ensure a Telemetry exists when something downstream needs one:
    the quarantine sidecar, the status server (run_id + gauges on
    ``/status``), or the events sink (run-scoped event counts)."""
    pol = opts.fault_policy
    needs = (
        (pol is not None and pol.failed_reads)
        or opts.status_port is not None
        or opts.events_path is not None
    )
    if telemetry is None and needs:
        from .obs.telemetry import Telemetry

        return Telemetry()
    return telemetry


def _finish_faults(opts: MapOptions, telemetry) -> None:
    """Write the quarantine sidecar once, at the end of a public call."""
    pol = opts.fault_policy
    if pol is not None and pol.failed_reads and telemetry is not None:
        write_quarantine(
            pol.failed_reads,
            telemetry.faults,
            run_id=getattr(telemetry, "run_id", ""),
        )


@contextmanager
def _live_plane(opts: MapOptions, telemetry, total_reads: Optional[int] = None):
    """The run's live telemetry plane, or a no-op context.

    One shared :class:`repro.obs.export.RunSampler` feeds both the
    progress heartbeat and the ``--status-port`` HTTP endpoint, so the
    JSONL beats and ``/status`` agree field for field; ``--events``
    attaches the JSONL sink to the global event bus for the run.
    """
    want_progress = (
        opts.progress_interval is not None or opts.progress_path is not None
    )
    want_status = opts.status_port is not None
    if not (want_progress or want_status or opts.events_path):
        yield None
        return
    from .obs.events import EVENTS
    from .obs.export import RunSampler

    sampler = RunSampler(telemetry=telemetry, total_reads=total_reads)
    if opts.events_path:
        EVENTS.open_sink(opts.events_path)
    server = reporter = None
    try:
        if want_status:
            from .obs.statusd import StatusServer

            server = StatusServer(
                sampler=sampler, port=opts.status_port
            ).start()
        if want_progress:
            from .obs.progress import ProgressReporter

            reporter = ProgressReporter(
                telemetry=telemetry,
                interval=opts.progress_interval or 2.0,
                total_reads=total_reads,
                path=opts.progress_path,
                sampler=sampler,
            ).start()
        yield sampler
    finally:
        if reporter is not None:
            reporter.stop()
        if server is not None:
            server.stop()
        if opts.events_path:
            EVENTS.close_sink()


def open_index(
    reference: Union[Genome, str, os.PathLike],
    index_path: Optional[Union[str, os.PathLike]] = None,
    *,
    preset: str = "map-pb",
    engine: str = "manymap",
    load_mode: str = "mmap",
) -> Aligner:
    """Build an :class:`Aligner` over a reference and optional saved index.

    ``reference`` is a :class:`Genome` or a FASTA path. With
    ``index_path`` the serialized index is loaded (``load_mode='mmap'``
    keeps it page-cache shared, §4.4.2) and its path is remembered on
    the aligner (``aligner.index_source``) so process-backed mapping
    reuses the same file zero-copy; without it the index is built
    in-process.
    """
    genome = (
        reference
        if isinstance(reference, Genome)
        else Genome(read_fasta(os.fspath(reference)))
    )
    index = None
    if index_path is not None:
        index = load_index(os.fspath(index_path), mode=load_mode)
    aligner = Aligner(genome, preset=preset, engine=engine, index=index)
    aligner.index_source = os.fspath(index_path) if index_path else None
    return aligner


def map_reads(
    aligner: Aligner,
    reads: Sequence[SeqRecord],
    options: Optional[MapOptions] = None,
    *,
    profile=None,
    telemetry=None,
    **overrides,
) -> List[List[Alignment]]:
    """Map a read collection; results in input order on any backend.

    ``overrides`` are applied on top of ``options`` (e.g.
    ``map_reads(a, reads, backend="processes", workers=8)``).
    ``profile`` / ``telemetry`` are the usual
    :class:`~repro.core.profiling.PipelineProfile` /
    :class:`~repro.obs.telemetry.Telemetry` collectors.
    """
    opts = _resolve(options, overrides, aligner)
    _apply_kernel(aligner, opts)
    telemetry = _fault_telemetry(opts, telemetry)
    with _live_plane(opts, telemetry, total_reads=len(reads)):
        results = _backends.dispatch(
            aligner, reads, opts, profile=profile, telemetry=telemetry
        )
    _finish_faults(opts, telemetry)
    return results


def map_file(
    aligner: Aligner,
    reads_path: Union[str, os.PathLike],
    output: Optional[io.TextIOBase] = None,
    options: Optional[MapOptions] = None,
    *,
    sam: bool = False,
    profile=None,
    telemetry=None,
    **overrides,
) -> StreamStats:
    """Map a FASTA/FASTQ(.gz) file, writing PAF (or SAM) as it goes.

    Every backend consumes the file through the shared streaming
    reader (:func:`repro.seq.fasta.iter_reads`): the ``streaming``
    backend runs the full overlapped pipeline with constant memory;
    the batch backends read bounded batches of
    ``chunk_reads × workers × 4`` reads at a time, so ``chunk_reads``
    bounds memory on every backend. Output lines are written strictly
    in input order either way, so the bytes are identical across
    backends. Returns the run's :class:`StreamStats`.
    """
    opts = _resolve(options, overrides, aligner)
    _apply_kernel(aligner, opts)
    telemetry = _fault_telemetry(opts, telemetry)

    def write_header() -> None:
        if sam and output is not None:
            output.write(
                sam_header(aligner.index.names, aligner.index.lengths)
            )
            output.write("\n")

    def emit(read: SeqRecord, alns: List[Alignment]) -> None:
        if output is None:
            return
        for aln in alns:
            output.write(to_sam(aln, read) if sam else to_paf(aln))
            output.write("\n")

    source = iter_reads(os.fspath(reads_path))
    write_header()
    if opts.backend == "streaming":
        with _live_plane(opts, telemetry):
            stats = stream_map(
                aligner,
                source,
                emit,
                workers=opts.workers,
                use_processes=opts.stream_processes,
                with_cigar=opts.with_cigar,
                longest_first=opts.longest_first,
                chunk_reads=opts.chunk_reads,
                chunk_bases=opts.chunk_bases,
                window_reads=opts.window_reads,
                queue_chunks=opts.queue_chunks,
                index_path=opts.index_path,
                profile=profile,
                telemetry=telemetry,
                fault_policy=opts.fault_policy,
            )
        _finish_faults(opts, telemetry)
        return stats

    # Batch backends: bounded batches through the same reader path.
    from contextlib import nullcontext

    def stage(name):
        return profile.stage(name) if profile is not None else nullcontext()

    stats = StreamStats()
    batch_size = opts.chunk_reads * max(1, opts.workers) * 4
    with _live_plane(opts, telemetry):
        while True:
            batch: List[SeqRecord] = []
            with stage("Load Query"):
                for read in source:
                    batch.append(read)
                    if len(batch) >= batch_size:
                        break
            if not batch:
                break
            stats.n_chunks += 1
            results = _backends.dispatch(
                aligner, batch, opts, profile=profile, telemetry=telemetry
            )
            with stage("Output"):
                for read, alns in zip(batch, results):
                    emit(read, alns)
            stats.n_reads += len(batch)
            stats.total_bases += sum(len(r) for r in batch)
            stats.n_mapped += sum(1 for alns in results if alns)
            stats.n_alignments += sum(len(alns) for alns in results)
            if len(batch) < batch_size:
                break
    _finish_faults(opts, telemetry)
    return stats
