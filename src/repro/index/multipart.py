"""Multi-part indexing (minimap2's ``-I``).

minimap2 splits huge references into parts of at most ``-I`` bases,
indexes each part separately, and streams queries across the parts —
bounding peak index memory to one part. :class:`MultipartIndex`
duck-types the query surface of :class:`MinimizerIndex` (``k``, ``w``,
``hpc``, ``names``, ``lengths``, ``lookup_many``) so the anchor
collector and the aligner work on it unchanged; anchors come back with
*global* reference ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import IndexFormatError
from ..seq.genome import Genome
from .index import MinimizerIndex, build_index


@dataclass
class MultipartIndex:
    """A sequence of per-part minimizer indexes with global rid mapping."""

    parts: List[MinimizerIndex]
    rid_offsets: List[int]  # global rid of each part's rid 0

    def __post_init__(self) -> None:
        if not self.parts:
            raise IndexFormatError("multipart index needs at least one part")
        k, w, hpc = self.parts[0].k, self.parts[0].w, self.parts[0].hpc
        for p in self.parts[1:]:
            if (p.k, p.w, p.hpc) != (k, w, hpc):
                raise IndexFormatError("all parts must share k, w, and hpc")

    # --- the MinimizerIndex query surface ------------------------------- #

    @property
    def k(self) -> int:
        return self.parts[0].k

    @property
    def w(self) -> int:
        return self.parts[0].w

    @property
    def hpc(self) -> bool:
        return self.parts[0].hpc

    @property
    def names(self) -> List[str]:
        return [name for p in self.parts for name in p.names]

    @property
    def lengths(self) -> np.ndarray:
        return np.concatenate([p.lengths for p in self.parts])

    @property
    def n_minimizers(self) -> int:
        return sum(p.n_minimizers for p in self.parts)

    @property
    def nbytes(self) -> int:
        return sum(p.nbytes for p in self.parts)

    @property
    def peak_part_bytes(self) -> int:
        """The memory bound ``-I`` buys: the largest single part."""
        return max(p.nbytes for p in self.parts)

    def lookup_many(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Query every part; hits carry global reference ids."""
        qs, rids, poss, strands = [], [], [], []
        for part, off in zip(self.parts, self.rid_offsets):
            qidx, rid, pos, strand = part.lookup_many(values)
            if qidx.size:
                qs.append(qidx)
                rids.append(rid + off)
                poss.append(pos)
                strands.append(strand)
        if not qs:
            z = np.empty(0, dtype=np.int64)
            return z, z, z, z.astype(np.int8)
        return (
            np.concatenate(qs),
            np.concatenate(rids),
            np.concatenate(poss),
            np.concatenate(strands),
        )


def build_multipart_index(
    genome: Genome,
    k: int = 15,
    w: int = 10,
    part_bases: int = 4_000_000_000,
    occ_filter_frac: Optional[float] = 2e-4,
    hpc: bool = False,
) -> MultipartIndex:
    """Split the genome into ≤``part_bases`` chunks of whole chromosomes.

    A chromosome larger than ``part_bases`` still forms its own part
    (minimap2 behaves the same; it never splits one sequence).
    """
    if part_bases <= 0:
        raise IndexFormatError(f"part size must be positive: {part_bases}")
    groups: List[List] = []
    cur: List = []
    acc = 0
    for chrom in genome:
        if cur and acc + len(chrom) > part_bases:
            groups.append(cur)
            cur, acc = [], 0
        cur.append(chrom)
        acc += len(chrom)
    if cur:
        groups.append(cur)
    parts = []
    offsets = []
    rid = 0
    for group in groups:
        parts.append(
            build_index(group, k=k, w=w, occ_filter_frac=occ_filter_frac, hpc=hpc)
        )
        offsets.append(rid)
        rid += len(group)
    return MultipartIndex(parts=parts, rid_offsets=offsets)
