"""Homopolymer compression (HPC) for seeding.

minimap2's ``map-pb`` preset extracts minimizers from the
homopolymer-compressed sequence (runs of identical bases collapse to
one), because PacBio CLR's dominant error mode is indels inside
homopolymer runs — compressing them makes seeds indel-tolerant.
Minimizer *positions* are mapped back to original coordinates so
chaining and base-level alignment still operate on the raw sequence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def hpc_compress(codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse homopolymer runs.

    Returns ``(compressed, positions)`` where ``positions[i]`` is the
    original index of the FIRST base of the run that produced
    ``compressed[i]``.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size == 0:
        return codes.copy(), np.empty(0, dtype=np.int64)
    keep = np.empty(codes.size, dtype=bool)
    keep[0] = True
    np.not_equal(codes[1:], codes[:-1], out=keep[1:])
    positions = np.nonzero(keep)[0].astype(np.int64)
    return codes[positions], positions


def run_end_positions(codes: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Original index of the LAST base of each compressed run.

    Minimizer end positions in compressed space map through this so the
    k-mer-end convention survives compression.
    """
    if positions.size == 0:
        return positions.copy()
    ends = np.empty_like(positions)
    ends[:-1] = positions[1:] - 1
    ends[-1] = codes.size - 1
    return ends
