"""The reference minimizer index (minimap2's hash table equivalent).

minimap2 buckets minimizers in a hash table; we get the same O(log n)
lookups with pure NumPy by storing hits sorted by hashed minimizer
value plus a unique-key offset table (a static open-addressing table
brings no benefit under CPython). The layout is also what makes the
index trivially serializable and ``mmap``-loadable (see ``store.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import IndexFormatError
from ..seq.genome import Genome
from .minimizer import extract_minimizers


@dataclass
class MinimizerIndex:
    """Sorted-array minimizer index over a set of reference sequences.

    Attributes
    ----------
    k, w:
        Minimizer parameters used at build time (queries must match).
    keys:
        Unique hashed minimizer values, ascending (uint64).
    starts:
        ``starts[i]:starts[i+1]`` delimits the hits of ``keys[i]``
        (int64, length ``len(keys) + 1``).
    hit_rid, hit_pos, hit_strand:
        Per-hit reference id, k-mer end position, and strand, grouped by
        key in ``keys`` order.
    names, lengths:
        Reference sequence names and lengths (rid order).
    """

    k: int
    w: int
    keys: np.ndarray
    starts: np.ndarray
    hit_rid: np.ndarray
    hit_pos: np.ndarray
    hit_strand: np.ndarray
    names: List[str]
    lengths: np.ndarray
    max_occ: Optional[int] = None
    hpc: bool = False

    @property
    def n_minimizers(self) -> int:
        return int(self.hit_pos.size)

    @property
    def n_keys(self) -> int:
        return int(self.keys.size)

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the index arrays (Table 5's Index Size)."""
        return int(
            self.keys.nbytes
            + self.starts.nbytes
            + self.hit_rid.nbytes
            + self.hit_pos.nbytes
            + self.hit_strand.nbytes
            + self.lengths.nbytes
        )

    def occurrence_cutoff(self, frac: float = 2e-4) -> int:
        """Occurrence threshold dropping the most frequent ``frac`` of keys.

        Mirrors minimap2's ``-f``: returns the smallest count c such that
        keys with more than c hits make up at most ``frac`` of distinct
        keys. Always at least 1.
        """
        if not 0.0 <= frac < 1.0:
            raise IndexFormatError(f"fraction {frac} out of [0, 1)")
        if self.n_keys == 0:
            return 1
        counts = np.diff(self.starts)
        rank = int(np.ceil(frac * self.n_keys))
        if rank <= 0:
            return max(1, int(counts.max()))
        part = np.sort(counts)[::-1]
        return max(1, int(part[min(rank, part.size - 1)]))

    def lookup(
        self, value: int | np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rid, pos, strand)`` hits for one hashed value.

        Hits beyond ``max_occ`` (when set) are suppressed entirely, as
        minimap2 does for repetitive seeds.
        """
        i = np.searchsorted(self.keys, np.uint64(value))
        if i >= self.keys.size or self.keys[i] != np.uint64(value):
            z = np.empty(0, dtype=np.int64)
            return z, z, z.astype(np.int8)
        lo, hi = int(self.starts[i]), int(self.starts[i + 1])
        if self.max_occ is not None and hi - lo > self.max_occ:
            z = np.empty(0, dtype=np.int64)
            return z, z, z.astype(np.int8)
        return (
            self.hit_rid[lo:hi],
            self.hit_pos[lo:hi],
            self.hit_strand[lo:hi],
        )

    def lookup_many(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched lookup for all query minimizers at once.

        Returns ``(query_index, rid, pos, strand)`` arrays where
        ``query_index[j]`` says which input value produced hit ``j``.
        This is the vectorized fast path used by the aligner.
        """
        values = np.asarray(values, dtype=np.uint64)
        idx = np.searchsorted(self.keys, values)
        idx_clipped = np.minimum(idx, max(self.keys.size - 1, 0))
        found = (
            (self.keys.size > 0)
            & (idx < self.keys.size)
            & (self.keys[idx_clipped] == values)
        )
        lo = self.starts[idx_clipped]
        hi = self.starts[np.minimum(idx_clipped + 1, self.starts.size - 1)]
        counts = np.where(found, hi - lo, 0)
        if self.max_occ is not None:
            counts = np.where(counts > self.max_occ, 0, counts)
        total = int(counts.sum())
        if total == 0:
            z = np.empty(0, dtype=np.int64)
            return z, z, z, z.astype(np.int8)
        qidx = np.repeat(np.arange(values.size), counts)
        # Hit offsets: for each emitted hit, its index into the hit arrays.
        starts_rep = np.repeat(lo, counts)
        within = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        flat = starts_rep + within
        return qidx, self.hit_rid[flat], self.hit_pos[flat], self.hit_strand[flat]

    def stats(self) -> Dict[str, float]:
        counts = np.diff(self.starts) if self.n_keys else np.zeros(1)
        return {
            "n_sequences": len(self.names),
            "n_minimizers": self.n_minimizers,
            "n_keys": self.n_keys,
            "mean_occ": float(counts.mean()),
            "max_occ_observed": int(counts.max()) if self.n_keys else 0,
            "bytes": self.nbytes,
        }


def build_index(
    genome: Genome | Sequence,
    k: int = 15,
    w: int = 10,
    occ_filter_frac: Optional[float] = 2e-4,
    hpc: bool = False,
) -> MinimizerIndex:
    """Build a :class:`MinimizerIndex` from a genome or record list.

    ``occ_filter_frac`` sets ``max_occ`` from the occurrence cutoff (pass
    ``None`` to disable repetitive-seed suppression). ``hpc`` selects
    homopolymer-compressed seeding (queries must match).
    """
    records = list(genome)
    if not records:
        raise IndexFormatError("cannot index an empty genome")
    vals_all, rids_all, pos_all, strand_all = [], [], [], []
    for rid, rec in enumerate(records):
        values, positions, strands = extract_minimizers(
            rec.codes, k=k, w=w, as_arrays=True, hpc=hpc
        )
        vals_all.append(values)
        pos_all.append(positions)
        strand_all.append(strands)
        rids_all.append(np.full(values.size, rid, dtype=np.int64))
    values = np.concatenate(vals_all)
    positions = np.concatenate(pos_all)
    strands = np.concatenate(strand_all)
    rids = np.concatenate(rids_all)

    order = np.argsort(values, kind="stable")
    values = values[order]
    keys, key_starts = np.unique(values, return_index=True)
    starts = np.concatenate([key_starts, [values.size]]).astype(np.int64)

    idx = MinimizerIndex(
        k=k,
        w=w,
        keys=keys,
        starts=starts,
        hit_rid=rids[order],
        hit_pos=positions[order],
        hit_strand=strands[order],
        names=[r.name for r in records],
        lengths=np.array([len(r) for r in records], dtype=np.int64),
        hpc=hpc,
    )
    if occ_filter_frac is not None:
        idx.max_occ = idx.occurrence_cutoff(occ_filter_frac)
    return idx
