"""(w,k)-minimizer extraction with minimap2's canonical-strand rule.

A position ``i`` yields a minimizer when its hashed canonical k-mer is
the minimum of at least one length-``w`` window of consecutive k-mers.
Strand-symmetric (palindromic) k-mers are skipped, as in minimap2,
because their strand is undefined. Everything is vectorized: the window
minimum is computed with ``w`` shifted ``np.minimum`` passes (O(n·w)
flops, zero Python-per-position work — fine for the w ≤ 32 regime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import SequenceError
from .kmer import hash64, pack_kmers, rc_packed


@dataclass(frozen=True)
class Minimizer:
    """One minimizer hit: hashed value, end position of k-mer, strand."""

    value: int
    pos: int  # position of the k-mer's LAST base (minimap2 convention)
    strand: int  # 0 = forward canonical, 1 = reverse canonical


def extract_minimizers(
    codes: np.ndarray, k: int = 15, w: int = 10, as_arrays: bool = False,
    hpc: bool = False,
):
    """Extract (w,k)-minimizers from a code array.

    Returns a list of :class:`Minimizer` (or, with ``as_arrays=True``,
    a tuple ``(values, positions, strands)`` of NumPy arrays, the form
    the index builder and the query pipeline use).

    With ``hpc=True`` minimizers are computed over the
    homopolymer-compressed sequence (minimap2's map-pb behaviour);
    reported positions refer to the ORIGINAL coordinates (the last base
    of the run ending the k-mer).
    """
    if w < 1:
        raise SequenceError(f"window size must be >= 1: {w}")
    codes = np.asarray(codes, dtype=np.uint8)
    pos_map = None
    if hpc:
        from .hpc import hpc_compress, run_end_positions

        compressed, starts = hpc_compress(codes)
        pos_map = run_end_positions(codes, starts)
        codes = compressed
    fwd, valid = pack_kmers(codes, k)
    n = fwd.size
    empty = (
        (np.empty(0, np.uint64), np.empty(0, np.int64), np.empty(0, np.int8))
        if as_arrays
        else []
    )
    if n == 0:
        return empty
    rev = rc_packed(fwd, k)
    strand = (rev < fwd).astype(np.int8)  # 1 when reverse strand is canonical
    canonical = np.minimum(fwd, rev)
    symmetric = fwd == rev
    h = hash64(canonical, 2 * k)
    # Invalid or symmetric k-mers never win a window: give them +inf rank.
    sentinel = np.uint64(0xFFFFFFFFFFFFFFFF)
    h = np.where(valid & ~symmetric, h, sentinel)

    nw = n - w + 1
    if nw <= 0:
        # Sequence shorter than one full window: single window over all.
        nw, w = 1, n
    # Sliding window minimum via w shifted minimum passes.
    wmin = h[:nw].copy()
    for d in range(1, w):
        np.minimum(wmin, h[d : d + nw], out=wmin)
    # Position i is a minimizer iff it equals the min of a window containing it.
    is_min = np.zeros(n, dtype=bool)
    for d in range(w):
        seg = slice(d, d + nw)
        is_min[seg] |= h[seg] == wmin
    is_min &= h != sentinel

    idx = np.nonzero(is_min)[0]
    values = h[idx]
    positions = (idx + (k - 1)).astype(np.int64)  # last base of the k-mer
    if pos_map is not None:
        positions = pos_map[positions]  # back to original coordinates
    strands = strand[idx]
    if as_arrays:
        return values, positions, strands
    return [
        Minimizer(int(v), int(p), int(s))
        for v, p, s in zip(values, positions, strands)
    ]
