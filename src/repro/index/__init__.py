"""Minimizer indexing: the seeding substrate of minimap2/manymap.

Implements (w,k)-minimizer extraction (Roberts et al. 2004) with
minimap2's canonical-strand convention and invertible hash, a
sorted-array reference index with occurrence filtering, and a binary
on-disk format loadable through either buffered reads or ``np.memmap``
(the paper's memory-mapped I/O optimization, §4.4.2).
"""

from .kmer import pack_kmers, rc_packed, hash64, unpack_kmer
from .minimizer import Minimizer, extract_minimizers
from .index import MinimizerIndex, build_index
from .multipart import MultipartIndex, build_multipart_index
from .hpc import hpc_compress
from .store import save_index, load_index, index_file_size

__all__ = [
    "pack_kmers",
    "rc_packed",
    "hash64",
    "unpack_kmer",
    "Minimizer",
    "extract_minimizers",
    "MinimizerIndex",
    "build_index",
    "MultipartIndex",
    "build_multipart_index",
    "hpc_compress",
    "save_index",
    "load_index",
    "index_file_size",
]
