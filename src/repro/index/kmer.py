"""K-mer packing and hashing, fully vectorized.

A k-mer is packed into a ``uint64`` with 2 bits per base, first base in
the most significant position (minimap2's convention). Packing is done
with k shifted vector adds — O(n·k) arithmetic but no Python-level loop
over positions, following the NumPy vectorization guide.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import SequenceError
from ..seq.alphabet import AMBIG

#: Largest k such that 2k bits fit a uint64 with room for the hash mask.
MAX_K = 28


def _check_k(k: int) -> None:
    if not 1 <= k <= MAX_K:
        raise SequenceError(f"k must be in [1, {MAX_K}]: {k}")


def pack_kmers(codes: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Pack every k-mer of ``codes`` into uint64 values.

    Returns ``(kmers, valid)`` where ``kmers[i]`` encodes
    ``codes[i:i+k]`` and ``valid[i]`` is False when the window contains
    an ambiguous base. Output length is ``len(codes) - k + 1`` (empty
    for short inputs).
    """
    _check_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size - k + 1
    if n <= 0:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=bool)
    kmers = np.zeros(n, dtype=np.uint64)
    ambig = codes >= AMBIG
    valid = np.ones(n, dtype=bool)
    for j in range(k):
        window = codes[j : j + n]
        kmers |= (window & np.uint8(3)).astype(np.uint64) << np.uint64(2 * (k - 1 - j))
        valid &= ~ambig[j : j + n]
    return kmers, valid


def rc_packed(kmers: np.ndarray, k: int) -> np.ndarray:
    """Reverse-complement packed k-mers (vectorized bit games).

    Complement is XOR with all-ones over 2k bits; reversal swaps 2-bit
    groups via successive masked shifts (the classic bit-reversal
    network, here on uint64 lanes).
    """
    _check_k(k)
    x = np.asarray(kmers, dtype=np.uint64)
    # Complement every base: ~x over the low 2k bits.
    x = ~x
    # Reverse 2-bit groups within the full 64-bit word...
    m1 = np.uint64(0x3333333333333333)
    m2 = np.uint64(0x0F0F0F0F0F0F0F0F)
    x = ((x >> np.uint64(2)) & m1) | ((x & m1) << np.uint64(2))
    x = ((x >> np.uint64(4)) & m2) | ((x & m2) << np.uint64(4))
    x = x.byteswap()  # reverse the 8 bytes of each lane
    # ...then shift right so the k-mer occupies the low 2k bits again.
    return x >> np.uint64(64 - 2 * k)


def hash64(keys: np.ndarray, bits: int) -> np.ndarray:
    """minimap2's invertible integer hash over ``bits``-bit keys.

    Applied to packed k-mers before minimizer selection so that the
    lexicographic minimizer bias (poly-A tracts) disappears.
    """
    if not 1 <= bits <= 64:
        raise SequenceError(f"bits must be in [1, 64]: {bits}")
    mask = np.uint64((1 << bits) - 1) if bits < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    key = np.asarray(keys, dtype=np.uint64) & mask
    with np.errstate(over="ignore"):
        key = (~key + (key << np.uint64(21))) & mask
        key = key ^ (key >> np.uint64(24))
        key = (key + (key << np.uint64(3)) + (key << np.uint64(8))) & mask
        key = key ^ (key >> np.uint64(14))
        key = (key + (key << np.uint64(2)) + (key << np.uint64(4))) & mask
        key = key ^ (key >> np.uint64(28))
        key = (key + (key << np.uint64(31))) & mask
    return key


def unpack_kmer(kmer: int, k: int) -> str:
    """Decode one packed k-mer back to an ASCII string (for debugging)."""
    _check_k(k)
    bases = "ACGT"
    out = []
    for j in range(k):
        out.append(bases[(int(kmer) >> (2 * (k - 1 - j))) & 3])
    return "".join(out)
