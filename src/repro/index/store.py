"""Binary index serialization with buffered and memory-mapped loaders.

The on-disk layout is a JSON header (parameters, sequence names, array
descriptors) followed by 64-byte-aligned raw little-endian arrays.
Alignment plus a fixed descriptor table is exactly what makes the
``np.memmap`` path possible: each array becomes a zero-copy view of the
page cache instead of a parsed-and-reallocated copy — the Python
analogue of the paper's memory-mapped index loading (§4.4.2), which
replaced minimap2's "highly fragmented" allocation-while-parsing loop
with consecutive reads.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import IndexFormatError
from .index import MinimizerIndex

MAGIC = b"MMIDX01\n"
ALIGN = 64

_ARRAYS = ["keys", "starts", "hit_rid", "hit_pos", "hit_strand", "lengths"]


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def save_index(index: MinimizerIndex, path: Union[str, os.PathLike]) -> int:
    """Write ``index`` to ``path``; returns bytes written."""
    descriptors: List[Dict[str, object]] = []
    arrays: List[np.ndarray] = []
    offset = 0  # relative to start of data section
    for name in _ARRAYS:
        arr = np.ascontiguousarray(getattr(index, name))
        if arr.dtype.byteorder == ">":
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        offset = _align(offset)
        descriptors.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
            }
        )
        arrays.append(arr)
        offset += arr.nbytes
    crc = 0
    for arr in arrays:  # chained over array bytes in _ARRAYS order
        crc = zlib.crc32(arr.tobytes(), crc)
    header = {
        "k": index.k,
        "w": index.w,
        "max_occ": index.max_occ,
        "hpc": index.hpc,
        "names": index.names,
        "arrays": descriptors,
        "crc32": crc & 0xFFFFFFFF,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    # Data section begins at the first aligned offset past magic+len+header.
    prefix = len(MAGIC) + 8 + len(header_bytes)
    data_start = _align(prefix)
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(len(header_bytes).to_bytes(8, "little"))
        f.write(header_bytes)
        f.write(b"\0" * (data_start - prefix))
        for desc, arr in zip(descriptors, arrays):
            f.seek(data_start + int(desc["offset"]))
            f.write(arr.tobytes())
        total = f.tell()
    return total


def _read_header(f) -> Tuple[dict, int]:
    magic = f.read(len(MAGIC))
    if magic != MAGIC:
        raise IndexFormatError(f"bad index magic {magic!r}")
    (hlen,) = (int.from_bytes(f.read(8), "little"),)
    header = json.loads(f.read(hlen).decode("utf-8"))
    data_start = _align(len(MAGIC) + 8 + hlen)
    return header, data_start


def _validate_descriptors(header: dict, data_start: int, file_size: int) -> None:
    """Reject truncated or corrupt files before any array is built.

    Every descriptor must be internally consistent (nbytes matches
    dtype x shape) and fit inside the actual file; otherwise both the
    buffered loader (short ``np.fromfile`` reads) and the mmap loader
    (SIGBUS on first touch of an unbacked page) would fail much later
    and much less legibly.
    """
    for desc in header.get("arrays", []):
        name = desc.get("name", "?")
        try:
            dtype = np.dtype(desc["dtype"])
            shape = tuple(int(s) for s in desc["shape"])
            offset = int(desc["offset"])
            nbytes = int(desc["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(f"corrupt descriptor for array {name!r}: {exc}")
        count = int(np.prod(shape)) if shape else 1
        if offset < 0 or nbytes < 0:
            raise IndexFormatError(
                f"corrupt descriptor for array {name!r}: "
                f"offset={offset} nbytes={nbytes}"
            )
        if count * dtype.itemsize != nbytes:
            raise IndexFormatError(
                f"corrupt descriptor for array {name!r}: nbytes={nbytes} "
                f"!= shape {shape} x itemsize {dtype.itemsize}"
            )
        end = data_start + offset + nbytes
        if end > file_size:
            raise IndexFormatError(
                f"truncated index file: array {name!r} needs bytes "
                f"[{data_start + offset}, {end}) but file is {file_size} bytes"
            )


def _verify_crc(f, header: dict, data_start: int) -> None:
    """Recompute the chained CRC32 over every array region and compare.

    Reads the file in bounded chunks through the already-open handle so
    verification costs one sequential pass and O(chunk) memory; a
    mismatch means on-disk corruption that descriptor validation cannot
    see (bit flips inside array bytes).
    """
    expected = header.get("crc32")
    if expected is None:  # pre-checksum file: nothing to verify
        return
    crc = 0
    for desc in header.get("arrays", []):
        f.seek(data_start + int(desc["offset"]))
        remaining = int(desc["nbytes"])
        while remaining > 0:
            chunk = f.read(min(remaining, 1 << 20))
            if not chunk:
                raise IndexFormatError(
                    f"truncated index file: array {desc.get('name', '?')!r} "
                    "ended early during checksum verification"
                )
            crc = zlib.crc32(chunk, crc)
            remaining -= len(chunk)
    if crc & 0xFFFFFFFF != int(expected):
        raise IndexFormatError(
            f"index checksum mismatch: header crc32={int(expected):#010x} "
            f"but data crc32={crc & 0xFFFFFFFF:#010x} (corrupt index file?)"
        )


def load_index(
    path: Union[str, os.PathLike],
    mode: str = "buffered",
    verify: Optional[bool] = None,
) -> MinimizerIndex:
    """Load an index.

    ``mode='buffered'`` reads each array into fresh memory with
    ``np.fromfile`` (minimap2's conventional loader). ``mode='mmap'``
    returns ``np.memmap`` views: loading is lazy and demand-paged, so
    the call returns almost immediately and only touched pages are ever
    read — the manymap behaviour that halved KNL index-load time.

    ``verify`` controls the CRC32 integrity check against the header
    checksum (written by :func:`save_index`; absent in older files, in
    which case the check is skipped). It defaults to ``True`` for
    ``buffered`` — the data is being read anyway — and ``False`` for
    ``mmap``, where an eager full-file pass would defeat lazy demand
    paging; pass ``verify=True`` to force the check there too.
    """
    if mode not in ("buffered", "mmap"):
        raise IndexFormatError(f"unknown load mode {mode!r}")
    if verify is None:
        verify = mode == "buffered"
    with open(path, "rb") as f:
        header, data_start = _read_header(f)
        _validate_descriptors(header, data_start, os.fstat(f.fileno()).st_size)
        if verify:
            _verify_crc(f, header, data_start)
        fields: Dict[str, np.ndarray] = {}
        if mode == "buffered":
            for desc in header["arrays"]:
                f.seek(data_start + desc["offset"])
                arr = np.fromfile(
                    f, dtype=np.dtype(desc["dtype"]), count=int(np.prod(desc["shape"]))
                ).reshape(desc["shape"])
                fields[desc["name"]] = arr
    if mode == "mmap":
        for desc in header["arrays"]:
            fields[desc["name"]] = np.memmap(
                path,
                dtype=np.dtype(desc["dtype"]),
                mode="r",
                offset=data_start + desc["offset"],
                shape=tuple(desc["shape"]),
            )
    return MinimizerIndex(
        k=int(header["k"]),
        w=int(header["w"]),
        max_occ=header["max_occ"],
        hpc=bool(header.get("hpc", False)),
        names=list(header["names"]),
        keys=fields["keys"],
        starts=fields["starts"],
        hit_rid=fields["hit_rid"],
        hit_pos=fields["hit_pos"],
        hit_strand=fields["hit_strand"],
        lengths=fields["lengths"],
    )


def index_file_size(path: Union[str, os.PathLike]) -> int:
    """Size of a serialized index file in bytes."""
    return os.stat(path).st_size
