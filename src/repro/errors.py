"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch a single base class at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SequenceError(ReproError):
    """Invalid sequence data (bad characters, empty input, length mismatch)."""


class ParseError(ReproError):
    """Malformed FASTA/FASTQ or binary index input."""


class IndexFormatError(ReproError):
    """Problems building, saving, or loading a minimizer index."""


class AlignmentError(ReproError):
    """Invalid alignment parameters or internal DP inconsistency."""


class ChainError(ReproError):
    """Invalid chaining input (unsorted anchors, bad parameters)."""


class MachineModelError(ReproError):
    """Inconsistent hardware-model configuration."""


class SchedulerError(ReproError):
    """Invalid thread/affinity/pipeline configuration."""


class SimulationError(ReproError):
    """Invalid read-simulation parameters."""


class ServeError(ReproError):
    """Serving-plane failures: admission rejections, drain timeouts,
    malformed requests reaching the batcher, client-side HTTP errors."""
