"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch a single base class at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SequenceError(ReproError):
    """Invalid sequence data (bad characters, empty input, length mismatch)."""


class ParseError(ReproError):
    """Malformed FASTA/FASTQ or binary index input."""


class IndexFormatError(ReproError):
    """Problems building, saving, or loading a minimizer index.

    Formerly named ``IndexError_``; that name is kept as a deprecated
    module-level alias (importing it emits :class:`DeprecationWarning`).
    """


class AlignmentError(ReproError):
    """Invalid alignment parameters or internal DP inconsistency."""


class ChainError(ReproError):
    """Invalid chaining input (unsorted anchors, bad parameters)."""


class MachineModelError(ReproError):
    """Inconsistent hardware-model configuration."""


class SchedulerError(ReproError):
    """Invalid thread/affinity/pipeline configuration."""


class SimulationError(ReproError):
    """Invalid read-simulation parameters."""


def __getattr__(name: str):
    # PEP 562: keep the old `IndexError_` spelling importable, loudly.
    if name == "IndexError_":
        import warnings

        warnings.warn(
            "repro.errors.IndexError_ is deprecated; "
            "use repro.errors.IndexFormatError",
            DeprecationWarning,
            stacklevel=2,
        )
        return IndexFormatError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
