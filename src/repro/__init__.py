"""manymap — a reproduction of "Accelerating Long Read Alignment on
Three Processors" (Feng, Qiu, Wang, Luo — ICPP 2019).

A pure-Python long-read aligner built on minimap2's seed–chain–extend
pipeline, whose base-level alignment step can run under four
interchangeable DP kernels — including the paper's dependency-free
revised memory layout (Eq. 4) — plus deterministic models of the three
processors the paper evaluates (Xeon CPU, Tesla V100, Xeon Phi KNL).

Quickstart::

    from repro import GenomeSpec, generate_genome, simulate_reads, Aligner

    genome = generate_genome(GenomeSpec(length=200_000), seed=1)
    reads = simulate_reads(genome, 50, platform="pacbio", seed=2)
    aligner = Aligner(genome, preset="map-pb", engine="manymap")
    for read in reads:
        for aln in aligner.map_read(read):
            print(aln.tname, aln.tstart, aln.tend, aln.mapq)
"""

from ._version import __version__
from .errors import ReproError

# Sequence substrate
from .seq.genome import Genome, GenomeSpec, generate_genome
from .seq.records import ReadSet, SeqRecord
from .seq.alphabet import encode, decode, revcomp

# Simulation
from .sim.pbsim import ReadSimulator, simulate_reads
from .sim.errors import ErrorProfile, PACBIO_CLR, NANOPORE_R9
from .sim.lengths import LengthModel

# Indexing
from .index.index import MinimizerIndex, build_index
from .index.store import save_index, load_index

# Alignment engines
from .align.scoring import Scoring, MAP_PB, MAP_ONT
from .align.engine import align, get_engine, ENGINES
from .align.batch_kernel import align_batch
from .align.two_piece import TwoPieceScoring, align_two_piece
from .align.cigar import Cigar

# The aligner
from .core.aligner import Aligner
from .core.alignment import Alignment, to_paf, to_sam, sam_header
from .core.presets import Preset, get_preset
from .core.driver import BatchDriver, ParallelDriver

# The stable public mapping API (see repro.api's docstring)
from . import api
from .api import (
    API_VERSION,
    MapOptions,
    MapRequest,
    MapResult,
    MappingSession,
    ServeConfig,
    StreamStats,
    map_file,
    map_reads,
    open_index,
)

# Machine models
from .machine.cpu import XEON_GOLD_5115
from .machine.knl import XEON_PHI_7210
from .machine.gpu import TESLA_V100

# Evaluation
from .eval.accuracy import evaluate_accuracy
from .eval.paf import parse_paf, mapeval
from .eval.coverage import coverage_stats

__all__ = [
    "__version__",
    "ReproError",
    "Genome",
    "GenomeSpec",
    "generate_genome",
    "ReadSet",
    "SeqRecord",
    "encode",
    "decode",
    "revcomp",
    "ReadSimulator",
    "simulate_reads",
    "ErrorProfile",
    "PACBIO_CLR",
    "NANOPORE_R9",
    "LengthModel",
    "MinimizerIndex",
    "build_index",
    "save_index",
    "load_index",
    "Scoring",
    "MAP_PB",
    "MAP_ONT",
    "align",
    "get_engine",
    "ENGINES",
    "align_batch",
    "TwoPieceScoring",
    "align_two_piece",
    "Cigar",
    "Aligner",
    "Alignment",
    "to_paf",
    "to_sam",
    "sam_header",
    "Preset",
    "get_preset",
    "BatchDriver",
    "ParallelDriver",
    "api",
    "API_VERSION",
    "MapOptions",
    "MapRequest",
    "MapResult",
    "MappingSession",
    "ServeConfig",
    "StreamStats",
    "map_file",
    "map_reads",
    "open_index",
    "XEON_GOLD_5115",
    "XEON_PHI_7210",
    "TESLA_V100",
    "evaluate_accuracy",
    "parse_paf",
    "mapeval",
    "coverage_stats",
]
