"""ASCII table rendering shared by the benchmark harnesses."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    align_right: bool = True,
) -> str:
    """Render a simple padded table (first column left-aligned)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        cells.append([_fmt(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for ri, row in enumerate(cells):
        parts = []
        for i, cell in enumerate(row):
            if i == 0 or not align_right:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        lines.append("  ".join(parts).rstrip())
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
