"""Reference coverage statistics from alignments.

Depth-of-coverage is the first sanity check of any mapping run (and
what genome assemblers consume downstream). Computed with a classic
difference-array sweep — O(alignments + genome) regardless of depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..core.alignment import Alignment


@dataclass(frozen=True)
class CoverageStats:
    """Per-reference coverage summary."""

    name: str
    length: int
    mean_depth: float
    max_depth: int
    covered_fraction: float  # bases with depth >= 1

    def render(self) -> str:
        return (
            f"{self.name}: mean {self.mean_depth:.2f}x, max {self.max_depth}x, "
            f"breadth {100 * self.covered_fraction:.1f}%"
        )


def depth_vector(
    alignments: Iterable[Alignment], name: str, length: int
) -> np.ndarray:
    """Per-base depth for one reference sequence (primary alignments)."""
    if length <= 0:
        raise ValueError(f"non-positive reference length {length}")
    diff = np.zeros(length + 1, dtype=np.int64)
    for a in alignments:
        if not a.is_primary or a.tname != name:
            continue
        lo = max(0, min(a.tstart, length))
        hi = max(0, min(a.tend, length))
        if hi > lo:
            diff[lo] += 1
            diff[hi] -= 1
    return np.cumsum(diff[:-1])


def coverage_stats(
    alignments: Sequence[Alignment],
    names: Sequence[str],
    lengths: Sequence[int],
) -> List[CoverageStats]:
    """Coverage summary per reference sequence."""
    if len(names) != len(lengths):
        raise ValueError("names and lengths differ in length")
    out = []
    for name, length in zip(names, lengths):
        depth = depth_vector(alignments, name, int(length))
        out.append(
            CoverageStats(
                name=name,
                length=int(length),
                mean_depth=float(depth.mean()) if depth.size else 0.0,
                max_depth=int(depth.max()) if depth.size else 0,
                covered_fraction=float((depth > 0).mean()) if depth.size else 0.0,
            )
        )
    return out
