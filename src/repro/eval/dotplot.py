"""ASCII dotplots of anchors and chains (a debugging lens).

Seed-and-chain behaviour is hard to reason about from coordinate lists;
a dotplot (target on x, query on y, one glyph per anchor) makes
diagonals, repeats, and inversions visible in a terminal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def dotplot(
    tpos: np.ndarray,
    qpos: np.ndarray,
    strand: Optional[np.ndarray] = None,
    width: int = 72,
    height: int = 24,
    t_range: Optional[Tuple[int, int]] = None,
    q_range: Optional[Tuple[int, int]] = None,
) -> str:
    """Render anchors as an ASCII grid ('.' forward, 'x' reverse).

    Cells holding both strands show '*'. Axes are annotated with the
    coordinate ranges.
    """
    if width < 2 or height < 2:
        raise ValueError(f"grid too small: {width}x{height}")
    tpos = np.asarray(tpos, dtype=np.int64)
    qpos = np.asarray(qpos, dtype=np.int64)
    if tpos.size == 0:
        return "(no anchors)"
    if strand is None:
        strand = np.zeros(tpos.size, dtype=np.int64)
    t_lo, t_hi = t_range if t_range else (int(tpos.min()), int(tpos.max()) + 1)
    q_lo, q_hi = q_range if q_range else (int(qpos.min()), int(qpos.max()) + 1)
    t_span = max(1, t_hi - t_lo)
    q_span = max(1, q_hi - q_lo)

    grid = np.full((height, width), 0, dtype=np.int8)  # bit1 fwd, bit2 rev
    xs = np.clip((tpos - t_lo) * width // t_span, 0, width - 1)
    ys = np.clip((qpos - q_lo) * height // q_span, 0, height - 1)
    fwd = strand == 0
    np.bitwise_or.at(grid, (ys[fwd], xs[fwd]), 1)
    np.bitwise_or.at(grid, (ys[~fwd], xs[~fwd]), 2)

    glyphs = {0: " ", 1: ".", 2: "x", 3: "*"}
    lines = [f"query {q_lo:,}..{q_hi:,} (rows) vs target {t_lo:,}..{t_hi:,} (cols)"]
    # Highest query coordinate at the top, like a maths plot.
    for row in range(height - 1, -1, -1):
        lines.append("|" + "".join(glyphs[int(c)] for c in grid[row]) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def chain_dotplot(chain, width: int = 72, height: int = 24) -> str:
    """Dotplot of one chain's anchors."""
    t = np.array([a[0] for a in chain.anchors])
    q = np.array([a[1] for a in chain.anchors])
    s = np.full(t.size, chain.strand)
    return dotplot(t, q, s, width=width, height=height)
