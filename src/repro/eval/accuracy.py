"""Alignment accuracy against simulator ground truth.

The paper's metric (Table 5): *error rate = wrong alignments / aligned
reads*, where an alignment is wrong if its primary placement does not
overlap the read's true source interval. Reads the aligner refuses to
map count as unmapped, not wrong (matching mapeval conventions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.alignment import Alignment
from ..seq.records import ReadSet, SeqRecord


@dataclass(frozen=True)
class AccuracyReport:
    """Counts and rates of an accuracy evaluation."""

    n_reads: int
    n_aligned: int
    n_correct: int
    n_wrong: int

    @property
    def error_rate(self) -> float:
        """Wrong / aligned — the paper's Table 5 'Error Rate (%)' / 100."""
        return self.n_wrong / self.n_aligned if self.n_aligned else 0.0

    @property
    def aligned_fraction(self) -> float:
        return self.n_aligned / self.n_reads if self.n_reads else 0.0

    @property
    def sensitivity(self) -> float:
        """Correct / total reads."""
        return self.n_correct / self.n_reads if self.n_reads else 0.0

    def render(self) -> str:
        return (
            f"reads={self.n_reads} aligned={self.n_aligned} "
            f"correct={self.n_correct} wrong={self.n_wrong} "
            f"error_rate={100 * self.error_rate:.3f}% "
            f"sensitivity={100 * self.sensitivity:.1f}%"
        )


def evaluate_accuracy(
    reads: Sequence[SeqRecord],
    results: Sequence[List[Alignment]],
    slop: int = 100,
) -> AccuracyReport:
    """Score primary alignments against each read's ``meta['truth']``.

    ``slop`` tolerates boundary fuzz from clipped extensions. Reads
    without ground truth raise — accuracy is only defined on simulated
    data.
    """
    if len(reads) != len(results):
        raise ValueError(
            f"reads ({len(reads)}) and results ({len(results)}) differ in length"
        )
    aligned = correct = wrong = 0
    for read, alns in zip(reads, results):
        truth = read.meta.get("truth")
        if truth is None:
            raise ValueError(f"read {read.name} has no simulation ground truth")
        primary = next((a for a in alns if a.is_primary), None)
        if primary is None:
            continue
        aligned += 1
        if primary.overlaps_truth(truth.chrom, truth.start, truth.end, slop=slop):
            correct += 1
        else:
            wrong += 1
    return AccuracyReport(
        n_reads=len(reads), n_aligned=aligned, n_correct=correct, n_wrong=wrong
    )
