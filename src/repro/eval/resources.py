"""Memory accounting for Table 5's Index Size / RAM Usage columns."""

from __future__ import annotations

import resource
import sys
import tracemalloc
from contextlib import contextmanager
from typing import Callable, Iterator, Tuple


def _maxrss_to_bytes(raw: int, platform: str) -> int:
    """Convert a raw ``ru_maxrss`` reading to bytes.

    POSIX leaves the unit unspecified: macOS reports bytes, Linux (and
    the BSDs) report kilobytes. Split out so both branches are unit
    tested instead of trusting a docstring.
    """
    if platform.startswith("darwin"):
        return int(raw)
    return int(raw) * 1024


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return _maxrss_to_bytes(peak, sys.platform)


@contextmanager
def measure_ram() -> Iterator[dict]:
    """Track Python-level allocations of a block via tracemalloc.

    Yields a dict later populated with ``current`` and ``peak`` bytes —
    the closest per-phase equivalent of the paper's per-tool RAM column
    (process RSS is cumulative across tools within one process).
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    stats: dict = {}
    try:
        yield stats
    finally:
        current, peak = tracemalloc.get_traced_memory()
        stats["current"] = current
        stats["peak"] = peak
        if not was_tracing:
            tracemalloc.stop()
