"""Minimal SAM parsing — the read-back half of ``core.alignment.to_sam``.

Only the alignment-level fields the evaluation needs are recovered
(coordinates, flags, CIGAR, MAPQ, AS/NM tags); base-level fields (SEQ,
QUAL) are kept as raw strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..align.cigar import Cigar
from ..core.alignment import Alignment
from ..errors import ParseError

FLAG_REVERSE = 16
FLAG_SECONDARY = 256
FLAG_UNMAPPED = 4


@dataclass
class SamRecord:
    """One parsed SAM alignment line."""

    qname: str
    flag: int
    rname: str
    pos: int  # 1-based, as in the file
    mapq: int
    cigar: Optional[Cigar]
    seq: str
    qual: str
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def is_reverse(self) -> bool:
        return bool(self.flag & FLAG_REVERSE)

    @property
    def is_secondary(self) -> bool:
        return bool(self.flag & FLAG_SECONDARY)

    @property
    def is_unmapped(self) -> bool:
        return bool(self.flag & FLAG_UNMAPPED)

    def to_alignment(self, tlen: int = 0) -> Alignment:
        """Convert to the PAF-style Alignment record.

        Soft clips become the unaligned query ends; query coordinates
        are reported in the original read orientation (PAF convention).
        """
        if self.cigar is None:
            raise ParseError(f"{self.qname}: cannot convert a CIGAR-less record")
        lead = self.cigar.ops[0][0] if self.cigar.ops[0][1] == "S" else 0
        tail = self.cigar.ops[-1][0] if self.cigar.ops[-1][1] == "S" else 0
        core = Cigar([(n, op) for n, op in self.cigar.ops if op != "S"])
        qlen = self.cigar.query_span
        # In SAM, clips are in the aligned orientation; flip for reverse.
        if self.is_reverse:
            qstart, qend = tail, qlen - lead
        else:
            qstart, qend = lead, qlen - tail
        tstart = self.pos - 1
        return Alignment(
            qname=self.qname,
            qlen=qlen,
            qstart=qstart,
            qend=qend,
            strand=-1 if self.is_reverse else 1,
            tname=self.rname,
            tlen=tlen,
            tstart=tstart,
            tend=tstart + core.target_span,
            n_match=max(0, core.target_span - int(self.tags.get("NM", 0))),
            block_len=sum(n for n, op in core.ops if op in "MID=X"),
            mapq=self.mapq,
            score=int(self.tags.get("AS", 0)),
            cigar=core,
            is_primary=not self.is_secondary,
        )


def parse_sam_line(line: str) -> SamRecord:
    """Parse one alignment line (headers rejected — filter them first)."""
    if line.startswith("@"):
        raise ParseError("header line passed to parse_sam_line")
    fields = line.rstrip("\n").split("\t")
    if len(fields) < 11:
        raise ParseError(f"SAM line has {len(fields)} fields, expected >= 11")
    try:
        flag = int(fields[1])
        pos = int(fields[3])
        mapq = int(fields[4])
    except ValueError as exc:
        raise ParseError(f"non-numeric SAM field: {exc}") from None
    cigar = None if fields[5] == "*" else Cigar.from_string(fields[5])
    tags: Dict[str, object] = {}
    for tag in fields[11:]:
        parts = tag.split(":", 2)
        if len(parts) == 3:
            name, typ, value = parts
            tags[name] = int(value) if typ == "i" else value
    return SamRecord(
        qname=fields[0], flag=flag, rname=fields[2], pos=pos, mapq=mapq,
        cigar=cigar, seq=fields[9], qual=fields[10], tags=tags,
    )


def parse_sam(
    lines: Iterable[str],
) -> Tuple[Dict[str, int], List[SamRecord]]:
    """Parse a SAM stream; returns ({ref name: length}, records)."""
    refs: Dict[str, int] = {}
    records: List[SamRecord] = []
    for line in lines:
        if not line.strip():
            continue
        if line.startswith("@"):
            if line.startswith("@SQ"):
                parts = dict(
                    p.split(":", 1) for p in line.rstrip("\n").split("\t")[1:]
                )
                if "SN" in parts and "LN" in parts:
                    refs[parts["SN"]] = int(parts["LN"])
            continue
        records.append(parse_sam_line(line))
    return refs, records
