"""Evaluation: accuracy vs simulator ground truth, resource accounting."""

from .accuracy import AccuracyReport, evaluate_accuracy
from .resources import peak_rss_bytes, measure_ram
from .report import render_table
from .paf import parse_paf, parse_paf_line, mapeval, MapevalRow
from .coverage import CoverageStats, coverage_stats, depth_vector
from .dotplot import dotplot, chain_dotplot
from .sam import SamRecord, parse_sam, parse_sam_line

__all__ = [
    "AccuracyReport",
    "evaluate_accuracy",
    "peak_rss_bytes",
    "measure_ram",
    "render_table",
    "parse_paf",
    "parse_paf_line",
    "mapeval",
    "MapevalRow",
    "CoverageStats",
    "coverage_stats",
    "depth_vector",
    "dotplot",
    "chain_dotplot",
    "SamRecord",
    "parse_sam",
    "parse_sam_line",
]
