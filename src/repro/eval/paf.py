"""PAF parsing and mapeval-style accuracy curves.

The paper evaluates accuracy "reproducing the experiment in the
minimap2 paper" — which used ``paftools.js mapeval``: reads carry their
true origin in simulation metadata, alignments are judged by overlap,
and the error rate is accumulated per MAPQ threshold so the output is
a (mapq, cumulative error rate, cumulative fraction mapped) curve.
This module parses PAF back into :class:`Alignment` records and
computes that curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.alignment import Alignment
from ..errors import ParseError
from ..align.cigar import Cigar


def parse_paf_line(line: str) -> Alignment:
    """Parse one PAF line (with optional tags) into an Alignment."""
    fields = line.rstrip("\n").split("\t")
    if len(fields) < 12:
        raise ParseError(f"PAF line has {len(fields)} fields, expected >= 12")
    try:
        qlen, qstart, qend = int(fields[1]), int(fields[2]), int(fields[3])
        tlen, tstart, tend = int(fields[6]), int(fields[7]), int(fields[8])
        n_match, block_len, mapq = int(fields[9]), int(fields[10]), int(fields[11])
    except ValueError as exc:
        raise ParseError(f"non-numeric PAF field: {exc}") from None
    if fields[4] not in "+-":
        raise ParseError(f"bad strand field {fields[4]!r}")
    tags: Dict[str, object] = {}
    score = 0
    cigar = None
    is_primary = True
    for tag in fields[12:]:
        parts = tag.split(":", 2)
        if len(parts) != 3:
            continue
        name, typ, value = parts
        if name == "AS" and typ == "i":
            score = int(value)
        elif name == "cg" and typ == "Z":
            cigar = Cigar.from_string(value)
        elif name == "tp" and typ == "A":
            is_primary = value == "P"
        else:
            tags[name] = value
    return Alignment(
        qname=fields[0],
        qlen=qlen,
        qstart=qstart,
        qend=qend,
        strand=1 if fields[4] == "+" else -1,
        tname=fields[5],
        tlen=tlen,
        tstart=tstart,
        tend=tend,
        n_match=n_match,
        block_len=block_len,
        mapq=mapq,
        score=score,
        cigar=cigar,
        is_primary=is_primary,
        tags=tags,
    )


def parse_paf(lines: Iterable[str]) -> List[Alignment]:
    """Parse a PAF stream, skipping blank lines."""
    return [parse_paf_line(l) for l in lines if l.strip()]


@dataclass(frozen=True)
class MapevalRow:
    """One row of the mapeval curve: alignments at MAPQ >= threshold."""

    mapq: int
    n_mapped: int
    n_wrong: int
    cum_error_rate: float
    cum_mapped_frac: float


def mapeval(
    alignments: Sequence[Alignment],
    truths: Dict[str, Tuple[str, int, int]],
    n_reads: int,
    slop: int = 100,
) -> List[MapevalRow]:
    """Compute the mapeval accuracy curve.

    ``truths`` maps read name -> (chrom, start, end). Rows are emitted
    for each distinct MAPQ, descending, with cumulative wrong/mapped
    counts — exactly how paftools.js presents mapping error rates.
    """
    if n_reads <= 0:
        raise ValueError(f"n_reads must be positive: {n_reads}")
    primaries = [a for a in alignments if a.is_primary]
    judged = []
    for a in primaries:
        if a.qname not in truths:
            raise ValueError(f"no ground truth for read {a.qname!r}")
        chrom, start, end = truths[a.qname]
        judged.append((a.mapq, a.overlaps_truth(chrom, start, end, slop=slop)))
    judged.sort(key=lambda x: -x[0])
    rows: List[MapevalRow] = []
    mapped = wrong = 0
    i = 0
    while i < len(judged):
        mapq = judged[i][0]
        while i < len(judged) and judged[i][0] == mapq:
            mapped += 1
            wrong += not judged[i][1]
            i += 1
        rows.append(
            MapevalRow(
                mapq=mapq,
                n_mapped=mapped,
                n_wrong=wrong,
                cum_error_rate=wrong / mapped,
                cum_mapped_frac=mapped / n_reads,
            )
        )
    return rows
