"""Read simulation: the PBSIM / real-Nanopore-data substitute.

Generates long reads from a reference with platform-specific length
distributions and error profiles, recording ground-truth origins so the
paper's accuracy metric (wrong alignments / aligned reads, Table 5) can
be computed exactly.
"""

from .lengths import LengthModel, lognormal_lengths
from .errors import ErrorProfile, PACBIO_CLR, NANOPORE_R9, apply_errors
from .pbsim import ReadSimulator, SimulatedRead, simulate_reads

__all__ = [
    "LengthModel",
    "lognormal_lengths",
    "ErrorProfile",
    "PACBIO_CLR",
    "NANOPORE_R9",
    "apply_errors",
    "ReadSimulator",
    "SimulatedRead",
    "simulate_reads",
]
