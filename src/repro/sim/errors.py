"""Sequencing error profiles and their application to template sequences.

Profiles follow PBSIM's parameterization: an overall error rate split
into substitution / insertion / deletion ratios. PacBio CLR errors are
insertion-dominated; Nanopore R9 errors lean toward deletions. The
numbers below are the commonly cited platform characteristics the paper
relies on ("higher error rate ... poses great difficulties").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import SimulationError
from ..seq.alphabet import NUC
from ..utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class ErrorProfile:
    """Platform error model: total rate plus sub:ins:del ratio."""

    name: str
    error_rate: float
    sub_frac: float
    ins_frac: float
    del_frac: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 0.5:
            raise SimulationError(f"error rate {self.error_rate} out of range")
        total = self.sub_frac + self.ins_frac + self.del_frac
        if abs(total - 1.0) > 1e-9:
            raise SimulationError(
                f"{self.name}: error fractions sum to {total}, expected 1"
            )

    @property
    def rates(self) -> Tuple[float, float, float]:
        """Per-base (substitution, insertion, deletion) rates."""
        return (
            self.error_rate * self.sub_frac,
            self.error_rate * self.ins_frac,
            self.error_rate * self.del_frac,
        )


#: PacBio CLR (pre-HiFi): ~13% errors, insertion-heavy (PBSIM defaults).
PACBIO_CLR = ErrorProfile("pacbio-clr", 0.13, sub_frac=0.10, ins_frac=0.60, del_frac=0.30)

#: Oxford Nanopore R9: ~12% errors, more balanced with deletion lean.
NANOPORE_R9 = ErrorProfile("nanopore-r9", 0.12, sub_frac=0.40, ins_frac=0.20, del_frac=0.40)

#: A near-perfect profile for tests that need easy alignments.
CLEAN = ErrorProfile("clean", 0.0, sub_frac=1.0, ins_frac=0.0, del_frac=0.0)


def apply_errors(
    template: np.ndarray, profile: ErrorProfile, seed: SeedLike = None
) -> Tuple[np.ndarray, int]:
    """Corrupt ``template`` according to ``profile``.

    Returns ``(read_codes, n_errors)``. Implemented with a vectorized
    event draw: one categorical sample per template base decides
    keep/substitute/insert-before/delete, then the read is assembled
    with array operations (no per-base Python loop).
    """
    rng = as_rng(seed)
    n = template.size
    if n == 0:
        return template.copy(), 0
    sub, ins, dele = profile.rates
    u = rng.random(n)
    is_sub = u < sub
    is_ins = (u >= sub) & (u < sub + ins)
    is_del = (u >= sub + ins) & (u < sub + ins + dele)

    # Substitutions: shift code by 1..3 mod 4.
    out = template.copy()
    k_sub = int(is_sub.sum())
    if k_sub:
        out[is_sub] = (out[is_sub] + rng.integers(1, NUC, size=k_sub).astype(np.uint8)) % NUC

    # Build the read by expanding each template position into 0, 1, or 2
    # output bases: deletions emit 0, insertions emit 2 (random + kept).
    emit = np.ones(n, dtype=np.int64)
    emit[is_del] = 0
    emit[is_ins] = 2
    total = int(emit.sum())
    read = np.empty(total, dtype=np.uint8)
    # Destination offsets for the "kept" copy of each surviving base.
    dst = np.cumsum(emit) - 1  # index of the LAST base emitted per position
    keep = ~is_del
    read[dst[keep]] = out[keep]
    # Inserted random base goes immediately before the kept base.
    k_ins = int(is_ins.sum())
    if k_ins:
        read[dst[is_ins] - 1] = rng.integers(0, NUC, size=k_ins).astype(np.uint8)
    n_errors = k_sub + k_ins + int(is_del.sum())
    return read, n_errors
