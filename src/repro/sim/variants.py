"""Structural-variant simulation: derive a donor genome from a reference.

Long reads exist largely to resolve structural variation (NGMLR's whole
reason for being in Table 5). This module applies deletions,
insertions, inversions, tandem duplications, and translocations to a
reference, tracking every event so tests and examples can check that
split/strand-flipped alignments land where the truth says.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..seq.alphabet import random_codes, revcomp_codes
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from ..utils.rng import SeedLike, as_rng

SV_KINDS = ("DEL", "INS", "INV", "DUP", "TRA")


@dataclass(frozen=True)
class StructuralVariant:
    """One applied SV event, in REFERENCE coordinates."""

    kind: str
    chrom: str
    start: int
    end: int  # reference span affected ([start, start) for INS)
    length: int
    dest: Optional[Tuple[str, int]] = None  # TRA target (chrom, pos)

    def __post_init__(self) -> None:
        if self.kind not in SV_KINDS:
            raise SimulationError(f"unknown SV kind {self.kind!r}")
        if self.length <= 0:
            raise SimulationError(f"SV length must be positive: {self.length}")


@dataclass(frozen=True)
class SvSpec:
    """How many of each event to draw, and their size distribution."""

    n_del: int = 2
    n_ins: int = 2
    n_inv: int = 1
    n_dup: int = 1
    n_tra: int = 0
    min_size: int = 500
    max_size: int = 8000

    def __post_init__(self) -> None:
        if self.min_size < 1 or self.max_size < self.min_size:
            raise SimulationError(
                f"bad SV size range [{self.min_size}, {self.max_size}]"
            )
        if min(self.n_del, self.n_ins, self.n_inv, self.n_dup, self.n_tra) < 0:
            raise SimulationError("negative SV counts")

    @property
    def total(self) -> int:
        return self.n_del + self.n_ins + self.n_inv + self.n_dup + self.n_tra


def apply_svs(
    genome: Genome, spec: SvSpec = SvSpec(), seed: SeedLike = None
) -> Tuple[Genome, List[StructuralVariant]]:
    """Build a donor genome carrying ``spec``'s variants.

    Events are placed uniformly at random, non-overlapping (with
    rejection sampling), applied per chromosome from right to left so
    earlier coordinates stay valid. Returns the donor and the event
    list in reference coordinates.
    """
    rng = as_rng(seed)
    events: List[StructuralVariant] = []
    taken: List[Tuple[str, int, int]] = []

    kinds = (
        ["DEL"] * spec.n_del + ["INS"] * spec.n_ins + ["INV"] * spec.n_inv
        + ["DUP"] * spec.n_dup + ["TRA"] * spec.n_tra
    )
    for kind in kinds:
        for _ in range(200):  # rejection attempts
            chrom = genome.chromosomes[int(rng.integers(len(genome)))]
            size = int(rng.integers(spec.min_size, spec.max_size + 1))
            if size >= len(chrom) // 2:
                continue
            start = int(rng.integers(0, len(chrom) - size))
            span = (chrom.name, start, start + size)
            if any(
                c == span[0] and s < span[2] and e > span[1]
                for c, s, e in taken
            ):
                continue
            taken.append(span)
            dest = None
            if kind == "TRA":
                other = genome.chromosomes[int(rng.integers(len(genome)))]
                dest = (other.name, int(rng.integers(0, len(other))))
            events.append(
                StructuralVariant(
                    kind=kind, chrom=chrom.name, start=start,
                    end=start if kind == "INS" else start + size,
                    length=size, dest=dest,
                )
            )
            break
        else:
            raise SimulationError(
                f"could not place a {kind} of size <= {spec.max_size}; "
                "genome too small or too crowded"
            )

    donor_chroms = {}
    inserts: dict = {}
    # Collect translocated payloads first (they copy reference material).
    for ev in events:
        if ev.kind == "TRA":
            payload = genome.fetch(ev.chrom, ev.start, ev.end)
            inserts.setdefault(ev.dest[0], []).append((ev.dest[1], payload))

    for chrom in genome.chromosomes:
        codes = chrom.codes.copy()
        chrom_events = [e for e in events if e.chrom == chrom.name]
        # Right-to-left so reference coordinates stay valid during edits.
        for ev in sorted(chrom_events, key=lambda e: -e.start):
            if ev.kind == "DEL" or ev.kind == "TRA":
                codes = np.concatenate([codes[: ev.start], codes[ev.end :]])
            elif ev.kind == "INS":
                novel = random_codes(ev.length, rng)
                codes = np.concatenate([codes[: ev.start], novel, codes[ev.start :]])
            elif ev.kind == "INV":
                codes[ev.start : ev.end] = revcomp_codes(codes[ev.start : ev.end])
            elif ev.kind == "DUP":
                codes = np.concatenate(
                    [codes[: ev.end], codes[ev.start : ev.end], codes[ev.end :]]
                )
        # Apply translocation arrivals (in this chromosome's own frame).
        for pos, payload in sorted(inserts.get(chrom.name, []), key=lambda x: -x[0]):
            pos = min(pos, codes.size)
            codes = np.concatenate([codes[:pos], payload, codes[pos:]])
        donor_chroms[chrom.name] = codes

    donor = Genome(
        [SeqRecord(name, donor_chroms[name]) for name in genome.names]
    )
    return donor, events
