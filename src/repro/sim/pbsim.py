"""PBSIM-like read sampler with ground-truth origin records.

``simulate_reads`` samples read origins uniformly over the genome (both
strands), draws lengths from a :class:`LengthModel`, applies an
:class:`ErrorProfile`, and stores the true origin in each record's
``meta`` — the information PBSIM emits as MAF files and that the paper's
error-rate metric (Table 5) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import SimulationError
from ..seq.alphabet import revcomp_codes
from ..seq.genome import Genome
from ..seq.records import ReadSet, SeqRecord
from ..utils.rng import SeedLike, as_rng
from .errors import ErrorProfile, NANOPORE_R9, PACBIO_CLR, apply_errors
from .lengths import LengthModel


@dataclass(frozen=True)
class SimulatedRead:
    """Ground truth for one simulated read."""

    name: str
    chrom: str
    start: int
    end: int
    strand: int  # +1 forward, -1 reverse
    n_errors: int

    @property
    def interval(self):
        return (self.chrom, self.start, self.end)


# Platform presets matching the paper's two macro datasets (Table 4):
# simulated PacBio (mean 5,567 bp, max ~25 kbp, no extreme tail) and the
# real Nanopore flowcell (mean 3,958 bp, huge max due to the heavy tail).
PRESETS = {
    "pacbio": (LengthModel(mean=5500.0, sigma=0.5, max_length=25_000), PACBIO_CLR),
    "nanopore": (
        LengthModel(mean=3200.0, sigma=0.8, tail_weight=0.02, tail_alpha=1.3),
        NANOPORE_R9,
    ),
}


@dataclass
class ReadSimulator:
    """Samples reads from a genome with a length model and error profile."""

    genome: Genome
    length_model: LengthModel
    error_profile: ErrorProfile
    name_prefix: str = "read"

    @classmethod
    def preset(cls, genome: Genome, platform: str, **overrides) -> "ReadSimulator":
        """Build a simulator from a platform preset ('pacbio'/'nanopore')."""
        try:
            lm, ep = PRESETS[platform]
        except KeyError:
            raise SimulationError(
                f"unknown platform {platform!r}; choose from {sorted(PRESETS)}"
            ) from None
        return cls(genome=genome, length_model=lm, error_profile=ep, **overrides)

    def simulate(self, n_reads: int, seed: SeedLike = None) -> ReadSet:
        """Generate ``n_reads`` reads; ground truth goes in ``meta['truth']``."""
        if n_reads < 0:
            raise SimulationError(f"cannot simulate {n_reads} reads")
        rng = as_rng(seed)
        chrom_lengths = np.array([len(c) for c in self.genome], dtype=np.int64)
        if chrom_lengths.sum() == 0:
            raise SimulationError("empty genome")
        probs = chrom_lengths / chrom_lengths.sum()
        lengths = self.length_model.sample(n_reads, rng)
        chrom_ids = rng.choice(len(chrom_lengths), size=n_reads, p=probs)
        strands = np.where(rng.random(n_reads) < 0.5, 1, -1)

        reads = ReadSet(platform=self.error_profile.name)
        for i in range(n_reads):
            chrom = self.genome.chromosomes[int(chrom_ids[i])]
            ln = int(min(lengths[i], len(chrom)))
            start = int(rng.integers(0, len(chrom) - ln + 1))
            template = chrom.codes[start : start + ln]
            if strands[i] < 0:
                template = revcomp_codes(template)
            read_codes, n_err = apply_errors(template, self.error_profile, rng)
            name = f"{self.name_prefix}{i:07d}"
            truth = SimulatedRead(
                name=name,
                chrom=chrom.name,
                start=start,
                end=start + ln,
                strand=int(strands[i]),
                n_errors=n_err,
            )
            reads.append(SeqRecord(name, read_codes, meta={"truth": truth}))
        return reads


def simulate_reads(
    genome: Genome,
    n_reads: int,
    platform: str = "pacbio",
    seed: SeedLike = None,
    length_model: Optional[LengthModel] = None,
    error_profile: Optional[ErrorProfile] = None,
) -> ReadSet:
    """One-call convenience API: preset simulator, optional overrides."""
    sim = ReadSimulator.preset(genome, platform)
    if length_model is not None:
        sim.length_model = length_model
    if error_profile is not None:
        sim.error_profile = error_profile
    return sim.simulate(n_reads, seed)
