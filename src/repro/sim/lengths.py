"""Read-length models.

PacBio CLR read lengths are well approximated by a lognormal; Nanopore
datasets have a shorter mode but a much heavier tail (the paper's real
dataset averages 3,958 bp yet peaks at 514,461 bp — a 130x max/mean
ratio). We model that tail by mixing a lognormal body with a Pareto
tail component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class LengthModel:
    """Mixture length distribution: lognormal body + optional Pareto tail.

    ``mean`` is the target mean of the body; ``sigma`` the lognormal
    shape; ``tail_weight`` the probability a read is drawn from the
    Pareto tail with shape ``tail_alpha`` starting at ``mean``.
    """

    mean: float = 5500.0
    sigma: float = 0.55
    tail_weight: float = 0.0
    tail_alpha: float = 1.6
    min_length: int = 100
    max_length: int = 600_000

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise SimulationError(f"mean length must be positive: {self.mean}")
        if not 0.0 <= self.tail_weight < 1.0:
            raise SimulationError(f"tail weight {self.tail_weight} out of range")
        if self.min_length < 1 or self.max_length < self.min_length:
            raise SimulationError(
                f"bad length bounds [{self.min_length}, {self.max_length}]"
            )

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``n`` read lengths (int64, clipped to bounds)."""
        if n < 0:
            raise SimulationError(f"cannot sample {n} lengths")
        rng = as_rng(seed)
        # lognormal with mean == self.mean: mu = ln(mean) - sigma^2/2
        mu = np.log(self.mean) - self.sigma**2 / 2.0
        body = rng.lognormal(mu, self.sigma, size=n)
        if self.tail_weight > 0.0:
            is_tail = rng.random(n) < self.tail_weight
            k = int(is_tail.sum())
            if k:
                tail = self.mean * (1.0 + rng.pareto(self.tail_alpha, size=k))
                body[is_tail] = tail
        return np.clip(body, self.min_length, self.max_length).astype(np.int64)


def lognormal_lengths(
    n: int, mean: float = 5500.0, sigma: float = 0.55, seed: SeedLike = None
) -> np.ndarray:
    """Convenience wrapper: plain lognormal lengths with given mean."""
    return LengthModel(mean=mean, sigma=sigma).sample(n, seed)
