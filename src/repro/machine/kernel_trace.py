"""Per-cell instruction counts of the DP kernels.

The inner loop of the difference-formula DP (Algorithm 1) performs, per
vector of cells, a fixed mix of loads, ALU ops, and stores. The counts
below are read off our own kernel implementations (they match ksw2's
instruction mix to within a couple of ops):

========================== ====== =======
operation class             mm2   manymap
========================== ====== =======
vector loads (u,y,v,x,s)      5       5
vector stores (u,y,v,x)       4       4
ALU (add/sub/max/blend)      12      12
shift sequences (v and x)     2       0
========================== ====== =======

Path mode adds the direction-byte computation: ~4 ALU ops (compares +
or-ing the bits) and one extra store per vector.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineModelError
from .isa import VectorISA


@dataclass(frozen=True)
class KernelTrace:
    """Instruction mix for one anti-diagonal vector iteration."""

    name: str
    loads: int
    stores: int
    alu: int
    shifts: int  # vector-shift sequences per iteration
    divergent_sync: bool = False  # GPU: per-iteration branch + syncthreads
    #: how much independent work the iteration offers to hide the shift's
    #: dependency stall behind (path mode's direction-byte computation
    #: fills stall slots, so its effective penalty is halved).
    ilp_slack: float = 1.0

    def cycles(self, isa: VectorISA) -> float:
        """Price one vector iteration (= ``isa.lanes`` cells) in cycles."""
        c = (
            (self.loads + self.stores) * isa.mem_cost
            + self.alu * isa.alu_cost
            + self.shifts * isa.shift_cost
        )
        if self.shifts:
            c += isa.serial_penalty / self.ilp_slack
        if self.divergent_sync:
            c += isa.sync_cost
        return c

    def cycles_per_cell(self, isa: VectorISA) -> float:
        return self.cycles(isa) / isa.lanes


#: minimap2's kernel: shifted v/x loads (Fig. 3a); on GPU, the
#: tid==0 branch + __syncthreads (Fig. 4a).
MM2_SCORE = KernelTrace("mm2-score", loads=5, stores=4, alu=12, shifts=2, divergent_sync=True)
MM2_PATH = KernelTrace(
    "mm2-path", loads=5, stores=5, alu=16, shifts=2, divergent_sync=True, ilp_slack=2.0
)

#: manymap's kernel: plain loads at the write index (Fig. 3b / 4b).
MANYMAP_SCORE = KernelTrace("manymap-score", loads=5, stores=4, alu=12, shifts=0)
MANYMAP_PATH = KernelTrace("manymap-path", loads=5, stores=5, alu=16, shifts=0)

_TRACES = {
    ("mm2", "score"): MM2_SCORE,
    ("mm2", "path"): MM2_PATH,
    ("manymap", "score"): MANYMAP_SCORE,
    ("manymap", "path"): MANYMAP_PATH,
}


def trace_for(kernel: str, mode: str) -> KernelTrace:
    """Trace lookup: kernel in {'mm2', 'manymap'}, mode in {'score', 'path'}."""
    try:
        return _TRACES[(kernel, mode)]
    except KeyError:
        raise MachineModelError(
            f"no trace for kernel={kernel!r} mode={mode!r}"
        ) from None
