"""Roofline-style GCUPS model: compute bound vs memory bound.

``kernel_gcups`` prices a DP kernel on a vector ISA at a clock rate,
then caps it by the bandwidth of wherever the working set lives:

    GCUPS = min( lanes·f / cycles_per_iter,  BW / bytes_per_cell ) · units

This is the deterministic backbone of the micro-benchmark figures
(5, 6, 8); processors add their own occupancy/contention terms on top.
"""

from __future__ import annotations

from typing import Optional

from ..errors import MachineModelError
from .isa import VectorISA
from .kernel_trace import KernelTrace
from .memory import MemorySystem

#: Linear-space score-only DP: u, v, x, y byte arrays plus the int32
#: H-tracking diagonal — roughly 10 bytes of state per sequence base.
SCORE_BYTES_PER_BASE = 10

#: Path mode stores ~2 bytes per DP cell (direction byte + traceback
#: touches), matching the paper's "32 kbp pair needs 2 GB" (§4.5.2).
PATH_BYTES_PER_CELL = 2


def working_set_bytes(length: int, mode: str, concurrent: int = 1) -> int:
    """Bytes of DP state live at once for ``concurrent`` equal-size pairs."""
    if length < 0 or concurrent < 1:
        raise MachineModelError(
            f"bad working-set query: length={length} concurrent={concurrent}"
        )
    if mode == "score":
        per_pair = SCORE_BYTES_PER_BASE * length
    elif mode == "path":
        per_pair = PATH_BYTES_PER_CELL * length * length
    else:
        raise MachineModelError(f"unknown mode {mode!r}")
    return per_pair * concurrent


def dram_bytes_per_cell(mode: str) -> float:
    """DRAM traffic per DP cell once the state spills cache.

    Score mode streams the four byte arrays plus H every diagonal
    (~10 B/cell). Path mode only *writes* the direction byte once per
    cell (the linear arrays stay cached and the traceback reads just
    O(m+n) of the matrix), and write-combining coalesces those stores
    — ~0.75 B/cell of effective traffic.
    """
    if mode == "score":
        return float(SCORE_BYTES_PER_BASE)
    if mode == "path":
        return 0.75
    raise MachineModelError(f"unknown mode {mode!r}")


def access_pattern(mode: str) -> str:
    """Memory access pattern of each mode (see MemoryLevel.bandwidth)."""
    if mode == "score":
        return "stream"
    if mode == "path":
        return "scatter"
    raise MachineModelError(f"unknown mode {mode!r}")


def kernel_gcups(
    trace: KernelTrace,
    isa: VectorISA,
    freq_ghz: float,
    memory: Optional[MemorySystem] = None,
    working_set: int = 0,
    mode: str = "score",
    units: float = 1.0,
    efficiency: float = 1.0,
) -> float:
    """Modeled GCUPS for ``units`` parallel executions of a kernel."""
    if freq_ghz <= 0 or units <= 0 or not 0 < efficiency <= 1.0:
        raise MachineModelError(
            f"bad model inputs: f={freq_ghz} units={units} eff={efficiency}"
        )
    compute = isa.lanes * freq_ghz / trace.cycles(isa)
    bound = compute
    if memory is not None:
        bw = memory.bandwidth_for(working_set, access_pattern(mode))
        mem_bound = bw / dram_bytes_per_cell(mode)
        bound = min(compute, mem_bound / max(units, 1.0))
    return bound * units * efficiency
