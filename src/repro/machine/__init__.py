"""Simulated hardware: vector ISAs, memory systems, and processors.

Real SSE/AVX-512 units, a Tesla V100, and a Xeon Phi 7210 are not
available to a pure-Python reproduction, so this subpackage models them
(DESIGN.md §2). Models are deterministic: per-cell instruction counts
of each DP kernel (``kernel_trace``) are priced by a vector-ISA cost
table (``isa``), bounded by a memory hierarchy (``memory``), and
aggregated by processor descriptions (``cpu``, ``knl``, ``gpu``) into
GCUPS — the paper's micro-benchmark metric. Constants either come from
published hardware specs (lane widths, capacities, bandwidths, clock
rates) or are calibrated to the paper's own measured ratios; EXPERIMENTS.md
labels which is which.
"""

from .isa import VectorISA, SSE2, AVX2, AVX512BW, KNL_AVX2, GPU_SIMT, ISAS
from .kernel_trace import KernelTrace, trace_for
from .memory import MemoryLevel, MemorySystem
from .cpu import XEON_GOLD_5115, CpuModel
from .knl import XEON_PHI_7210, KnlModel
from .gpu import TESLA_V100, GpuModel
from .cost import kernel_gcups, working_set_bytes

__all__ = [
    "VectorISA",
    "SSE2",
    "AVX2",
    "AVX512BW",
    "KNL_AVX2",
    "GPU_SIMT",
    "ISAS",
    "KernelTrace",
    "trace_for",
    "MemoryLevel",
    "MemorySystem",
    "CpuModel",
    "KnlModel",
    "GpuModel",
    "XEON_GOLD_5115",
    "XEON_PHI_7210",
    "TESLA_V100",
    "kernel_gcups",
    "working_set_bytes",
]
