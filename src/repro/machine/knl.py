"""Xeon Phi 7210 (Knights Landing) model (the paper's knl1, Table 3).

Published parameters: 64 cores at 1.3/1.5 GHz, 4 hyper-threads per
core, cores paired into 32 tiles sharing 1 MB L2 each, 16 GB on-package
MCDRAM (~400 GB/s) over 96 GB DDR4 (~90 GB/s). The memory mode (§4.4.1)
decides where the DP working set lives:

* ``flat``  — manymap's choice: MCDRAM is addressable; the model places
  the working set in MCDRAM while it fits in 16 GB, else DDR.
* ``cache`` — MCDRAM acts as a last-level cache (slightly lower
  effective bandwidth from tag overhead).
* ``ddr``   — MCDRAM unused; everything streams from DDR4.

Single-thread behaviour: a KNL core is ~2-wide with modest
out-of-order depth, so unoptimized scalar/SSE code ported directly from
the CPU runs several times slower per clock — the paper's Table 2 shows
stage-dependent slowdowns of 6-19× vs the Xeon, which
``stage_slowdown`` encodes (calibrated from that table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import MachineModelError
from .cost import dram_bytes_per_cell, kernel_gcups, working_set_bytes
from .isa import KNL_AVX2, SSE2, VectorISA
from .kernel_trace import trace_for
from .memory import GiB, MiB, MemoryLevel, MemorySystem


def _knl_memory(mode: str) -> MemorySystem:
    l2 = MemoryLevel("l2", 32 * MiB, 1500.0, latency_ns=20)
    mcdram = MemoryLevel("mcdram", 16 * GiB, 400.0, latency_ns=150, scatter_gbps=380.0)
    mcdram_cache = MemoryLevel(
        "mcdram-cache", 16 * GiB, 330.0, latency_ns=170, scatter_gbps=310.0
    )
    # KNL's six-channel DDR4 streams ~80 GB/s but collapses to ~52 GB/s
    # under 256-thread mixed write traffic (Jeffers et al., ch. 4).
    ddr = MemoryLevel("ddr4", None, 80.0, latency_ns=130, scatter_gbps=52.0)
    if mode == "flat":
        return MemorySystem([l2, mcdram, ddr])
    if mode == "cache":
        return MemorySystem([l2, mcdram_cache, ddr])
    if mode == "ddr":
        return MemorySystem([l2, ddr])
    raise MachineModelError(f"unknown KNL memory mode {mode!r}")


@dataclass
class KnlModel:
    """Knights Landing processor with selectable memory mode."""

    name: str = "Xeon Phi 7210"
    cores: int = 64
    threads_per_core: int = 4
    tiles: int = 32  # 2 cores per tile share 1 MB L2
    freq_ghz: float = 1.3
    memory_mode: str = "flat"
    #: hyper-thread aggregate throughput per core: 1, 2, 3, 4 threads.
    #: Calibrated to §5.3.1: "only 21% faster using four threads per core".
    ht_curve: Dict[int, float] = field(
        default_factory=lambda: {1: 1.00, 2: 1.12, 3: 1.18, 4: 1.21}
    )
    #: single-thread slowdown vs the Xeon Gold per pipeline stage,
    #: calibrated from the paper's Table 2 (direct-port minimap2).
    stage_slowdown: Dict[str, float] = field(
        default_factory=lambda: {
            "Load Index": 6.1,
            "Load Query": 8.3,
            "Seed & Chain": 7.5,
            "Align": 18.7,
            "Output": 10.6,
        }
    )
    #: extra per-clock penalty the 2-wide KNL core pays running the
    #: direct-port (mm2) kernel's scalar bookkeeping (calibrated to the
    #: paper's "up to 3.4×" KNL kernel speedup).
    legacy_port_factor: float = 1.5

    def __post_init__(self) -> None:
        self.memory = _knl_memory(self.memory_mode)

    @property
    def max_threads(self) -> int:
        return self.cores * self.threads_per_core

    def ht_throughput(self, threads_on_core: int) -> float:
        """Aggregate throughput of one core running N hyper-threads."""
        if not 1 <= threads_on_core <= self.threads_per_core:
            raise MachineModelError(f"bad thread count {threads_on_core}")
        return self.ht_curve[threads_on_core]

    def parallel_units(self, threads: int) -> float:
        """Effective core-equivalents for ``threads`` evenly spread."""
        if not 1 <= threads <= self.max_threads:
            raise MachineModelError(
                f"threads={threads} outside [1, {self.max_threads}]"
            )
        full, rem = divmod(threads, self.cores)
        units = 0.0
        if full:
            units += (self.cores - rem) * self.ht_throughput(full)
        if rem:
            units += rem * self.ht_throughput(full + 1)
        if full == 0:
            units = rem * self.ht_throughput(1)
        return units

    def micro_gcups(
        self,
        kernel: str,
        mode: str,
        length: int,
        threads: int | None = None,
        isa: VectorISA | None = None,
    ) -> float:
        """Modeled aggregate kernel GCUPS on KNL (Fig. 6 and 8).

        ``kernel='mm2'`` is the direct port (SSE2 + legacy penalty),
        ``kernel='manymap'`` the revised kernel on AVX2 byte lanes.
        """
        if threads is None:
            threads = self.max_threads
        if isa is None:
            isa = SSE2 if kernel == "mm2" else KNL_AVX2
        trace = trace_for(kernel, mode)
        units = self.parallel_units(threads)
        concurrent = min(threads, self.max_threads)
        ws = working_set_bytes(length, mode, concurrent=concurrent)
        g = kernel_gcups(
            trace,
            isa,
            self.freq_ghz,
            memory=self.memory,
            working_set=ws,
            mode=mode,
            units=units,
        )
        if kernel == "mm2":
            g /= self.legacy_port_factor
        return g


#: The paper's KNL in its three memory configurations.
XEON_PHI_7210 = KnlModel()
