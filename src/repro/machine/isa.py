"""Vector ISA models.

Each ISA prices the handful of operation classes the DP inner loop
uses. Lane counts and the *relative* shift costs are hardware facts:

* SSE2's 128-bit ``palignr``/``pslldq`` shift is a single cheap op;
* AVX2 has no single-instruction byte shift across its two 128-bit
  lanes — a ``vperm2i128`` + ``vpalignr`` pair (plus a scalar insert
  when carrying the wrap value) is needed, which is precisely the
  paper's observation that "AVX2 uses more instructions to shift
  vectors than other two instruction sets" (§5.2.1);
* AVX-512BW shifts with a two-op ``valignd``-style sequence;
* the GPU "shift" in minimap2's SIMT port is the divergent
  ``tid == 0`` branch plus a block-wide ``__syncthreads()`` (Fig. 4a),
  priced as ``sync_cost``.

``serial_penalty`` models the loop-carried dependency introduced by
minimap2's temporary-variable workaround: the shifted value must be
produced before the next vector iteration can issue, shortening the
pipeline's effective ILP. It is calibrated against Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineModelError


@dataclass(frozen=True)
class VectorISA:
    """Cost table for one vector instruction set."""

    name: str
    vector_bits: int
    #: cycles per simple vector ALU op (add/sub/max/cmp/blend)
    alu_cost: float = 1.0
    #: cycles per aligned vector load/store
    mem_cost: float = 1.0
    #: cycles for one full vector-shift sequence (incl. temp upkeep)
    shift_cost: float = 1.0
    #: extra cycles per iteration lost to the shift's dependency chain
    serial_penalty: float = 0.0
    #: cycles for SIMT branch divergence + thread sync (GPU only)
    sync_cost: float = 0.0
    #: lanes operate on 8-bit cells
    lane_bits: int = 8

    def __post_init__(self) -> None:
        if self.vector_bits % self.lane_bits:
            raise MachineModelError(
                f"{self.name}: vector width {self.vector_bits} not a "
                f"multiple of lane width {self.lane_bits}"
            )
        if self.vector_bits <= 0 or self.lane_bits <= 0:
            raise MachineModelError(f"{self.name}: non-positive widths")

    @property
    def lanes(self) -> int:
        """Cells updated per vector operation."""
        return self.vector_bits // self.lane_bits


#: SSE2: 16 × 8-bit lanes; single-op shifts; short dependency stall.
SSE2 = VectorISA("sse2", 128, shift_cost=1.0, serial_penalty=1.0)

#: AVX2: 32 lanes; cross-lane shifts cost ~3 ops and the carried value
#: serializes the deeply pipelined core badly (penalty calibrated to
#: Figure 5's 2.2× score-mode gap).
AVX2 = VectorISA("avx2", 256, shift_cost=3.0, serial_penalty=19.0)

#: AVX-512BW: 64 lanes; two-op shifts, moderate serialization
#: (calibrated to Figure 5's ~1.5×).
AVX512BW = VectorISA("avx512bw", 512, shift_cost=2.0, serial_penalty=8.0)

#: KNL runs the AVX2 byte kernels (its AVX-512 lacks BW byte ops); the
#: 2-wide in-order-leaning core pays the same relative stall.
KNL_AVX2 = VectorISA("knl-avx2", 256, shift_cost=3.0, serial_penalty=19.0)

#: GPU SIMT: one 512-thread block as a "vector"; no shift, but the
#: minimap2 port pays a divergent branch + block-wide __syncthreads per
#: iteration (Fig. 4a) — calibrated to Figure 8's ~3.2-3.9× GPU gap.
GPU_SIMT = VectorISA(
    "gpu-simt", 512 * 8, shift_cost=0.0, serial_penalty=0.0, sync_cost=52.0
)

ISAS = {isa.name: isa for isa in (SSE2, AVX2, AVX512BW, KNL_AVX2, GPU_SIMT)}
