"""Model-driven figure tables, callable without the benchmark harness.

Used by ``manymap bench <figure>`` so the paper's modeled results are
one command away; the pytest benchmarks add measured components and
shape assertions on top.
"""

from __future__ import annotations

from typing import List

from ..eval.report import render_table
from .cpu import XEON_GOLD_5115
from .gpu import TESLA_V100
from .isa import AVX2, AVX512BW, SSE2
from .knl import KnlModel, XEON_PHI_7210

LENGTHS = [1000, 2000, 4000, 8000, 16000, 32000]


def fig5_table() -> str:
    """SIMD instruction sets (modeled, Figure 5)."""
    cpu = XEON_GOLD_5115
    rows = []
    for isa in (SSE2, AVX2, AVX512BW):
        for mode in ("score", "path"):
            many = cpu.micro_gcups("manymap", isa, mode, 4000)
            mm2 = cpu.micro_gcups("mm2", isa, mode, 4000)
            rows.append([f"{isa.name}/{mode}", f"{mm2:.0f}", f"{many:.0f}",
                         f"{many / mm2:.2f}x"])
    return render_table(
        ["ISA/mode", "minimap2", "manymap", "speedup"], rows,
        title="Figure 5: SIMD instruction sets (modeled GCUPS)",
    )


def fig6_table() -> str:
    """KNL memory modes (modeled, Figure 6)."""
    flat = XEON_PHI_7210
    ddr = KnlModel(memory_mode="ddr")
    rows = []
    for mode in ("score", "path"):
        for length in LENGTHS:
            a = flat.micro_gcups("manymap", mode, length)
            b = ddr.micro_gcups("manymap", mode, length)
            rows.append([f"{mode}/{length}", f"{a:.1f}", f"{b:.1f}", f"{a / b:.2f}x"])
    return render_table(
        ["mode/len", "MCDRAM", "DDR", "speedup"], rows,
        title="Figure 6: KNL memory modes (modeled GCUPS)",
    )


def fig7_table() -> str:
    """CUDA stream scaling (modeled, Figure 7)."""
    gpu = TESLA_V100
    rows = [
        [n, f"{gpu.stream_speedup(n, 'score'):.1f}",
         f"{gpu.stream_speedup(n, 'path'):.1f}"]
        for n in (1, 2, 4, 8, 16, 32, 64, 128)
    ]
    return render_table(
        ["streams", "score speedup", "path speedup"], rows,
        title="Figure 7: concurrent CUDA streams (modeled)",
    )


def fig8_table(mode: str = "score") -> str:
    """Three processors vs length (modeled, Figure 8)."""
    cpu, knl, gpu = XEON_GOLD_5115, XEON_PHI_7210, TESLA_V100
    rows = []
    for length in LENGTHS:
        rows.append([
            length,
            f"{cpu.micro_gcups('mm2', SSE2, mode, length):.0f}",
            f"{cpu.micro_gcups('manymap', AVX512BW, mode, length):.0f}",
            f"{knl.micro_gcups('mm2', mode, length):.0f}",
            f"{knl.micro_gcups('manymap', mode, length):.0f}",
            f"{gpu.micro_gcups('mm2', mode, length):.0f}",
            f"{gpu.micro_gcups('manymap', mode, length):.0f}",
        ])
    return render_table(
        ["len", "CPU mm2", "CPU many", "KNL mm2", "KNL many",
         "GPU mm2", "GPU many"],
        rows, title=f"Figure 8 ({mode}): processors vs length (modeled GCUPS)",
    )


def hardware_table() -> str:
    """Table 3: the modeled hardware configurations."""
    cpu, knl, gpu = XEON_GOLD_5115, XEON_PHI_7210, TESLA_V100
    rows = [
        ["Model", cpu.name, gpu.name, knl.name],
        ["# Cores", cpu.cores, gpu.cuda_cores, knl.cores],
        ["Max threads", cpu.max_threads, gpu.max_resident_grids * gpu.threads_per_block,
         knl.max_threads],
        ["Freq (GHz)", cpu.freq_ghz["sse2"], gpu.freq_ghz, knl.freq_ghz],
        ["Device mem", "-", "16 GB HBM2", "16 GB MCDRAM"],
    ]
    return render_table(["", "CPU", "GPU", "Xeon Phi"], rows,
                        title="Table 3: hardware configurations (models)")


FIGURES = {
    "fig5": fig5_table,
    "fig6": fig6_table,
    "fig7": fig7_table,
    "fig8": lambda: fig8_table("score") + "\n\n" + fig8_table("path"),
    "table3": hardware_table,
}


def available() -> List[str]:
    return sorted(FIGURES)
