"""Memory hierarchy models.

A :class:`MemorySystem` is an ordered list of levels (fastest first).
The model places a working set in the smallest level that holds it and
charges that level's bandwidth — the first-order behaviour behind the
paper's Figure 6 (MCDRAM's 16 GB capacity crossover) and the KNL/GPU
performance cliffs in Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import MachineModelError


@dataclass(frozen=True)
class MemoryLevel:
    """One level: capacity (None = unbounded) and bandwidths.

    ``bandwidth_gbps`` is sequential-stream bandwidth;
    ``scatter_gbps`` (defaults to the stream value) is the effective
    bandwidth under the mixed write/scatter pattern of path-mode DP —
    DDR on KNL in particular degrades badly under 256-thread scatter.
    """

    name: str
    capacity_bytes: Optional[int]
    bandwidth_gbps: float
    latency_ns: float = 100.0
    scatter_gbps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise MachineModelError(f"{self.name}: non-positive bandwidth")
        if self.scatter_gbps is not None and self.scatter_gbps <= 0:
            raise MachineModelError(f"{self.name}: non-positive scatter bandwidth")
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise MachineModelError(f"{self.name}: non-positive capacity")

    def bandwidth(self, pattern: str = "stream") -> float:
        if pattern == "stream":
            return self.bandwidth_gbps
        if pattern == "scatter":
            return self.scatter_gbps if self.scatter_gbps is not None else self.bandwidth_gbps
        raise MachineModelError(f"unknown access pattern {pattern!r}")

    def fits(self, working_set: int) -> bool:
        return self.capacity_bytes is None or working_set <= self.capacity_bytes


@dataclass
class MemorySystem:
    """Ordered memory levels, fastest (and smallest) first."""

    levels: List[MemoryLevel] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            raise MachineModelError("memory system needs at least one level")
        if self.levels[-1].capacity_bytes is not None:
            raise MachineModelError("last memory level must be unbounded")

    def placement(self, working_set: int) -> MemoryLevel:
        """Smallest level that holds ``working_set``."""
        if working_set < 0:
            raise MachineModelError(f"negative working set {working_set}")
        for level in self.levels:
            if level.fits(working_set):
                return level
        raise AssertionError("unreachable: last level is unbounded")

    def bandwidth_for(self, working_set: int, pattern: str = "stream") -> float:
        """Bandwidth (GB/s) the working set sees under ``pattern``."""
        return self.placement(working_set).bandwidth(pattern)

    def level_named(self, name: str) -> MemoryLevel:
        for level in self.levels:
            if level.name == name:
                return level
        raise MachineModelError(f"no memory level named {name!r}")


GiB = 1024**3
MiB = 1024**2
