"""Xeon Gold 5115 model (the paper's gpu1 host CPU, Table 3).

Published parameters: 20 cores (2 × 10-core sockets), 2 hyper-threads
per core, 2.4 GHz base / 3.2 GHz turbo, AVX-512 capable with the usual
heavy-vector downclock, six-channel DDR4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import MachineModelError
from .cost import kernel_gcups, working_set_bytes
from .isa import AVX2, AVX512BW, SSE2, VectorISA
from .kernel_trace import trace_for
from .memory import GiB, MiB, MemoryLevel, MemorySystem


def _cpu_memory() -> MemorySystem:
    return MemorySystem(
        [
            MemoryLevel("l2", 20 * MiB, 2000.0, latency_ns=12),
            MemoryLevel("l3", 28 * MiB, 800.0, latency_ns=40),
            MemoryLevel("ddr4", None, 115.0, latency_ns=90),
        ]
    )


@dataclass
class CpuModel:
    """Multicore CPU with per-ISA clock rates and an HT throughput gain."""

    name: str = "Xeon Gold 5115"
    cores: int = 20
    threads_per_core: int = 2
    freq_ghz: Dict[str, float] = field(
        default_factory=lambda: {"sse2": 3.2, "avx2": 3.0, "avx512bw": 2.4}
    )
    #: throughput multiplier from running 2 hyper-threads per core
    ht_gain: float = 1.25
    memory: MemorySystem = field(default_factory=_cpu_memory)

    @property
    def max_threads(self) -> int:
        return self.cores * self.threads_per_core

    def frequency(self, isa: VectorISA) -> float:
        try:
            return self.freq_ghz[isa.name]
        except KeyError:
            raise MachineModelError(
                f"{self.name} has no clock entry for ISA {isa.name!r}"
            ) from None

    def micro_gcups(
        self,
        kernel: str,
        isa: VectorISA,
        mode: str,
        length: int,
        threads: int | None = None,
    ) -> float:
        """Modeled aggregate GCUPS of the base-level kernel (Fig. 5/8a-b).

        All hardware threads align independent pairs, as in the paper's
        micro benchmarks (40 threads on CPU).
        """
        if threads is None:
            threads = self.max_threads
        if not 1 <= threads <= self.max_threads:
            raise MachineModelError(
                f"threads={threads} outside [1, {self.max_threads}]"
            )
        trace = trace_for(kernel, mode)
        cores_busy = min(threads, self.cores)
        units = cores_busy * (
            self.ht_gain if threads > self.cores else 1.0
        )
        ws = working_set_bytes(length, mode, concurrent=min(threads, 2 * self.cores))
        return kernel_gcups(
            trace,
            isa,
            self.frequency(isa),
            memory=self.memory,
            working_set=ws,
            mode=mode,
            units=units,
        )


#: The paper's CPU, ready to use.
XEON_GOLD_5115 = CpuModel()
