"""Tesla V100 model (Table 3): SMs, streams, shared memory, HBM2.

Published parameters: 80 SMs / 5120 CUDA cores at 1.245-1.38 GHz, 16 GB
HBM2 at ~900 GB/s, up to 96 KB shared memory per SM (the kernels
configure 48 KB), and — on compute capability ≥ 7.0 — at most 128
resident grids, which is exactly the paper's 128-stream ceiling
(§4.5.1).

Execution model: one alignment pair per kernel, one 512-thread block
per kernel (the paper's design). A block's 16 warps issue on the SM's
4 schedulers, so per "vector iteration" of 512 cells the block takes
``ops × 4`` scheduler cycles plus, for the minimap2 port, a block-wide
``__syncthreads`` + divergent-branch penalty (Fig. 4a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import MachineModelError
from .cost import working_set_bytes
from .kernel_trace import KernelTrace, trace_for
from .memory import GiB, MiB, MemoryLevel, MemorySystem

KiB = 1024


def _gpu_memory() -> MemorySystem:
    return MemorySystem(
        [
            MemoryLevel("shared", 48 * KiB, 8000.0, latency_ns=5),
            MemoryLevel("hbm2", None, 900.0, latency_ns=300),
        ]
    )


@dataclass
class GpuModel:
    """V100 with concurrent-kernel (stream) execution."""

    name: str = "Tesla V100"
    sms: int = 80
    cuda_cores: int = 5120
    freq_ghz: float = 1.38
    threads_per_block: int = 512
    warp_schedulers: int = 4
    warp_size: int = 32
    max_resident_grids: int = 128
    global_mem_bytes: int = 16 * GiB
    shared_mem_bytes: int = 48 * KiB
    #: block-wide __syncthreads + divergence cost per iteration for the
    #: minimap2 port (calibrated to Figure 8's ~3.2× GPU kernel gap).
    sync_cycles: float = 190.0
    #: kernel launch + memory-pool dispatch overhead, in microseconds.
    launch_overhead_us: float = 20.0
    #: marginal stream efficiency past 64 concurrent streams, calibrated
    #: to Figure 7 (speedup 90 at 128 for score, 77.4 for path).
    stream_marginal: Dict[str, float] = field(
        default_factory=lambda: {"score": 0.406, "path": 0.209}
    )
    memory: MemorySystem = field(default_factory=_gpu_memory)

    # ------------------------------------------------------------------ #

    def block_iter_cycles(self, trace: KernelTrace) -> float:
        """Scheduler cycles for one 512-cell anti-diagonal iteration."""
        lanes_per_cycle = self.warp_schedulers * self.warp_size  # 128
        waves = self.threads_per_block / lanes_per_cycle  # 4
        c = (trace.loads + trace.stores + trace.alu) * waves
        if trace.divergent_sync:
            c += self.sync_cycles
        return c

    def kernel_gcups_single(self, kernel: str, mode: str, length: int) -> float:
        """Modeled GCUPS of ONE kernel (one stream, one block)."""
        trace = trace_for(kernel, mode)
        cycles = self.block_iter_cycles(trace)
        compute = self.threads_per_block * self.freq_ghz / cycles
        # Memory bound: does the per-pair DP state fit in shared memory?
        ws = working_set_bytes(length, mode, concurrent=1)
        if ws > self.shared_mem_bytes:
            # Spill to HBM2: cap by this kernel's share of global bandwidth.
            bw_share = self.memory.level_named("hbm2").bandwidth_gbps / max(
                1, self.concurrency(mode, length)
            )
            bytes_per_cell = 3.0 if mode == "score" else 2.0
            compute = min(compute, bw_share / bytes_per_cell)
        # Launch overhead amortized over the kernel's cells.
        cells = float(length) * float(length)
        kernel_s = cells / (compute * 1e9)
        eff = kernel_s / (kernel_s + self.launch_overhead_us * 1e-6)
        return compute * eff

    def concurrency(self, mode: str, length: int) -> int:
        """How many kernels can be resident at once (§4.5.2).

        Bounded by the 128-resident-grid limit and by global memory:
        a 32 kbp path-mode pair needs 2 GB, so only 8 kernels fit —
        the paper's example.
        """
        per_pair = working_set_bytes(length, mode, concurrent=1)
        # Each stream also owns a slice of the memory pool for I/O buffers.
        per_pair = max(per_pair, 1)
        mem_limit = max(1, self.global_mem_bytes // per_pair)
        return int(min(self.max_resident_grids, mem_limit))

    def stream_speedup(self, n_streams: int, mode: str) -> float:
        """Aggregate speedup over one stream (Figure 7).

        Linear to 64 streams; past 64 each extra stream adds only the
        calibrated marginal fraction (scheduler/copy-engine contention).
        """
        if n_streams < 1:
            raise MachineModelError(f"need >= 1 stream: {n_streams}")
        n = min(n_streams, self.max_resident_grids)
        if n <= 64:
            return float(n)
        return 64.0 + (n - 64) * self.stream_marginal[mode]

    def micro_gcups(
        self, kernel: str, mode: str, length: int, n_streams: int = 128
    ) -> float:
        """Modeled aggregate GCUPS with concurrent streams (Fig. 7/8)."""
        single = self.kernel_gcups_single(kernel, mode, length)
        n = min(n_streams, self.concurrency(mode, length))
        return single * self.stream_speedup(n, mode)


#: The paper's GPU.
TESLA_V100 = GpuModel()
