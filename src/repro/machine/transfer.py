"""Host↔device transfer model: pinned vs pageable memory (§4.5.2).

manymap "allocate[s] pinned memory on the host side to achieve the
highest bandwidth". The model prices a transfer as latency + size/BW,
with the published PCIe 3.0 x16 characteristics: pinned (DMA-able)
buffers stream at ~12 GB/s; pageable buffers bounce through a staging
copy at roughly half that, plus a higher per-call overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineModelError


@dataclass(frozen=True)
class TransferModel:
    """PCIe transfer cost model."""

    pinned_gbps: float = 12.0
    pageable_gbps: float = 6.0
    pinned_latency_us: float = 8.0
    pageable_latency_us: float = 20.0

    def __post_init__(self) -> None:
        if min(self.pinned_gbps, self.pageable_gbps) <= 0:
            raise MachineModelError("non-positive transfer bandwidth")
        if self.pageable_gbps > self.pinned_gbps:
            raise MachineModelError("pageable cannot beat pinned bandwidth")

    def seconds(self, n_bytes: int, pinned: bool = True) -> float:
        """One-way transfer time for ``n_bytes``."""
        if n_bytes < 0:
            raise MachineModelError(f"negative transfer size {n_bytes}")
        bw = self.pinned_gbps if pinned else self.pageable_gbps
        lat = self.pinned_latency_us if pinned else self.pageable_latency_us
        return lat * 1e-6 + n_bytes / (bw * 1e9)

    def batch_seconds(
        self, n_bytes_each: int, n_transfers: int, pinned: bool = True
    ) -> float:
        """Many small transfers — the aligner's per-pair pattern.

        The latency term dominates for small batches, which is exactly
        why the paper pairs pinned memory with a reusable memory pool
        (fewer, larger transfers).
        """
        if n_transfers < 0:
            raise MachineModelError(f"negative transfer count {n_transfers}")
        return n_transfers * self.seconds(n_bytes_each, pinned)


#: The V100 host link in the paper's gpu1 server.
PCIE3_X16 = TransferModel()
