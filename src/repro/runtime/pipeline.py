"""Discrete-event simulation of the batch pipeline (§4.4.4).

minimap2 overlaps I/O and compute with **two** pipeline threads that
alternate over batches: while one thread aligns batch *i*, the other
loads batch *i+1* and writes batch *i-1* — so input and output share a
thread and cannot overlap each other. manymap adds a **third** thread
dedicated to I/O (plus the reserved core from the affinity policy), so
load, compute, and output all overlap.

The simulator is exact for both structures: each batch must be loaded
before computed before written, each resource processes one batch at a
time, in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import SchedulerError


@dataclass(frozen=True)
class PipelineStageCost:
    """Per-batch stage durations in seconds."""

    load: float
    compute: float
    output: float

    def __post_init__(self) -> None:
        if min(self.load, self.compute, self.output) < 0:
            raise SchedulerError(f"negative stage cost: {self}")


def simulate_pipeline(
    batches: Sequence[PipelineStageCost], threads: int = 3
) -> float:
    """Makespan of the batch pipeline with 1, 2, or 3 pipeline threads.

    * 1 thread — fully serial: sum of all stage costs.
    * 2 threads — minimap2: input and output share one thread, compute
      owns the other; batch *i*'s compute can start once loaded, and the
      I/O thread serializes (output of *i-1*, then load of *i+1*).
    * 3 threads — manymap: dedicated loader, computer, writer.
    """
    if threads not in (1, 2, 3):
        raise SchedulerError(f"pipeline supports 1-3 threads: {threads}")
    n = len(batches)
    if n == 0:
        return 0.0
    if threads == 1:
        return sum(b.load + b.compute + b.output for b in batches)

    if threads == 3:
        load_done = [0.0] * n
        comp_done = [0.0] * n
        out_done = [0.0] * n
        t_load = t_comp = t_out = 0.0
        for i, b in enumerate(batches):
            t_load = t_load + b.load
            load_done[i] = t_load
            t_comp = max(t_comp, load_done[i]) + b.compute
            comp_done[i] = t_comp
            t_out = max(t_out, comp_done[i]) + b.output
            out_done[i] = t_out
        return out_done[-1]

    # threads == 2: one I/O thread (loads and outputs, FIFO by batch
    # dependency order), one compute thread.
    io_free = 0.0
    comp_free = 0.0
    load_done = [0.0] * n
    comp_done = [0.0] * n
    written = 0.0
    # The I/O thread interleaves: load 0, (load i+1 | output i-1)...
    # We process events greedily: always output the oldest computed batch
    # before loading further (minimap2's round-robin behaves this way).
    next_load = 0
    next_out = 0
    while next_out < n:
        can_out = next_out < n and comp_done[next_out] > 0
        if can_out and (next_load >= n or comp_done[next_out] <= io_free or next_load > next_out + 1):
            io_free = max(io_free, comp_done[next_out]) + batches[next_out].output
            next_out += 1
        elif next_load < n:
            io_free = io_free + batches[next_load].load
            load_done[next_load] = io_free
            # Compute can proceed as soon as its input is loaded.
            comp_free = max(comp_free, load_done[next_load]) + batches[next_load].compute
            comp_done[next_load] = comp_free
            next_load += 1
        else:
            # Nothing to load; wait for compute to finish the next batch.
            io_free = max(io_free, comp_done[next_out]) + batches[next_out].output
            next_out += 1
    return io_free
