"""Write-ahead journal: crash-safe checkpoint/resume for mapping runs.

A mapping run over an hg38-scale corpus is hours of work; a ``kill
-9``, OOM kill, or node loss used to throw all of it away and could
leave a truncated PAF behind that looked complete. This module makes
the committed prefix of a run durable and exactly recoverable, so
``manymap map --run-dir DIR`` can be killed at *any* instant and
``manymap resume DIR`` continues from the last commit, producing
byte-identical output to an uninterrupted run.

Run-dir layout::

    DIR/journal.jsonl   append-only write-ahead journal
    DIR/output.paf      the mapped output (PAF or SAM), committed prefix

Journal format — one JSON object per line, each carrying a ``crc``
over its own canonical serialization (so a torn tail is detected, not
trusted):

``run_start``
    the header: journal format version, run id, ``commit_reads``
    cadence, and the run *identity* — every option that affects output
    bytes (reference/reads paths, preset, engine, cigar, sam). Resume
    refuses an identity mismatch; backend/kernel/workers may change
    freely because output is backend-independent (the PR-1 invariant).
``commit``
    the durability heartbeat: after ``commit_reads`` reads' output has
    been *written and fsynced*, one fsynced record of ``(reads,
    offset, crc32)`` — cumulative reads emitted, output byte length,
    and the rolling CRC-32 of that prefix.
``note``
    unfsynced breadcrumbs mirroring the event bus (chunk dispatched/
    done, pool respawns, faults) — diagnostic timeline, never trusted
    for recovery.
``resume`` / ``complete``
    a resume appends where it picked up (and how many torn bytes it
    truncated); a clean finish appends the final tally.

Commit protocol (WAL ordering): output bytes are flushed and fsynced
*first*, then the commit record is appended and fsynced. A crash
between the two loses only the record, never the bytes — recovery
verifies each journaled ``(offset, crc32)`` against the actual file
with one incremental CRC pass, truncates the output to the last commit
that checks out, and re-maps from that read count. Reads are free to
re-map after a crash (mapping is deterministic and side-effect free);
output bytes are never re-trusted without their CRC.

The output choke point is :meth:`RunJournal.write_text` /
:meth:`RunJournal.read_done`: every backend (serial / threads /
processes / streaming) emits its in-input-order PAF lines through
:func:`repro.api.map_file`'s ``emit`` callback, so journaling that one
sink covers all four. Chaos points (:mod:`repro.testing.chaos`) are
planted at every write/fsync step; the chaos harness SIGKILLs there
and asserts resume identity.
"""

from __future__ import annotations

import json
import os
import time
import uuid
import zlib
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError

__all__ = [
    "JournalError",
    "JournalFile",
    "RunJournal",
    "journal_events",
    "JOURNAL_NAME",
    "OUTPUT_NAME",
    "JOURNAL_VERSION",
]

#: journal format version, recorded in ``run_start`` and checked on
#: resume so an old journal is rejected loudly, not misparsed.
JOURNAL_VERSION = 1

JOURNAL_NAME = "journal.jsonl"
OUTPUT_NAME = "output.paf"

#: event-bus kinds mirrored into the journal as ``note`` records.
MIRRORED_EVENTS = ("chunk.dispatched", "chunk.done", "pool.respawn", "fault")


class JournalError(ReproError):
    """A journal could not be created, parsed, or safely resumed."""


def _chaos(point: str, fh=None, payload=None) -> None:
    """Chaos-injection hook; one attribute check when chaos is off."""
    from ..testing import chaos

    if chaos.ARMED:
        chaos.chaos_point(point, fh=fh, payload=payload)


def _canonical(record: Dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_record(record: Dict) -> bytes:
    """Serialize one journal record with its self-CRC, newline included."""
    crc = zlib.crc32(_canonical(record).encode("utf-8"))
    return (_canonical({**record, "crc": crc}) + "\n").encode("utf-8")


def decode_record(line: bytes) -> Optional[Dict]:
    """Parse + verify one journal line; ``None`` if torn or corrupt."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    claimed = record.pop("crc")
    if zlib.crc32(_canonical(record).encode("utf-8")) != claimed:
        return None
    return record


class JournalFile:
    """Append-only JSONL with per-record CRCs and torn-tail replay.

    The generic layer under :class:`RunJournal` and the serve request
    journal: ``append`` optionally fsyncs (commit records must be
    durable; notes need not be), ``replay`` returns every verifiable
    record and stops at the first corrupt line — a torn tail from a
    mid-append crash is expected, silently-skipping past it is not
    (anything after a torn record has unknown provenance).
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._fh = open(self.path, "ab")

    def append(
        self,
        record: Dict,
        sync: bool = False,
        fsync_point: str = "journal.fsync",
    ) -> None:
        data = encode_record(record)
        _chaos("journal.append", fh=self._fh, payload=data)
        self._fh.write(data)
        self._fh.flush()
        if sync:
            _chaos(fsync_point, fh=self._fh)
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    @staticmethod
    def replay(path: str) -> Tuple[List[Dict], int]:
        """All verifiable records, plus how many tail lines were torn."""
        records: List[Dict] = []
        torn = 0
        try:
            fh = open(path, "rb")
        except FileNotFoundError:
            return records, torn
        with fh:
            for raw in fh:
                record = decode_record(raw.rstrip(b"\n"))
                if record is None:
                    torn += 1
                    break  # nothing after a torn record is trustworthy
                records.append(record)
        return records, torn


class RunJournal:
    """One run directory's journal + committed output, as an object.

    Fresh run: creates ``DIR``, writes the ``run_start`` header, opens
    ``output.paf`` at offset 0. Resume: replays the journal, checks
    the identity, verifies the last durable commit against the output
    file byte-for-byte (incremental CRC), truncates the torn suffix,
    and exposes ``reads_done`` so the caller can skip exactly that
    many input reads. Either way the caller then streams output
    through :meth:`write_text` + :meth:`read_done` and finishes with
    :meth:`complete`.
    """

    def __init__(
        self,
        run_dir: str,
        *,
        identity: Dict,
        commit_reads: int = 256,
        resume: bool = False,
    ) -> None:
        if commit_reads < 1:
            raise JournalError(f"commit_reads must be >= 1: {commit_reads}")
        self.run_dir = os.fspath(run_dir)
        self.journal_path = os.path.join(self.run_dir, JOURNAL_NAME)
        self.output_path = os.path.join(self.run_dir, OUTPUT_NAME)
        self.identity = dict(identity)
        self.commit_reads = int(commit_reads)
        self.reads_done = 0
        self.offset = 0
        self.crc = 0
        self.resumed = False
        self.truncated_bytes = 0
        self.counters: Dict[str, int] = {
            "journal.commits": 0,
            "journal.notes": 0,
            "journal.resumes": 0,
            "journal.reads_skipped": 0,
            "journal.truncated_bytes": 0,
        }
        self._completed = False
        self._last_commit = (0, 0)  # (reads, offset) last made durable

        os.makedirs(self.run_dir, exist_ok=True)
        exists = os.path.exists(self.journal_path)
        if exists and not resume:
            raise JournalError(
                f"{self.run_dir!r} already holds a journal; "
                f"use --resume (or `manymap resume`) to continue it, "
                f"or point --run-dir at a fresh directory"
            )
        if not exists and resume:
            raise JournalError(
                f"nothing to resume: no {JOURNAL_NAME} in {self.run_dir!r}"
            )

        if exists:
            self._recover()
        self._journal = JournalFile(self.journal_path)
        if not exists:
            self._journal.append(
                {
                    "t": "run_start",
                    "v": JOURNAL_VERSION,
                    "run_id": uuid.uuid4().hex[:12],
                    "ts": time.time(),
                    "commit_reads": self.commit_reads,
                    "identity": self.identity,
                },
                sync=True,
            )
        else:
            self.resumed = True
            self.counters["journal.resumes"] = 1
            self.counters["journal.reads_skipped"] = self.reads_done
            self.counters["journal.truncated_bytes"] = self.truncated_bytes
            self._journal.append(
                {
                    "t": "resume",
                    "ts": time.time(),
                    "reads": self.reads_done,
                    "offset": self.offset,
                    "truncated": self.truncated_bytes,
                },
                sync=True,
            )
        # After a resume the file was truncated to ``offset``; append
        # mode therefore continues exactly at the committed prefix.
        self._out = open(self.output_path, "ab")
        self._last_commit = (self.reads_done, self.offset)

    # -- recovery ------------------------------------------------------ #

    @staticmethod
    def read_header(run_dir: str) -> Dict:
        """The ``run_start`` record of a run dir (for `resume` CLIs)."""
        path = os.path.join(os.fspath(run_dir), JOURNAL_NAME)
        records, _ = JournalFile.replay(path)
        if not records or records[0].get("t") != "run_start":
            raise JournalError(
                f"{path!r} has no valid run_start header — not a run "
                f"journal (or its first record is torn)"
            )
        return records[0]

    def _recover(self) -> None:
        records, torn = JournalFile.replay(self.journal_path)
        if not records or records[0].get("t") != "run_start":
            raise JournalError(
                f"{self.journal_path!r} has no valid run_start header; "
                f"cannot resume"
            )
        header = records[0]
        if header.get("v") != JOURNAL_VERSION:
            raise JournalError(
                f"journal version {header.get('v')!r} != "
                f"{JOURNAL_VERSION} — refusing to resume"
            )
        theirs = header.get("identity") or {}
        for key, want in self.identity.items():
            have = theirs.get(key)
            if have != want:
                raise JournalError(
                    f"resume identity mismatch on {key!r}: journal has "
                    f"{have!r}, this run has {want!r} — output would "
                    f"not be byte-identical; start a fresh run dir"
                )
        commits = [
            r for r in records if r.get("t") in ("commit", "complete")
        ]
        self.reads_done, self.offset, self.crc = self._verify_commits(
            commits
        )
        self._truncate_output()

    def _verify_commits(
        self, commits: List[Dict]
    ) -> Tuple[int, int, int]:
        """The last journaled commit the output file actually satisfies.

        One incremental CRC pass over the output: for each commit (in
        append order, offsets monotonic) the rolling CRC at its offset
        must equal its ``crc32``. The first commit that fails — short
        file, torn bytes, anything — invalidates it and everything
        after it.
        """
        state = (0, 0, 0)
        if not commits:
            return state
        try:
            fh = open(self.output_path, "rb")
        except FileNotFoundError:
            return state
        with fh:
            pos = 0
            crc = 0
            for rec in commits:
                target = rec.get("offset", -1)
                reads = rec.get("reads", -1)
                want = rec.get("crc32")
                if target < pos or reads < 0 or want is None:
                    break  # malformed or non-monotonic: stop trusting
                chunk = fh.read(target - pos)
                if len(chunk) != target - pos:
                    break  # output shorter than journaled: not durable
                crc = zlib.crc32(chunk, crc)
                pos = target
                if crc != want:
                    break  # bytes differ from what was committed
                state = (reads, pos, crc)
        return state

    def _truncate_output(self) -> None:
        """Drop uncommitted output bytes; records how many were torn."""
        try:
            size = os.path.getsize(self.output_path)
        except OSError:
            size = 0
        self.truncated_bytes = max(0, size - self.offset)
        with open(self.output_path, "ab") as fh:
            fh.truncate(self.offset)
            fh.flush()
            os.fsync(fh.fileno())

    # -- the output sink ----------------------------------------------- #

    @property
    def output_handle(self):
        """The (binary, append-mode) committed-output file handle."""
        return self._out

    def write_text(self, text: str) -> None:
        """Append output text; tracked by the rolling CRC and offset."""
        data = text.encode("utf-8")
        _chaos("output.write", fh=self._out, payload=data)
        self._out.write(data)
        self.offset += len(data)
        self.crc = zlib.crc32(data, self.crc)

    def read_done(self) -> None:
        """One read's output is fully written; commit on cadence."""
        self.reads_done += 1
        if self.reads_done % self.commit_reads == 0:
            self.commit()

    def commit(self) -> None:
        """Make the current output prefix durable (WAL ordering).

        Output first: flush + fsync the data so the bytes named by the
        commit record exist on disk before the record does. Then the
        fsynced commit record. A crash between the two only loses the
        record — those reads re-map on resume, output stays identical.
        """
        if (self.reads_done, self.offset) == self._last_commit:
            return  # nothing new since the last commit
        self._out.flush()
        _chaos("output.fsync", fh=self._out)
        os.fsync(self._out.fileno())
        self._journal.append(
            {
                "t": "commit",
                "reads": self.reads_done,
                "offset": self.offset,
                "crc32": self.crc,
            },
            sync=True,
            fsync_point="journal.commit.fsync",
        )
        self._last_commit = (self.reads_done, self.offset)
        self.counters["journal.commits"] += 1

    def note(self, event: str, **data) -> None:
        """An unfsynced diagnostic breadcrumb (chunk lifecycle etc.)."""
        try:
            self._journal.append({"t": "note", "event": event, **data})
        except ValueError:
            return  # journal already closed (late event); drop the note
        self.counters["journal.notes"] += 1

    def complete(self) -> None:
        """Final commit + ``complete`` record; closes both files."""
        if self._completed:
            return
        self.commit()
        self._journal.append(
            {
                "t": "complete",
                "ts": time.time(),
                "reads": self.reads_done,
                "offset": self.offset,
                "crc32": self.crc,
            },
            sync=True,
            fsync_point="journal.commit.fsync",
        )
        self._completed = True
        self.close()

    def close(self) -> None:
        """Close file handles without committing (crash-equivalent)."""
        try:
            self._out.close()
        except OSError:
            pass
        self._journal.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # A clean exit is NOT auto-completed: completion is an explicit
        # statement that every input read was emitted. On error, just
        # release handles — the journal already holds the last commit.
        self.close()

    def summary(self) -> Dict:
        """The ``journal`` manifest object (schema v8)."""
        return {
            "run_dir": self.run_dir,
            "commit_reads": self.commit_reads,
            "commits": self.counters["journal.commits"],
            "notes": self.counters["journal.notes"],
            "resumed": self.resumed,
            "reads_skipped": self.counters["journal.reads_skipped"],
            "truncated_bytes": self.counters["journal.truncated_bytes"],
            "reads_done": self.reads_done,
            "output_bytes": self.offset,
            "output_crc32": self.crc,
            "completed": self._completed,
        }


@contextmanager
def journal_events(journal: Optional[RunJournal]):
    """Mirror chunk-lifecycle events into ``journal`` for the duration.

    Subscribes a listener on the global event bus that appends a
    ``note`` record for every :data:`MIRRORED_EVENTS` kind — the
    journal doubles as a per-run decision timeline (which chunks were
    in flight at the crash, whether a pool respawned first). No-op
    when ``journal`` is ``None``.
    """
    if journal is None:
        yield
        return
    from ..obs.events import EVENTS

    def listener(rec: Dict) -> None:
        kind = rec.get("kind")
        if kind in MIRRORED_EVENTS:
            data = {
                k: v
                for k, v in rec.items()
                if k not in ("record", "kind", "ts", "seq")
            }
            journal.note(kind, **data)

    EVENTS.add_listener(listener)
    try:
        yield
    finally:
        EVENTS.remove_listener(listener)
