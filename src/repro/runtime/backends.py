"""Execution-backend registry: the single source of truth.

Every place that needs to know which mapping backends exist — the
legacy :data:`repro.runtime.parallel.BACKENDS` tuple, the CLI's
``--backend`` choices, error messages, and the
:func:`repro.api.map_reads` dispatch — reads this registry, so adding
a backend is a one-file change: call :func:`register_backend` (or add
one entry to ``_BUILTINS`` here) and every surface picks it up.

A backend is a factory with the uniform signature::

    factory(aligner, reads, options, profile, telemetry)
        -> List[List[Alignment]]

where ``options`` is a :class:`repro.api.MapOptions` (any object with
its attributes works). Results are always in input order and
byte-identical across backends for the same read set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..errors import SchedulerError

__all__ = [
    "BackendSpec",
    "register_backend",
    "get_backend",
    "backend_names",
    "dispatch",
]


@dataclass(frozen=True)
class BackendSpec:
    """One registered execution backend."""

    name: str
    factory: Callable
    description: str = ""


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(
    name: str,
    factory: Callable,
    description: str = "",
    replace: bool = False,
) -> BackendSpec:
    """Register a backend factory under ``name``.

    Raises :class:`SchedulerError` on duplicate names unless
    ``replace=True`` (tests use replace to shim factories).
    """
    if not replace and name in _REGISTRY:
        raise SchedulerError(f"backend {name!r} is already registered")
    spec = BackendSpec(name=name, factory=factory, description=description)
    _REGISTRY[name] = spec
    return spec


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> BackendSpec:
    """Look up a backend; the error message lists what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SchedulerError(
            f"unknown backend {name!r}; expected one of {backend_names()}"
        ) from None


def dispatch(aligner, reads, options, profile=None, telemetry=None):
    """Run ``reads`` through the backend named by ``options.backend``."""
    return get_backend(options.backend).factory(
        aligner, reads, options, profile, telemetry
    )


# --------------------------------------------------------------------- #
# Built-in backends. Factories import their implementation lazily so
# importing the registry (e.g. for --backend choices) stays cheap and
# cycle-free.


def _fault_policy(options):
    """The options' fault policy; tolerant of plain options objects."""
    return getattr(options, "fault_policy", None)


def _serial(aligner, reads, options, profile, telemetry):
    from .procpool import _map_serial

    if options.workers < 1:
        raise SchedulerError(f"need >= 1 worker: {options.workers}")
    return _map_serial(
        aligner,
        list(reads),
        options.with_cigar,
        profile,
        telemetry,
        _fault_policy(options),
    )


def _threads(aligner, reads, options, profile, telemetry):
    from .parallel import parallel_map_reads

    return parallel_map_reads(
        aligner,
        reads,
        threads=options.workers,
        with_cigar=options.with_cigar,
        longest_first=options.longest_first,
        chunk_reads=options.chunk_reads,
        chunk_bases=options.chunk_bases,
        profile=profile,
        telemetry=telemetry,
        fault_policy=_fault_policy(options),
    )


def _processes(aligner, reads, options, profile, telemetry):
    from .procpool import _map_reads_processes

    return _map_reads_processes(
        aligner,
        reads,
        processes=options.workers,
        with_cigar=options.with_cigar,
        longest_first=options.longest_first,
        chunk_reads=options.chunk_reads,
        chunk_bases=options.chunk_bases,
        index_path=options.index_path,
        profile=profile,
        telemetry=telemetry,
        fault_policy=_fault_policy(options),
    )


def _streaming(aligner, reads, options, profile, telemetry):
    from .streaming import map_reads_streaming

    return map_reads_streaming(
        aligner,
        reads,
        workers=options.workers,
        use_processes=options.stream_processes,
        with_cigar=options.with_cigar,
        longest_first=options.longest_first,
        chunk_reads=options.chunk_reads,
        chunk_bases=options.chunk_bases,
        window_reads=options.window_reads,
        queue_chunks=options.queue_chunks,
        index_path=options.index_path,
        profile=profile,
        telemetry=telemetry,
        fault_policy=_fault_policy(options),
    )


_BUILTINS = (
    ("serial", _serial, "single-threaded loop (profiling baseline)"),
    ("threads", _threads, "thread pool; overlaps inside NumPy kernels"),
    ("processes", _processes, "process pool over an mmap-shared index"),
    (
        "streaming",
        _streaming,
        "overlapped read/compute/write pipeline over bounded queues",
    ),
)

for _name, _factory, _desc in _BUILTINS:
    register_backend(_name, _factory, _desc)
