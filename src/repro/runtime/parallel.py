"""Backend-selectable batch mapping: serial, threads, or processes.

The paper's macro runs use all hardware threads (40 on CPU, 256 on
KNL). Under CPython the thread backend overlaps only to the extent the
work sits inside NumPy kernels (which release the GIL); the process
backend (:mod:`repro.runtime.procpool`) sidesteps the GIL entirely by
running one full aligner per core over an mmap-shared index. All three
backends produce byte-identical results for the same read set — the
*ordering guarantees* (results independent of worker count and
scheduling) are absolute — and identical telemetry counter totals:
work counters accumulate in the process-global registry (sharded per
thread), and the process backend ships each worker's counter deltas and
trace spans home with its results.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from threading import Lock
from typing import Dict, List, Optional, Sequence

from ..core.aligner import Aligner
from ..core.alignment import Alignment
from ..errors import SchedulerError
from ..obs.telemetry import Telemetry, read_span
from ..seq.records import SeqRecord
from .backends import backend_names

#: Names accepted by the ``backend`` parameter — mirrors the backend
#: registry (:mod:`repro.runtime.backends`), the single source of truth.
BACKENDS = backend_names()


def parallel_map_reads(
    aligner: Aligner,
    reads: Sequence[SeqRecord],
    threads: int = 4,
    with_cigar: bool = True,
    longest_first: bool = True,
    chunk_reads: int = 32,
    chunk_bases: int = 1_000_000,
    profile=None,
    telemetry: Optional[Telemetry] = None,
    fault_policy=None,
) -> List[List[Alignment]]:
    """Map reads with a thread pool; results keep the input order.

    ``longest_first=True`` submits long reads first (manymap's §4.4.4
    load-balance fix) without affecting output order. On the first
    worker exception, not-yet-started reads are cancelled rather than
    drained, and the error is re-raised as a :class:`SchedulerError`
    naming the failing read.

    When the aligner can pool plans (no fault policy in force), work is
    submitted as size-bounded chunks and each chunk's base-level DP runs
    through one pooled :func:`~repro.runtime.faults.map_chunk_reads`
    call — the cross-read wavefront batches are also where this backend
    overlaps best, since big NumPy kernels release the GIL. Duck-typed
    aligners without ``align_plans`` (and any run with a fault policy)
    keep the per-read submission path.

    Counters increment into per-thread shards of the global registry,
    so no aggregation step is needed; trace spans (one per read, tagged
    with the pool thread's identity) are collected under a lock.
    """
    if threads < 1:
        raise SchedulerError(f"need >= 1 thread: {threads}")
    reads = list(reads)
    if threads == 1 or len(reads) <= 1:
        from .procpool import _map_serial

        return _map_serial(
            aligner, reads, with_cigar, profile, telemetry, fault_policy
        )

    from .faults import map_chunk_reads, map_one_read

    results: List[Optional[List[Alignment]]] = [None] * len(reads)
    stage_totals = {"Seed & Chain": 0.0, "Align": 0.0}
    stage_lock = Lock()
    trace = telemetry is not None and telemetry.trace
    spans: List[Dict] = []
    faults: List = []

    pooling = fault_policy is None and callable(
        getattr(aligner, "align_plans", None)
    )

    def work(i: int) -> None:
        alns, seed_s, align_s, fault = map_one_read(
            aligner, reads[i], with_cigar, fault_policy
        )
        results[i] = alns
        with stage_lock:
            stage_totals["Seed & Chain"] += seed_s
            stage_totals["Align"] += align_s
            if fault is not None:
                faults.append(fault)
            if trace and (fault is None or fault.action == "fallback"):
                spans.append(
                    read_span(reads[i].name, len(reads[i]), seed_s, align_s)
                )

    def work_chunk(idxs) -> None:
        sub = [reads[i] for i in idxs]
        try:
            tuples = map_chunk_reads(aligner, sub, with_cigar, None)
        except Exception:
            # Deterministic mapping: the per-read re-run reproduces the
            # failure on the culprit read so the error can name it.
            tuples = None
        if tuples is None:
            tuples = []
            for read in sub:
                try:
                    tuples.append(map_one_read(aligner, read, with_cigar, None))
                except Exception as exc:
                    raise SchedulerError(
                        f"mapping failed for read {read.name!r}: {exc!r}"
                    ) from exc
        with stage_lock:
            for i, (alns, seed_s, align_s, _fault) in zip(idxs, tuples):
                results[i] = alns
                stage_totals["Seed & Chain"] += seed_s
                stage_totals["Align"] += align_s
                if trace:
                    spans.append(
                        read_span(reads[i].name, len(reads[i]), seed_s, align_s)
                    )

    with ThreadPoolExecutor(max_workers=threads) as pool:
        if pooling:
            from .procpool import plan_chunks

            chunks = plan_chunks(
                reads,
                chunk_reads=chunk_reads,
                chunk_bases=chunk_bases,
                longest_first=longest_first,
            )
            futures = {
                pool.submit(work_chunk, c.indices): c.indices[0]
                for c in chunks
            }
        else:
            order = list(range(len(reads)))
            if longest_first:
                order.sort(key=lambda i: -len(reads[i]))
            futures = {pool.submit(work, i): i for i in order}
        done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        failed = next(
            (f for f in done if f.exception() is not None), None
        )
        if failed is not None:
            for f in pending:
                f.cancel()
            exc = failed.exception()
            if pooling and isinstance(exc, SchedulerError):
                raise exc  # chunk path: already names the read
            raise SchedulerError(
                f"mapping failed for read "
                f"{reads[futures[failed]].name!r}: {exc!r}"
            ) from exc
    if profile is not None:
        profile.merge(stage_totals)
    if telemetry is not None:
        telemetry.extend(spans)
        telemetry.record_faults(faults)
    return results  # type: ignore[return-value]
