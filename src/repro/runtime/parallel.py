"""Multi-threaded read mapping (the macro benchmark's execution mode).

The paper's macro runs use all hardware threads (40 on CPU, 256 on
KNL). Under CPython, mapping threads overlap to the extent the work
sits inside NumPy kernels (which release the GIL); the speedup is
therefore partial but real, and the *ordering guarantees* (results
independent of thread count) are absolute.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from ..core.aligner import Aligner
from ..core.alignment import Alignment
from ..errors import SchedulerError
from ..seq.records import SeqRecord
from .batch import sort_longest_first


def parallel_map_reads(
    aligner: Aligner,
    reads: Sequence[SeqRecord],
    threads: int = 4,
    with_cigar: bool = True,
    longest_first: bool = True,
) -> List[List[Alignment]]:
    """Map reads with a thread pool; results keep the input order.

    ``longest_first=True`` submits long reads first (manymap's §4.4.4
    load-balance fix) without affecting output order.
    """
    if threads < 1:
        raise SchedulerError(f"need >= 1 thread: {threads}")
    reads = list(reads)
    if threads == 1 or len(reads) <= 1:
        return [aligner.map_read(r, with_cigar=with_cigar) for r in reads]

    order = list(range(len(reads)))
    if longest_first:
        order.sort(key=lambda i: -len(reads[i]))
    results: List[Optional[List[Alignment]]] = [None] * len(reads)

    def work(i: int) -> None:
        results[i] = aligner.map_read(reads[i], with_cigar=with_cigar)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(work, i) for i in order]
        for f in futures:
            f.result()  # surface exceptions
    return results  # type: ignore[return-value]
