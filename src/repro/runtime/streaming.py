"""Streaming overlapped-pipeline backend: read → compute → write (§4.4.4).

The paper's KNL macro runs hinge on a 3-thread overlapped pipeline plus
longest-read-first batching; minimap2's Table 2 profile shows what
happens without it (I/O serialized against compute). The batch backends
in :mod:`repro.runtime.parallel` inherit that limitation from their
input type — a fully materialized read list — so this module provides
the real producer–consumer pipeline:

* a **reader thread** drains any read *iterator* (e.g.
  :func:`repro.seq.fasta.iter_fasta` / ``iter_fastq``) into bounded
  chunk queues, so memory is constant in input size;
* **N compute workers** — plain threads, or threads proxying to a
  shared process pool that reuses :mod:`repro.runtime.procpool`'s
  mmap-shared index and per-chunk telemetry shipping;
* a **writer thread** reassembles per-read results in input order and
  streams them to a sink as soon as each read's turn comes.

Scheduling keeps the paper's longest-first batching benefit without
global ordering: reads are collected into a bounded look-ahead
*window*, each window is sorted longest-first and packed into
size-bounded chunks (LPT order within the window), and windows are
emitted in sequence. Output order is nevertheless exactly the input
order — the writer reorders by per-read sequence number — so the PAF
stream is byte-identical to the serial backend.

Backpressure comes from the bounded queues: a slow sink stalls the
writer, which fills the done queue, which stalls workers, which fills
the work queue, which stalls the reader. Queue depths and per-stage
stall seconds are recorded as :class:`~repro.obs.gauges.GaugeSet`
gauges (``stream.*``), which is how ``map --metrics`` shows the
Fig. 11 overlap story. On the first error anywhere, upstream stages
are cancelled (the reader stops producing, workers drain without
computing) and a :class:`~repro.errors.SchedulerError` naming the
failing read is raised after the pipeline unwinds cleanly.
"""

from __future__ import annotations

import os
import queue
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.aligner import Aligner
from ..core.alignment import Alignment
from ..errors import SchedulerError
from ..obs.counters import COUNTERS, counter_delta
from ..obs.events import EVENTS
from ..obs.gauges import GaugeSet
from ..obs.hist import HISTOGRAMS
from ..obs.telemetry import Telemetry, read_span
from ..seq.records import SeqRecord
from .faults import (
    FaultPolicy,
    FaultRecord,
    PoolSupervisor,
    map_chunk_reads,
    map_one_read,
)

__all__ = ["StreamStats", "stream_map", "map_reads_streaming"]

#: queue sentinel marking the end of the chunk stream (one per worker).
_END = object()

#: done-queue sentinel marking one worker's exit.
_WORKER_DONE = object()


@dataclass
class StreamStats:
    """What flowed through one :func:`stream_map` run.

    ``journal`` carries the run journal's summary when the run was
    durable (``MapOptions.run_dir``); ``None`` otherwise. ``tracing``
    carries the trace store's summary when request-scoped tracing was
    on (``MapOptions.tracing``); ``None`` otherwise.
    """

    n_reads: int = 0
    total_bases: int = 0
    n_mapped: int = 0
    n_alignments: int = 0
    n_chunks: int = 0
    n_windows: int = 0
    journal: Optional[Dict] = None
    tracing: Optional[Dict] = None


@dataclass
class _Shared:
    """State shared between the pipeline stages of one run."""

    stop: threading.Event = field(default_factory=threading.Event)
    errors: List[BaseException] = field(default_factory=list)
    error_lock: threading.Lock = field(default_factory=threading.Lock)

    def fail(self, exc: BaseException) -> None:
        """Record the first error and cancel upstream stages."""
        with self.error_lock:
            self.errors.append(exc)
        self.stop.set()


def _plan_window(
    window: List[Tuple[int, SeqRecord]],
    chunk_reads: int,
    chunk_bases: int,
    longest_first: bool,
) -> List[List[Tuple[int, SeqRecord]]]:
    """Pack one look-ahead window into size-bounded chunks.

    With ``longest_first`` the window is sorted by descending read
    length first, so chunks leave in LPT order — the §4.4.4 batching
    benefit, bounded to the window instead of the whole input.
    """
    items = list(window)
    if longest_first:
        items.sort(key=lambda sr: -len(sr[1]))
    chunks: List[List[Tuple[int, SeqRecord]]] = []
    cur: List[Tuple[int, SeqRecord]] = []
    acc = 0
    for seq, read in items:
        n = len(read)
        if cur and (len(cur) >= chunk_reads or acc + n > chunk_bases):
            chunks.append(cur)
            cur, acc = [], 0
        cur.append((seq, read))
        acc += n
    if cur:
        chunks.append(cur)
    return chunks


def _map_chunk_threaded(
    aligner: Aligner,
    chunk: List[Tuple[int, SeqRecord]],
    chunk_id: int,
    with_cigar: bool,
    trace: bool,
    policy: Optional[FaultPolicy] = None,
) -> Tuple[
    List[List[Alignment]],
    Dict[str, float],
    List[Dict],
    List[FaultRecord],
]:
    """Map one chunk in-process (thread-backed compute worker)."""
    stage_seconds = {"Seed & Chain": 0.0, "Align": 0.0}
    spans: List[Dict] = []
    out: List[List[Alignment]] = []
    faults: List[FaultRecord] = []
    reads = [read for _, read in chunk]
    try:
        pooled = map_chunk_reads(aligner, reads, with_cigar, policy)
    except Exception:
        # Deterministic mapping: the per-read loop below reproduces the
        # failure on the culprit read and names it.
        pooled = None
    if pooled is not None:
        for read, (alns, seed_s, align_s, fault) in zip(reads, pooled):
            stage_seconds["Seed & Chain"] += seed_s
            stage_seconds["Align"] += align_s
            if trace:
                spans.append(
                    read_span(
                        read.name, len(read), seed_s, align_s, chunk=chunk_id
                    )
                )
            out.append(alns)
        return out, stage_seconds, spans, faults
    for read in reads:
        try:
            alns, seed_s, align_s, fault = map_one_read(
                aligner, read, with_cigar, policy
            )
        except Exception as exc:
            raise SchedulerError(
                f"mapping failed for read {read.name!r}: {exc!r}"
            ) from exc
        stage_seconds["Seed & Chain"] += seed_s
        stage_seconds["Align"] += align_s
        if fault is not None:
            faults.append(fault)
        if trace and (fault is None or fault.action == "fallback"):
            spans.append(
                read_span(read.name, len(read), seed_s, align_s, chunk=chunk_id)
            )
        out.append(alns)
    return out, stage_seconds, spans, faults


def stream_map(
    aligner: Aligner,
    reads: Iterable[SeqRecord],
    emit: Optional[Callable[[SeqRecord, List[Alignment]], None]] = None,
    *,
    workers: int = 1,
    use_processes: bool = False,
    with_cigar: bool = True,
    longest_first: bool = True,
    chunk_reads: int = 32,
    chunk_bases: int = 1_000_000,
    window_reads: int = 256,
    window_bases: Optional[int] = None,
    queue_chunks: int = 8,
    index_path: Optional[str] = None,
    mp_context=None,
    profile=None,
    telemetry: Optional[Telemetry] = None,
    fault_policy: Optional[FaultPolicy] = None,
) -> StreamStats:
    """Run the 3-stage overlapped pipeline over a read iterable.

    ``emit(read, alignments)`` is called exactly once per input read,
    in input order, as soon as that read's results are available —
    stream PAF/SAM from it and peak memory stays bounded by the queue
    capacities regardless of input size. ``None`` discards results
    (useful for benchmarking the pipeline itself).

    ``workers`` compute workers run as threads; with
    ``use_processes=True`` each worker thread proxies its chunks to a
    shared process pool whose workers rebuild the aligner over the
    ``index_path`` file in ``mmap`` mode (serialized to a temporary
    file when ``None``), exactly like the batch process backend.

    ``window_reads`` / ``window_bases`` bound the longest-first
    look-ahead window; ``queue_chunks`` bounds each inter-stage queue
    (backpressure). ``profile`` receives Load Query / Seed & Chain /
    Align / Output stage seconds (the middle two as aggregate worker
    seconds); ``telemetry`` collects trace spans and the ``stream.*``
    queue-depth/stall gauges.

    Raises :class:`SchedulerError` naming the failing read on the
    first worker error; the reader stops producing and in-flight work
    is drained, never emitted. A ``KeyboardInterrupt`` raised anywhere
    in the pipeline (source, sink, or compute) unwinds the same way —
    threads join, queues drain — and is then re-raised *as is*, never
    wrapped. With a recovering ``fault_policy``, failing reads are
    retried/quarantined in place and (on the process path) dead pool
    workers are respawned by a
    :class:`~repro.runtime.faults.PoolSupervisor`.
    """
    if workers < 1:
        raise SchedulerError(f"need >= 1 worker: {workers}")
    if queue_chunks < 1:
        raise SchedulerError(f"queue_chunks must be >= 1: {queue_chunks}")
    if window_reads < 1:
        raise SchedulerError(f"window_reads must be >= 1: {window_reads}")
    if chunk_reads < 1:
        raise SchedulerError(f"chunk_reads must be >= 1: {chunk_reads}")
    if chunk_bases < 1:
        raise SchedulerError(f"chunk_bases must be >= 1: {chunk_bases}")
    if window_bases is None:
        window_bases = chunk_bases * 8

    gauges = telemetry.gauges if telemetry is not None else GaugeSet()
    trace = telemetry is not None and telemetry.trace
    shared = _Shared()
    stats = StreamStats()
    # (chunk_id, [(seq, read), ...]) or _END
    work_q: "queue.Queue" = queue.Queue(queue_chunks)
    # (chunk_id, chunk, results, stage_seconds, delta, hist_d, spans,
    # faults), _WORKER_DONE, or nothing (errors go through shared.fail).
    done_q: "queue.Queue" = queue.Queue(queue_chunks)
    stage_totals: Dict[str, float] = {
        "Load Query": 0.0,
        "Seed & Chain": 0.0,
        "Align": 0.0,
        "Output": 0.0,
    }

    supervisor: Optional[PoolSupervisor] = None
    tmp_index: Optional[str] = None
    if use_processes:
        from concurrent.futures import ProcessPoolExecutor

        from ..index.store import save_index
        from ..obs.logs import current_level_name
        from .procpool import _init_worker, _map_chunk

        if index_path is None:
            fd, tmp_index = tempfile.mkstemp(
                suffix=".mmi", prefix="manymap-stream-idx-"
            )
            os.close(fd)
            save_index(aligner.index, tmp_index)
            index_path = tmp_index

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers,
                mp_context=mp_context,
                initializer=_init_worker,
                initargs=(
                    aligner.genome,
                    index_path,
                    aligner.config,
                    with_cigar,
                    trace,
                    current_level_name(),
                    fault_policy,
                    getattr(telemetry, "run_id", None),
                ),
            )

        supervisor = PoolSupervisor(
            make_pool, _map_chunk, fault_policy, telemetry
        )

    # ---------------------------------------------------------------- #
    # Stage 1: reader — drain the source into windowed, bounded chunks.

    def reader() -> None:
        next_chunk_id = 0
        window: List[Tuple[int, SeqRecord]] = []
        win_bases = 0

        def flush() -> None:
            nonlocal next_chunk_id, win_bases
            if not window:
                return
            stats.n_windows += 1
            for chunk in _plan_window(
                window, chunk_reads, chunk_bases, longest_first
            ):
                if shared.stop.is_set():
                    break
                t0 = time.perf_counter()
                work_q.put((next_chunk_id, chunk))
                gauges.add("stream.reader.stall_s", time.perf_counter() - t0)
                gauges.high_water("stream.work_queue.depth.max", work_q.qsize())
                next_chunk_id += 1
                stats.n_chunks += 1
            window.clear()
            win_bases = 0

        try:
            it = iter(reads)
            while not shared.stop.is_set():
                t0 = time.perf_counter()
                try:
                    read = next(it)
                except StopIteration:
                    stage_totals["Load Query"] += time.perf_counter() - t0
                    break
                stage_totals["Load Query"] += time.perf_counter() - t0
                window.append((stats.n_reads, read))
                stats.n_reads += 1
                stats.total_bases += len(read)
                win_bases += len(read)
                if len(window) >= window_reads or win_bases >= window_bases:
                    flush()
            flush()
        except BaseException as exc:  # noqa: BLE001 - pipeline boundary
            shared.fail(
                exc
                if isinstance(exc, (SchedulerError, KeyboardInterrupt))
                else SchedulerError(f"read source failed: {exc!r}")
            )
        finally:
            # Always hand every worker its end marker, even on error —
            # workers drain the queue, so these puts cannot deadlock.
            for _ in range(workers):
                work_q.put(_END)

    # ---------------------------------------------------------------- #
    # Stage 2: compute workers.

    def worker() -> None:
        try:
            while True:
                t0 = time.perf_counter()
                item = work_q.get()
                gauges.add("stream.compute.stall_s", time.perf_counter() - t0)
                if item is _END:
                    return
                if shared.stop.is_set():
                    continue  # cancelled: drain without computing
                chunk_id, chunk = item
                try:
                    if supervisor is not None:
                        payload = (
                            chunk_id,
                            tuple(seq for seq, _ in chunk),
                            [read for _, read in chunk],
                        )
                        # run_chunk recovers broken pools (respawn +
                        # re-dispatch + poison-read bisect) when the
                        # policy allows; otherwise it raises.
                        (
                            _,
                            results,
                            stage_seconds,
                            delta,
                            hist_d,
                            spans,
                            faults,
                        ) = supervisor.run_chunk(payload)
                    else:
                        results, stage_seconds, spans, faults = (
                            _map_chunk_threaded(
                                aligner,
                                chunk,
                                chunk_id,
                                with_cigar,
                                trace,
                                fault_policy,
                            )
                        )
                        delta = {}
                        # threads observe straight into the process
                        # registry; nothing to ship.
                        hist_d = {}
                except BaseException as exc:  # noqa: BLE001
                    shared.fail(
                        exc
                        if isinstance(exc, (SchedulerError, KeyboardInterrupt))
                        else SchedulerError(f"compute stage failed: {exc!r}")
                    )
                    continue
                done_q.put(
                    (
                        chunk_id,
                        chunk,
                        results,
                        stage_seconds,
                        delta,
                        hist_d,
                        spans,
                        faults,
                    )
                )
                gauges.high_water("stream.done_queue.depth.max", done_q.qsize())
        finally:
            done_q.put(_WORKER_DONE)

    # ---------------------------------------------------------------- #
    # Stage 3: writer — reassemble input order, stream to the sink.

    reorder: Dict[int, Tuple[SeqRecord, List[Alignment]]] = {}

    def writer() -> None:
        next_seq = 0
        workers_left = workers
        while workers_left:
            t0 = time.perf_counter()
            item = done_q.get()
            gauges.add("stream.writer.stall_s", time.perf_counter() - t0)
            if item is _WORKER_DONE:
                workers_left -= 1
                continue
            (
                chunk_id,
                chunk,
                results,
                stage_seconds,
                delta,
                hist_d,
                spans,
                faults,
            ) = item
            for stage, sec in stage_seconds.items():
                stage_totals[stage] = stage_totals.get(stage, 0.0) + sec
            if delta:
                COUNTERS.merge(delta)
            if hist_d:
                HISTOGRAMS.merge(hist_d)
            # Parent-side absorb point: worker deltas are live in the
            # registries from here, so /status and /metrics see them.
            EVENTS.emit("chunk.done", chunk=chunk_id, reads=len(chunk))
            if telemetry is not None:
                telemetry.extend(spans)
                telemetry.record_faults(faults)
            if shared.stop.is_set():
                continue  # cancelled: absorb telemetry, emit nothing
            for (seq, read), alns in zip(chunk, results):
                reorder[seq] = (read, alns)
            gauges.high_water("stream.reorder.reads.max", len(reorder))
            while next_seq in reorder:
                read, alns = reorder.pop(next_seq)
                next_seq += 1
                if alns:
                    stats.n_mapped += 1
                stats.n_alignments += len(alns)
                if emit is not None:
                    t0 = time.perf_counter()
                    try:
                        emit(read, alns)
                    except BaseException as exc:  # noqa: BLE001
                        shared.fail(
                            exc
                            if isinstance(exc, KeyboardInterrupt)
                            else SchedulerError(
                                f"output sink failed for read "
                                f"{read.name!r}: {exc!r}"
                            )
                        )
                        break
                    finally:
                        stage_totals["Output"] += time.perf_counter() - t0

    threads = [
        threading.Thread(target=reader, name="stream-reader", daemon=True),
        threading.Thread(target=writer, name="stream-writer", daemon=True),
    ] + [
        threading.Thread(target=worker, name=f"stream-compute-{i}", daemon=True)
        for i in range(workers)
    ]
    t_start = time.perf_counter()
    try:
        for t in threads:
            t.start()
        try:
            for t in threads:
                t.join()
        except KeyboardInterrupt:
            # Ctrl-C landed in the main thread mid-join: cancel the
            # pipeline, wait for every stage to unwind, then re-raise.
            shared.stop.set()
            for t in threads:
                t.join()
            raise
    finally:
        from ..testing import chaos as _chaos_mod

        if _chaos_mod.ARMED:
            _chaos_mod.chaos_point("stream.drain")
        if supervisor is not None:
            supervisor.shutdown()
        if tmp_index is not None:
            try:
                os.unlink(tmp_index)
            except OSError:
                pass

    gauges.set("stream.workers", workers)
    gauges.set("stream.chunks", stats.n_chunks)
    gauges.set("stream.windows", stats.n_windows)
    gauges.add("stream.wall_s", time.perf_counter() - t_start)
    if profile is not None:
        profile.merge(stage_totals)
    if shared.errors:
        err = shared.errors[0]
        if isinstance(err, (SchedulerError, KeyboardInterrupt)):
            # KeyboardInterrupt is re-raised as-is *after* the clean
            # unwind above: all threads joined, queues drained.
            raise err
        raise SchedulerError(f"streaming pipeline failed: {err!r}") from err
    return stats


def map_reads_streaming(
    aligner: Aligner,
    reads: Sequence[SeqRecord],
    *,
    workers: int = 1,
    use_processes: bool = False,
    with_cigar: bool = True,
    longest_first: bool = True,
    chunk_reads: int = 32,
    chunk_bases: int = 1_000_000,
    window_reads: int = 256,
    queue_chunks: int = 8,
    index_path: Optional[str] = None,
    profile=None,
    telemetry: Optional[Telemetry] = None,
    fault_policy: Optional[FaultPolicy] = None,
) -> List[List[Alignment]]:
    """Batch-shaped adapter: run the pipeline, collect results in order.

    This is what ``backend="streaming"`` resolves to in the backend
    registry, so the streaming pipeline is drop-in interchangeable
    (and byte-identical) with the batch backends wherever a result
    list is expected. For true constant-memory streaming use
    :func:`stream_map` (or :func:`repro.api.map_file`) with a sink.
    """
    out: List[List[Alignment]] = []

    def collect(_read: SeqRecord, alns: List[Alignment]) -> None:
        out.append(alns)

    stream_map(
        aligner,
        reads,
        collect,
        workers=workers,
        use_processes=use_processes,
        with_cigar=with_cigar,
        longest_first=longest_first,
        chunk_reads=chunk_reads,
        chunk_bases=chunk_bases,
        window_reads=window_reads,
        queue_chunks=queue_chunks,
        index_path=index_path,
        profile=profile,
        telemetry=telemetry,
        fault_policy=fault_policy,
    )
    return out
