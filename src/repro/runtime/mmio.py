"""Buffered vs memory-mapped file loading (§4.4.2) — real, measurable.

``load_bytes_buffered`` copies the file through read(2) into fresh
memory; ``load_bytes_mmap`` maps it and returns a zero-copy NumPy view
whose pages fault in on first touch. On any OS the mmap call itself is
near-instant, which is exactly the property manymap exploits to halve
index load time on KNL's slow single-thread read path.
"""

from __future__ import annotations

import mmap
import os
from typing import Tuple, Union

import numpy as np

from ..utils.timers import timed

PathLike = Union[str, os.PathLike]


def load_bytes_buffered(path: PathLike) -> Tuple[np.ndarray, float]:
    """Read the whole file into memory; returns (array, seconds)."""
    with timed() as t:
        with open(path, "rb") as f:
            data = np.frombuffer(f.read(), dtype=np.uint8)
    return data, t.elapsed


def load_bytes_mmap(path: PathLike) -> Tuple[np.ndarray, float]:
    """Map the file; returns (zero-copy view, seconds-to-map)."""
    with timed() as t:
        size = os.path.getsize(path)
        with open(path, "rb") as f:
            mm = mmap.mmap(f.fileno(), size, access=mmap.ACCESS_READ)
        data = np.frombuffer(mm, dtype=np.uint8)
    return data, t.elapsed
