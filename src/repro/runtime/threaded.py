"""A real 3-stage threaded pipeline executor (load → align → output).

CPython threads genuinely overlap here because the align stage spends
its time inside NumPy kernels (which release the GIL) while the I/O
stages block on file operations. This is the runnable counterpart of
the :mod:`pipeline` simulator and of §4.4.4's redesigned pipeline.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..errors import SchedulerError

_SENTINEL = object()


@dataclass
class ThreadedPipeline:
    """Generic 3-stage pipeline over a sequence of work items.

    ``load_fn(item) -> loaded``, ``compute_fn(loaded) -> result``,
    ``output_fn(result) -> None`` run in three dedicated threads with
    bounded queues between them (backpressure like minimap2's batching).
    """

    load_fn: Callable
    compute_fn: Callable
    output_fn: Callable
    queue_size: int = 4
    errors: List[BaseException] = field(default_factory=list)

    def run(self, items: Sequence) -> int:
        """Process all items; returns the number completed.

        The first stage exception aborts the pipeline and is re-raised.
        """
        if self.queue_size < 1:
            raise SchedulerError(f"queue size must be >= 1: {self.queue_size}")
        q1: queue.Queue = queue.Queue(self.queue_size)
        q2: queue.Queue = queue.Queue(self.queue_size)
        done = {"count": 0}
        stop = threading.Event()

        def guard(fn):
            def wrapped(*args):
                try:
                    fn(*args)
                except BaseException as exc:  # noqa: BLE001 - pipeline boundary
                    self.errors.append(exc)
                    stop.set()
                    # Drain so peers blocked on put()/get() can exit.
                    for q in (q1, q2):
                        try:
                            q.put_nowait(_SENTINEL)
                        except queue.Full:
                            pass

            return wrapped

        @guard
        def loader():
            for item in items:
                if stop.is_set():
                    break
                q1.put(self.load_fn(item))
            q1.put(_SENTINEL)

        @guard
        def computer():
            while not stop.is_set():
                loaded = q1.get()
                if loaded is _SENTINEL:
                    q2.put(_SENTINEL)
                    return
                q2.put(self.compute_fn(loaded))

        @guard
        def writer():
            while not stop.is_set():
                result = q2.get()
                if result is _SENTINEL:
                    return
                self.output_fn(result)
                done["count"] += 1

        threads = [
            threading.Thread(target=fn, name=name)
            for fn, name in ((loader, "load"), (computer, "compute"), (writer, "output"))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if self.errors:
            raise self.errors[0]
        return done["count"]
