"""Process-parallel mapping: every core runs the full aligner (§4.4).

The paper's macro speedups come from keeping *all* hardware threads
busy on the whole pipeline (40 CPU / 256 KNL threads), not from
parallelizing one kernel. CPython's GIL caps the thread backend at
whatever fraction of the work sits inside NumPy, so the real-multicore
path is ``multiprocessing`` — with two refinements lifted straight
from the paper:

* **Zero-copy index sharing (§4.4.2).** Workers never receive the
  minimizer index through a pickle. Each worker process rebuilds its
  :class:`~repro.core.aligner.Aligner` from the *serialized index
  file* opened in ``mode='mmap'``, so every worker's index arrays are
  demand-paged views of the same page-cache copy — the same trick that
  halved manymap's KNL index-load time, reused here to make worker
  start-up O(1) in index size.
* **Longest-first streaming batches (§4.4.4).** Reads are packed into
  size-bounded chunks (bounded in both read count and total bases),
  the chunks are dispatched longest-first (LPT scheduling), and only a
  bounded window of chunks is in flight at any moment, so arbitrarily
  long read streams map in bounded memory. Results are reassembled in
  input order regardless of completion order.

Each worker times its own Seed & Chain / Align stages; the parent
merges the per-worker timers so :class:`~repro.core.driver.ParallelDriver`
keeps the paper's five-stage breakdown (as aggregate worker seconds).
Telemetry travels the same road: every chunk result carries the
worker's counter delta (snapshot of its process-local registry before
vs after the chunk) and — when tracing is enabled — one span per read,
so counter totals and traces are complete and backend-independent.
"""

from __future__ import annotations

import os
import tempfile
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.aligner import Aligner, AlignerConfig
from ..core.alignment import Alignment
from ..errors import SchedulerError
from ..index.store import load_index, save_index
from ..obs.counters import COUNTERS, counter_delta
from ..obs.events import EVENTS
from ..obs.hist import HISTOGRAMS, hist_delta
from ..obs.logs import current_level_name, set_run_id, setup_logging
from ..obs.telemetry import Telemetry, read_span
from ..seq.genome import Genome
from ..seq.records import SeqRecord
from .faults import (
    FaultPolicy,
    FaultRecord,
    PoolSupervisor,
    map_chunk_reads,
    map_one_read,
)

__all__ = [
    "ChunkPlan",
    "plan_chunks",
]


# --------------------------------------------------------------------- #
# Chunk planning


@dataclass(frozen=True)
class ChunkPlan:
    """One unit of work: positions into the original read list."""

    indices: Tuple[int, ...]
    bases: int


def plan_chunks(
    reads: Sequence[SeqRecord],
    chunk_reads: int = 32,
    chunk_bases: int = 1_000_000,
    longest_first: bool = True,
) -> List[ChunkPlan]:
    """Pack reads into size-bounded chunks, longest reads first.

    Chunks are bounded by ``chunk_reads`` reads *and* ``chunk_bases``
    total bases (a single over-budget read still forms its own chunk,
    like minimap2's mini-batches). With ``longest_first`` the reads are
    considered in descending length, so the chunk sequence is emitted
    in LPT order: submitting chunks in list order schedules the
    heaviest work earliest and drains workers evenly.
    """
    if chunk_reads < 1:
        raise SchedulerError(f"chunk_reads must be >= 1: {chunk_reads}")
    if chunk_bases < 1:
        raise SchedulerError(f"chunk_bases must be >= 1: {chunk_bases}")
    order = list(range(len(reads)))
    if longest_first:
        order.sort(key=lambda i: -len(reads[i]))
    chunks: List[ChunkPlan] = []
    cur: List[int] = []
    acc = 0
    for i in order:
        n = len(reads[i])
        if cur and (len(cur) >= chunk_reads or acc + n > chunk_bases):
            chunks.append(ChunkPlan(tuple(cur), acc))
            cur, acc = [], 0
        cur.append(i)
        acc += n
    if cur:
        chunks.append(ChunkPlan(tuple(cur), acc))
    return chunks


# --------------------------------------------------------------------- #
# Worker side. Module-level state is populated once per worker process
# by the pool initializer; tasks then only ship (chunk id, indices, reads).

_WORKER: Dict[str, object] = {}


def _init_worker(
    genome: Genome,
    index_path: str,
    config: AlignerConfig,
    with_cigar: bool,
    trace: bool,
    log_level: str,
    policy: Optional[FaultPolicy] = None,
    run_id: Optional[str] = None,
) -> None:
    # Mark this process as a disposable pool worker: crash-kind fault
    # injection only hard-kills where a supervisor can respawn it.
    os.environ["MANYMAP_POOL_WORKER"] = "1"
    setup_logging(log_level)
    set_run_id(run_id)
    index = load_index(index_path, mode="mmap")
    _WORKER["aligner"] = config.build(genome, index=index)
    _WORKER["with_cigar"] = with_cigar
    _WORKER["trace"] = trace
    _WORKER["policy"] = policy


def _map_chunk(
    payload: Tuple[int, Tuple[int, ...], List[SeqRecord]],
) -> Tuple[
    Tuple[int, ...],
    List[List[Alignment]],
    Dict[str, float],
    Dict[str, int],
    Dict[str, Dict],
    List[Dict],
    List[FaultRecord],
]:
    chunk_id, indices, reads = payload
    aligner: Aligner = _WORKER["aligner"]  # type: ignore[assignment]
    with_cigar: bool = _WORKER["with_cigar"]  # type: ignore[assignment]
    trace: bool = bool(_WORKER.get("trace"))
    policy: Optional[FaultPolicy] = _WORKER.get("policy")  # type: ignore
    stage_seconds = {"Seed & Chain": 0.0, "Align": 0.0}
    counters_before = COUNTERS.totals()
    hists_before = HISTOGRAMS.snapshot()
    spans: List[Dict] = []
    out: List[List[Alignment]] = []
    faults: List[FaultRecord] = []
    try:
        pooled = map_chunk_reads(aligner, reads, with_cigar, policy)
    except Exception:
        # Deterministic mapping: re-running per read below reproduces
        # the failure on the culprit read, with the read-naming wrap.
        pooled = None
    if pooled is not None:
        for read, (alns, seed_s, align_s, fault) in zip(reads, pooled):
            stage_seconds["Seed & Chain"] += seed_s
            stage_seconds["Align"] += align_s
            if trace:
                spans.append(
                    read_span(
                        read.name, len(read), seed_s, align_s, chunk=chunk_id
                    )
                )
            out.append(alns)
    else:
        for read in reads:
            try:
                alns, seed_s, align_s, fault = map_one_read(
                    aligner, read, with_cigar, policy
                )
            except Exception as exc:  # pragma: no cover - exercised via pool
                # Chained exceptions do not survive the pickle back to the
                # parent, so fold the context into the message itself.
                raise SchedulerError(
                    f"mapping failed for read {read.name!r} in worker "
                    f"{os.getpid()}: {exc!r}\n{traceback.format_exc()}"
                ) from None
            stage_seconds["Seed & Chain"] += seed_s
            stage_seconds["Align"] += align_s
            if fault is not None:
                faults.append(fault)
            if trace and (fault is None or fault.action == "fallback"):
                spans.append(
                    read_span(
                        read.name, len(read), seed_s, align_s, chunk=chunk_id
                    )
                )
            out.append(alns)
    delta = counter_delta(COUNTERS.totals(), counters_before)
    hist_d = hist_delta(HISTOGRAMS.snapshot(), hists_before)
    return indices, out, stage_seconds, delta, hist_d, spans, faults


# --------------------------------------------------------------------- #
# Parent side


def _map_reads_processes(
    aligner: Aligner,
    reads: Sequence[SeqRecord],
    processes: int = 2,
    with_cigar: bool = True,
    longest_first: bool = True,
    chunk_reads: int = 32,
    chunk_bases: int = 1_000_000,
    index_path: Optional[str] = None,
    max_inflight: Optional[int] = None,
    mp_context=None,
    profile=None,
    telemetry: Optional[Telemetry] = None,
    fault_policy: Optional[FaultPolicy] = None,
) -> List[List[Alignment]]:
    """Map reads across worker processes; results keep the input order.

    ``index_path`` should point at an existing serialized index
    (``save_index``) so workers mmap it directly; when ``None``, the
    aligner's in-memory index is serialized once to a temporary file
    for the duration of the run. ``max_inflight`` bounds how many
    chunks are queued or running at once (default ``2 * processes``),
    which is what lets arbitrarily long read streams run in bounded
    memory. ``profile`` — an optional
    :class:`~repro.core.profiling.PipelineProfile` — receives the
    merged per-worker Seed & Chain / Align timers. ``telemetry``
    collects worker trace spans; worker counter deltas are always
    folded into this process's global registry, so counter totals match
    the serial and thread backends even without a telemetry object.

    Raises :class:`SchedulerError` naming the failing read on the first
    worker error; chunks that have not started yet are cancelled. With
    a recovering ``fault_policy`` (``on_error`` of ``skip``/``retry``)
    per-read errors are retried/quarantined inside the workers and a
    broken pool (killed worker) is respawned by a
    :class:`~repro.runtime.faults.PoolSupervisor`, which re-dispatches
    the lost chunks and bisects a repeatedly-crashing chunk down to the
    poison read.
    """
    if processes < 1:
        raise SchedulerError(f"need >= 1 process: {processes}")
    reads = list(reads)
    if processes == 1 or len(reads) <= 1:
        return _map_serial(
            aligner, reads, with_cigar, profile, telemetry, fault_policy
        )

    chunks = plan_chunks(
        reads,
        chunk_reads=chunk_reads,
        chunk_bases=chunk_bases,
        longest_first=longest_first,
    )
    if max_inflight is None:
        max_inflight = 2 * processes
    if max_inflight < 1:
        raise SchedulerError(f"max_inflight must be >= 1: {max_inflight}")

    tmp_path: Optional[str] = None
    if index_path is None:
        fd, tmp_path = tempfile.mkstemp(suffix=".mmi", prefix="manymap-idx-")
        os.close(fd)
        save_index(aligner.index, tmp_path)
        index_path = tmp_path

    trace = telemetry is not None and telemetry.trace
    recover = fault_policy is not None and fault_policy.recovers
    results: List[Optional[List[List[Alignment]]]] = [None] * len(reads)
    stage_totals = {"Seed & Chain": 0.0, "Align": 0.0}

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=processes,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(
                aligner.genome,
                index_path,
                aligner.config,
                with_cigar,
                trace,
                current_level_name(),
                fault_policy,
                getattr(telemetry, "run_id", None),
            ),
        )

    def absorb(result, chunk_id: Optional[int] = None) -> None:
        indices, alns, stage_seconds, delta, hist_d, spans, faults = result
        for i, a in zip(indices, alns):
            results[i] = a
        for stage, sec in stage_seconds.items():
            stage_totals[stage] = stage_totals.get(stage, 0.0) + sec
        # Live merge: the parent registries see this chunk's counter and
        # histogram deltas now, so a mid-run /status or /metrics scrape
        # reads current totals, not end-of-run ones.
        COUNTERS.merge(delta)
        HISTOGRAMS.merge(hist_d)
        if telemetry is not None:
            telemetry.extend(spans)
            telemetry.record_faults(faults)
        EVENTS.emit("chunk.done", chunk=chunk_id, reads=len(indices))

    supervisor = PoolSupervisor(make_pool, _map_chunk, fault_policy, telemetry)
    try:
        chunk_iter = enumerate(chunks)
        pending: Dict[Future, Tuple] = {}

        def submit_next() -> bool:
            item = next(chunk_iter, None)
            if item is None:
                return False
            chunk_id, chunk = item
            payload = (
                chunk_id,
                chunk.indices,
                [reads[i] for i in chunk.indices],
            )
            pending[supervisor.pool.submit(_map_chunk, payload)] = payload
            EVENTS.emit(
                "chunk.dispatched", chunk=chunk_id, reads=len(chunk.indices)
            )
            return True

        def recover_break(first_payload, token) -> None:
            # The pool is dead: every other in-flight future settles as
            # broken too. Sort survivors from lost work, respawn once,
            # then re-dispatch the lost chunks through the supervisor
            # (which bisects out a poison read if one keeps crashing).
            lost = [first_payload]
            for fut in list(pending):
                payload = pending.pop(fut)
                if fut.exception() is None:
                    absorb(fut.result(), payload[0])
                else:
                    lost.append(payload)
            supervisor.handle_break(token)
            for payload in lost:
                absorb(supervisor.run_chunk(payload), payload[0])

        while len(pending) < max_inflight and submit_next():
            pass
        while pending:
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            for fut in done:
                if fut not in pending:
                    continue  # already absorbed during crash recovery
                payload = pending.pop(fut)
                exc = fut.exception()
                if exc is None:
                    absorb(fut.result(), payload[0])
                elif isinstance(exc, BrokenExecutor) and recover:
                    recover_break(payload, (supervisor.generation, exc))
                else:
                    _cancel_pending(set(pending))
                    supervisor.shutdown()
                    if isinstance(exc, SchedulerError):
                        raise exc
                    raise SchedulerError(
                        f"process backend failed: {exc!r}"
                    ) from exc
            while len(pending) < max_inflight and submit_next():
                pass
    finally:
        supervisor.shutdown()
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    if profile is not None:
        profile.merge(stage_totals)
    return results  # type: ignore[return-value]


def _cancel_pending(pending: "set[Future]") -> None:
    for fut in pending:
        fut.cancel()


def _map_serial(
    aligner: Aligner,
    reads: Sequence[SeqRecord],
    with_cigar: bool,
    profile,
    telemetry: Optional[Telemetry] = None,
    fault_policy: Optional[FaultPolicy] = None,
    pool_reads: int = 64,
    pool_bases: int = 8_000_000,
) -> List[List[Alignment]]:
    """Single-process fallback with the same stage/telemetry accounting.

    Reads are processed in consecutive, size-bounded pools (input
    order — no reordering) so the base-level DP of a whole pool runs
    through the kernel-dispatch layer in one call while memory for
    in-flight plans stays bounded. ``pool_reads`` / ``pool_bases`` are
    deliberately independent of the parallel backends' scheduling
    chunk size: serial has no scheduling, only a DP-batching width.
    With a fault policy (or an aligner that cannot pool plans) this
    degrades to the per-read loop it always was.
    """
    stage_totals = {"Seed & Chain": 0.0, "Align": 0.0}
    trace = telemetry is not None and telemetry.trace
    out: List[List[Alignment]] = []
    reads = list(reads)
    pos = 0
    while pos < len(reads):
        chunk = [reads[pos]]
        acc = len(reads[pos])
        pos += 1
        while (
            pos < len(reads)
            and len(chunk) < pool_reads
            and acc + len(reads[pos]) <= pool_bases
        ):
            chunk.append(reads[pos])
            acc += len(reads[pos])
            pos += 1
        tuples = map_chunk_reads(aligner, chunk, with_cigar, fault_policy)
        if tuples is None:
            tuples = [
                map_one_read(aligner, read, with_cigar, fault_policy)
                for read in chunk
            ]
        for read, (alns, seed_s, align_s, fault) in zip(chunk, tuples):
            out.append(alns)
            stage_totals["Seed & Chain"] += seed_s
            stage_totals["Align"] += align_s
            if fault is not None and telemetry is not None:
                telemetry.record_faults([fault])
            if trace and (fault is None or fault.action == "fallback"):
                telemetry.record(
                    read_span(read.name, len(read), seed_s, align_s)
                )
    if profile is not None:
        profile.merge(stage_totals)
    return out
