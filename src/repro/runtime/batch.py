"""Read batching and longest-first ordering (§4.4.4).

minimap2 processes reads in mini-batches so a two/three-thread pipeline
can overlap I/O with alignment; manymap additionally sorts each batch
longest-read-first so stragglers start early and threads drain evenly
(classic LPT scheduling).
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

from ..errors import SchedulerError
from ..seq.records import SeqRecord

T = TypeVar("T")


def make_batches(
    reads: Sequence[SeqRecord], batch_bases: int = 500_000
) -> List[List[SeqRecord]]:
    """Split reads into batches of at most ``batch_bases`` total bases.

    A single read longer than the budget still forms its own batch
    (minimap2 behaves the same way with its 500M base mini-batches).
    """
    if batch_bases <= 0:
        raise SchedulerError(f"batch size must be positive: {batch_bases}")
    batches: List[List[SeqRecord]] = []
    cur: List[SeqRecord] = []
    acc = 0
    for read in reads:
        if cur and acc + len(read) > batch_bases:
            batches.append(cur)
            cur, acc = [], 0
        cur.append(read)
        acc += len(read)
    if cur:
        batches.append(cur)
    return batches


def sort_longest_first(reads: Sequence[SeqRecord]) -> List[SeqRecord]:
    """Stable sort, longest read first (manymap's load-balance fix)."""
    return sorted(reads, key=lambda r: -len(r))
