"""Fault tolerance for the mapping runtime: policies, recovery, watchdog.

The paper's runtime survives pathological inputs by design: oversized
DP problems on the GPU degrade to a CPU fallback instead of crashing
the batch (§4.3), and the KNL pipeline keeps streaming when one stage
stalls (§4.4.4). This module gives the reproduction the same
production posture — real aligners (minimap2, BWA-MEM) tolerate bad
records and keep going — via three mechanisms threaded through every
backend:

* **Per-read error policy** (:class:`FaultPolicy`, carried on
  :class:`repro.api.MapOptions` and the CLI's ``--on-error``): a
  failing read is retried with a bounded budget, then *quarantined* —
  it produces no PAF lines, is appended to an optional sidecar FASTQ
  (``--failed-reads``) with a structured reason log, and every other
  read's output stays byte-identical to a clean run.
* **Watchdog degradation**: a per-read soft timeout. When the
  seed-and-chain phase exceeds ``read_timeout`` seconds the read's
  base-level alignment is downgraded to the cheap no-CIGAR pass
  (``on_timeout='fallback'`` — the §4.3 GPU→CPU move) or the read is
  quarantined (``on_timeout='skip'``), instead of hanging a worker on
  a pathological alignment.
* **Worker-crash recovery** (:class:`PoolSupervisor`): when a process
  pool breaks (``BrokenProcessPool`` — a worker was killed or
  segfaulted), the pool is respawned within a bounded budget and the
  lost chunks are re-dispatched; a chunk that keeps killing workers is
  bisected until the poison read runs alone and is quarantined.

Everything is observable: ``fault.retries`` / ``fault.skips`` /
``fault.fallbacks`` / ``fault.respawns`` / ``fault.quarantined``
counters flow through the usual registry (worker deltas ship home with
results), and per-read :class:`FaultRecord` entries surface in the
metrics manifest (schema v3) and the report renderer.

With ``policy=None`` (the default everywhere) none of this runs: the
hot path is the same two calls it always was, which is what
``benchmarks/bench_fault_overhead.py`` gates (<2% clean-path cost).
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SchedulerError
from ..obs.counters import COUNTERS
from ..obs.events import EVENTS
from ..obs.hist import HISTOGRAMS, merge_hist_json
from ..seq.records import SeqRecord

__all__ = [
    "FaultPolicy",
    "FaultRecord",
    "map_one_read",
    "map_chunk_reads",
    "PoolSupervisor",
    "write_quarantine",
]

ON_ERROR = ("abort", "skip", "retry")
ON_TIMEOUT = ("fallback", "skip")


def _observe_read(read, seed_chain_s: float, align_s: float) -> None:
    """Per-read observability: the ``reads_done`` progress counter plus
    the stage-latency / read-length histograms. Runs on every completed
    read on every backend (this module is the shared choke point);
    ``HISTOGRAMS.enabled = False`` reduces it to the one counter bump.
    """
    COUNTERS.inc("reads_done")
    if not HISTOGRAMS.enabled:
        return
    HISTOGRAMS.observe("latency.seed_chain_s", seed_chain_s)
    HISTOGRAMS.observe("latency.align_s", align_s)
    HISTOGRAMS.observe("latency.read_s", seed_chain_s + align_s)
    HISTOGRAMS.observe("read.length", len(read.seq))


@dataclass(frozen=True)
class FaultPolicy:
    """How a mapping run reacts to failing reads and dying workers.

    ``on_error`` — ``abort`` fails fast exactly like the pre-fault
    runtime; ``skip`` quarantines a failing read on its first error;
    ``retry`` re-attempts it up to ``max_retries`` times first.
    ``read_timeout`` — optional per-read soft deadline in seconds for
    the seed-and-chain phase; ``on_timeout`` picks the degradation
    (``fallback``: cheap no-CIGAR alignment, ``skip``: quarantine).
    ``max_respawns`` — how many times a broken process pool may be
    rebuilt before the run aborts.
    ``failed_reads`` — sidecar FASTQ path for quarantined reads; a
    ``<path>.reasons.jsonl`` log rides along.
    ``injector`` — test hook (``on_map(read_name, attempt)``) called
    before each mapping attempt; see :mod:`repro.testing.faults`.
    """

    on_error: str = "abort"
    max_retries: int = 2
    read_timeout: Optional[float] = None
    on_timeout: str = "fallback"
    max_respawns: int = 16
    failed_reads: Optional[str] = None
    injector: Optional[object] = None

    def replace(self, **changes) -> "FaultPolicy":
        return dataclasses.replace(self, **changes)

    def validated(self) -> "FaultPolicy":
        if self.on_error not in ON_ERROR:
            raise SchedulerError(
                f"on_error must be one of {ON_ERROR}: {self.on_error!r}"
            )
        if self.on_timeout not in ON_TIMEOUT:
            raise SchedulerError(
                f"on_timeout must be one of {ON_TIMEOUT}: {self.on_timeout!r}"
            )
        if self.max_retries < 0:
            raise SchedulerError(f"max_retries must be >= 0: {self.max_retries}")
        if self.max_respawns < 0:
            raise SchedulerError(
                f"max_respawns must be >= 0: {self.max_respawns}"
            )
        if self.read_timeout is not None and self.read_timeout <= 0:
            raise SchedulerError(
                f"read_timeout must be > 0: {self.read_timeout}"
            )
        return self

    @property
    def recovers(self) -> bool:
        """Whether worker crashes should be recovered (vs fail-fast)."""
        return self.on_error != "abort"


@dataclass
class FaultRecord:
    """One fault that the policy absorbed instead of aborting the run."""

    read: str
    kind: str  # "error" | "timeout" | "worker-crash"
    reason: str
    attempts: int
    action: str  # "quarantined" | "fallback"
    #: the original record, when available — what the sidecar FASTQ gets.
    record: Optional[SeqRecord] = None
    #: wall-clock moment the fault was absorbed (epoch seconds); places
    #: the fault marker on the timeline export.
    ts: float = dataclasses.field(default_factory=time.time)

    def to_json(self) -> Dict:
        return {
            "read": self.read,
            "kind": self.kind,
            "reason": self.reason,
            "attempts": self.attempts,
            "action": self.action,
            "ts": self.ts,
        }


def map_one_read(
    aligner,
    read,
    with_cigar: bool,
    policy: Optional[FaultPolicy],
) -> Tuple[List, float, float, Optional[FaultRecord]]:
    """Map one read under ``policy``; the single choke point all
    backends share.

    Returns ``(alignments, seed_chain_s, align_s, fault)``. With
    ``policy=None`` this is exactly the two aligner calls the runtime
    always made — no extra work on the clean path. A quarantined read
    returns ``([], 0, 0, record)``; a watchdog fallback returns real
    alignments (computed without path DP) plus a record. With
    ``on_error='abort'`` (or no policy) the original exception
    propagates so callers keep their existing read-naming wrappers.
    """
    if policy is None:
        t0 = time.perf_counter()
        plan = aligner.seed_and_chain(read)
        t1 = time.perf_counter()
        alns = aligner.align_plan(read, plan, with_cigar=with_cigar)
        t2 = time.perf_counter()
        _observe_read(read, t1 - t0, t2 - t1)
        return alns, t1 - t0, t2 - t1, None

    injector = policy.injector
    retries = policy.max_retries if policy.on_error == "retry" else 0
    attempt = 0
    while True:
        attempt += 1
        try:
            t0 = time.perf_counter()
            if injector is not None:
                injector.on_map(read.name, attempt)
            plan = aligner.seed_and_chain(read)
            t1 = time.perf_counter()
            elapsed = t1 - t0
            if (
                policy.read_timeout is not None
                and elapsed > policy.read_timeout
            ):
                reason = (
                    f"seed+chain took {elapsed:.3f}s "
                    f"> read_timeout {policy.read_timeout}s"
                )
                if policy.on_timeout == "skip":
                    COUNTERS.inc("fault.quarantined")
                    COUNTERS.inc("reads_done")
                    return [], 0.0, 0.0, FaultRecord(
                        read=read.name,
                        kind="timeout",
                        reason=reason,
                        attempts=attempt,
                        action="quarantined",
                        record=read if isinstance(read, SeqRecord) else None,
                    )
                # §4.3 move: degrade to the cheap pass, keep streaming.
                t1b = time.perf_counter()
                alns = aligner.align_plan(read, plan, with_cigar=False)
                t2 = time.perf_counter()
                COUNTERS.inc("fault.fallbacks")
                _observe_read(read, elapsed, t2 - t1b)
                return alns, elapsed, t2 - t1b, FaultRecord(
                    read=read.name,
                    kind="timeout",
                    reason=reason,
                    attempts=attempt,
                    action="fallback",
                )
            alns = aligner.align_plan(read, plan, with_cigar=with_cigar)
            t2 = time.perf_counter()
            if attempt > 1 and HISTOGRAMS.enabled:
                HISTOGRAMS.observe("fault.retries", attempt - 1)
            _observe_read(read, elapsed, t2 - t1)
            return alns, elapsed, t2 - t1, None
        except Exception as exc:
            if policy.on_error == "abort":
                raise
            if attempt <= retries:
                COUNTERS.inc("fault.retries")
                continue
            COUNTERS.inc("fault.skips")
            COUNTERS.inc("fault.quarantined")
            COUNTERS.inc("reads_done")
            if attempt > 1 and HISTOGRAMS.enabled:
                HISTOGRAMS.observe("fault.retries", attempt - 1)
            return [], 0.0, 0.0, FaultRecord(
                read=read.name,
                kind="error",
                reason=repr(exc),
                attempts=attempt,
                action="quarantined",
                record=read if isinstance(read, SeqRecord) else None,
            )


def map_chunk_reads(
    aligner,
    reads,
    with_cigar: bool,
    policy: Optional[FaultPolicy],
) -> Optional[List[Tuple[List, float, float, Optional[FaultRecord]]]]:
    """Map a whole chunk of reads, pooling their base-level DP.

    Returns one ``(alignments, seed_chain_s, align_s, fault)`` tuple
    per read — the same shape :func:`map_one_read` yields — or ``None``
    when pooling does not apply (a fault policy is in force, the chunk
    has fewer than two reads, or the aligner cannot pool plans), in
    which case the caller should run its per-read loop.

    Pooling runs seed-and-chain per read, then aligns every read's
    plan through one :meth:`~repro.core.aligner.Aligner.align_plans`
    call, so the kernel-dispatch layer sees chunk-wide DP buckets
    instead of one chain's worth of jobs. Results are bit-identical to
    per-read mapping — batched kernels match their per-pair fallback —
    so only throughput and the shape-dependent ``wavefront.*`` /
    ``dispatch.*`` telemetry change with the chunking. The pooled
    align phase has no per-read split anymore, so align seconds are
    attributed back to reads proportionally to read length.

    Errors propagate raw, exactly like :func:`map_one_read` with no
    policy. Callers that must name the failing read can re-run the
    chunk per read: mapping is deterministic, so the culprit fails
    again under the per-read path with its usual wrapping.
    """
    if (
        policy is not None
        or len(reads) < 2
        or not callable(getattr(aligner, "align_plans", None))
        or not callable(getattr(aligner, "seed_and_chain", None))
    ):
        return None
    plans = []
    seed_times: List[float] = []
    for read in reads:
        t0 = time.perf_counter()
        plans.append((read, aligner.seed_and_chain(read)))
        seed_times.append(time.perf_counter() - t0)
    t0 = time.perf_counter()
    all_alns = aligner.align_plans(plans, with_cigar=with_cigar)
    align_total = time.perf_counter() - t0
    total_bases = sum(len(r) for r in reads)
    out: List[Tuple[List, float, float, Optional[FaultRecord]]] = []
    for read, seed_s, alns in zip(reads, seed_times, all_alns):
        share = (
            align_total * (len(read) / total_bases)
            if total_bases
            else align_total / len(reads)
        )
        _observe_read(read, seed_s, share)
        out.append((alns, seed_s, share, None))
    return out


# --------------------------------------------------------------------- #
# Worker-crash recovery


def _merge_chunk_results(left: Tuple, right: Tuple) -> Tuple:
    """Concatenate two partial 7-tuple chunk results (bisect halves)."""
    li, lo, ls, ld, lh, lsp, lf = left
    ri, ro, rs, rd, rh, rsp, rf = right
    stage = dict(ls)
    for k, v in rs.items():
        stage[k] = stage.get(k, 0.0) + v
    delta = dict(ld)
    for k, v in rd.items():
        delta[k] = delta.get(k, 0) + v
    return (
        tuple(li) + tuple(ri),
        lo + ro,
        stage,
        delta,
        merge_hist_json(lh, rh),
        lsp + rsp,
        lf + rf,
    )


class PoolSupervisor:
    """Owns a process pool; respawns it when workers die, with a budget.

    ``factory`` builds a fresh ``ProcessPoolExecutor`` (it is called
    again after every break); ``task`` is the picklable chunk function
    (:func:`repro.runtime.procpool._map_chunk`) taking one payload
    ``(chunk_id, indices, reads)`` and returning the 7-tuple chunk
    result. Thread-safe: the streaming backend calls :meth:`run_chunk`
    from several worker threads at once; isolation runs take an
    exclusive turn so a concurrent crash of an unrelated chunk is
    never blamed on the read under suspicion.
    """

    def __init__(
        self,
        factory: Callable,
        task: Callable,
        policy: Optional[FaultPolicy],
        telemetry=None,
    ) -> None:
        self._factory = factory
        self._task = task
        self._policy = policy
        self._telemetry = telemetry
        self._cond = threading.Condition()
        self._pool = factory()
        self._gen = 0
        self._respawns = 0
        self._inflight = 0
        self._exclusive = False

    @property
    def pool(self):
        """The current executor (batch submit loops go through this)."""
        with self._cond:
            return self._pool

    @property
    def respawns(self) -> int:
        with self._cond:
            return self._respawns

    @property
    def generation(self) -> int:
        """Current pool generation (bumped on every respawn)."""
        with self._cond:
            return self._gen

    def shutdown(self) -> None:
        with self._cond:
            pool = self._pool
        pool.shutdown(wait=False, cancel_futures=True)

    # -- crash handling ------------------------------------------------ #

    def handle_break(self, token) -> None:
        """React to a broken pool: respawn within budget or raise.

        ``token`` is the ``(generation, exception)`` pair returned by
        :meth:`_submit_and_wait` (or built by a batch caller from the
        pool generation it submitted against). Generation-checked so N
        threads observing the same break respawn the pool once.
        """
        gen, exc = token
        with self._cond:
            if self._policy is None or not self._policy.recovers:
                raise SchedulerError(
                    f"process pool broke (worker died): {exc!r}"
                ) from exc
            if gen != self._gen:
                return  # another thread already replaced this pool
            if self._respawns >= self._policy.max_respawns:
                raise SchedulerError(
                    f"process pool broke {self._respawns + 1} times "
                    f"(max_respawns={self._policy.max_respawns}): {exc!r}"
                ) from exc
            self._respawns += 1
            COUNTERS.inc("fault.respawns")
            EVENTS.emit(
                "pool.respawn",
                generation=self._gen,
                respawns=self._respawns,
                budget=self._policy.max_respawns,
                error=repr(exc),
            )
            dead = self._pool
            self._pool = self._factory()
            self._gen += 1
            self._cond.notify_all()
        dead.shutdown(wait=False, cancel_futures=True)

    def _submit_and_wait(self, payload, exclusive: bool = False):
        """Run one chunk; returns ``(result, None)`` or ``(None, token)``
        when the pool broke underneath it."""
        from concurrent.futures import BrokenExecutor

        with self._cond:
            while self._exclusive or (exclusive and self._inflight > 0):
                self._cond.wait()
            if exclusive:
                self._exclusive = True
            self._inflight += 1
            pool = self._pool
            gen = self._gen
        try:
            return pool.submit(self._task, payload).result(), None
        except BrokenExecutor as exc:
            return None, (gen, exc)
        except RuntimeError as exc:
            # submit() raises bare RuntimeError when another thread's
            # handle_break already shut this executor down.
            if "shutdown" in str(exc) or "broken" in str(exc).lower():
                return None, (gen, exc)
            raise
        finally:
            with self._cond:
                self._inflight -= 1
                if exclusive:
                    self._exclusive = False
                self._cond.notify_all()

    def run_chunk(self, payload):
        """Run one chunk with crash recovery; always returns a 7-tuple."""
        result, token = self._submit_and_wait(payload)
        if token is None:
            return result
        self.handle_break(token)
        return self._run_isolated(payload)

    def _run_isolated(self, payload):
        """Re-run a crash-implicated chunk alone; bisect to the poison
        read, which is quarantined instead of killing the run."""
        chunk_id, indices, reads = payload
        result, token = self._submit_and_wait(payload, exclusive=True)
        if token is None:
            return result
        self.handle_break(token)
        if len(reads) == 1:
            read = reads[0]
            COUNTERS.inc("fault.quarantined")
            fault = FaultRecord(
                read=read.name,
                kind="worker-crash",
                reason=(
                    f"read repeatedly killed its worker process: "
                    f"{token[1]!r}"
                ),
                attempts=2,
                action="quarantined",
                record=read if isinstance(read, SeqRecord) else None,
            )
            return (
                tuple(indices),
                [[]],
                {"Seed & Chain": 0.0, "Align": 0.0},
                {},
                {},
                [],
                [fault],
            )
        mid = len(reads) // 2
        left = self._run_isolated(
            (chunk_id, tuple(indices[:mid]), list(reads[:mid]))
        )
        right = self._run_isolated(
            (chunk_id, tuple(indices[mid:]), list(reads[mid:]))
        )
        return _merge_chunk_results(left, right)


# --------------------------------------------------------------------- #
# Quarantine sidecar


def write_quarantine(
    path: str, faults: List[FaultRecord], run_id: str = ""
) -> int:
    """Write quarantined reads to a sidecar FASTQ + reasons JSONL.

    ``path`` gets the quarantined records that still carry their
    original :class:`SeqRecord` (re-mappable later, like minimap2's
    unmapped-output workflows); ``<path>.reasons.jsonl`` gets one
    structured line per fault (quarantines *and* fallbacks), stamped
    with ``run_id`` so the sidecar joins the run's manifest/trace.
    Both files are always written — empty on a clean run — so callers
    can assert on their contents. Returns the number of quarantined
    reads.
    """
    from ..seq.fasta import write_fastq
    from ..utils.fsio import atomic_output

    records = [
        f.record
        for f in faults
        if f.action == "quarantined" and f.record is not None
    ]
    # Both sidecars commit atomically: a crash mid-write must not leave
    # a torn FASTQ that a re-map pass would half-ingest.
    with atomic_output(path) as fh:
        write_fastq(fh, records)
    with atomic_output(f"{path}.reasons.jsonl") as fh:
        for f in faults:
            rec = f.to_json()
            if run_id:
                rec["run_id"] = run_id
            fh.write(json.dumps(rec, sort_keys=True))
            fh.write("\n")
    return sum(1 for f in faults if f.action == "quarantined")
