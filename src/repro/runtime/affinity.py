"""Thread-affinity policies on a simulated core topology (§4.4.3).

Three policies, exactly as the paper defines them:

* ``compact``   — thread *i* goes to core ``i // k`` (fills cores up).
* ``scatter``   — thread *i* goes to core ``i % P`` (spreads out).
* ``optimized`` — manymap's policy: scatter over ``P - 1`` cores,
  reserving core ``P - 1`` exclusively for I/O threads, so pipeline
  I/O never contends with compute (the source of Figure 10's up-to-22%
  win at ≥150 threads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import SchedulerError


@dataclass(frozen=True)
class AffinityPolicy:
    """A named thread→core placement rule."""

    name: str
    reserve_io_core: bool = False

    def core_of(self, thread_id: int, cores: int, threads_per_core: int) -> int:
        usable = cores - 1 if self.reserve_io_core else cores
        if usable < 1:
            raise SchedulerError(f"{self.name}: no usable cores (P={cores})")
        if self.name == "compact":
            return min(thread_id // threads_per_core, usable - 1)
        # scatter and optimized both round-robin over usable cores.
        return thread_id % usable


COMPACT = AffinityPolicy("compact")
SCATTER = AffinityPolicy("scatter")
OPTIMIZED = AffinityPolicy("optimized", reserve_io_core=True)

POLICIES = {p.name: p for p in (COMPACT, SCATTER, OPTIMIZED)}


def assign_threads(
    policy: AffinityPolicy,
    threads: int,
    cores: int,
    threads_per_core: int,
) -> Dict[int, int]:
    """Map each core id to its compute-thread count under ``policy``.

    Raises if the placement exceeds the per-core hyper-thread capacity
    (mirroring pthread affinity failing on oversubscription).
    """
    if threads < 1 or cores < 1 or threads_per_core < 1:
        raise SchedulerError(
            f"bad topology: T={threads} P={cores} k={threads_per_core}"
        )
    if threads > cores * threads_per_core:
        raise SchedulerError(
            f"T={threads} exceeds capacity {cores * threads_per_core}"
        )
    counts: Dict[int, int] = {}
    usable = cores - 1 if policy.reserve_io_core else cores
    spill = max(0, threads - usable * threads_per_core)
    if spill:
        # Reservation is best-effort: at full subscription (e.g. T=256 on
        # a 64×4 KNL) the overflow shares the I/O core.
        counts[cores - 1] = spill
        threads -= spill
    for t in range(threads):
        c = policy.core_of(t, cores, threads_per_core)
        counts[c] = counts.get(c, 0) + 1
    over = {c: n for c, n in counts.items() if n > threads_per_core}
    if over:
        raise SchedulerError(
            f"{policy.name}: oversubscribed cores {over} (k={threads_per_core})"
        )
    return counts
