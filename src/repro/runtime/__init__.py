"""Execution substrate: batching, pipelines, affinity, schedulers.

Two kinds of components live here:

* **Real executors** — :mod:`backends` (the backend registry, single
  source of truth for backend names), :mod:`streaming` (the
  overlapped read→compute→write pipeline over bounded queues, the
  runnable §4.4.4), :mod:`parallel` (legacy backend-selectable batch
  mapping: serial / threads / processes), :mod:`procpool` (the
  multi-process backend with an mmap-shared index and longest-first
  streaming chunks), :mod:`threaded` (a generic 3-stage threading
  pipeline) and :mod:`mmio` (buffered vs ``mmap`` file loading,
  genuinely measurable).
* **Discrete-event simulators** — :mod:`scheduler` (multi-thread
  makespan with hyper-thread contention, Figure 9), :mod:`affinity`
  (compact/scatter/optimized placement, Figure 10), :mod:`pipeline`
  (2- vs 3-thread batch pipelines, §4.4.4), and :mod:`gpu_streams`
  (concurrent-kernel scheduling with a memory pool, §4.5).
"""

from .batch import make_batches, sort_longest_first
from .affinity import AffinityPolicy, assign_threads, COMPACT, SCATTER, OPTIMIZED
from .scheduler import simulate_makespan, lpt_makespan
from .pipeline import PipelineStageCost, simulate_pipeline
from .gpu_streams import StreamScheduler, KernelTask, MemoryPool
from .mmio import load_bytes_buffered, load_bytes_mmap
from .threaded import ThreadedPipeline
from .backends import (
    BackendSpec,
    backend_names,
    dispatch,
    get_backend,
    register_backend,
)
from .streaming import StreamStats, map_reads_streaming, stream_map
from .parallel import BACKENDS, parallel_map_reads
from .procpool import ChunkPlan, plan_chunks

__all__ = [
    "make_batches",
    "sort_longest_first",
    "AffinityPolicy",
    "assign_threads",
    "COMPACT",
    "SCATTER",
    "OPTIMIZED",
    "simulate_makespan",
    "lpt_makespan",
    "PipelineStageCost",
    "simulate_pipeline",
    "StreamScheduler",
    "KernelTask",
    "MemoryPool",
    "load_bytes_buffered",
    "load_bytes_mmap",
    "ThreadedPipeline",
    "BackendSpec",
    "backend_names",
    "dispatch",
    "get_backend",
    "register_backend",
    "StreamStats",
    "map_reads_streaming",
    "stream_map",
    "BACKENDS",
    "parallel_map_reads",
    "ChunkPlan",
    "plan_chunks",
]
