"""CUDA-stream scheduler simulation with a memory pool (§4.5).

Kernels (one alignment pair each) are dispatched round-robin onto
``n_streams`` streams. Execution is limited by:

* the device's maximum resident grids (128 on compute capability 7.0+),
* the scheduler's marginal efficiency past 64 concurrent streams
  (Figure 7's sub-linear tail), and
* device memory: each kernel holds its DP state for its duration, so
  big path-mode problems throttle concurrency (a 32 kbp pair needs
  2 GB — only 8 fit in 16 GB, the paper's example).

The :class:`MemoryPool` models manymap's reusable per-stream arena: a
pool hit costs nothing; without the pool each launch pays a
``cudaMalloc``-like overhead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SchedulerError
from ..machine.gpu import GpuModel


@dataclass(frozen=True)
class KernelTask:
    """One alignment kernel: duration (s) and device bytes held."""

    duration_s: float
    mem_bytes: int

    def __post_init__(self) -> None:
        if self.duration_s < 0 or self.mem_bytes < 0:
            raise SchedulerError(f"invalid kernel task {self}")


@dataclass
class MemoryPool:
    """Per-stream reusable arena. Tracks allocation-overhead savings."""

    slot_bytes: int
    n_slots: int
    alloc_overhead_s: float = 50e-6  # one cudaMalloc+cudaFree pair
    hits: int = 0
    misses: int = 0

    def acquire(self, size: int) -> float:
        """Returns the allocation overhead paid for this kernel."""
        if size <= self.slot_bytes:
            self.hits += 1
            return 0.0
        self.misses += 1
        return self.alloc_overhead_s

    @property
    def total_overhead_s(self) -> float:
        return self.misses * self.alloc_overhead_s


@dataclass
class StreamScheduler:
    """Simulates concurrent kernel execution on a GPU model."""

    gpu: GpuModel = field(default_factory=GpuModel)
    n_streams: int = 128
    pool: Optional[MemoryPool] = None

    def __post_init__(self) -> None:
        if self.n_streams < 1:
            raise SchedulerError(f"need >= 1 stream: {self.n_streams}")

    def effective_concurrency(self, tasks: List[KernelTask]) -> int:
        """Streams actually runnable given memory and grid limits."""
        if not tasks:
            return self.n_streams
        mem = max(t.mem_bytes for t in tasks)
        by_mem = max(1, self.gpu.global_mem_bytes // max(mem, 1))
        return int(min(self.n_streams, self.gpu.max_resident_grids, by_mem))

    def makespan(self, tasks: List[KernelTask]) -> float:
        """Schedule tasks round-robin onto streams; return finish time.

        Concurrency contention past 64 streams stretches kernel
        durations by the calibrated marginal-efficiency factor (the
        same physics as :meth:`GpuModel.stream_speedup`).
        """
        conc = self.effective_concurrency(tasks)
        if conc < 1:
            raise SchedulerError("no runnable streams")
        stretch = conc / self.gpu.stream_speedup(conc, "score")
        heap = [0.0] * conc
        heapq.heapify(heap)
        end = 0.0
        for t in tasks:
            overhead = self.pool.acquire(t.mem_bytes) if self.pool else 50e-6
            start = heapq.heappop(heap)
            fin = start + overhead + t.duration_s * stretch
            heapq.heappush(heap, fin)
            end = max(end, fin)
        return end

    def throughput_speedup(self, task: KernelTask, reference_streams: int = 1) -> float:
        """Aggregate-throughput speedup of this config vs N=1 (Figure 7)."""
        conc = self.effective_concurrency([task])
        return self.gpu.stream_speedup(conc, "score")
