"""Multi-thread makespan simulation (Figure 9's scalability model).

Two layers:

* :func:`lpt_makespan` — plain greedy list scheduling of job costs onto
  identical workers (what longest-first batch sorting optimizes).
* :func:`simulate_makespan` — heterogeneous workers derived from a core
  topology + affinity placement: a thread sharing a core with ``n-1``
  others runs at ``ht_curve(n)/n`` of a dedicated core's speed (KNL's
  4-way hyper-threads share VPUs and a 1 MB tile L2, so the aggregate
  curve saturates around 1.2× — §5.3.1's "only 21% faster" observation).
  A serial (unparallelizable) fraction models the pipeline's residual
  I/O, giving the Amdahl roll-off that caps efficiency at ~79% at 64
  threads in the paper.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import SchedulerError
from .affinity import AffinityPolicy, SCATTER, assign_threads


def lpt_makespan(costs: Sequence[float], workers: int, presorted: bool = False) -> float:
    """Greedy list-scheduling makespan of ``costs`` on equal workers.

    With ``presorted=False`` jobs are taken in the given order (arrival
    order); longest-first callers sort descending beforehand or pass
    ``presorted=True`` to let the function do it.
    """
    if workers < 1:
        raise SchedulerError(f"need >= 1 worker: {workers}")
    jobs = sorted(costs, reverse=True) if presorted else list(costs)
    if any(c < 0 for c in jobs):
        raise SchedulerError("negative job cost")
    heap = [0.0] * workers
    heapq.heapify(heap)
    for c in jobs:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + c)
    return max(heap) if jobs else 0.0


def worker_speeds(
    threads: int,
    cores: int,
    threads_per_core: int,
    ht_curve: Dict[int, float],
    policy: AffinityPolicy = SCATTER,
) -> List[float]:
    """Per-thread relative speeds implied by an affinity placement."""
    counts = assign_threads(policy, threads, cores, threads_per_core)
    speeds: List[float] = []
    for core, n in counts.items():
        per_thread = ht_curve[n] / n
        speeds.extend([per_thread] * n)
    return speeds


def heterogeneous_makespan(
    costs: Sequence[float], speeds: Sequence[float]
) -> float:
    """Greedy earliest-finish scheduling on workers with given speeds."""
    if not speeds:
        raise SchedulerError("no workers")
    if any(s <= 0 for s in speeds):
        raise SchedulerError("non-positive worker speed")
    # Pick the worker that would FINISH the job earliest.
    finish = [0.0] * len(speeds)
    for c in costs:
        if c < 0:
            raise SchedulerError("negative job cost")
        best_i = min(range(len(speeds)), key=lambda i: finish[i] + c / speeds[i])
        finish[best_i] += c / speeds[best_i]
    return max(finish) if costs else 0.0


def simulate_makespan(
    costs: Sequence[float],
    threads: int,
    cores: int,
    threads_per_core: int,
    ht_curve: Dict[int, float],
    policy: AffinityPolicy = SCATTER,
    serial_seconds: float = 0.0,
    longest_first: bool = True,
) -> float:
    """Total modeled runtime: serial part + parallel schedule length."""
    if serial_seconds < 0:
        raise SchedulerError(f"negative serial time {serial_seconds}")
    jobs = sorted(costs, reverse=True) if longest_first else list(costs)
    speeds = worker_speeds(threads, cores, threads_per_core, ht_curve, policy)
    return serial_seconds + heterogeneous_makespan(jobs, speeds)
