"""``manymap`` command-line interface.

Subcommands mirror the minimap2 workflow on synthetic data:

* ``index``    — build and save a minimizer index from a FASTA file.
* ``map``      — map FASTA/FASTQ reads against a reference, PAF/SAM out.
* ``simulate`` — generate a synthetic genome and/or simulated reads.
* ``report``   — render ``--metrics`` JSON file(s) as the paper's
  Table 2-style stage breakdown with GCUPS/counter footers.
* ``top``      — refreshing terminal dashboard over a live run's
  ``--status-port`` endpoint or a ``--progress-file`` JSONL.
* ``trace``    — render kept request traces (``--trace-dir`` or a live
  obs endpoint) as span trees with self-time attribution.
* ``bench``    — print a modeled paper table/figure (the measured +
  asserted versions live in ``benchmarks/``).

Diagnostics go through structured stderr logging (``--log-level``,
per-worker prefixes); ``map --metrics FILE`` writes a machine-readable
run manifest and ``map --trace FILE`` a per-read span JSONL (see
:mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ._version import __version__


def _cmd_index(args: argparse.Namespace) -> int:
    from .index.index import build_index
    from .index.store import save_index
    from .obs.logs import get_logger
    from .seq.fasta import read_fasta
    from .seq.genome import Genome

    log = get_logger("cli")
    genome = Genome(read_fasta(args.reference))
    index = build_index(genome, k=args.k, w=args.w)
    written = save_index(index, args.output)
    log.info(
        "indexed %d sequence(s), %d minimizers, %d bytes -> %s",
        len(genome),
        index.n_minimizers,
        written,
        args.output,
    )
    return 0


def _kernel_choices() -> List[str]:
    """--kernel values: every registered dispatch kernel plus 'none'."""
    from .align.dispatch import kernel_names

    return kernel_names() + ["none"]


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    """The shared request-tracing flags (``map`` and ``serve``)."""
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="enable request-scoped tracing and keep sampled traces "
        "as trace-<id>.json files in DIR (render with `manymap trace "
        "DIR`); tracing is also on (in-memory only) when either "
        "sampling knob below is given",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="FRACTION",
        help="head-sampling fraction in [0,1] (default 1.0); errored/"
        "shed/deadline traces are always kept regardless",
    )
    parser.add_argument(
        "--trace-slowest",
        type=float,
        default=None,
        metavar="PCT",
        help="also keep the slowest PCT%% of requests even when head-"
        "sampled out (tail-based sampling, default 5)",
    )


def _trace_config(args: argparse.Namespace):
    """``--trace-dir/--trace-sample/--trace-slowest`` as a TraceConfig.

    ``None`` (tracing off) unless at least one of the three flags was
    given; unspecified knobs take the TraceConfig defaults.
    """
    if (
        args.trace_dir is None
        and args.trace_sample is None
        and args.trace_slowest is None
    ):
        return None
    from .obs.tracing import TraceConfig

    return TraceConfig(
        dir=args.trace_dir,
        sample=1.0 if args.trace_sample is None else args.trace_sample,
        slowest_pct=(
            5.0 if args.trace_slowest is None else args.trace_slowest
        ),
    )


def _resolve_map_backend(args: argparse.Namespace):
    """Map CLI flags to ``(backend, workers, stream_processes)``.

    ``--backend`` wins outright; ``--stream`` is shorthand for
    ``--backend streaming``; otherwise ``-p``/``-t`` pick processes or
    threads as before. Under the streaming backend ``-p N`` selects
    process-backed compute workers.
    """
    if args.stream and args.backend and args.backend != "streaming":
        return None
    backend = args.backend or ("streaming" if args.stream else None)
    workers = max(args.threads, args.processes)
    if backend is None:
        if args.processes > 1:
            backend = "processes"
        elif args.threads > 1:
            backend = "threads"
        else:
            backend, workers = "serial", 1
    return backend, workers, args.processes > 1


def _cmd_map(args: argparse.Namespace) -> int:
    from .api import MapOptions, map_file, open_index
    from .core.profiling import PipelineProfile
    from .obs.logs import get_logger, set_run_id
    from .obs.metrics import build_metrics, write_metrics
    from .obs.telemetry import Telemetry

    log = get_logger("cli")
    if args.threads > 1 and args.processes > 1:
        log.error("use either --threads or --processes, not both")
        return 2
    if args.threads < 1 or args.processes < 1 or args.chunk_reads < 1:
        log.error("--threads, --processes and --chunk-reads must be >= 1")
        return 2
    if args.commit_reads < 1:
        log.error("--commit-reads must be >= 1")
        return 2
    if args.resume and not args.run_dir:
        log.error("--resume needs --run-dir (or use `manymap resume DIR`)")
        return 2
    resolved = _resolve_map_backend(args)
    if resolved is None:
        log.error("--stream conflicts with --backend %s", args.backend)
        return 2
    backend, workers, stream_processes = resolved

    policy = None
    if (
        args.on_error != "abort"
        or args.read_timeout is not None
        or args.failed_reads
        or args.inject_faults
    ):
        from .errors import ReproError
        from .runtime.faults import FaultPolicy

        injector = None
        if args.inject_faults:
            from .testing.faults import load_faults

            try:
                injector = load_faults(args.inject_faults)
            except (OSError, ValueError, ReproError) as exc:
                log.error("cannot load fault spec: %s", exc)
                return 2
        try:
            policy = FaultPolicy(
                on_error=args.on_error,
                max_retries=args.max_retries,
                read_timeout=args.read_timeout,
                failed_reads=args.failed_reads,
                injector=injector,
            ).validated()
        except ReproError as exc:
            log.error("bad fault policy: %s", exc)
            return 2

    profile = PipelineProfile(label=f"{backend}[{workers}]")
    # --timeline is rendered from trace spans, so it implies tracing.
    telemetry = Telemetry(trace=bool(args.trace or args.timeline))
    set_run_id(telemetry.run_id)
    if args.trace:
        # Incremental sink: spans spill to the file as workers finish,
        # so tracing a multi-million-read run costs O(1) memory.
        telemetry.open_trace(args.trace)

    with profile.stage("Load Index"):
        aligner = open_index(
            args.reference, preset=args.preset, engine=args.engine
        )
    log.debug("reference loaded: %d sequence(s)", len(aligner.genome))

    options = MapOptions(
        backend=backend,
        workers=workers,
        with_cigar=not args.no_cigar,
        chunk_reads=args.chunk_reads,
        stream_processes=stream_processes,
        kernel=args.kernel,
        fault_policy=policy,
        progress_interval=args.progress,
        progress_path=args.progress_file,
        status_port=args.status_port,
        events_path=args.events,
        run_dir=args.run_dir,
        resume=bool(args.resume),
        commit_reads=args.commit_reads,
        tracing=_trace_config(args),
    )

    from contextlib import nullcontext

    from .errors import ReproError
    from .utils.fsio import atomic_output, atomic_write, atomic_write_json

    if args.run_dir and not args.resume:
        # Record how to re-invoke this run so `manymap resume DIR`
        # can rebuild the exact command (minus --resume) later.
        os.makedirs(args.run_dir, exist_ok=True)
        argv = list(getattr(args, "raw_argv", []) or [])
        if argv and argv[0] == "map":
            argv = argv[1:]
        atomic_write_json(
            os.path.join(args.run_dir, "cmdline.json"), {"argv": argv}
        )

    if args.run_dir:
        # Durable mode: output goes through the run journal; -o (if
        # given) is published from the committed file afterwards.
        out_cm = nullcontext(None)
    elif args.output:
        # Atomic: the target appears only when the run succeeds — a
        # crashed run never leaves a truncated PAF behind.
        out_cm = atomic_output(args.output)
    else:
        out_cm = nullcontext(sys.stdout)
    try:
        # Every backend consumes the reads file through the same
        # bounded iterator inside map_file, so --chunk-reads caps
        # memory whether or not --stream is in play.
        with out_cm as out:
            stats = map_file(
                aligner,
                args.reads,
                out,
                options,
                sam=bool(args.sam),
                profile=profile,
                telemetry=telemetry,
            )
    except ReproError as exc:
        log.error("%s", exc)
        return 2
    finally:
        telemetry.close_trace()
    log.info("mapped %d/%d reads", stats.n_mapped, stats.n_reads)
    if args.run_dir:
        committed = os.path.join(args.run_dir, "output.paf")
        j = stats.journal or {}
        if j.get("resumed"):
            log.info(
                "resumed: skipped %d committed read(s), truncated %d "
                "torn byte(s)",
                j.get("reads_skipped", 0),
                j.get("truncated_bytes", 0),
            )
        if args.output:
            with open(committed, "rb") as fh:
                atomic_write(args.output, fh.read())
            log.info("published committed output -> %s", args.output)
        else:
            log.info("committed output -> %s", committed)
    if policy is not None:
        quarantined = [
            f for f in telemetry.faults if f.action == "quarantined"
        ]
        fallbacks = [f for f in telemetry.faults if f.action == "fallback"]
        if quarantined:
            log.warning(
                "quarantined %d read(s)%s",
                len(quarantined),
                f" -> {args.failed_reads}" if args.failed_reads else "",
            )
        if fallbacks:
            log.warning(
                "downgraded %d read(s) to the watchdog fallback pass",
                len(fallbacks),
            )

    if args.trace:
        log.info(
            "wrote %d trace spans -> %s", telemetry.span_count, args.trace
        )
    if stats.tracing:
        log.info(
            "kept %d/%d request trace(s)%s",
            stats.tracing.get("kept", 0),
            stats.tracing.get("started", 0),
            f" -> {args.trace_dir}" if args.trace_dir else "",
        )
    if args.timeline:
        from .obs.telemetry import iter_trace
        from .obs.timeline import write_timeline

        spans = (
            telemetry.spans
            if telemetry.spans or not args.trace
            else iter_trace(args.trace)
        )
        n_events = write_timeline(
            args.timeline,
            spans,
            telemetry.faults,
            run_id=telemetry.run_id,
            gauges=telemetry.gauges.snapshot(),
            label=profile.label,
        )
        log.info("wrote %d timeline events -> %s", n_events, args.timeline)
    if args.metrics:
        manifest = build_metrics(
            profile,
            telemetry,
            config={
                "preset": args.preset,
                "engine": args.engine,
                "kernel": aligner.kernel_name or "none",
                "backend": backend,
                "workers": workers,
                "chunk_reads": args.chunk_reads,
                "with_cigar": not args.no_cigar,
                "sam": bool(args.sam),
                "stream_processes": stream_processes,
                "on_error": args.on_error,
                "max_retries": args.max_retries,
                "read_timeout": args.read_timeout,
                "run_dir": args.run_dir,
                "commit_reads": args.commit_reads,
            },
            export={
                k: v
                for k, v in (
                    ("status_port", args.status_port),
                    ("events_path", args.events),
                )
                if v is not None
            },
            reads={
                "n_reads": stats.n_reads,
                "total_bases": stats.total_bases,
                "n_mapped": stats.n_mapped,
            },
            label=profile.label,
            journal=stats.journal,
            tracing=stats.tracing,
        )
        write_metrics(args.metrics, manifest)
        log.info(
            "wrote metrics (%.4f GCUPS over %d DP cells) -> %s",
            manifest["derived"]["gcups"],
            manifest["derived"]["dp_cells"],
            args.metrics,
        )
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Re-invoke the recorded ``map`` command with ``--resume`` set.

    ``map --run-dir`` stores its argv in ``DIR/cmdline.json``; this
    replays it against the same run dir, so a crashed run continues
    with exactly the options that started it (the journal additionally
    refuses any output-affecting drift).
    """
    import json

    from .obs.logs import get_logger

    log = get_logger("cli")
    path = os.path.join(args.run_dir, "cmdline.json")
    try:
        with open(path) as fh:
            argv = list(json.load(fh)["argv"])
    except (OSError, ValueError, KeyError, TypeError) as exc:
        log.error(
            "cannot read %s (%s); re-run the original command with "
            "`manymap map ... --run-dir %s --resume` instead",
            path,
            exc,
            args.run_dir,
        )
        return 2
    argv = [a for a in argv if a != "--resume"]
    parsed = build_parser().parse_args(["map"] + argv)
    parsed.resume = True
    parsed.run_dir = args.run_dir  # the dir may have moved; trust ours
    parsed.raw_argv = ["map"] + argv
    parsed.log_level = getattr(args, "log_level", parsed.log_level)
    return _cmd_map(parsed)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .api import MapOptions, MappingSession, ServeConfig, open_index
    from .errors import ReproError
    from .obs.events import EVENTS
    from .obs.logs import get_logger, set_run_id
    from .obs.telemetry import Telemetry
    from .serve.server import MappingServer

    log = get_logger("cli")
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            max_batch_reads=args.max_batch_reads,
            min_batch_reads=args.min_batch_reads,
            batch_timeout_ms=args.batch_timeout_ms,
            adaptive_batching=not args.no_adaptive_batching,
            latency_target_ms=args.latency_target_ms,
            max_queue_requests=args.max_queue,
            max_reads_per_request=args.max_reads_per_request,
            tenant_quota=args.tenant_quota,
            batch_workers=args.batch_workers,
            drain_timeout_s=args.drain_timeout,
            tracing=_trace_config(args),
        ).validated()
    except ReproError as exc:
        log.error("%s", exc)
        return 2

    options = MapOptions(kernel=args.kernel) if args.kernel else None
    session = MappingSession(
        open_index(
            args.reference,
            args.index,
            preset=args.preset,
            engine=args.engine,
        ),
        options,
    )
    telemetry = Telemetry()
    set_run_id(telemetry.run_id)
    if args.events:
        EVENTS.open_sink(args.events)
    request_journal = None
    if args.journal:
        from .serve.journal import RequestJournal

        request_journal = RequestJournal(args.journal)
    server = MappingServer(
        session, config, telemetry, request_journal=request_journal
    )

    async def _main() -> None:
        await server.start()
        server.install_signal_handlers()
        # The bound port on stdout so scripts can capture port=0 binds.
        print(f"serving on {server.url}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal path races
        pass
    finally:
        if args.events:
            EVENTS.close_sink()
        if request_journal is not None:
            request_journal.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render kept request traces as span trees with self-time.

    ``target`` is either a live obs endpoint URL (the serve port or a
    ``map --status-port`` daemon — ``/traces`` is queried for the
    slowest kept traces) or a ``--trace-dir`` directory of
    ``trace-<id>.json`` files.
    """
    import json
    import urllib.request

    from .obs.logs import get_logger
    from .obs.tracing import render_trace_tree, trace_chrome

    log = get_logger("cli")
    target = args.target

    def _fetch(url: str):
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return json.loads(resp.read())

    docs: List[dict] = []
    if target.startswith(("http://", "https://")):
        base = target.rstrip("/")
        try:
            if args.id:
                docs = [_fetch(f"{base}/trace/{args.id}")]
            else:
                listing = _fetch(f"{base}/traces?slowest={args.slowest}")
                docs = [
                    _fetch(f"{base}/trace/{t['trace_id']}")
                    for t in listing.get("traces", [])
                ]
        except (OSError, ValueError, KeyError) as exc:
            log.error("cannot fetch traces from %s: %s", base, exc)
            return 2
    else:
        if not os.path.isdir(target):
            log.error("no such trace dir (or URL): %s", target)
            return 2
        from glob import glob

        for path in sorted(glob(os.path.join(target, "trace-*.json"))):
            try:
                with open(path) as fh:
                    docs.append(json.load(fh))
            except (OSError, ValueError) as exc:
                log.warning("skipping unreadable trace %s: %s", path, exc)
        if args.id:
            docs = [d for d in docs if d.get("trace_id") == args.id]
        else:
            docs.sort(key=lambda d: -float(d.get("duration_ms", 0.0)))
            docs = docs[: args.slowest]
    if not docs:
        log.error("no kept traces at %s", target)
        return 1
    if args.chrome:
        from .utils.fsio import atomic_write_json

        atomic_write_json(args.chrome, trace_chrome(docs[0]))
        log.info(
            "wrote Chrome trace for %s -> %s",
            docs[0].get("trace_id", "?"),
            args.chrome,
        )
    for doc in docs:
        print(render_trace_tree(doc))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .obs.logs import get_logger
    from .seq.fasta import write_fasta, write_fastq
    from .seq.genome import GenomeSpec, generate_genome
    from .sim.pbsim import simulate_reads

    log = get_logger("cli")
    genome = generate_genome(
        GenomeSpec(length=args.genome_length, chromosomes=args.chromosomes),
        seed=args.seed,
    )
    write_fasta(args.reference_out, genome.chromosomes)
    log.info("wrote genome -> %s", args.reference_out)
    if args.reads_out:
        reads = simulate_reads(
            genome, args.n_reads, platform=args.platform, seed=args.seed + 1
        )
        write_fastq(args.reads_out, reads)
        log.info("wrote %d reads -> %s", len(reads), args.reads_out)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .index.store import index_file_size, load_index
    from .utils.fmt import human_bytes, human_count

    idx = load_index(args.index, mode="mmap")
    s = idx.stats()
    rows = [
        ("sequences", human_count(s["n_sequences"])),
        ("k / w / hpc", f"{idx.k} / {idx.w} / {idx.hpc}"),
        ("minimizers", human_count(s["n_minimizers"])),
        ("distinct keys", human_count(s["n_keys"])),
        ("mean occurrences", f"{s['mean_occ']:.2f}"),
        ("max occurrences", human_count(s["max_occ_observed"])),
        ("occurrence cutoff", str(idx.max_occ)),
        ("in-memory size", human_bytes(s["bytes"])),
        ("file size", human_bytes(index_file_size(args.index))),
    ]
    width = max(len(k) for k, _ in rows)
    for k, v in rows:
        print(f"{k:<{width}}  {v}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import run_top

    try:
        return run_top(
            args.target,
            interval=args.interval,
            max_frames=1 if args.once else None,
        )
    except KeyboardInterrupt:
        return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs.logs import get_logger
    from .obs.report import (
        compare_metrics,
        render_compare,
        render_metrics_files,
    )

    log = get_logger("cli")
    if args.trajectory:
        from .obs.report import render_trajectory

        if args.metrics or args.compare:
            log.error("--trajectory renders one JSONL file; drop the "
                      "other arguments")
            return 2
        try:
            print(render_trajectory(args.trajectory, fmt=args.format))
        except (OSError, ValueError) as exc:
            log.error("cannot render trajectory: %s", exc)
            return 1
        return 0
    if args.compare:
        from .obs.metrics import load_metrics

        if args.metrics:
            log.error("--compare takes its two files itself; drop the "
                      "positional metrics arguments")
            return 2
        try:
            baseline = load_metrics(args.compare[0])
            candidate = load_metrics(args.compare[1])
            baseline.setdefault("label", args.compare[0])
            candidate.setdefault("label", args.compare[1])
            cmp = compare_metrics(
                baseline, candidate, tolerance_pct=args.tolerance
            )
            print(render_compare(cmp, fmt=args.format))
        except (OSError, ValueError) as exc:
            log.error("cannot compare metrics: %s", exc)
            return 1
        # exit 3 = gated regression, distinct from render errors (1).
        return 0 if cmp["ok"] else 3
    if not args.metrics:
        log.error("need metrics file(s) or --compare BASELINE CANDIDATE")
        return 2
    try:
        print(render_metrics_files(args.metrics, fmt=args.format))
    except (OSError, ValueError) as exc:
        log.error("cannot render metrics: %s", exc)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .machine.figures import FIGURES, available

    if args.figure == "list" or args.figure not in FIGURES:
        print("available:", ", ".join(available()))
        return 0 if args.figure == "list" else 1
    print(FIGURES[args.figure]())
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .obs.logs import LOG_LEVELS
    from .runtime.backends import backend_names

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--log-level",
        default="info",
        choices=list(LOG_LEVELS),
        help="stderr logging threshold (default info)",
    )

    p = argparse.ArgumentParser(
        prog="manymap",
        description="Long read alignment accelerated on three (modeled) processors",
    )
    p.add_argument("--version", action="version", version=f"manymap {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    pi = sub.add_parser("index", parents=[common], help="build a minimizer index")
    pi.add_argument("reference", help="reference FASTA")
    pi.add_argument("-o", "--output", required=True, help="index output path")
    pi.add_argument("-k", type=int, default=15, help="k-mer size")
    pi.add_argument("-w", type=int, default=10, help="minimizer window")
    pi.set_defaults(fn=_cmd_index)

    pm = sub.add_parser("map", parents=[common], help="map reads to a reference")
    pm.add_argument("reference", help="reference FASTA")
    pm.add_argument("reads", help="reads FASTA/FASTQ")
    pm.add_argument("-o", "--output", help="output file (default stdout)")
    pm.add_argument("-x", "--preset", default="map-pb", help="parameter preset")
    pm.add_argument(
        "--engine",
        default="manymap",
        choices=["manymap", "mm2", "scalar", "reference"],
        help="base-level DP engine",
    )
    pm.add_argument(
        "--kernel",
        default=None,
        choices=_kernel_choices(),
        help="DP kernel-dispatch selection: a registered kernel "
        "('wavefront' batches DP across reads), 'none' for the legacy "
        "per-pair path, or omit for the default ('wavefront' when "
        "--engine is manymap). Output is identical either way.",
    )
    pm.add_argument(
        "--backend",
        default=None,
        choices=list(backend_names()),
        help="execution backend (default: inferred from -t/-p)",
    )
    pm.add_argument(
        "--stream",
        action="store_true",
        help="shorthand for --backend streaming: overlapped "
        "read/compute/write pipeline with constant memory",
    )
    pm.add_argument("-t", "--threads", type=int, default=1, help="mapping threads")
    pm.add_argument(
        "-p",
        "--processes",
        type=int,
        default=1,
        help="mapping worker processes (mmap-shared index; bypasses the GIL)",
    )
    pm.add_argument(
        "--chunk-reads",
        type=int,
        default=32,
        help="max reads per scheduling chunk; also sizes the bounded "
        "read batches, so it caps resident memory on every backend",
    )
    pm.add_argument("--sam", action="store_true", help="emit SAM instead of PAF")
    pm.add_argument("--no-cigar", action="store_true", help="skip path DP")
    pm.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a machine-readable run manifest (stage seconds, "
        "counters, GCUPS, peak RSS) as JSON",
    )
    pm.add_argument(
        "--trace",
        metavar="FILE",
        help="write per-read trace spans (seed/chain/align, worker and "
        "chunk ids) as JSONL, streamed incrementally",
    )
    pm.add_argument(
        "--timeline",
        metavar="FILE",
        help="write a Chrome-trace/Perfetto timeline JSON: one lane per "
        "worker with per-read stage slices, chunk extents, and fault "
        "markers (implies span tracing for the run)",
    )
    pm.add_argument(
        "--progress",
        metavar="SECONDS",
        type=float,
        nargs="?",
        const=2.0,
        default=None,
        help="emit a live progress heartbeat (reads done, reads/s, "
        "GCUPS, queue depths, ETA) to stderr every SECONDS "
        "(default 2.0 when the flag is given bare)",
    )
    pm.add_argument(
        "--progress-file",
        metavar="FILE",
        help="also append each heartbeat as a JSON record to FILE",
    )
    pm.add_argument(
        "--status-port",
        metavar="PORT",
        type=int,
        default=None,
        help="serve a live status endpoint on 127.0.0.1:PORT for the "
        "duration of the run: /metrics (OpenMetrics/Prometheus), "
        "/status (JSON heartbeat + queues + faults + ETA), /events, "
        "/healthz; PORT 0 binds a free port (logged at startup)",
    )
    pm.add_argument(
        "--events",
        metavar="FILE",
        help="mirror the structured event stream (dispatch decisions, "
        "pool respawns, faults, heartbeats) to FILE as JSONL",
    )
    pm.add_argument(
        "--on-error",
        default="abort",
        choices=["abort", "skip", "retry"],
        help="per-read fault policy: abort the run (default), skip "
        "failing reads (quarantine on first error), or retry them "
        "--max-retries times before quarantining",
    )
    pm.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="attempts beyond the first for --on-error retry (default 2)",
    )
    pm.add_argument(
        "--read-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-read watchdog: when seed+chain exceeds this budget, "
        "downgrade the alignment to the cheap no-CIGAR pass instead of "
        "hanging a worker (the paper's oversized-problem CPU fallback)",
    )
    pm.add_argument(
        "--failed-reads",
        metavar="FILE",
        help="sidecar FASTQ for quarantined reads; a FILE.reasons.jsonl "
        "log with structured fault records rides along",
    )
    pm.add_argument(
        "--inject-faults",
        metavar="FILE",
        help="testing hook: JSON list of deterministic fault specs "
        "(read/kind/times) injected by read name; see "
        "repro.testing.faults",
    )
    pm.add_argument(
        "--run-dir",
        metavar="DIR",
        help="make the run durable: write output and a write-ahead "
        "journal into DIR (fsynced commit every --commit-reads reads) "
        "so a killed run can be resumed byte-identically with "
        "`manymap resume DIR`; -o (if given) is published atomically "
        "from the committed output at the end",
    )
    pm.add_argument(
        "--resume",
        action="store_true",
        help="continue the journaled run in --run-dir from its last "
        "verified commit instead of starting fresh",
    )
    pm.add_argument(
        "--commit-reads",
        type=int,
        default=256,
        metavar="N",
        help="durable-commit cadence for --run-dir: fsync output + "
        "journal every N reads (default 256); smaller = less re-mapped "
        "after a crash, more fsyncs",
    )
    _add_trace_flags(pm)
    pm.set_defaults(fn=_cmd_map)

    pz = sub.add_parser(
        "resume",
        parents=[common],
        help="resume a killed `map --run-dir` run from its directory",
    )
    pz.add_argument(
        "run_dir",
        help="the --run-dir of the interrupted `manymap map` run",
    )
    pz.set_defaults(fn=_cmd_resume)

    pv = sub.add_parser(
        "serve",
        parents=[common],
        help="serve mapping over HTTP: resident index, adaptive "
        "request batching, per-tenant admission control",
    )
    pv.add_argument("reference", help="reference FASTA")
    pv.add_argument(
        "-i", "--index", help="saved .mmi index to mmap (kept resident)"
    )
    pv.add_argument("-x", "--preset", default="map-pb", help="parameter preset")
    pv.add_argument(
        "--engine",
        default="manymap",
        choices=["manymap", "mm2", "scalar", "reference"],
        help="base-level DP engine",
    )
    pv.add_argument(
        "--kernel",
        default=None,
        choices=_kernel_choices(),
        help="DP kernel-dispatch selection (see map --kernel)",
    )
    pv.add_argument("--host", default="127.0.0.1", help="bind address")
    pv.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port; 0 asks the OS for a free one (default 8765)",
    )
    pv.add_argument(
        "--max-batch-reads",
        type=int,
        default=64,
        help="upper bound on reads coalesced into one mapping batch",
    )
    pv.add_argument(
        "--min-batch-reads",
        type=int,
        default=4,
        help="floor the adaptive batch target never shrinks below",
    )
    pv.add_argument(
        "--batch-timeout-ms",
        type=float,
        default=20.0,
        help="max wait for coalescing after the first queued request",
    )
    pv.add_argument(
        "--no-adaptive-batching",
        action="store_true",
        help="pin the batch target at --max-batch-reads instead of "
        "adapting it against observed p99 latency",
    )
    pv.add_argument(
        "--latency-target-ms",
        type=float,
        default=500.0,
        help="p99 request-latency target steering the adaptive batch "
        "size (default 500)",
    )
    pv.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="admission queue bound; excess requests are shed with 429",
    )
    pv.add_argument(
        "--max-reads-per-request",
        type=int,
        default=512,
        help="largest accepted request (reads); bigger gets 400",
    )
    pv.add_argument(
        "--tenant-quota",
        type=int,
        default=64,
        help="max outstanding requests per tenant before 429",
    )
    pv.add_argument(
        "--batch-workers",
        type=int,
        default=1,
        help="mapping worker threads executing batches (default 1)",
    )
    pv.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="graceful SIGTERM drain budget before queued requests "
        "are failed with 503",
    )
    pv.add_argument(
        "--events",
        metavar="FILE",
        help="mirror the structured event stream (batches, sheds, "
        "drain) to FILE as JSONL",
    )
    pv.add_argument(
        "--journal",
        metavar="DIR",
        help="journal admitted requests durably in DIR and, on "
        "restart, replay any the previous process died before "
        "answering (results land in DIR/replayed.jsonl)",
    )
    _add_trace_flags(pv)
    pv.set_defaults(fn=_cmd_serve)

    ptr = sub.add_parser(
        "trace",
        parents=[common],
        help="render kept request traces as span trees",
    )
    ptr.add_argument(
        "target",
        help="a --trace-dir directory of trace-<id>.json files, or a "
        "live obs endpoint URL (the serve port or map --status-port)",
    )
    ptr.add_argument("--id", help="render one specific trace by id")
    ptr.add_argument(
        "--slowest",
        type=int,
        default=5,
        metavar="N",
        help="render the N slowest kept traces (default 5)",
    )
    ptr.add_argument(
        "--chrome",
        metavar="FILE",
        help="also export the first rendered trace as a Chrome-trace/"
        "Perfetto JSON (open in chrome://tracing or ui.perfetto.dev)",
    )
    ptr.set_defaults(fn=_cmd_trace)

    ps = sub.add_parser(
        "simulate", parents=[common], help="generate synthetic genome + reads"
    )
    ps.add_argument("--genome-length", type=int, default=1_000_000)
    ps.add_argument("--chromosomes", type=int, default=1)
    ps.add_argument("--n-reads", type=int, default=100)
    ps.add_argument("--platform", default="pacbio", choices=["pacbio", "nanopore"])
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--reference-out", default="ref.fa")
    ps.add_argument("--reads-out", default=None)
    ps.set_defaults(fn=_cmd_simulate)

    pst = sub.add_parser("stats", parents=[common], help="summarize a saved index")
    pst.add_argument("index", help="path to a .mmi index file")
    pst.set_defaults(fn=_cmd_stats)

    pr = sub.add_parser(
        "report",
        parents=[common],
        help="render metrics manifest(s) as a Table 2-style comparison",
    )
    pr.add_argument("metrics", nargs="*", help="one or more --metrics JSON files")
    pr.add_argument(
        "--compare",
        nargs=2,
        metavar=("BASELINE", "CANDIDATE"),
        help="diff two manifests' throughput metrics; exits 3 when a "
        "gated metric (GCUPS, reads/s, bases/s) regressed beyond "
        "--tolerance",
    )
    pr.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="allowed relative drop per gated metric for --compare "
        "(percent, default 10)",
    )
    pr.add_argument(
        "--trajectory",
        metavar="JSONL",
        help="render a benchmarks/results/BENCH_trajectory.jsonl "
        "perf-trajectory file (one appended record per CI bench run) "
        "instead of metrics manifests",
    )
    pr.add_argument(
        "--format",
        default="table",
        choices=["table", "json", "markdown"],
        help="output rendering (default table)",
    )
    pr.set_defaults(fn=_cmd_report)

    pt = sub.add_parser(
        "top",
        parents=[common],
        help="refreshing terminal dashboard for a mapping run",
    )
    pt.add_argument(
        "target",
        help="a live run's status URL (http://127.0.0.1:PORT, from "
        "map --status-port) or a --progress-file heartbeat JSONL path",
    )
    pt.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh cadence (default 1.0)",
    )
    pt.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (snapshot mode)",
    )
    pt.set_defaults(fn=_cmd_top)

    pb = sub.add_parser(
        "bench", parents=[common], help="print a modeled paper table/figure"
    )
    pb.add_argument("figure", help="fig5|fig6|fig7|fig8|table3|list")
    pb.set_defaults(fn=_cmd_bench)

    return p


def main(argv: Optional[List[str]] = None) -> int:
    from .obs.logs import setup_logging

    raw = list(argv if argv is not None else sys.argv[1:])
    args = build_parser().parse_args(raw)
    args.raw_argv = raw  # verbatim, for `map --run-dir`'s cmdline.json
    setup_logging(getattr(args, "log_level", "info"))
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
