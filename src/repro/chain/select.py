"""Primary/secondary chain selection and mapping-quality estimation.

Chains whose query intervals overlap a better chain by more than
``mask_level`` are secondary (minimap2 ``--mask-level``); the rest are
primary. MAPQ follows minimap2's shape: scaled by how far the best
secondary score f₂ falls below the primary f₁ and by anchor support.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from .chain import Chain


def _overlap(a: Tuple[int, int], b: Tuple[int, int]) -> int:
    return max(0, min(a[1], b[1]) - max(a[0], b[0]) + 1)


def select_chains(
    chains: Sequence[Chain], mask_level: float = 0.5
) -> Tuple[List[Chain], List[Chain]]:
    """Split score-sorted chains into (primary, secondary) lists."""
    if not 0.0 <= mask_level <= 1.0:
        raise ValueError(f"mask level {mask_level} out of [0, 1]")
    primary: List[Chain] = []
    secondary: List[Chain] = []
    for c in sorted(chains, key=lambda c: -c.score):
        iv = c.query_interval()
        span = iv[1] - iv[0] + 1
        shadowed = False
        for p in primary:
            if _overlap(iv, p.query_interval()) > mask_level * span:
                shadowed = True
                break
        (secondary if shadowed else primary).append(c)
    return primary, secondary


def estimate_mapq(
    primary: Chain, secondary: Sequence[Chain], max_mapq: int = 60
) -> int:
    """minimap2-style MAPQ from the primary/secondary score ratio.

    ``mapq = 40 · (1 - f2/f1) · min(1, n/10) · ln f1`` clipped to
    ``[0, max_mapq]`` — unique strong chains get high confidence,
    repeats (f2 ≈ f1) drop toward 0.
    """
    f1 = max(primary.score, 1.0)
    competing = [
        c.score
        for c in secondary
        if c is not primary
        and _overlap(c.query_interval(), primary.query_interval()) > 0
    ]
    f2 = max(competing) if competing else 0.0
    mapq = 40.0 * (1.0 - f2 / f1) * min(1.0, primary.n_anchors / 10.0) * math.log(f1)
    return int(max(0, min(max_mapq, round(mapq))))
