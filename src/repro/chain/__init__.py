"""Chaining: clustering seed matches (anchors) into colinear chains.

Implements minimap2's chaining DP (§3.1): anchors — exact minimizer
matches between query and reference — are scored with a gap-cost model
and linked into chains that approximate the final alignment; the
base-level DP then only fills the gaps between anchors.
"""

from .anchors import Anchor, collect_anchors
from .chain import Chain, ChainParams, chain_anchors
from .select import select_chains, estimate_mapq

__all__ = [
    "Anchor",
    "collect_anchors",
    "Chain",
    "ChainParams",
    "chain_anchors",
    "select_chains",
    "estimate_mapq",
]
