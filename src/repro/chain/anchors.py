"""Anchor collection: query minimizers × reference index hits.

An anchor records that the k-mer ending at query position ``qpos``
matches the reference k-mer ending at ``tpos`` on relative strand
``strand`` (0 = same strand, 1 = query maps reverse-complemented).
For reverse-strand anchors the query coordinate is flipped into the
reverse-complement read's frame so that colinearity is increasing in
both coordinates on either strand — minimap2's convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..index.index import MinimizerIndex
from ..index.minimizer import extract_minimizers
from ..obs.counters import COUNTERS


@dataclass(frozen=True)
class Anchor:
    """One seed match (reference id, target pos, query pos, strand)."""

    rid: int
    tpos: int
    qpos: int
    strand: int  # 0 forward, 1 reverse-complement


def collect_anchors(
    query_codes: np.ndarray,
    index: MinimizerIndex,
    as_arrays: bool = False,
):
    """Find all anchors of ``query_codes`` against ``index``.

    With ``as_arrays=True`` returns ``(rid, tpos, qpos, strand)`` int64
    arrays sorted by (rid, strand, tpos, qpos) — the order the chaining
    DP requires. Otherwise returns a sorted list of :class:`Anchor`.
    """
    k = index.k
    n = int(query_codes.size)
    values, qpos, qstrand = extract_minimizers(
        query_codes, k=index.k, w=index.w, as_arrays=True,
        hpc=getattr(index, "hpc", False),
    )
    qidx, rid, tpos, tstrand = index.lookup_many(values)
    COUNTERS.inc("query_minimizers", int(values.size))
    COUNTERS.inc("anchors_seeded", int(qidx.size))
    if qidx.size == 0:
        if as_arrays:
            z = np.empty(0, dtype=np.int64)
            return z, z, z, z
        return []

    q_at = qpos[qidx]
    strand_rel = (qstrand[qidx].astype(np.int64) ^ tstrand.astype(np.int64))
    # Flip reverse-strand query coordinates into the RC read frame:
    # the k-mer [i-k+1, i] occupies end position n-1-i+k-1 after RC.
    q_final = np.where(strand_rel == 1, n - 1 - q_at + k - 1, q_at)

    order = np.lexsort((q_final, tpos, strand_rel, rid))
    rid_s = rid[order].astype(np.int64)
    tpos_s = tpos[order].astype(np.int64)
    qpos_s = q_final[order].astype(np.int64)
    strand_s = strand_rel[order].astype(np.int64)
    if as_arrays:
        return rid_s, tpos_s, qpos_s, strand_s
    return [
        Anchor(int(r), int(t), int(qq), int(s))
        for r, t, qq, s in zip(rid_s, tpos_s, qpos_s, strand_s)
    ]
