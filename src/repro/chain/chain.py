"""minimap2's chaining dynamic program, vectorized over predecessors.

For anchors sorted by (rid, strand, tpos, qpos), the chain score is

    f(i) = max( w_k,  max_{j<i}  f(j) + match(j,i) - cost(j,i) )

where ``match = min(dq, dt, k)`` caps the credited seed overlap and
``cost`` penalizes the gap ``dd = |dt - dq|`` with minimap2's
``0.01·k·dd + 0.5·log2(dd)`` term. Each anchor scans at most
``max_pred`` predecessors (minimap2's ``-h``), giving O(n·h) with the
inner scan done as one NumPy reduction per anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import ChainError
from ..obs.counters import COUNTERS


@dataclass(frozen=True)
class ChainParams:
    """Chaining parameters (minimap2 flag in parentheses)."""

    k: int = 15  # seed length, caps per-anchor match credit
    max_dist_t: int = 5000  # max target gap between adjacent anchors (-g)
    max_dist_q: int = 5000  # max query gap
    bandwidth: int = 500  # max |dt - dq| (-r)
    max_pred: int = 50  # predecessors scanned per anchor (-h... max-chain-iter)
    min_score: int = 40  # minimum chain score (-m)
    min_count: int = 3  # minimum anchors per chain (-n)
    max_chains: int = 64  # chains kept per query

    def __post_init__(self) -> None:
        if self.k < 1 or self.max_pred < 1 or self.max_chains < 1:
            raise ChainError(f"invalid chain parameters: {self}")
        if self.max_dist_t < 1 or self.max_dist_q < 1 or self.bandwidth < 0:
            raise ChainError(f"invalid chain distances: {self}")


@dataclass
class Chain:
    """A colinear anchor chain on one reference/strand."""

    rid: int
    strand: int
    score: float
    anchors: List[Tuple[int, int]] = field(default_factory=list)  # (tpos, qpos)

    @property
    def n_anchors(self) -> int:
        return len(self.anchors)

    @property
    def t_start(self) -> int:
        return self.anchors[0][0]

    @property
    def t_end(self) -> int:
        return self.anchors[-1][0]

    @property
    def q_start(self) -> int:
        return self.anchors[0][1]

    @property
    def q_end(self) -> int:
        return self.anchors[-1][1]

    def query_interval(self) -> Tuple[int, int]:
        """Query span covered by the chain (k-mer end positions)."""
        return self.q_start, self.q_end


def _gap_cost(dd: np.ndarray, avg_len: float) -> np.ndarray:
    """minimap2's concave gap cost: 0.01·k̄·dd + 0.5·log2(dd)."""
    cost = np.zeros_like(dd, dtype=np.float64)
    pos = dd > 0
    ddp = dd[pos].astype(np.float64)
    cost[pos] = 0.01 * avg_len * ddp + 0.5 * np.log2(ddp)
    return cost


def chain_anchors(
    rid: np.ndarray,
    tpos: np.ndarray,
    qpos: np.ndarray,
    strand: np.ndarray,
    params: ChainParams = ChainParams(),
) -> List[Chain]:
    """Run the chaining DP and return chains sorted by score, best first.

    Inputs must be sorted by (rid, strand, tpos, qpos) — the order
    :func:`repro.chain.anchors.collect_anchors` produces. Chains reuse
    no anchors (each anchor belongs to its best chain only).
    """
    n = int(tpos.size)
    if not (rid.size == qpos.size == strand.size == n):
        raise ChainError("anchor arrays must have equal length")
    if n == 0:
        return []
    if (np.lexsort((qpos, tpos, strand, rid)) != np.arange(n)).any():
        raise ChainError("anchors must be sorted by (rid, strand, tpos, qpos)")

    f = np.full(n, float(params.k), dtype=np.float64)  # best score ending at i
    pred = np.full(n, -1, dtype=np.int64)

    h = params.max_pred
    for i in range(1, n):
        j0 = max(0, i - h)
        js = slice(j0, i)
        same = (rid[js] == rid[i]) & (strand[js] == strand[i])
        dt = tpos[i] - tpos[js]
        dq = qpos[i] - qpos[js]
        dd = np.abs(dt - dq)
        ok = (
            same
            & (dt > 0)
            & (dq > 0)
            & (dt <= params.max_dist_t)
            & (dq <= params.max_dist_q)
            & (dd <= params.bandwidth)
        )
        if not ok.any():
            continue
        match = np.minimum(np.minimum(dq, dt), params.k).astype(np.float64)
        cand = f[js] + match - _gap_cost(dd, params.k)
        cand = np.where(ok, cand, -np.inf)
        best_j = int(np.argmax(cand))
        if cand[best_j] > f[i]:
            f[i] = cand[best_j]
            pred[i] = j0 + best_j

    # Extract chains greedily by descending end-score, skipping used anchors.
    order = np.argsort(-f, kind="stable")
    used = np.zeros(n, dtype=bool)
    chains: List[Chain] = []
    for i0 in order:
        if used[i0] or f[i0] < params.min_score:
            continue
        trail = []
        i = int(i0)
        cut_score = 0.0
        while i != -1:
            if used[i]:
                # Chain truncated where a better chain already claimed the
                # anchor: only the score accumulated past the cut counts
                # (minimap2's backtrack does the same subtraction).
                cut_score = float(f[i])
                break
            trail.append(i)
            i = int(pred[i])
        score = float(f[i0]) - cut_score
        if len(trail) < params.min_count or score < params.min_score:
            continue
        for i in trail:
            used[i] = True
        trail.reverse()
        chains.append(
            Chain(
                rid=int(rid[i0]),
                strand=int(strand[i0]),
                score=score,
                anchors=[(int(tpos[i]), int(qpos[i])) for i in trail],
            )
        )
        if len(chains) >= params.max_chains:
            break
    chains.sort(key=lambda c: -c.score)
    COUNTERS.inc("chains_built", len(chains))
    COUNTERS.inc("anchors_chained", sum(c.n_anchors for c in chains))
    return chains
